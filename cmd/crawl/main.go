// Command crawl runs the paper's automated survey against a generated
// synthetic web and writes the measurement log.
//
// Usage:
//
//	crawl -sites 10000 -seed 42 -rounds 5 -out survey.log -format binary
//
// At -sites 10000 the run reproduces the paper's full scale (four browser
// configurations, five rounds, 13 pages per visit). The survey executes on
// the sharded internal/pipeline engine (-shards partitions × workers);
// -shards 0 falls back to the legacy sequential loop. Both produce the same
// log for a seed.
//
// -format picks the log encoding (csv or binary); readers auto-detect, so
// either loads anywhere a log is accepted. -cache memoizes visit outcomes
// on disk so a re-run with an overlapping configuration skips completed
// visits (pipeline engine only, -shards ≥ 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/report"
)

func main() {
	var (
		sites       = flag.Int("sites", 1000, "number of ranked sites to generate and crawl")
		seed        = flag.Int64("seed", 42, "deterministic seed for generation and crawling")
		rounds      = flag.Int("rounds", 5, "visits per (site, configuration)")
		parallelism = flag.Int("parallelism", 8, "total concurrent site workers")
		shards      = flag.Int("shards", 4, "site partitions for the pipeline engine; 0 = legacy sequential loop")
		cases       = flag.String("cases", "default,blocking,adblock,ghostery", "comma-separated browser configurations")
		useHTTP     = flag.Bool("http", false, "fetch through a real net/http server instead of in-process")
		out         = flag.String("out", "", "write the measurement log to this file")
		format      = flag.String("format", "csv", "log encoding for -out: csv or binary")
		cacheDir    = flag.String("cache", "", "visit cache directory; re-runs skip cached visits (needs -shards >= 1)")
		cacheLimit  = flag.Int64("cache-limit", 0, "visit cache size cap in bytes; least-recently-used entries are pruned (0 = unbounded)")
	)
	flag.Parse()

	var cs []measure.Case
	for _, c := range strings.Split(*cases, ",") {
		c = strings.TrimSpace(c)
		if c != "" {
			cs = append(cs, measure.Case(c))
		}
	}

	if *cacheDir != "" && *shards <= 0 {
		fmt.Fprintln(os.Stderr, "crawl: -cache requires the pipeline engine (-shards >= 1)")
		os.Exit(2)
	}

	study, err := core.NewStudy(core.Config{
		Sites:         *sites,
		Seed:          *seed,
		Rounds:        *rounds,
		Parallelism:   *parallelism,
		Shards:        *shards,
		Cases:         cs,
		UseHTTP:       *useHTTP,
		LogFormat:     *format,
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheLimit,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer study.Close()

	start := time.Now()
	results, err := study.RunSurvey()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "survey of %d sites completed in %s\n", *sites, time.Since(start).Round(time.Millisecond))
	if study.Cache != nil {
		st := study.Cache.Stats()
		fmt.Fprintf(os.Stderr, "visit cache: %d hits, %d misses, %d stored\n", st.Hits, st.Misses, st.Puts)
	}

	report.Table1(os.Stdout, results.Stats)

	if *out != "" {
		if err := study.SaveLog(*out, results.Log); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "measurement log written to %s (%s)\n", *out, *format)
	}
}
