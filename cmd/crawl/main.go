// Command crawl runs the paper's automated survey against a generated
// synthetic web and writes the measurement log.
//
// Usage:
//
//	crawl -sites 10000 -seed 42 -rounds 5 -out survey.csv
//
// At -sites 10000 the run reproduces the paper's full scale (four browser
// configurations, five rounds, 13 pages per visit). The survey executes on
// the sharded internal/pipeline engine (-shards partitions × workers);
// -shards 0 falls back to the legacy sequential loop. Both produce the same
// log for a seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/report"
)

func main() {
	var (
		sites       = flag.Int("sites", 1000, "number of ranked sites to generate and crawl")
		seed        = flag.Int64("seed", 42, "deterministic seed for generation and crawling")
		rounds      = flag.Int("rounds", 5, "visits per (site, configuration)")
		parallelism = flag.Int("parallelism", 8, "total concurrent site workers")
		shards      = flag.Int("shards", 4, "site partitions for the pipeline engine; 0 = legacy sequential loop")
		cases       = flag.String("cases", "default,blocking,adblock,ghostery", "comma-separated browser configurations")
		useHTTP     = flag.Bool("http", false, "fetch through a real net/http server instead of in-process")
		out         = flag.String("out", "", "write the measurement log (CSV) to this file")
	)
	flag.Parse()

	var cs []measure.Case
	for _, c := range strings.Split(*cases, ",") {
		c = strings.TrimSpace(c)
		if c != "" {
			cs = append(cs, measure.Case(c))
		}
	}

	study, err := core.NewStudy(core.Config{
		Sites:       *sites,
		Seed:        *seed,
		Rounds:      *rounds,
		Parallelism: *parallelism,
		Shards:      *shards,
		Cases:       cs,
		UseHTTP:     *useHTTP,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer study.Close()

	start := time.Now()
	results, err := study.RunSurvey()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "survey of %d sites completed in %s\n", *sites, time.Since(start).Round(time.Millisecond))

	report.Table1(os.Stdout, results.Stats)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := results.Log.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "measurement log written to %s\n", *out)
	}
}
