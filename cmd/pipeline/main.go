// Command pipeline runs the sharded crawl→measure→aggregate engine and
// prints the paper's headline tables from a single parallel pass: survey
// scale (Table 1), feature popularity (§5.1), and — when a blocking profile
// is selected — the blocked-vs-unblocked feature deltas behind Figure 4.
//
// Usage:
//
//	pipeline -sites 10000 -seed 42 -shards 8 -workers 4 -profile blocking
//
// The blocking profile picks the browser configurations to crawl:
//
//	none      default browser only
//	adblock   default + AdBlock Plus
//	ghostery  default + Ghostery
//	blocking  default + AdBlock Plus + Ghostery combined (the paper's pair)
//	all       every configuration (adds the Figure 7 singles)
//
// Sharding never changes results: the log is byte-identical to a sequential
// crawl of the same seed, only faster.
//
// -cache memoizes visit outcomes on disk: a second run with an overlapping
// configuration skips every completed visit (the hit counters printed at
// the end prove it) and produces a byte-identical log; -cache-limit caps
// the cache's size, pruning least-recently-used entries. -spill streams
// each shard's completed visits to shard-NNN.spill files as they happen,
// and -format picks the -out encoding (csv or binary; readers auto-detect).
//
// -spill-only drops the in-memory log entirely: each shard folds its
// visits into a mergeable statistics aggregate, so memory stays bounded
// regardless of site count while every printed table is byte-identical to
// the in-memory run's. Combine with -spill to keep the full log on disk
// (report -spills replays it); -out is unavailable in this mode.
//
// # Distributed surveys
//
// -coordinator and -worker run the survey across machines
// (internal/dist; docs/OPERATIONS.md is the runbook):
//
//	pipeline -sites 10000 -seed 42 -coordinator :9090          # on one machine
//	pipeline -worker coord-host:9090 -shards 2 -workers 4      # on each worker
//
// The coordinator partitions the site list into leases (-lease sites
// each), ships the study spec to every connecting worker, folds each
// completed lease's streamed spill data into a merged aggregate — re-issuing
// the leases of workers that die (-heartbeat silence) — and prints exactly
// the tables a single-machine -spill-only run of the same flags prints,
// byte for byte. Workers take their survey methodology from the
// coordinator, so only engine-geometry flags (-shards, -workers, -batch,
// -cache…) matter on the worker command line.
//
// # Crash recovery
//
// Every run can be killed and resumed without losing committed work or
// double-counting any visit (docs/OPERATIONS.md § Crash recovery):
//
//   - Single machine: a -spill-only -spill run re-run with -resume replays
//     the sites whose spill records committed durably and crawls only the
//     rest; the tables are byte-identical to an uninterrupted run.
//   - Coordinator: -checkpoint journals every committed lease, fsynced;
//     restarting the same command over the same file re-issues only the
//     unfinished leases. -seed-spills promotes a crashed single-machine
//     run's spill directory into already-merged leases.
//   - Worker: -reconnect N redials a restarted coordinator with backoff
//     instead of exiting on the first broken connection.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	var (
		sites      = flag.Int("sites", 1000, "number of ranked sites to generate and crawl")
		seed       = flag.Int64("seed", 42, "deterministic seed for generation and crawling")
		rounds     = flag.Int("rounds", 5, "visits per (site, configuration)")
		shards     = flag.Int("shards", 4, "site partitions crawled independently")
		workers    = flag.Int("workers", 4, "browser workers per shard")
		batch      = flag.Int("batch", 0, "visits merged per batch (0 = engine default)")
		profile    = flag.String("profile", "blocking", "blocking profile: none, adblock, ghostery, blocking, or all")
		topN       = flag.Int("top", 15, "rows in the popularity and delta tables")
		timeout    = flag.Duration("timeout", 0, "abort the crawl after this duration (0 = none)")
		out        = flag.String("out", "", "write the measurement log to this file")
		format     = flag.String("format", "csv", "log encoding for -out: csv or binary")
		cacheDir   = flag.String("cache", "", "visit cache directory; re-runs skip cached visits")
		cacheLimit = flag.Int64("cache-limit", 0, "visit cache size cap in bytes; least-recently-used entries are pruned (0 = unbounded)")
		spillDir   = flag.String("spill", "", "stream per-shard spill files to this directory")
		spillOnly  = flag.Bool("spill-only", false, "drop the in-memory log; fold visits into mergeable per-shard aggregates (bounded memory)")
		resume     = flag.Bool("resume", false, "resume a crashed -spill-only run: replay committed sites from -spill and crawl only the rest")
		coord      = flag.String("coordinator", "", "run as survey coordinator, listening on this host:port for workers")
		workerAddr = flag.String("worker", "", "run as survey worker, connecting to this coordinator host:port")
		leaseSites = flag.Int("lease", 0, "coordinator: sites per worker lease (0 = default 64)")
		heartbeat  = flag.Duration("heartbeat", 0, "coordinator: declare a worker dead after this much silence and re-issue its lease (0 = default 10s)")
		checkpoint = flag.String("checkpoint", "", "coordinator: journal committed leases to this file; restarting over it re-issues only unfinished leases")
		seedSpills = flag.String("seed-spills", "", "coordinator: spill-file glob from a crashed single-machine run of the same study; fully covered leases merge without re-crawling")
		reconnect  = flag.Int("reconnect", 0, "worker: survive coordinator restarts, redialing with backoff up to this many consecutive failed attempts (0 = exit on disconnect)")
		noReuse    = flag.Bool("no-browser-reuse", false, "ablation: disable the browser revisit fast path (results identical)")
		noCompile  = flag.Bool("no-script-compile", false, "ablation: run scripts on the AST interpreter instead of compiled ops (results identical)")
		noIndex    = flag.Bool("no-matcher-index", false, "ablation: use the linear ABP rule scan instead of the tokenized index (results identical)")
	)
	flag.Parse()

	if *spillOnly && *out != "" {
		fmt.Fprintln(os.Stderr, "pipeline: -spill-only keeps no in-memory log; use -spill and `report -spills` instead of -out")
		os.Exit(2)
	}
	if *coord != "" && *workerAddr != "" {
		fmt.Fprintln(os.Stderr, "pipeline: -coordinator and -worker are mutually exclusive")
		os.Exit(2)
	}
	if *coord != "" && *out != "" {
		fmt.Fprintln(os.Stderr, "pipeline: the coordinator merges aggregates, not logs; -out is unavailable in coordinator mode (run workers with -spill for on-disk copies of what they stream)")
		os.Exit(2)
	}
	if *workerAddr != "" && (*out != "" || *spillOnly) {
		fmt.Fprintln(os.Stderr, "pipeline: workers take the survey from the coordinator; -out and -spill-only do not apply in worker mode (-spill keeps local copies of streamed leases)")
		os.Exit(2)
	}
	if *resume && (*spillDir == "" || !*spillOnly) {
		fmt.Fprintln(os.Stderr, "pipeline: -resume replays the spill directory of a crashed run; it requires -spill-only and -spill")
		os.Exit(2)
	}
	if *resume && (*coord != "" || *workerAddr != "") {
		fmt.Fprintln(os.Stderr, "pipeline: -resume is single-machine; coordinators resume from -checkpoint, and -seed-spills promotes a crashed local run")
		os.Exit(2)
	}
	if (*checkpoint != "" || *seedSpills != "") && *coord == "" {
		fmt.Fprintln(os.Stderr, "pipeline: -checkpoint and -seed-spills apply only in -coordinator mode")
		os.Exit(2)
	}

	ctxRoot, stopRoot := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopRoot()

	if *workerAddr != "" {
		if err := runWorker(ctxRoot, *workerAddr, *spillDir, *reconnect, core.Config{
			Shards:               *shards,
			ShardWorkers:         *workers,
			BatchSize:            *batch,
			CacheDir:             *cacheDir,
			CacheMaxBytes:        *cacheLimit,
			DisableBrowserReuse:  *noReuse,
			DisableScriptCompile: *noCompile,
			DisableMatcherIndex:  *noIndex,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	prof, err := blocking.ParseProfile(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	study, err := core.NewStudy(core.Config{
		Sites:                *sites,
		Seed:                 *seed,
		Rounds:               *rounds,
		Cases:                prof.Cases(),
		Shards:               *shards,
		ShardWorkers:         *workers,
		BatchSize:            *batch,
		LogFormat:            *format,
		CacheDir:             *cacheDir,
		CacheMaxBytes:        *cacheLimit,
		SpillDir:             *spillDir,
		SpillOnly:            *spillOnly,
		Resume:               *resume,
		DisableBrowserReuse:  *noReuse,
		DisableScriptCompile: *noCompile,
		DisableMatcherIndex:  *noIndex,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer study.Close()

	ctx := ctxRoot
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	var results *core.Results
	if *coord != "" {
		agg, err := runCoordinator(ctx, *coord, study, *leaseSites, *heartbeat, *checkpoint, *seedSpills)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = study.AggregateResults(agg)
		fmt.Fprintf(os.Stderr, "%d sites × %d cases × %d rounds in %s (distributed)\n",
			*sites, len(prof.Cases()), *rounds, time.Since(start).Round(time.Millisecond))
	} else {
		results, err = study.RunSurveyContext(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%d sites × %d cases × %d rounds in %s (%d shards × %d workers)\n",
			*sites, len(prof.Cases()), *rounds, time.Since(start).Round(time.Millisecond), *shards, *workers)
		if *resume {
			fmt.Fprintf(os.Stderr, "resume: %d sites replayed from committed spills, %d crawled fresh\n",
				results.Resumed, *sites-results.Resumed)
		}
	}
	if study.Cache != nil {
		st := study.Cache.Stats()
		fmt.Fprintf(os.Stderr, "visit cache: %d hits, %d misses, %d stored\n", st.Hits, st.Misses, st.Puts)
	}
	if *spillDir != "" && *coord == "" {
		fmt.Fprintf(os.Stderr, "per-shard spill files in %s\n", *spillDir)
	}
	if *spillOnly {
		fmt.Fprintln(os.Stderr, "spill-only: tables computed from merged shard aggregates, no in-memory log")
	}

	report.Table1(os.Stdout, results.Stats)
	fmt.Println()

	a := results.Analysis
	fmt.Printf("Feature popularity (top %d of %d features, %s case)\n", *topN, len(study.Registry.Features), measure.CaseDefault)
	fmt.Printf("%-8s %-44s %8s %9s\n", "rank", "feature", "sites", "fraction")
	for i, row := range a.TopFeatures(measure.CaseDefault, *topN) {
		fmt.Printf("%-8d %-44s %8d %8.1f%%\n", i+1, row.Name, row.Sites, 100*row.Fraction)
	}

	if blockedCase, ok := prof.BlockingCase(); ok {
		fmt.Println()
		fmt.Printf("Blocked-vs-unblocked deltas (top %d drops, %s vs %s)\n", *topN, measure.CaseDefault, blockedCase)
		fmt.Printf("%-44s %8s %8s %6s %8s\n", "feature", "default", "blocked", "drop", "rate")
		for _, row := range a.FeatureDeltas(measure.CaseDefault, blockedCase, *topN) {
			fmt.Printf("%-44s %8d %8d %6d %7.1f%%\n", row.Name, row.BaseSites, row.BlockedSites, row.Drop, 100*row.DropRate)
		}
	}

	if *out != "" {
		if err := study.SaveLog(*out, results.Log); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "measurement log written to %s (%s)\n", *out, *format)
	}
}

// runCoordinator serves the survey to remote workers and returns the merged
// aggregate. Survey methodology comes from the local study's flags; workers
// receive it in the study spec and never need matching flags. With a
// checkpoint path, committed leases are journaled durably and a restart
// over the same file re-issues only unfinished leases; seedSpills promotes
// a crashed single-machine run's spill files into already-merged leases.
func runCoordinator(ctx context.Context, addr string, study *core.Study, leaseSites int, heartbeat time.Duration, checkpoint, seedSpills string) (*stats.Aggregate, error) {
	spec, err := study.Spec()
	if err != nil {
		return nil, err
	}
	cfg := dist.CoordinatorConfig{
		Spec:             spec,
		NumSites:         len(study.Web.Sites),
		NumFeatures:      len(study.Registry.Features),
		Standards:        stats.StandardsOf(study.Registry),
		Cases:            study.Cfg.Cases,
		LeaseSites:       leaseSites,
		HeartbeatTimeout: heartbeat,
		CheckpointPath:   checkpoint,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if seedSpills != "" {
		paths, err := core.SpillGlob(seedSpills)
		if err != nil {
			return nil, err
		}
		cfg.SeedSpills = paths
		cfg.Domains = study.Domains()
	}
	c, err := dist.Listen(addr, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "coordinator listening on %s (%d leases); start workers with: pipeline -worker %s\n",
		c.Addr(), c.Leases(), c.Addr())
	return c.Serve(ctx)
}

// runWorker joins a coordinator and crawls leases until the survey ends.
// opts carries only worker-local engine geometry; the survey methodology
// arrives in the coordinator's study spec. spillDir, when set, keeps local
// lease-NNN.spill copies of everything streamed home. reconnect > 0 makes
// the worker survive coordinator restarts instead of exiting on the first
// broken connection.
func runWorker(ctx context.Context, addr, spillDir string, reconnect int, opts core.Config) error {
	var study *core.Study
	defer func() {
		if study != nil {
			study.Close()
		}
	}()
	return dist.Run(ctx, dist.WorkerConfig{
		Addr:                 addr,
		SpillDir:             spillDir,
		MaxReconnectAttempts: reconnect,
		Build: func(spec []byte) (dist.CrawlFunc, error) {
			s, err := core.StudyFromSpec(spec, opts)
			if err != nil {
				return nil, err
			}
			study = s
			return func(ctx context.Context, sites []int, spill io.Writer) error {
				return s.CrawlSites(ctx, sites, spill)
			}, nil
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
}
