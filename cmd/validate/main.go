// Command validate reproduces the paper's §6 validation experiments:
// internal validation (Table 3: are five crawl rounds enough?) and external
// validation (Figure 9: does the monkey see what a human sees?).
//
// Usage:
//
//	validate -sites 500 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/report"
)

func main() {
	var (
		sites       = flag.Int("sites", 500, "ranking size")
		seed        = flag.Int64("seed", 42, "deterministic seed")
		parallelism = flag.Int("parallelism", 8, "concurrent site workers")
		humans      = flag.Int("humans", 92, "external-validation sample size (paper: 92)")
	)
	flag.Parse()

	study, err := core.NewStudy(core.Config{
		Sites:       *sites,
		Seed:        *seed,
		Parallelism: *parallelism,
		HumanSample: *humans,
		// Validation only needs the default configuration.
		Cases: []measure.Case{measure.CaseDefault},
	})
	if err != nil {
		fatal(err)
	}
	defer study.Close()

	results, err := study.RunSurvey()
	if err != nil {
		fatal(err)
	}

	fmt.Println("Internal validation (paper §6.1):")
	report.Table3(os.Stdout, results.Analysis.NewStandardsPerRound())
	perRound := results.Analysis.NewStandardsPerRound()
	if last := perRound[len(perRound)-1]; last < 0.05 {
		fmt.Printf("=> round-%d discovery is %.2f: five rounds suffice, as the paper found\n\n",
			len(perRound), last)
	} else {
		fmt.Printf("=> round-%d discovery is %.2f: additional rounds might still find features\n\n",
			len(perRound), last)
	}

	fmt.Println("External validation (paper §6.2):")
	deltas, err := study.RunExternalValidation(results)
	if err != nil {
		fatal(err)
	}
	report.Figure9(os.Stdout, deltas)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
