// Command repolint runs the repository's invariant analyzers
// (internal/lint) over the tree and fails when any fire. It is the static
// half of the determinism story: the end-to-end diff tests prove the logs
// *were* byte-identical on the paths they exercised; repolint proves the
// code *cannot* introduce the classic breakers — map-order output, wall
// clock and global randomness in deterministic code, snapshot mutation,
// leaked pooled pages, unchecked wire lengths — on any path, before a
// single test runs.
//
// Usage:
//
//	repolint [packages...]             lint the given package patterns
//	repolint                           lint ./...
//	repolint -packages ./internal/dom  lint a subset (comma-separated;
//	                                   combines with positional patterns)
//	repolint -list                     print the analyzers and exit
//
// Exit status: 0 when clean, 1 when any analyzer fired, 2 when the tree
// failed to load (parse or type error, go list failure).
//
// Suppress a finding with `//lint:allow <analyzer>` on, or on the line
// above, the offending line — see internal/lint/doc.go for when that is
// acceptable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// normalize lets `-packages internal/stats` mean the module's package
// rather than a std-internal path: a bare pattern that names a directory
// under the working tree gets the ./ prefix go list needs.
func normalize(p string) string {
	if strings.HasPrefix(p, ".") || strings.HasPrefix(p, "/") {
		return p
	}
	dir := strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
	if dir == "" {
		return "./" + p
	}
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return "./" + p
	}
	return p
}

func main() {
	var (
		packages = flag.String("packages", "", "comma-separated package patterns to lint (incremental runs); combines with positional patterns; default ./...")
		list     = flag.Bool("list", false, "list the analyzers in the suite and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if *packages != "" {
		for _, p := range strings.Split(*packages, ",") {
			if p = strings.TrimSpace(p); p != "" {
				patterns = append(patterns, normalize(p))
			}
		}
	}
	for i, p := range patterns {
		patterns[i] = normalize(p)
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := 0
	suite := lint.Suite()
	for _, pkg := range pkgs {
		for _, rule := range suite {
			if !rule.Match(pkg.ImportPath) {
				continue
			}
			diags, err := lint.RunAnalyzer(rule.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s) in %d package(s) checked\n", findings, len(pkgs))
		os.Exit(1)
	}
}
