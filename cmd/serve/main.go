// Command serve runs the survey as a service: a resident HTTP server that
// holds a warm aggregate and answers every analysis/report product without
// the batch binaries' load-scan-exit cycle. It loads its aggregate from one
// of three sources:
//
//   - -spills 'dir/*.spill'   cold-start from a spill-only run's shards
//   - -load survey.log        cold-start from a saved log (format auto-detected)
//   - -coordinator :9000      start empty and act as the distributed-survey
//     coordinator: workers (pipeline -worker) stream lease commits in and
//     the served tables fill in mid-survey
//
// Exactly one source is required. -sites/-seed must match the data, just
// like cmd/report; in coordinator mode -rounds/-profile additionally pick
// the survey the workers crawl (match them to the pipeline flags you would
// have used).
//
// Usage:
//
//	serve -addr :8080 -sites 1000 -seed 42 -spills 'sp/*.spill'
//	serve -addr :8080 -sites 1000 -seed 42 -load survey.log
//	serve -addr :8080 -sites 1000 -seed 42 -coordinator :9000
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests (bounded by -drain), cancels the coordinator so
// workers see a clean close instead of a reset, and releases the study's
// pooled runtimes before exiting.
//
// The server is hardened for untrusted traffic: http.Server read/write/
// idle timeouts, a per-request render deadline (-request-timeout → 503),
// per-client token-bucket rate limiting (-rate/-burst → 429 with
// Retry-After), single-flight render coalescing with a -max-renders cap,
// epoch-keyed ETag/If-None-Match revalidation (polling dashboards get
// 304s), optional gzip for /report, and a Prometheus-text /metrics
// endpoint. See docs/OPERATIONS.md "Serving untrusted traffic".
//
// Endpoints: /api/top-features, /api/feature-deltas, /api/standards,
// /api/headlines, /api/complexity, /api/rounds, /report, /healthz,
// /statusz, /metrics. See docs/OPERATIONS.md for the runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run owns every resource the server acquires. It is the only function
// allowed to return to main's os.Exit path, so each acquisition below is
// paired with a defer (or handed to the drain sequence at the bottom) —
// the unpaired-resource shape repolint's releasepair analyzer flags in
// library code. The previous version called os.Exit from arbitrary
// depths, skipping study.Close and leaving workers mid-lease on SIGTERM.
func run() error {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		sites       = flag.Int("sites", 1000, "ranking size (must match the data)")
		seed        = flag.Int64("seed", 42, "deterministic seed (must match the data)")
		rounds      = flag.Int("rounds", 5, "visits per (site, configuration); crawled in coordinator mode, must match the survey that produced -spills/-load data")
		profile     = flag.String("profile", "all", "blocking profile: none, adblock, ghostery, blocking, or all (must match the data / desired live survey)")
		spillsGlob  = flag.String("spills", "", "load the aggregate from spill files matching this glob")
		loadPath    = flag.String("load", "", "load the aggregate from this saved log file (format auto-detected)")
		coordinator = flag.String("coordinator", "", "act as distributed-survey coordinator on this address; workers fill the served aggregate live")
		leaseSites  = flag.Int("lease-sites", 64, "sites per lease in coordinator mode")
		heartbeat   = flag.Duration("heartbeat", 10*time.Second, "worker heartbeat timeout in coordinator mode")
		checkpoint  = flag.String("checkpoint", "", "coordinator mode: journal committed leases to this file; a restart over it resumes the survey")
		drain       = flag.Duration("drain", 10*time.Second, "how long to wait for in-flight requests on shutdown")

		requestTimeout = flag.Duration("request-timeout", 15*time.Second, "per-request render deadline; past it the client gets 503 (0 disables)")
		readTimeout    = flag.Duration("read-timeout", 10*time.Second, "http.Server ReadTimeout: max time to read a request, headers included")
		writeTimeout   = flag.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout: max time to write a response")
		idleTimeout    = flag.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout: how long keep-alive connections may sit idle")
		rate           = flag.Float64("rate", 0, "per-client rate limit in requests/second; exceeding it returns 429 with Retry-After (0 disables)")
		burst          = flag.Int("burst", 0, "per-client burst capacity when -rate is set (default: 2x rate, minimum 1)")
		maxRenders     = flag.Int("max-renders", 0, "max concurrently executing renders; identical queries coalesce regardless (0 = GOMAXPROCS)")
		gzipOn         = flag.Bool("gzip", true, "gzip /report for clients that accept it")
		trustForwarded = flag.Bool("trust-forwarded", false, "rate-limit by the first X-Forwarded-For hop instead of the TCP peer (only behind a trusted proxy)")
	)
	flag.Parse()

	sources := 0
	for _, s := range []string{*spillsGlob, *loadPath, *coordinator} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("serve: exactly one of -spills, -load, -coordinator is required")
	}
	if *checkpoint != "" && *coordinator == "" {
		return fmt.Errorf("serve: -checkpoint applies only in -coordinator mode")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	prof, err := blocking.ParseProfile(*profile)
	if err != nil {
		return err
	}
	study, err := core.NewStudy(core.Config{Sites: *sites, Seed: *seed, Rounds: *rounds, Cases: prof.Cases()})
	if err != nil {
		return err
	}
	defer study.Close()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	var agg *stats.Aggregate
	switch {
	case *spillsGlob != "":
		if agg, err = serve.LoadSpills(study, *spillsGlob); err != nil {
			return err
		}
		logf("loaded aggregate from spills %q: %d/%d sites measured", *spillsGlob, agg.MeasuredCount(), agg.NumSites())
	case *loadPath != "":
		if agg, err = serve.LoadLog(study, *loadPath); err != nil {
			return err
		}
		logf("loaded aggregate from log %q: %d/%d sites measured", *loadPath, agg.MeasuredCount(), agg.NumSites())
	default:
		if agg, err = serve.EmptyAggregate(study); err != nil {
			return err
		}
	}

	b := *burst
	if *rate > 0 && b <= 0 {
		b = int(2 * *rate)
		if b < 1 {
			b = 1
		}
	}
	srv, err := serve.New(serve.Config{
		Study:          study,
		Agg:            agg,
		Logf:           logf,
		RequestTimeout: *requestTimeout,
		Rate:           *rate,
		Burst:          b,
		MaxRenders:     *maxRenders,
		Gzip:           *gzipOn,
		TrustForwarded: *trustForwarded,
	})
	if err != nil {
		return err
	}
	if *rate > 0 {
		logf("rate limit: %.3g req/s per client, burst %d", *rate, b)
	}

	// errc collects the first fatal error from either long-running piece;
	// buffered so neither goroutine blocks if the other loses the race.
	errc := make(chan error, 2)

	if *coordinator != "" {
		coord, err := srv.Coordinator(*coordinator, *leaseSites, *heartbeat, *checkpoint)
		if err != nil {
			return err
		}
		logf("coordinator listening on %s (%d leases, %d already merged); serving fills in live",
			coord.Addr(), coord.Leases(), coord.Completed())
		go func() {
			if _, err := coord.Serve(ctx); err != nil {
				errc <- fmt.Errorf("coordinator: %w", err)
				return
			}
			logf("survey complete: all leases merged")
		}()
	}

	// Socket-level deadlines: a peer that trickles its request bytes or
	// never drains its response is bounded here, below the per-request
	// render deadline the middleware enforces.
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	go func() {
		logf("query server listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	var runErr error
	select {
	case <-ctx.Done():
		logf("shutdown signal received; draining for up to %s", *drain)
	case runErr = <-errc:
	}
	stop() // cancels ctx: the coordinator's Serve unwinds its listener and leases

	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
		if runErr == nil {
			runErr = fmt.Errorf("drain: %w", err)
		}
	}
	return runErr
}
