// Command serve runs the survey as a service: a resident HTTP server that
// holds a warm aggregate and answers every analysis/report product without
// the batch binaries' load-scan-exit cycle. It loads its aggregate from one
// of three sources:
//
//   - -spills 'dir/*.spill'   cold-start from a spill-only run's shards
//   - -load survey.log        cold-start from a saved log (format auto-detected)
//   - -coordinator :9000      start empty and act as the distributed-survey
//     coordinator: workers (pipeline -worker) stream lease commits in and
//     the served tables fill in mid-survey
//
// Exactly one source is required. -sites/-seed must match the data, just
// like cmd/report; in coordinator mode -rounds/-profile additionally pick
// the survey the workers crawl (match them to the pipeline flags you would
// have used).
//
// Usage:
//
//	serve -addr :8080 -sites 1000 -seed 42 -spills 'sp/*.spill'
//	serve -addr :8080 -sites 1000 -seed 42 -load survey.log
//	serve -addr :8080 -sites 1000 -seed 42 -coordinator :9000
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight requests (bounded by -drain), cancels the coordinator so
// workers see a clean close instead of a reset, and releases the study's
// pooled runtimes before exiting.
//
// Endpoints: /api/top-features, /api/feature-deltas, /api/standards,
// /api/headlines, /api/complexity, /api/rounds, /report, /healthz,
// /statusz. See docs/OPERATIONS.md for the runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run owns every resource the server acquires. It is the only function
// allowed to return to main's os.Exit path, so each acquisition below is
// paired with a defer (or handed to the drain sequence at the bottom) —
// the unpaired-resource shape repolint's releasepair analyzer flags in
// library code. The previous version called os.Exit from arbitrary
// depths, skipping study.Close and leaving workers mid-lease on SIGTERM.
func run() error {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		sites       = flag.Int("sites", 1000, "ranking size (must match the data)")
		seed        = flag.Int64("seed", 42, "deterministic seed (must match the data)")
		rounds      = flag.Int("rounds", 5, "visits per (site, configuration); crawled in coordinator mode, must match the survey that produced -spills/-load data")
		profile     = flag.String("profile", "all", "blocking profile: none, adblock, ghostery, blocking, or all (must match the data / desired live survey)")
		spillsGlob  = flag.String("spills", "", "load the aggregate from spill files matching this glob")
		loadPath    = flag.String("load", "", "load the aggregate from this saved log file (format auto-detected)")
		coordinator = flag.String("coordinator", "", "act as distributed-survey coordinator on this address; workers fill the served aggregate live")
		leaseSites  = flag.Int("lease-sites", 64, "sites per lease in coordinator mode")
		heartbeat   = flag.Duration("heartbeat", 10*time.Second, "worker heartbeat timeout in coordinator mode")
		checkpoint  = flag.String("checkpoint", "", "coordinator mode: journal committed leases to this file; a restart over it resumes the survey")
		drain       = flag.Duration("drain", 10*time.Second, "how long to wait for in-flight requests on shutdown")
	)
	flag.Parse()

	sources := 0
	for _, s := range []string{*spillsGlob, *loadPath, *coordinator} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("serve: exactly one of -spills, -load, -coordinator is required")
	}
	if *checkpoint != "" && *coordinator == "" {
		return fmt.Errorf("serve: -checkpoint applies only in -coordinator mode")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	prof, err := blocking.ParseProfile(*profile)
	if err != nil {
		return err
	}
	study, err := core.NewStudy(core.Config{Sites: *sites, Seed: *seed, Rounds: *rounds, Cases: prof.Cases()})
	if err != nil {
		return err
	}
	defer study.Close()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	var agg *stats.Aggregate
	switch {
	case *spillsGlob != "":
		if agg, err = serve.LoadSpills(study, *spillsGlob); err != nil {
			return err
		}
		logf("loaded aggregate from spills %q: %d/%d sites measured", *spillsGlob, agg.MeasuredCount(), agg.NumSites())
	case *loadPath != "":
		if agg, err = serve.LoadLog(study, *loadPath); err != nil {
			return err
		}
		logf("loaded aggregate from log %q: %d/%d sites measured", *loadPath, agg.MeasuredCount(), agg.NumSites())
	default:
		if agg, err = serve.EmptyAggregate(study); err != nil {
			return err
		}
	}

	srv, err := serve.New(serve.Config{Study: study, Agg: agg, Logf: logf})
	if err != nil {
		return err
	}

	// errc collects the first fatal error from either long-running piece;
	// buffered so neither goroutine blocks if the other loses the race.
	errc := make(chan error, 2)

	if *coordinator != "" {
		coord, err := srv.Coordinator(*coordinator, *leaseSites, *heartbeat, *checkpoint)
		if err != nil {
			return err
		}
		logf("coordinator listening on %s (%d leases, %d already merged); serving fills in live",
			coord.Addr(), coord.Leases(), coord.Completed())
		go func() {
			if _, err := coord.Serve(ctx); err != nil {
				errc <- fmt.Errorf("coordinator: %w", err)
				return
			}
			logf("survey complete: all leases merged")
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		logf("query server listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	var runErr error
	select {
	case <-ctx.Done():
		logf("shutdown signal received; draining for up to %s", *drain)
	case runErr = <-errc:
	}
	stop() // cancels ctx: the coordinator's Serve unwinds its listener and leases

	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
		if runErr == nil {
			runErr = fmt.Errorf("drain: %w", err)
		}
	}
	return runErr
}
