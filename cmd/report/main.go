// Command report regenerates the paper's tables and figures. It either
// re-runs the survey (default) or reads measurements produced by cmd/crawl
// or cmd/pipeline, then renders the requested artifact (or everything). The
// log's format — CSV, binary, even a spill file — is auto-detected from its
// magic bytes; pointing -log at anything else reports "unknown log format"
// with the bytes found.
//
// -spills takes a glob of per-shard spill files from a spill-only run and
// merges them through the streaming stats layer: the full log is never
// materialized, so memory stays bounded regardless of survey size, and
// every aggregate artifact matches the live run byte for byte. The two
// per-site artifacts (figure5, figure9) need the full log; render them from
// -log (a single spill file works there too, via the auto-detecting
// reader).
//
// Usage:
//
//	report -sites 1000 -seed 42                      # run survey, render all
//	report -sites 1000 -seed 42 -only table2         # one artifact
//	report -sites 1000 -seed 42 -log survey.log      # reuse a saved log
//	report -sites 1000 -seed 42 -spills 'sp/*.spill' # warm-start from spills
//	report -sites 1000 -seed 42 -cache dir           # re-run, skipping cached visits
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/report"
)

func main() {
	var (
		sites       = flag.Int("sites", 1000, "ranking size (must match the log if -log is given)")
		seed        = flag.Int64("seed", 42, "deterministic seed (must match the log if -log is given)")
		parallelism = flag.Int("parallelism", 8, "concurrent site workers when re-running the survey")
		shards      = flag.Int("shards", 4, "site partitions when re-running the survey; 0 = sequential loop")
		logPath     = flag.String("log", "", "read measurements from this log file (format auto-detected) instead of crawling")
		spillsGlob  = flag.String("spills", "", "merge spill files matching this glob through the streaming stats layer instead of crawling (bounded memory; per-site artifacts unavailable)")
		cacheDir    = flag.String("cache", "", "visit cache directory for survey re-runs (needs -shards >= 1)")
		cacheLimit  = flag.Int64("cache-limit", 0, "visit cache size cap in bytes; least-recently-used entries are pruned (0 = unbounded)")
		only        = flag.String("only", "", "render one artifact: figure1|figure3|figure4|figure5|figure6|figure7|figure8|figure9|table1|table2|table3|headlines")
	)
	flag.Parse()

	if *cacheDir != "" && *shards <= 0 {
		fatal(fmt.Errorf("report: -cache requires the pipeline engine (-shards >= 1)"))
	}
	if *logPath != "" && *spillsGlob != "" {
		fatal(fmt.Errorf("report: -log and -spills are mutually exclusive"))
	}

	study, err := core.NewStudy(core.Config{
		Sites:         *sites,
		Seed:          *seed,
		Parallelism:   *parallelism,
		Shards:        *shards,
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheLimit,
	})
	if err != nil {
		fatal(err)
	}
	defer study.Close()

	var results *core.Results
	switch {
	case *logPath != "":
		log, err := logstore.ReadFile(*logPath)
		if err != nil {
			fatal(err)
		}
		results = &core.Results{
			Log:      log,
			Stats:    statsFromLog(log),
			Analysis: analysis.New(log, study.Registry),
		}
	case *spillsGlob != "":
		paths, err := core.SpillGlob(*spillsGlob)
		if err != nil {
			fatal(err)
		}
		results, err = study.ResultsFromSpills(paths...)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "warm-started from %d spill files (no log materialized)\n", len(paths))
	default:
		results, err = study.RunSurvey()
		if err != nil {
			fatal(err)
		}
		if study.Cache != nil {
			st := study.Cache.Stats()
			fmt.Fprintf(os.Stderr, "visit cache: %d hits, %d misses, %d stored\n", st.Hits, st.Misses, st.Puts)
		}
	}

	if *only == "" {
		if results.Log == nil {
			fmt.Fprintln(os.Stderr, "per-site artifacts (figure5, figure9) need the full log; rendering the aggregate report")
			if err := study.WriteAggregateReport(os.Stdout, results); err != nil {
				fatal(err)
			}
			return
		}
		if err := study.WriteReport(os.Stdout, results); err != nil {
			fatal(err)
		}
		return
	}

	if results.Log == nil && (*only == "figure5" || *only == "figure9") {
		fatal(fmt.Errorf("report: %s is a per-site artifact; it needs -log (or a re-run), not -spills", *only))
	}

	a := results.Analysis
	switch *only {
	case "figure1":
		report.Figure1(os.Stdout)
	case "table1":
		report.Table1(os.Stdout, results.Stats)
	case "headlines":
		report.Headlines(os.Stdout, a, study.CVEs)
	case "figure3":
		report.Figure3(os.Stdout, a)
	case "figure4":
		report.Figure4(os.Stdout, a)
	case "figure5":
		report.Figure5(os.Stdout, a.VisitWeightedPopularity(study.Ranking()))
	case "figure6":
		report.Figure6(os.Stdout, a.AgeSeries(study.History))
	case "figure7":
		report.Figure7(os.Stdout, a.AdVsTrackerRates())
	case "figure8":
		report.Figure8(os.Stdout, a.Complexity())
	case "figure9":
		deltas, err := study.RunExternalValidation(results)
		if err != nil {
			fatal(err)
		}
		report.Figure9(os.Stdout, deltas)
	case "table2":
		report.Table2(os.Stdout, a.Table2(study.CVEs))
	case "table3":
		report.Table3(os.Stdout, a.NewStandardsPerRound())
	default:
		fatal(fmt.Errorf("unknown artifact %q", *only))
	}
}

// statsFromLog reconstructs Table 1 summary data from a saved log.
func statsFromLog(log *measure.Log) *crawler.Stats {
	s := &crawler.Stats{DomainsMeasured: log.MeasuredCount()}
	s.DomainsFailed = len(log.Domains) - s.DomainsMeasured
	for _, cl := range log.Cases {
		s.PagesVisited += cl.PagesVisited
		s.Invocations += cl.Invocations
	}
	s.InteractionSeconds = float64(s.PagesVisited) * 30
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
