// Command report regenerates the paper's tables and figures. It either
// re-runs the survey (default) or reads a measurement log produced by
// cmd/crawl, then renders the requested artifact (or everything).
//
// Usage:
//
//	report -sites 1000 -seed 42                  # run survey, render all
//	report -sites 1000 -seed 42 -only table2     # one artifact
//	report -sites 1000 -seed 42 -log survey.csv  # reuse a saved log
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/measure"
	"repro/internal/report"
)

func main() {
	var (
		sites       = flag.Int("sites", 1000, "ranking size (must match the log if -log is given)")
		seed        = flag.Int64("seed", 42, "deterministic seed (must match the log if -log is given)")
		parallelism = flag.Int("parallelism", 8, "concurrent site workers when re-running the survey")
		logPath     = flag.String("log", "", "read measurements from this CSV instead of crawling")
		only        = flag.String("only", "", "render one artifact: figure1|figure3|figure4|figure5|figure6|figure7|figure8|figure9|table1|table2|table3|headlines")
	)
	flag.Parse()

	study, err := core.NewStudy(core.Config{Sites: *sites, Seed: *seed, Parallelism: *parallelism})
	if err != nil {
		fatal(err)
	}
	defer study.Close()

	var results *core.Results
	if *logPath != "" {
		f, err := os.Open(*logPath)
		if err != nil {
			fatal(err)
		}
		log, err := measure.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		results = &core.Results{
			Log:      log,
			Stats:    statsFromLog(log),
			Analysis: analysis.New(log, study.Registry),
		}
	} else {
		results, err = study.RunSurvey()
		if err != nil {
			fatal(err)
		}
	}

	if *only == "" {
		if err := study.WriteReport(os.Stdout, results); err != nil {
			fatal(err)
		}
		return
	}

	a := results.Analysis
	switch *only {
	case "figure1":
		report.Figure1(os.Stdout)
	case "table1":
		report.Table1(os.Stdout, results.Stats)
	case "headlines":
		report.Headlines(os.Stdout, a, study.CVEs)
	case "figure3":
		report.Figure3(os.Stdout, a)
	case "figure4":
		report.Figure4(os.Stdout, a)
	case "figure5":
		report.Figure5(os.Stdout, a.VisitWeightedPopularity(study.Ranking()))
	case "figure6":
		report.Figure6(os.Stdout, a.AgeSeries(study.History))
	case "figure7":
		report.Figure7(os.Stdout, a.AdVsTrackerRates())
	case "figure8":
		report.Figure8(os.Stdout, a.Complexity())
	case "figure9":
		deltas, err := study.RunExternalValidation(results)
		if err != nil {
			fatal(err)
		}
		report.Figure9(os.Stdout, deltas)
	case "table2":
		report.Table2(os.Stdout, a.Table2(study.CVEs))
	case "table3":
		report.Table3(os.Stdout, a.NewStandardsPerRound())
	default:
		fatal(fmt.Errorf("unknown artifact %q", *only))
	}
}

// statsFromLog reconstructs Table 1 summary data from a saved log.
func statsFromLog(log *measure.Log) *crawler.Stats {
	s := &crawler.Stats{DomainsMeasured: log.MeasuredCount()}
	s.DomainsFailed = len(log.Domains) - s.DomainsMeasured
	for _, cl := range log.Cases {
		s.PagesVisited += cl.PagesVisited
		s.Invocations += cl.Invocations
	}
	s.InteractionSeconds = float64(s.PagesVisited) * 30
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
