// Command webidlscan generates and inspects the WebIDL feature corpus —
// the reproduction's equivalent of the paper's §3.2 extraction of 1,392
// features from Firefox's 757 WebIDL files.
//
// Usage:
//
//	webidlscan -seed 42                         # corpus summary
//	webidlscan -seed 42 -standard SVG           # one standard's features
//	webidlscan -seed 42 -feature Navigator.prototype.vibrate
//	webidlscan -seed 42 -dump dom/Document.webidl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/firefoxhist"
	"repro/internal/standards"
	"repro/internal/webapi"
	"repro/internal/webidl"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "corpus seed")
		standard = flag.String("standard", "", "list one standard's features")
		feature  = flag.String("feature", "", "look one feature up by canonical name")
		dump     = flag.String("dump", "", "print one generated .webidl file")
	)
	flag.Parse()

	reg, err := webidl.Generate(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hist := firefoxhist.New(reg)

	switch {
	case *dump != "":
		src, ok := reg.Files[*dump]
		if !ok {
			fmt.Fprintf(os.Stderr, "no corpus file %q\n", *dump)
			os.Exit(1)
		}
		fmt.Print(src)

	case *feature != "":
		f, ok := reg.ByName(*feature)
		if !ok {
			fmt.Fprintf(os.Stderr, "no feature %q\n", *feature)
			os.Exit(1)
		}
		fmt.Printf("feature:    %s\n", f.Name())
		fmt.Printf("kind:       %s\n", f.Kind)
		fmt.Printf("standard:   %s (%s)\n", f.Standard, standards.MustByAbbrev(f.Standard).Name)
		fmt.Printf("defined in: %s\n", f.File)
		fmt.Printf("rank:       %d\n", f.Rank)
		fmt.Printf("introduced: %s\n", hist.Introduced(f))
		fmt.Printf("measurable: %v\n", webapi.Measurable(f))

	case *standard != "":
		fs := reg.OfStandard(standards.Abbrev(*standard))
		if len(fs) == 0 {
			fmt.Fprintf(os.Stderr, "no standard %q\n", *standard)
			os.Exit(1)
		}
		std := standards.MustByAbbrev(standards.Abbrev(*standard))
		fmt.Printf("%s — %s (%d features)\n", std.Abbrev, std.Name, len(fs))
		for _, f := range fs {
			fmt.Printf("  %-60s %-9s introduced %s\n", f.Name(), f.Kind, hist.Introduced(f).Version)
		}

	default:
		fmt.Printf("corpus seed %d: %d features in %d files, %d interfaces\n",
			*seed, len(reg.Features), len(reg.Files), len(reg.Interfaces))
		methods, attrs, measurable := 0, 0, 0
		for _, f := range reg.Features {
			if f.Kind == webidl.Method {
				methods++
			} else {
				attrs++
			}
			if webapi.Measurable(f) {
				measurable++
			}
		}
		fmt.Printf("methods: %d, attributes: %d, instrumentable: %d\n", methods, attrs, measurable)
		fmt.Println("\nfeatures per standard:")
		cat := standards.Catalog()
		sort.Slice(cat, func(i, j int) bool { return cat[i].Features > cat[j].Features })
		for _, std := range cat {
			fmt.Printf("  %-8s %4d  %s\n", std.Abbrev, std.Features, std.Name)
		}
	}
}
