// Package repro's root benchmark harness regenerates every table and figure
// of "Browser Feature Usage on the Modern Web" (IMC 2016) against a shared
// surveyed study, and sweeps the design choices DESIGN.md calls out as
// ablations. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports, besides timing, the key reproduction metric of its
// artifact (e.g. never-used features for §5.3, block rates for Figure 4) via
// b.ReportMetric, so a bench run doubles as a results regeneration.
package repro

import (
	"io"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/standards"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
)

// benchSites is the shared study's scale. The paper's 10,000 sites shrink to
// 400 so the full bench suite stays in CI budgets; the calibration scales
// targets proportionally, so every shape claim survives.
const benchSites = 400

var (
	benchOnce    sync.Once
	benchStudy   *core.Study
	benchResults *core.Results
	benchErr     error
)

func sharedStudy(b *testing.B) (*core.Study, *core.Results) {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = core.NewStudy(core.Config{Sites: benchSites, Seed: 42, Parallelism: 8})
		if benchErr != nil {
			return
		}
		benchResults, benchErr = benchStudy.RunSurvey()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy, benchResults
}

// BenchmarkFigure1 regenerates the browser-complexity time series.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Figure1(io.Discard)
	}
}

// BenchmarkTable1 regenerates the crawl-scale summary.
func BenchmarkTable1(b *testing.B) {
	_, results := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Table1(io.Discard, results.Stats)
	}
	b.ReportMetric(float64(results.Stats.DomainsMeasured), "domains-measured")
	b.ReportMetric(float64(results.Stats.Invocations), "invocations")
}

// BenchmarkFeaturePopularity regenerates the §5.3 headline bands.
func BenchmarkFeaturePopularity(b *testing.B) {
	study, results := sharedStudy(b)
	b.ResetTimer()
	var bands analysis.FeatureBands
	for i := 0; i < b.N; i++ {
		a := analysis.New(results.Log, study.Registry)
		bands = a.Bands(measure.CaseDefault)
	}
	b.ReportMetric(float64(bands.NeverUsed), "never-used(paper:689)")
	b.ReportMetric(float64(bands.UnderOnePct), "under-1pct(paper:416)")
}

// BenchmarkFigure3 regenerates the standard-popularity CDF.
func BenchmarkFigure3(b *testing.B) {
	_, results := sharedStudy(b)
	b.ResetTimer()
	var pts []analysis.CDFPoint
	for i := 0; i < b.N; i++ {
		pts = results.Analysis.StandardPopularityCDF()
		report.Figure3(io.Discard, results.Analysis)
	}
	b.ReportMetric(pts[0].Fraction*100, "never-used-std-pct(paper:~15)")
}

// BenchmarkFigure4 regenerates popularity-vs-block-rate.
func BenchmarkFigure4(b *testing.B) {
	_, results := sharedStudy(b)
	b.ResetTimer()
	var rates map[standards.Abbrev]analysis.BlockRate
	for i := 0; i < b.N; i++ {
		rates = results.Analysis.BlockRates(measure.CaseBlocking)
		report.Figure4(io.Discard, results.Analysis)
	}
	b.ReportMetric(rates["PT2"].Rate*100, "PT2-blockrate(paper:93.7)")
	b.ReportMetric(rates["DOM1"].Rate*100, "DOM1-blockrate(paper:1.8)")
}

// BenchmarkFigure5 regenerates site- vs visit-weighted popularity.
func BenchmarkFigure5(b *testing.B) {
	study, results := sharedStudy(b)
	b.ResetTimer()
	var pts []analysis.VisitWeighted
	for i := 0; i < b.N; i++ {
		pts = results.Analysis.VisitWeightedPopularity(study.Ranking())
		report.Figure5(io.Discard, pts)
	}
	var xs, ys []float64
	for _, p := range pts {
		if p.SiteFraction > 0 {
			xs = append(xs, p.SiteFraction)
			ys = append(ys, p.VisitFraction)
		}
	}
	b.ReportMetric(analysis.Pearson(xs, ys), "site-visit-corr(paper:~x=y)")
}

// BenchmarkFigure6 regenerates introduction-date vs popularity.
func BenchmarkFigure6(b *testing.B) {
	study, results := sharedStudy(b)
	b.ResetTimer()
	var pts []analysis.AgePoint
	for i := 0; i < b.N; i++ {
		pts = results.Analysis.AgeSeries(study.History)
		report.Figure6(io.Discard, pts)
	}
	b.ReportMetric(float64(len(pts)), "standards-dated")
}

// BenchmarkFigure7 regenerates ad-only vs tracker-only block rates.
func BenchmarkFigure7(b *testing.B) {
	_, results := sharedStudy(b)
	b.ResetTimer()
	var pts []analysis.AdVsTracker
	for i := 0; i < b.N; i++ {
		pts = results.Analysis.AdVsTrackerRates()
		report.Figure7(io.Discard, pts)
	}
	for _, p := range pts {
		if p.Standard == "WCR" {
			b.ReportMetric(p.TrackerRate*100, "WCR-tracker-rate")
			b.ReportMetric(p.AdRate*100, "WCR-ad-rate")
		}
	}
}

// BenchmarkTable2 regenerates the per-standard results table.
func BenchmarkTable2(b *testing.B) {
	study, results := sharedStudy(b)
	b.ResetTimer()
	var rows []analysis.Table2Row
	for i := 0; i < b.N; i++ {
		rows = results.Analysis.Table2(study.CVEs)
		report.Table2(io.Discard, rows)
	}
	b.ReportMetric(float64(len(rows)), "rows(paper:53)")
}

// BenchmarkTable3 regenerates the internal-validation round table.
func BenchmarkTable3(b *testing.B) {
	_, results := sharedStudy(b)
	b.ResetTimer()
	var perRound []float64
	for i := 0; i < b.N; i++ {
		perRound = results.Analysis.NewStandardsPerRound()
		report.Table3(io.Discard, perRound)
	}
	b.ReportMetric(perRound[1], "round2-new(paper:1.56)")
	b.ReportMetric(perRound[4], "round5-new(paper:0.00)")
}

// BenchmarkFigure8 regenerates the site-complexity PDF.
func BenchmarkFigure8(b *testing.B) {
	_, results := sharedStudy(b)
	b.ResetTimer()
	var comp []int
	for i := 0; i < b.N; i++ {
		comp = results.Analysis.Complexity()
		report.Figure8(io.Discard, comp)
	}
	var vals []float64
	for _, c := range comp {
		vals = append(vals, float64(c))
	}
	b.ReportMetric(analysis.Quantile(vals, 0.5), "median-standards(paper:14-32)")
	b.ReportMetric(analysis.Quantile(vals, 1), "max-standards(paper:41)")
}

// BenchmarkFigure9 regenerates the external-validation histogram.
func BenchmarkFigure9(b *testing.B) {
	study, results := sharedStudy(b)
	b.ResetTimer()
	var deltas []int
	for i := 0; i < b.N; i++ {
		var err error
		deltas, err = study.RunExternalValidation(results)
		if err != nil {
			b.Fatal(err)
		}
		report.Figure9(io.Discard, deltas)
	}
	zero := 0
	for _, d := range deltas {
		if d == 0 {
			zero++
		}
	}
	b.ReportMetric(float64(zero)/float64(len(deltas))*100, "zero-delta-pct(paper:83.7)")
}

// BenchmarkSurveySmall measures the full pipeline cost per site: corpus +
// web generation amortized away, crawling 25 sites in the default case.
func BenchmarkSurveySmall(b *testing.B) {
	reg, err := webidl.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 25, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	bind := webapi.NewBindings(reg)
	cfg := crawler.DefaultConfig(5)
	cfg.Cases = []measure.Case{measure.CaseDefault}
	cfg.Rounds = 1
	cfg.Parallelism = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := crawler.New(web, bind, cfg)
		if _, _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPathNovelty compares the paper's directory-novelty URL
// preference against random URL selection, reporting standards discovered
// in a single round.
func BenchmarkAblationPathNovelty(b *testing.B) {
	reg, err := webidl.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 40, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	bind := webapi.NewBindings(reg)
	for _, novelty := range []bool{true, false} {
		name := "novelty-on"
		if !novelty {
			name = "novelty-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := crawler.DefaultConfig(5)
			cfg.Cases = []measure.Case{measure.CaseDefault}
			cfg.Rounds = 1
			cfg.PathNoveltyPreference = novelty
			var discovered int
			for i := 0; i < b.N; i++ {
				c := crawler.New(web, bind, cfg)
				log, _, err := c.Run()
				if err != nil {
					b.Fatal(err)
				}
				a := analysis.New(log, reg)
				discovered = a.UsedStandards(measure.CaseDefault)
			}
			b.ReportMetric(float64(discovered), "standards-discovered")
		})
	}
}

// BenchmarkAblationActionBudget sweeps the per-page monkey-testing budget
// (the paper fixes 30 s), reporting feature coverage per budget.
func BenchmarkAblationActionBudget(b *testing.B) {
	reg, err := webidl.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 40, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	bind := webapi.NewBindings(reg)
	for _, seconds := range []float64{10, 30, 60} {
		b.Run(byBudget(seconds), func(b *testing.B) {
			cfg := crawler.DefaultConfig(5)
			cfg.Cases = []measure.Case{measure.CaseDefault}
			cfg.Rounds = 1
			cfg.PageSeconds = seconds
			var used int
			for i := 0; i < b.N; i++ {
				c := crawler.New(web, bind, cfg)
				log, _, err := c.Run()
				if err != nil {
					b.Fatal(err)
				}
				fs := log.FeatureSites(measure.CaseDefault)
				used = 0
				for _, n := range fs {
					if n > 0 {
						used++
					}
				}
			}
			b.ReportMetric(float64(used), "features-observed")
		})
	}
}

// BenchmarkAblationRounds sweeps visit counts 1..5 (the paper validates that
// 5 rounds saturate discovery, §6.1).
func BenchmarkAblationRounds(b *testing.B) {
	reg, err := webidl.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 40, Seed: 10})
	if err != nil {
		b.Fatal(err)
	}
	bind := webapi.NewBindings(reg)
	for _, rounds := range []int{1, 3, 5} {
		b.Run(byRounds(rounds), func(b *testing.B) {
			cfg := crawler.DefaultConfig(5)
			cfg.Cases = []measure.Case{measure.CaseDefault}
			cfg.Rounds = rounds
			var used int
			for i := 0; i < b.N; i++ {
				c := crawler.New(web, bind, cfg)
				log, _, err := c.Run()
				if err != nil {
					b.Fatal(err)
				}
				a := analysis.New(log, reg)
				used = a.UsedStandards(measure.CaseDefault)
			}
			b.ReportMetric(float64(used), "standards-discovered")
		})
	}
}

func byBudget(s float64) string {
	switch s {
	case 10:
		return "10s"
	case 30:
		return "30s-paper"
	default:
		return "60s"
	}
}

func byRounds(r int) string {
	switch r {
	case 1:
		return "1-round"
	case 3:
		return "3-rounds"
	default:
		return "5-rounds-paper"
	}
}

// BenchmarkAblationBranch sweeps the BFS fan-out (the paper fixes 3,
// giving 13 pages per visit), reporting pages visited and standards found.
func BenchmarkAblationBranch(b *testing.B) {
	reg, err := webidl.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 40, Seed: 12})
	if err != nil {
		b.Fatal(err)
	}
	bind := webapi.NewBindings(reg)
	for _, branch := range []int{2, 3, 4} {
		name := map[int]string{2: "branch-2", 3: "branch-3-paper", 4: "branch-4"}[branch]
		b.Run(name, func(b *testing.B) {
			cfg := crawler.DefaultConfig(5)
			cfg.Cases = []measure.Case{measure.CaseDefault}
			cfg.Rounds = 1
			cfg.Branch = branch
			var pages int64
			var used int
			for i := 0; i < b.N; i++ {
				c := crawler.New(web, bind, cfg)
				log, stats, err := c.Run()
				if err != nil {
					b.Fatal(err)
				}
				pages = stats.PagesVisited
				a := analysis.New(log, reg)
				used = a.UsedStandards(measure.CaseDefault)
			}
			b.ReportMetric(float64(pages), "pages")
			b.ReportMetric(float64(used), "standards-discovered")
		})
	}
}

// BenchmarkClosedWebCrawl measures the §7.3 credentialed crawl and reports
// how many additional standards the closed web surfaces.
func BenchmarkClosedWebCrawl(b *testing.B) {
	reg, err := webidl.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 60, Seed: 14})
	if err != nil {
		b.Fatal(err)
	}
	bind := webapi.NewBindings(reg)
	cfg := crawler.DefaultConfig(5)
	cfg.Cases = []measure.Case{measure.CaseDefault}
	cfg.Rounds = 2
	cfg.WithCredentials = true
	var used int
	for i := 0; i < b.N; i++ {
		c := crawler.New(web, bind, cfg)
		log, _, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		a := analysis.New(log, reg)
		used = a.UsedStandards(measure.CaseDefault)
	}
	b.ReportMetric(float64(used), "standards-incl-closed-web")
}
