package measure

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(200)
	if b.Any() {
		t.Fatal("fresh bitset has bits set")
	}
	for _, i := range []int{0, 63, 64, 127, 199} {
		b.Set(i)
	}
	if b.Count() != 5 {
		t.Fatalf("count = %d, want 5", b.Count())
	}
	if !b.Get(64) || b.Get(65) {
		t.Fatal("get wrong")
	}
	if b.Get(10_000) {
		t.Fatal("out-of-range get should be false")
	}
}

func TestBitsetOrAndClone(t *testing.T) {
	a := NewBitset(128)
	b := NewBitset(128)
	a.Set(1)
	b.Set(100)
	c := a.Clone()
	c.Or(b)
	if !c.Get(1) || !c.Get(100) {
		t.Fatal("or/clone wrong")
	}
	if a.Get(100) {
		t.Fatal("clone aliased storage")
	}
}

func TestBitsetProperty(t *testing.T) {
	check := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		seen := map[int]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			seen[int(i)] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		for i := range seen {
			if !b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func buildLog() *Log {
	l := NewLog(100, []string{"a.example", "b.example", "c.example"})
	l.Record(CaseDefault, 0, 0, map[int]int64{1: 5, 2: 1}, 13)
	l.Record(CaseDefault, 1, 0, map[int]int64{3: 2}, 13)
	l.Record(CaseDefault, 0, 1, map[int]int64{1: 1}, 13)
	l.Record(CaseBlocking, 0, 0, map[int]int64{1: 2}, 13)
	return l
}

func TestLogRecordAndUnion(t *testing.T) {
	l := buildLog()
	u := l.SiteUnion(CaseDefault, 0)
	if u == nil || !u.Get(1) || !u.Get(2) || !u.Get(3) {
		t.Fatalf("site union wrong: %v", u)
	}
	if u.Get(4) {
		t.Fatal("phantom feature in union")
	}
	if l.SiteUnion(CaseDefault, 2) != nil {
		t.Fatal("unvisited site has a union")
	}
	if l.SiteUnion("nope", 0) != nil {
		t.Fatal("unknown case has a union")
	}
}

func TestLogFeatureSites(t *testing.T) {
	l := buildLog()
	fs := l.FeatureSites(CaseDefault)
	if fs[1] != 2 || fs[2] != 1 || fs[3] != 1 || fs[0] != 0 {
		t.Fatalf("feature sites = %v", fs[:5])
	}
	fsB := l.FeatureSites(CaseBlocking)
	if fsB[1] != 1 {
		t.Fatalf("blocking feature sites = %v", fsB[:3])
	}
}

func TestLogTotals(t *testing.T) {
	l := buildLog()
	cl := l.Cases[CaseDefault]
	if cl.Invocations != 9 {
		t.Errorf("invocations = %d, want 9", cl.Invocations)
	}
	if cl.PagesVisited != 39 {
		t.Errorf("pages = %d, want 39", cl.PagesVisited)
	}
	if l.MeasuredCount() != 2 {
		t.Errorf("measured = %d, want 2", l.MeasuredCount())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := buildLog()
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFeatures != l.NumFeatures || len(got.Domains) != len(l.Domains) {
		t.Fatal("header lost in round trip")
	}
	for i := range l.Domains {
		if got.Domains[i] != l.Domains[i] || got.Measured[i] != l.Measured[i] {
			t.Fatalf("domain %d mismatch", i)
		}
	}
	for _, cs := range AllCases() {
		want := l.Cases[cs]
		have := got.Cases[cs]
		if (want == nil) != (have == nil) {
			t.Fatalf("case %s presence mismatch", cs)
		}
		if want == nil {
			continue
		}
		if want.Invocations != have.Invocations || want.PagesVisited != have.PagesVisited {
			t.Fatalf("case %s totals mismatch", cs)
		}
		for site := range l.Domains {
			a := l.SiteUnion(cs, site)
			b := got.SiteUnion(cs, site)
			if (a == nil) != (b == nil) {
				t.Fatalf("case %s site %d presence mismatch", cs, site)
			}
			if a != nil && a.Count() != b.Count() {
				t.Fatalf("case %s site %d bits mismatch", cs, site)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"#features,xyz\n",       // bad count
		"#features,10\nbogus\n", // bad observation
		"#features,10\n#domains,1\n#domain,5,x,true\n",                   // bad index
		"#features,10\n#domains,1\n#domain,0,x,true\nno,0,0,1\n",         // unknown case
		"#features,10\n#domains,1\n#case,default,1,0,0\nq\n",             // malformed line
		"#features,10\n#domains,1\n#case,default,1,0,0\ndefault,9,0,1\n", // bad round
	}
	for _, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", c)
		}
	}
}

func TestAllCasesOrder(t *testing.T) {
	cs := AllCases()
	if len(cs) != 4 || cs[0] != CaseDefault || cs[1] != CaseBlocking {
		t.Fatalf("AllCases = %v", cs)
	}
}
