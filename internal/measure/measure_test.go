package measure

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(200)
	if b.Any() {
		t.Fatal("fresh bitset has bits set")
	}
	for _, i := range []int{0, 63, 64, 127, 199} {
		b.Set(i)
	}
	if b.Count() != 5 {
		t.Fatalf("count = %d, want 5", b.Count())
	}
	if !b.Get(64) || b.Get(65) {
		t.Fatal("get wrong")
	}
	if b.Get(10_000) {
		t.Fatal("out-of-range get should be false")
	}
}

func TestBitsetOutOfRange(t *testing.T) {
	b := NewBitset(64)
	for _, i := range []int{-1, -64, 64, 100, 1 << 30} {
		b.Set(i) // must be a tolerated no-op, not a panic
		if b.Get(i) {
			t.Errorf("Get(%d) = true after out-of-range Set", i)
		}
	}
	if b.Any() {
		t.Fatal("out-of-range Set mutated the bitset")
	}
	b.Set(63)
	if !b.Get(63) || b.Count() != 1 {
		t.Fatal("in-range Set broken")
	}
	if b.Get(-1) {
		t.Fatal("Get(-1) must be false, not an alias of bit 63")
	}
}

func TestBitsetOrMismatchedLengths(t *testing.T) {
	short := NewBitset(64)
	long := NewBitset(256)
	long.Set(1)
	long.Set(200)

	// Longer into shorter: overlapping words merge, the rest is dropped.
	short.Or(long)
	if !short.Get(1) {
		t.Error("Or dropped an in-range bit")
	}
	if short.Count() != 1 {
		t.Errorf("Or merged out-of-range bits: count = %d, want 1", short.Count())
	}

	// Shorter into longer: bits beyond the shorter operand are untouched.
	long2 := NewBitset(256)
	long2.Set(199)
	long2.Or(short)
	if !long2.Get(199) || !long2.Get(1) || long2.Count() != 2 {
		t.Errorf("short-into-long Or wrong: count = %d, want 2", long2.Count())
	}
}

func TestBitsetOrAndClone(t *testing.T) {
	a := NewBitset(128)
	b := NewBitset(128)
	a.Set(1)
	b.Set(100)
	c := a.Clone()
	c.Or(b)
	if !c.Get(1) || !c.Get(100) {
		t.Fatal("or/clone wrong")
	}
	if a.Get(100) {
		t.Fatal("clone aliased storage")
	}
}

func TestBitsetProperty(t *testing.T) {
	check := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		seen := map[int]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			seen[int(i)] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		for i := range seen {
			if !b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func buildLog() *Log {
	l := NewLog(100, []string{"a.example", "b.example", "c.example"})
	l.Record(CaseDefault, 0, 0, map[int]int64{1: 5, 2: 1}, 13)
	l.Record(CaseDefault, 1, 0, map[int]int64{3: 2}, 13)
	l.Record(CaseDefault, 0, 1, map[int]int64{1: 1}, 13)
	l.Record(CaseBlocking, 0, 0, map[int]int64{1: 2}, 13)
	return l
}

func TestLogRecordAndUnion(t *testing.T) {
	l := buildLog()
	u := l.SiteUnion(CaseDefault, 0)
	if u == nil || !u.Get(1) || !u.Get(2) || !u.Get(3) {
		t.Fatalf("site union wrong: %v", u)
	}
	if u.Get(4) {
		t.Fatal("phantom feature in union")
	}
	if l.SiteUnion(CaseDefault, 2) != nil {
		t.Fatal("unvisited site has a union")
	}
	if l.SiteUnion("nope", 0) != nil {
		t.Fatal("unknown case has a union")
	}
}

func TestLogFeatureSites(t *testing.T) {
	l := buildLog()
	fs := l.FeatureSites(CaseDefault)
	if fs[1] != 2 || fs[2] != 1 || fs[3] != 1 || fs[0] != 0 {
		t.Fatalf("feature sites = %v", fs[:5])
	}
	fsB := l.FeatureSites(CaseBlocking)
	if fsB[1] != 1 {
		t.Fatalf("blocking feature sites = %v", fsB[:3])
	}
}

func TestLogTotals(t *testing.T) {
	l := buildLog()
	cl := l.Cases[CaseDefault]
	if cl.Invocations != 9 {
		t.Errorf("invocations = %d, want 9", cl.Invocations)
	}
	if cl.PagesVisited != 39 {
		t.Errorf("pages = %d, want 39", cl.PagesVisited)
	}
	if l.MeasuredCount() != 2 {
		t.Errorf("measured = %d, want 2", l.MeasuredCount())
	}
}

func TestAllCasesOrder(t *testing.T) {
	cs := AllCases()
	if len(cs) != 4 || cs[0] != CaseDefault || cs[1] != CaseBlocking {
		t.Fatalf("AllCases = %v", cs)
	}
}
