package measure

import (
	"math/bits"
)

// Case identifies a browser configuration of the survey.
type Case string

const (
	// CaseDefault is the unmodified browser (paper: "default").
	CaseDefault Case = "default"
	// CaseBlocking is AdBlock Plus + Ghostery (paper: "blocking").
	CaseBlocking Case = "blocking"
	// CaseAdBlock is AdBlock Plus alone (Figure 7's x-axis).
	CaseAdBlock Case = "adblock"
	// CaseGhostery is Ghostery alone (Figure 7's y-axis).
	CaseGhostery Case = "ghostery"
)

// AllCases lists the survey configurations in canonical order.
func AllCases() []Case {
	return []Case{CaseDefault, CaseBlocking, CaseAdBlock, CaseGhostery}
}

// Bitset is a fixed-capacity bit vector keyed by feature ID.
//
// All operations tolerate out-of-range indices and mismatched lengths
// uniformly: Set ignores bits outside the bitset's capacity, Get reports
// false for them, and Or merges only the overlapping words of two bitsets.
// Negative indices are out of range. This makes every Bitset operation safe
// on data decoded from external inputs (logs written by an older corpus, a
// shorter bitset spilled by a remote shard) without per-call-site bounds
// checks.
type Bitset []uint64

// NewBitset allocates a bitset for n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i. Out-of-range indices (negative or beyond capacity) are
// ignored, mirroring Get's tolerance.
func (b Bitset) Set(i int) {
	if i < 0 || i/64 >= len(b) {
		return
	}
	b[i/64] |= 1 << (uint(i) % 64)
}

// Get reports bit i. Out-of-range indices (negative or beyond capacity)
// report false.
func (b Bitset) Get(i int) bool {
	if i < 0 {
		return false
	}
	w := i / 64
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)%64)) != 0
}

// Or merges other into b. When the lengths differ only the overlapping
// words are merged: bits of other beyond b's capacity are dropped, and bits
// of b beyond other's capacity are untouched.
func (b Bitset) Or(other Bitset) {
	n := len(other)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		b[i] |= other[i]
	}
}

// ForEach calls fn with every set bit among the first n bits, in ascending
// order. It skips zero words and walks set bits with trailing-zero counts,
// so iterating a sparse survey bitset (a few dozen features out of ~1,400)
// costs a handful of word loads instead of n Get calls. Bits at or beyond n
// (or beyond the bitset's capacity) are ignored, mirroring Get.
func (b Bitset) ForEach(n int, fn func(id int)) {
	words := len(b)
	if max := (n + 63) / 64; words > max {
		words = max
	}
	for w := 0; w < words; w++ {
		word := b[w]
		for word != 0 {
			id := w*64 + bits.TrailingZeros64(word)
			if id >= n {
				return
			}
			fn(id)
			word &= word - 1
		}
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone copies the bitset.
func (b Bitset) Clone() Bitset {
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}

// RoundLog is one crawl round's per-site feature observations.
type RoundLog struct {
	// SiteFeatures[siteIndex] is the set of features observed on the
	// site in this round.
	SiteFeatures []Bitset
}

// CaseLog aggregates one browser configuration across rounds.
type CaseLog struct {
	Rounds []*RoundLog
	// Invocations is the total number of logical feature invocations
	// recorded (Table 1).
	Invocations int64
	// PagesVisited is the number of page visits performed (Table 1).
	PagesVisited int64
}

// Log is the complete survey measurement.
type Log struct {
	// NumFeatures is the corpus size.
	NumFeatures int
	// Domains[siteIndex] is the site's domain.
	Domains []string
	// Measured[siteIndex] reports whether the domain could be measured;
	// the paper lost 267 of 10,000 domains.
	Measured []bool
	// Cases holds per-configuration observations.
	Cases map[Case]*CaseLog
}

// NewLog allocates a log for a corpus and site list.
func NewLog(numFeatures int, domains []string) *Log {
	l := &Log{
		NumFeatures: numFeatures,
		Domains:     append([]string(nil), domains...),
		Measured:    make([]bool, len(domains)),
		Cases:       make(map[Case]*CaseLog),
	}
	return l
}

// EnsureRound returns the round log, growing structures as needed.
func (l *Log) EnsureRound(c Case, round int) *RoundLog {
	cl := l.Cases[c]
	if cl == nil {
		cl = &CaseLog{}
		l.Cases[c] = cl
	}
	for len(cl.Rounds) <= round {
		rl := &RoundLog{SiteFeatures: make([]Bitset, len(l.Domains))}
		cl.Rounds = append(cl.Rounds, rl)
	}
	return cl.Rounds[round]
}

// Record stores one site-round observation: the features (by ID) and their
// logical invocation counts.
func (l *Log) Record(c Case, round, site int, counts map[int]int64, pagesVisited int) {
	rl := l.EnsureRound(c, round)
	if rl.SiteFeatures[site] == nil {
		rl.SiteFeatures[site] = NewBitset(l.NumFeatures)
	}
	cl := l.Cases[c]
	for id, n := range counts {
		rl.SiteFeatures[site].Set(id)
		cl.Invocations += n
	}
	cl.PagesVisited += int64(pagesVisited)
	l.Measured[site] = true
}

// SiteUnion returns the union of a site's feature sets across rounds for a
// case, or nil if the site was never observed under the case.
func (l *Log) SiteUnion(c Case, site int) Bitset {
	cl := l.Cases[c]
	if cl == nil {
		return nil
	}
	var out Bitset
	for _, rl := range cl.Rounds {
		if sf := rl.SiteFeatures[site]; sf != nil {
			if out == nil {
				out = sf.Clone()
			} else {
				out.Or(sf)
			}
		}
	}
	return out
}

// FeatureSites returns, per feature ID, the number of sites on which the
// feature was observed at least once under the case.
func (l *Log) FeatureSites(c Case) []int {
	out := make([]int, l.NumFeatures)
	for site := range l.Domains {
		u := l.SiteUnion(c, site)
		if u == nil {
			continue
		}
		u.ForEach(l.NumFeatures, func(id int) { out[id]++ })
	}
	return out
}

// MeasuredCount returns how many domains produced measurements.
func (l *Log) MeasuredCount() int {
	n := 0
	for _, m := range l.Measured {
		if m {
			n++
		}
	}
	return n
}
