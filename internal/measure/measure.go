package measure

import (
	"bufio"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Case identifies a browser configuration of the survey.
type Case string

const (
	// CaseDefault is the unmodified browser (paper: "default").
	CaseDefault Case = "default"
	// CaseBlocking is AdBlock Plus + Ghostery (paper: "blocking").
	CaseBlocking Case = "blocking"
	// CaseAdBlock is AdBlock Plus alone (Figure 7's x-axis).
	CaseAdBlock Case = "adblock"
	// CaseGhostery is Ghostery alone (Figure 7's y-axis).
	CaseGhostery Case = "ghostery"
)

// AllCases lists the survey configurations in canonical order.
func AllCases() []Case {
	return []Case{CaseDefault, CaseBlocking, CaseAdBlock, CaseGhostery}
}

// Bitset is a fixed-capacity bit vector keyed by feature ID.
type Bitset []uint64

// NewBitset allocates a bitset for n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bitset) Get(i int) bool {
	w := i / 64
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)%64)) != 0
}

// Or merges other into b.
func (b Bitset) Or(other Bitset) {
	for i := range other {
		if i < len(b) {
			b[i] |= other[i]
		}
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone copies the bitset.
func (b Bitset) Clone() Bitset {
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}

// RoundLog is one crawl round's per-site feature observations.
type RoundLog struct {
	// SiteFeatures[siteIndex] is the set of features observed on the
	// site in this round.
	SiteFeatures []Bitset
}

// CaseLog aggregates one browser configuration across rounds.
type CaseLog struct {
	Rounds []*RoundLog
	// Invocations is the total number of logical feature invocations
	// recorded (Table 1).
	Invocations int64
	// PagesVisited is the number of page visits performed (Table 1).
	PagesVisited int64
}

// Log is the complete survey measurement.
type Log struct {
	// NumFeatures is the corpus size.
	NumFeatures int
	// Domains[siteIndex] is the site's domain.
	Domains []string
	// Measured[siteIndex] reports whether the domain could be measured;
	// the paper lost 267 of 10,000 domains.
	Measured []bool
	// Cases holds per-configuration observations.
	Cases map[Case]*CaseLog
}

// NewLog allocates a log for a corpus and site list.
func NewLog(numFeatures int, domains []string) *Log {
	l := &Log{
		NumFeatures: numFeatures,
		Domains:     append([]string(nil), domains...),
		Measured:    make([]bool, len(domains)),
		Cases:       make(map[Case]*CaseLog),
	}
	return l
}

// EnsureRound returns the round log, growing structures as needed.
func (l *Log) EnsureRound(c Case, round int) *RoundLog {
	cl := l.Cases[c]
	if cl == nil {
		cl = &CaseLog{}
		l.Cases[c] = cl
	}
	for len(cl.Rounds) <= round {
		rl := &RoundLog{SiteFeatures: make([]Bitset, len(l.Domains))}
		cl.Rounds = append(cl.Rounds, rl)
	}
	return cl.Rounds[round]
}

// Record stores one site-round observation: the features (by ID) and their
// logical invocation counts.
func (l *Log) Record(c Case, round, site int, counts map[int]int64, pagesVisited int) {
	rl := l.EnsureRound(c, round)
	if rl.SiteFeatures[site] == nil {
		rl.SiteFeatures[site] = NewBitset(l.NumFeatures)
	}
	cl := l.Cases[c]
	for id, n := range counts {
		rl.SiteFeatures[site].Set(id)
		cl.Invocations += n
	}
	cl.PagesVisited += int64(pagesVisited)
	l.Measured[site] = true
}

// SiteUnion returns the union of a site's feature sets across rounds for a
// case, or nil if the site was never observed under the case.
func (l *Log) SiteUnion(c Case, site int) Bitset {
	cl := l.Cases[c]
	if cl == nil {
		return nil
	}
	var out Bitset
	for _, rl := range cl.Rounds {
		if sf := rl.SiteFeatures[site]; sf != nil {
			if out == nil {
				out = sf.Clone()
			} else {
				out.Or(sf)
			}
		}
	}
	return out
}

// FeatureSites returns, per feature ID, the number of sites on which the
// feature was observed at least once under the case.
func (l *Log) FeatureSites(c Case) []int {
	out := make([]int, l.NumFeatures)
	for site := range l.Domains {
		u := l.SiteUnion(c, site)
		if u == nil {
			continue
		}
		for id := 0; id < l.NumFeatures; id++ {
			if u.Get(id) {
				out[id]++
			}
		}
	}
	return out
}

// MeasuredCount returns how many domains produced measurements.
func (l *Log) MeasuredCount() int {
	n := 0
	for _, m := range l.Measured {
		if m {
			n++
		}
	}
	return n
}

// --- CSV serialization ---
//
// The format aggregates per (case, round, site, feature):
//
//	case,round,domain,featureID,used
//
// preceded by a header carrying corpus and site metadata.

// WriteCSV serializes the log.
func (l *Log) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#features,%d\n", l.NumFeatures)
	fmt.Fprintf(bw, "#domains,%d\n", len(l.Domains))
	for i, d := range l.Domains {
		fmt.Fprintf(bw, "#domain,%d,%s,%v\n", i, d, l.Measured[i])
	}
	cases := make([]string, 0, len(l.Cases))
	for c := range l.Cases {
		cases = append(cases, string(c))
	}
	sort.Strings(cases)
	for _, cs := range cases {
		cl := l.Cases[Case(cs)]
		fmt.Fprintf(bw, "#case,%s,%d,%d,%d\n", cs, len(cl.Rounds), cl.Invocations, cl.PagesVisited)
		for round, rl := range cl.Rounds {
			for site, sf := range rl.SiteFeatures {
				// Empty-but-present observations matter: a site that
				// was visited and used no features (a static site)
				// is different from an unvisited site.
				if sf == nil {
					continue
				}
				var ids []string
				for id := 0; id < l.NumFeatures; id++ {
					if sf.Get(id) {
						ids = append(ids, strconv.Itoa(id))
					}
				}
				fmt.Fprintf(bw, "%s,%d,%d,%s\n", cs, round, site, strings.Join(ids, " "))
			}
		}
	}
	return bw.Flush()
}

// ReadCSV deserializes a log written by WriteCSV.
func ReadCSV(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	l := &Log{Cases: make(map[Case]*CaseLog)}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		switch {
		case strings.HasPrefix(text, "#features,"):
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("measure: line %d: bad feature count", line)
			}
			l.NumFeatures = n
		case strings.HasPrefix(text, "#domains,"):
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("measure: line %d: bad domain count", line)
			}
			l.Domains = make([]string, n)
			l.Measured = make([]bool, n)
		case strings.HasPrefix(text, "#domain,"):
			if len(parts) != 4 {
				return nil, fmt.Errorf("measure: line %d: bad domain record", line)
			}
			idx, err := strconv.Atoi(parts[1])
			if err != nil || idx < 0 || idx >= len(l.Domains) {
				return nil, fmt.Errorf("measure: line %d: bad domain index", line)
			}
			l.Domains[idx] = parts[2]
			l.Measured[idx] = parts[3] == "true"
		case strings.HasPrefix(text, "#case,"):
			if len(parts) != 5 {
				return nil, fmt.Errorf("measure: line %d: bad case record", line)
			}
			cl := &CaseLog{}
			var err error
			if cl.Invocations, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
				return nil, fmt.Errorf("measure: line %d: bad invocation count", line)
			}
			if cl.PagesVisited, err = strconv.ParseInt(parts[4], 10, 64); err != nil {
				return nil, fmt.Errorf("measure: line %d: bad page count", line)
			}
			rounds, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("measure: line %d: bad round count", line)
			}
			for i := 0; i < rounds; i++ {
				cl.Rounds = append(cl.Rounds, &RoundLog{SiteFeatures: make([]Bitset, len(l.Domains))})
			}
			l.Cases[Case(parts[1])] = cl
		default:
			if len(parts) != 4 {
				return nil, fmt.Errorf("measure: line %d: bad observation %q", line, text)
			}
			cl := l.Cases[Case(parts[0])]
			if cl == nil {
				return nil, fmt.Errorf("measure: line %d: unknown case %q", line, parts[0])
			}
			round, err := strconv.Atoi(parts[1])
			if err != nil || round < 0 || round >= len(cl.Rounds) {
				return nil, fmt.Errorf("measure: line %d: bad round", line)
			}
			site, err := strconv.Atoi(parts[2])
			if err != nil || site < 0 || site >= len(l.Domains) {
				return nil, fmt.Errorf("measure: line %d: bad site", line)
			}
			sf := NewBitset(l.NumFeatures)
			for _, idStr := range strings.Fields(parts[3]) {
				id, err := strconv.Atoi(idStr)
				if err != nil || id < 0 || id >= l.NumFeatures {
					return nil, fmt.Errorf("measure: line %d: bad feature id %q", line, idStr)
				}
				sf.Set(id)
			}
			cl.Rounds[round].SiteFeatures[site] = sf
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if l.NumFeatures == 0 || l.Domains == nil {
		return nil, fmt.Errorf("measure: log missing header records")
	}
	return l, nil
}
