// Package measure holds the survey's measurement records: which features
// executed on which sites, per browser configuration and crawl round. It is
// the analog of the CSV log the paper's measuring extension emits
// ("blocking,example.com,Crypto.getRandomValues(),1" — Figure 2 of "Browser
// Feature Usage on the Modern Web", IMC 2016) plus the aggregation
// structures the analysis needs.
//
// Case names the four browser configurations of the survey (§4.1): the
// unmodified default, the combined AdBlock Plus + Ghostery "blocking"
// profile, and the two single-blocker profiles behind Figure 7. Log stores
// one feature Bitset per (case, round, site) cell; both execution engines —
// the sequential loop in internal/crawler and the sharded engine in
// internal/pipeline — produce this same structure, and WriteCSV/ReadCSV
// round-trip it so crawling and analysis can run as separate processes.
package measure
