// Package measure holds the survey's in-memory measurement model: which
// features executed on which sites, per browser configuration and crawl
// round. It is the analog of the log the paper's measuring extension emits
// ("blocking,example.com,Crypto.getRandomValues(),1" — Figure 2 of "Browser
// Feature Usage on the Modern Web", IMC 2016) plus the aggregation
// structures the analysis needs.
//
// Case names the four browser configurations of the survey (§4.1): the
// unmodified default, the combined AdBlock Plus + Ghostery "blocking"
// profile, and the two single-blocker profiles behind Figure 7. Log stores
// one feature Bitset per (case, round, site) cell; both execution engines —
// the sequential loop in internal/crawler and the sharded engine in
// internal/pipeline — produce this same structure.
//
// This package is purely the in-memory model. Persistence — the CSV and
// binary on-disk formats, streaming spill files, and the visit-level result
// cache — lives in internal/logstore, behind its pluggable Codec API.
package measure
