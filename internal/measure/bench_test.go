package measure

import (
	"testing"
)

func benchLogLarge() *Log {
	domains := make([]string, 500)
	for i := range domains {
		domains[i] = "site.example"
	}
	l := NewLog(1392, domains)
	for site := 0; site < 500; site++ {
		counts := map[int]int64{}
		for f := 0; f < 60; f++ {
			counts[(site*7+f*13)%1392] = int64(f + 1)
		}
		for round := 0; round < 5; round++ {
			l.Record(CaseDefault, round, site, counts, 13)
		}
	}
	return l
}

func BenchmarkFeatureSites(b *testing.B) {
	l := benchLogLarge()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.FeatureSites(CaseDefault)
	}
}
