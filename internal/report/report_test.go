package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/crawler"
	"repro/internal/cve"
	"repro/internal/firefoxhist"
	"repro/internal/measure"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
)

var (
	sharedAna  *analysis.Analysis
	sharedWeb  *synthweb.Web
	sharedStat *crawler.Stats
	sharedHist *firefoxhist.History
)

func surveyed(t testing.TB) (*analysis.Analysis, *synthweb.Web, *crawler.Stats) {
	t.Helper()
	if sharedAna != nil {
		return sharedAna, sharedWeb, sharedStat
	}
	reg, err := webidl.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := crawler.New(web, webapi.NewBindings(reg), crawler.DefaultConfig(5))
	log, stats, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	sharedAna = analysis.New(log, reg)
	sharedWeb = web
	sharedStat = stats
	sharedHist = firefoxhist.New(reg)
	return sharedAna, sharedWeb, sharedStat
}

func render(t *testing.T, f func(*bytes.Buffer)) string {
	t.Helper()
	var buf bytes.Buffer
	f(&buf)
	if buf.Len() == 0 {
		t.Fatal("renderer produced no output")
	}
	return buf.String()
}

func TestFigure1(t *testing.T) {
	out := render(t, func(b *bytes.Buffer) { Figure1(b) })
	for _, want := range []string{"2009", "2015", "Chrome", "Firefox", "Blink", "8.8 MLoC"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 missing %q", want)
		}
	}
}

func TestTable1(t *testing.T) {
	_, _, stats := surveyed(t)
	out := render(t, func(b *bytes.Buffer) { Table1(b, stats) })
	for _, want := range []string{"Domains measured", "Web pages visited", "Feature invocations recorded"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestFigure3Through8(t *testing.T) {
	a, web, _ := surveyed(t)
	checks := []struct {
		name string
		fn   func(*bytes.Buffer)
		want []string
	}{
		{"fig3", func(b *bytes.Buffer) { Figure3(b, a) }, []string{"portion of all standards"}},
		{"fig4", func(b *bytes.Buffer) { Figure4(b, a) }, []string{"blockrate", "DOM1"}},
		{"fig5", func(b *bytes.Buffer) { Figure5(b, a.VisitWeightedPopularity(web.Ranking)) }, []string{"site-frac", "visit-frac"}},
		{"fig6", func(b *bytes.Buffer) { Figure6(b, a.AgeSeries(sharedHist)) }, []string{"introduced", "AJAX", "block rate"}},
		{"fig7", func(b *bytes.Buffer) { Figure7(b, a.AdVsTrackerRates()) }, []string{"ad-rate", "tracker-rate"}},
		{"fig8", func(b *bytes.Buffer) { Figure8(b, a.Complexity()) }, []string{"standards", "%"}},
	}
	for _, c := range checks {
		out := render(t, c.fn)
		for _, w := range c.want {
			if !strings.Contains(out, w) {
				t.Errorf("%s missing %q:\n%s", c.name, w, out[:min(len(out), 400)])
			}
		}
	}
}

func TestTable2And3(t *testing.T) {
	a, _, _ := surveyed(t)
	db := cve.Generate(1)
	out := render(t, func(b *bytes.Buffer) { Table2(b, a.Table2(db)) })
	for _, w := range []string{"HTML: Canvas", "H-C", "#CVEs"} {
		if !strings.Contains(out, w) {
			t.Errorf("table 2 missing %q", w)
		}
	}
	out = render(t, func(b *bytes.Buffer) { Table3(b, a.NewStandardsPerRound()) })
	if !strings.Contains(out, "Round #") || !strings.Contains(out, "2") {
		t.Errorf("table 3 malformed:\n%s", out)
	}
	// The paper's table starts at round 2.
	if strings.Contains(out, "\n1 ") {
		t.Error("table 3 should not list round 1")
	}
}

func TestFigure9(t *testing.T) {
	out := render(t, func(b *bytes.Buffer) { Figure9(b, []int{0, 0, 0, 1, 2, 0}) })
	if !strings.Contains(out, "number of domains") {
		t.Errorf("figure 9 malformed:\n%s", out)
	}
	if !strings.Contains(out, "66.7%") {
		t.Errorf("figure 9 zero-share wrong:\n%s", out)
	}
}

func TestHeadlines(t *testing.T) {
	a, _, _ := surveyed(t)
	out := render(t, func(b *bytes.Buffer) { Headlines(b, a, cve.Generate(1)) })
	for _, w := range []string{"paper: 689", "paper: 416", "paper: 111", "standards observed"} {
		if !strings.Contains(out, w) {
			t.Errorf("headlines missing %q", w)
		}
	}
	// The blocking line must exist.
	if !strings.Contains(out, string(measure.CaseBlocking)) {
		t.Errorf("headlines missing blocking case:\n%s", out)
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Errorf("truncate(short) = %q", got)
	}
	if got := truncate("averyveryverylongname", 10); got != "averyve..." || len(got) != 10 {
		t.Errorf("truncate long = %q", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
