package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/browserstats"
	"repro/internal/crawler"
	"repro/internal/cve"
	"repro/internal/measure"
	"repro/internal/standards"
)

// Figure1 renders the browser-complexity time series (standards families
// and MLoC per browser, 2009–2015).
func Figure1(w io.Writer) {
	fmt.Fprintln(w, "Figure 1: Feature families and lines of code in popular browsers over time")
	fmt.Fprintf(w, "%-6s %-10s", "year", "standards")
	for _, b := range browserstats.Browsers() {
		fmt.Fprintf(w, " %8s", b)
	}
	fmt.Fprintln(w)
	for _, p := range browserstats.Series() {
		fmt.Fprintf(w, "%-6d %-10d", p.Year, p.Standards)
		for _, b := range browserstats.Browsers() {
			fmt.Fprintf(w, " %7.1fM", p.MLoC[b])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "note: Chrome's 2013 drop reflects the Blink switch (-%.1f MLoC of WebKit code)\n",
		browserstats.BlinkCutMLoC)
}

// Table1 renders the crawl-scale summary.
func Table1(w io.Writer, stats *crawler.Stats) {
	fmt.Fprintln(w, "Table 1: Amount of data gathered regarding JavaScript feature usage")
	fmt.Fprintf(w, "%-36s %15d\n", "Domains measured", stats.DomainsMeasured)
	fmt.Fprintf(w, "%-36s %15d\n", "Domains failed", stats.DomainsFailed)
	fmt.Fprintf(w, "%-36s %12.1f da\n", "Total website interaction time", stats.InteractionSeconds/86400)
	fmt.Fprintf(w, "%-36s %15d\n", "Web pages visited", stats.PagesVisited)
	fmt.Fprintf(w, "%-36s %15d\n", "Feature invocations recorded", stats.Invocations)
}

// Figure3 renders the cumulative distribution of standard popularity.
func Figure3(w io.Writer, a *analysis.Analysis) {
	fmt.Fprintln(w, "Figure 3: Cumulative distribution of standard popularity")
	fmt.Fprintf(w, "%-14s %s\n", "sites using", "portion of all standards")
	for _, p := range a.StandardPopularityCDF() {
		bar := strings.Repeat("#", int(p.Fraction*40))
		fmt.Fprintf(w, "%-14.0f %6.1f%% %s\n", p.X, p.Fraction*100, bar)
	}
}

// Figure4 renders standard popularity against block rate (the quadrant
// scatter), one row per standard observed in the default case.
func Figure4(w io.Writer, a *analysis.Analysis) {
	fmt.Fprintln(w, "Figure 4: Popularity of standards versus their block rate")
	fmt.Fprintf(w, "%-8s %10s %10s\n", "std", "sites", "blockrate")
	rates := a.BlockRates(measure.CaseBlocking)
	sites := a.StandardSites(measure.CaseDefault)
	var rows []standards.Abbrev
	for _, std := range standards.Catalog() {
		if sites[std.Abbrev] > 0 {
			rows = append(rows, std.Abbrev)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return sites[rows[i]] > sites[rows[j]] })
	for _, ab := range rows {
		fmt.Fprintf(w, "%-8s %10d %9.1f%%\n", ab, sites[ab], rates[ab].Rate*100)
	}
}

// Figure5 renders site-weighted vs visit-weighted standard popularity.
func Figure5(w io.Writer, points []analysis.VisitWeighted) {
	fmt.Fprintln(w, "Figure 5: Portion of all websites vs portion of all website visits using a standard")
	fmt.Fprintf(w, "%-8s %12s %12s %8s\n", "std", "site-frac", "visit-frac", "delta")
	sorted := append([]analysis.VisitWeighted(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].SiteFraction > sorted[j].SiteFraction })
	for _, p := range sorted {
		if p.SiteFraction == 0 && p.VisitFraction == 0 {
			continue
		}
		fmt.Fprintf(w, "%-8s %11.1f%% %11.1f%% %+7.1f%%\n",
			p.Standard, p.SiteFraction*100, p.VisitFraction*100,
			(p.VisitFraction-p.SiteFraction)*100)
	}
}

// Figure6 renders standard introduction date against popularity, bucketed by
// block rate as in the paper's legend.
func Figure6(w io.Writer, points []analysis.AgePoint) {
	fmt.Fprintln(w, "Figure 6: Standard introduction date vs sites using the standard")
	fmt.Fprintf(w, "%-8s %-12s %8s %10s %s\n", "std", "introduced", "sites", "blockrate", "bucket")
	for _, p := range points {
		bucket := "block rate < 33%"
		switch {
		case p.BlockRate > 0.66:
			bucket = "66% < block rate"
		case p.BlockRate > 0.33:
			bucket = "33% < block rate < 66%"
		}
		fmt.Fprintf(w, "%-8s %-12s %8d %9.1f%% %s\n",
			p.Standard, p.Introduced.Date.Format("2006-01-02"), p.Sites, p.BlockRate*100, bucket)
	}
}

// Figure7 renders ad-only vs tracking-only block rates.
func Figure7(w io.Writer, points []analysis.AdVsTracker) {
	fmt.Fprintln(w, "Figure 7: Block rates with advertising-only vs tracking-only extensions")
	fmt.Fprintf(w, "%-8s %10s %13s %8s %s\n", "std", "ad-rate", "tracker-rate", "sites", "leaning")
	for _, p := range points {
		leaning := "balanced"
		switch {
		case p.TrackerRate > p.AdRate+0.05:
			leaning = "tracker-blocked"
		case p.AdRate > p.TrackerRate+0.05:
			leaning = "ad-blocked"
		}
		fmt.Fprintf(w, "%-8s %9.1f%% %12.1f%% %8d %s\n",
			p.Standard, p.AdRate*100, p.TrackerRate*100, p.Sites, leaning)
	}
}

// Table2 renders the per-standard popularity/block-rate/CVE table.
func Table2(w io.Writer, rows []analysis.Table2Row) {
	fmt.Fprintln(w, "Table 2: Popularity and block rate for standards used on >=1% of sites or with CVEs")
	fmt.Fprintf(w, "%-50s %-8s %9s %7s %10s %6s\n",
		"Standard Name", "Abbrev", "#Features", "#Sites", "BlockRate", "#CVEs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-50s %-8s %9d %7d %9.1f%% %6d\n",
			truncate(r.Standard.Name, 50), r.Standard.Abbrev, r.Features, r.Sites, r.BlockRate*100, r.CVEs)
	}
}

// Table3 renders the internal-validation round table.
func Table3(w io.Writer, perRound []float64) {
	fmt.Fprintln(w, "Table 3: Average number of new standards encountered per crawl round")
	fmt.Fprintf(w, "%-8s %s\n", "Round #", "Avg. New Standards")
	for round, avg := range perRound {
		if round == 0 {
			continue // the paper's table starts at round 2
		}
		fmt.Fprintf(w, "%-8d %.2f\n", round+1, avg)
	}
}

// Figure8 renders the site-complexity probability density function.
func Figure8(w io.Writer, complexity []int) {
	fmt.Fprintln(w, "Figure 8: PDF of number of standards used by sites")
	values := make([]float64, len(complexity))
	maxV := 0.0
	for i, c := range complexity {
		values[i] = float64(c)
		if values[i] > maxV {
			maxV = values[i]
		}
	}
	bins := analysis.Histogram(values, 0, maxV+1, int(maxV)+1)
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		bar := strings.Repeat("#", int(b.Fraction*200))
		fmt.Fprintf(w, "%3.0f standards %6.1f%% %s\n", b.Lo, b.Fraction*100, bar)
	}
}

// Figure9 renders the external-validation histogram: number of domains by
// how many new standards manual interaction surfaced.
func Figure9(w io.Writer, deltas []int) {
	fmt.Fprintln(w, "Figure 9: New standards observed during manual interaction (per domain)")
	counts := map[int]int{}
	maxD := 0
	for _, d := range deltas {
		counts[d]++
		if d > maxD {
			maxD = d
		}
	}
	fmt.Fprintf(w, "%-22s %s\n", "new standards observed", "number of domains")
	for d := 0; d <= maxD; d++ {
		if counts[d] == 0 && d != 0 {
			continue
		}
		fmt.Fprintf(w, "%-22d %d\n", d, counts[d])
	}
	if n := len(deltas); n > 0 {
		fmt.Fprintf(w, "domains with no new standards: %.1f%%\n", float64(counts[0])/float64(n)*100)
	}
}

// Headlines renders the §5.3 headline numbers for a log.
func Headlines(w io.Writer, a *analysis.Analysis, db *cve.Database) {
	def := a.Bands(measure.CaseDefault)
	blk := a.Bands(measure.CaseBlocking)
	fmt.Fprintln(w, "Headline results (paper §5.2-5.3):")
	fmt.Fprintf(w, "  features in corpus:                      %d\n", def.Total)
	fmt.Fprintf(w, "  never used (default):                    %d (paper: 689)\n", def.NeverUsed)
	fmt.Fprintf(w, "  used on <1%% of sites (default):          %d (paper: 416)\n", def.UnderOnePct)
	fmt.Fprintf(w, "  used on <1%% incl. never (default):       %.0f%% of corpus (paper: 79%%)\n",
		float64(def.NeverUsed+def.UnderOnePct)/float64(def.Total)*100)
	fmt.Fprintf(w, "  <1%% of sites under blocking:             %d = %.0f%% (paper: 1,159 = 83%%)\n",
		blk.NeverUsed+blk.UnderOnePct,
		float64(blk.NeverUsed+blk.UnderOnePct)/float64(blk.Total)*100)
	fmt.Fprintf(w, "  standards observed (default):            %d of %d\n",
		a.UsedStandards(measure.CaseDefault), standards.Count())
	fmt.Fprintf(w, "  standards observed (blocking):           %d of %d\n",
		a.UsedStandards(measure.CaseBlocking), standards.Count())
	fmt.Fprintf(w, "  CVEs mapped to standards:                %d (paper: 111)\n", len(db.Mapped()))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
