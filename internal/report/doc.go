// Package report renders the paper's tables and figures as text from
// analysis results: the same rows and series the paper prints, regenerated
// from measured data. Figures are rendered as aligned data series (and
// simple ASCII plots) suitable for diffing against EXPERIMENTS.md.
package report
