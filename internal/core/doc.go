// Package core is the study orchestrator: the public entry point that wires
// the corpus, synthetic web, instrumented browser, survey crawler, and
// analysis pipeline into one reproducible experiment, mirroring the paper's
// end-to-end methodology.
//
// Typical use:
//
//	study, err := core.NewStudy(core.Config{Sites: 1000, Seed: 42})
//	results, err := study.RunSurvey()
//	study.WriteReport(os.Stdout, results)
package core
