package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/measure"
)

// crashStudyConfig is a small spill-only pipeline study sized so the
// crash matrix stays fast while still spanning several spill flushes
// per shard.
func crashStudyConfig(spillDir string) Config {
	return Config{
		Sites:        10,
		Seed:         7,
		Rounds:       1,
		Cases:        []measure.Case{measure.CaseDefault, measure.CaseBlocking},
		Shards:       2,
		ShardWorkers: 1,
		BatchSize:    4,
		SpillOnly:    true,
		SpillDir:     spillDir,
	}
}

// aggregateReport renders the run's aggregate report to bytes.
func aggregateReport(t *testing.T, s *Study, res *Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteAggregateReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCrashMatrixSingleMachine extends the repo's "parallel ≡
// sequential" invariant to "crashed-and-resumed ≡ uninterrupted": for
// every spill write of every shard, a run whose spill stream tears at
// exactly that write — a seeded faultinject tear, reproducible from the
// logged (seed, shard, hit) — must, after a resume over the same spill
// directory, produce a byte-identical aggregate report.
func TestCrashMatrixSingleMachine(t *testing.T) {
	const seed = 1009

	// Ground truth: the uninterrupted run.
	cleanDir := t.TempDir()
	clean, err := NewStudy(crashStudyConfig(cleanDir))
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.RunSurvey()
	if err != nil {
		t.Fatal(err)
	}
	want := aggregateReport(t, clean, cleanRes)

	// Dry run per shard: count that shard's spill writes with a
	// disarmed injector to size the matrix.
	countWrites := func(shard int) int {
		in := faultinject.New(seed)
		dir := t.TempDir()
		cfg := crashStudyConfig(dir)
		cfg.SpillTap = func(s int, w io.Writer) io.Writer {
			if s == shard {
				return in.TornWriter("spill", w)
			}
			return w
		}
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunSurvey(); err != nil {
			t.Fatalf("disarmed dry run failed: %v", err)
		}
		return in.Count("spill")
	}

	for shard := 0; shard < 2; shard++ {
		writes := countWrites(shard)
		if writes < 2 {
			t.Fatalf("shard %d made only %d spill writes; matrix would prove nothing", shard, writes)
		}
		for hit := 1; hit <= writes; hit++ {
			in := faultinject.New(seed + int64(hit))
			in.Arm("spill", hit)
			dir := t.TempDir()
			cfg := crashStudyConfig(dir)
			cfg.SpillTap = func(s int, w io.Writer) io.Writer {
				if s == shard {
					return in.TornWriter("spill", w)
				}
				return w
			}
			s, err := NewStudy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.RunSurvey(); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("seed=%d shard=%d hit=%d: crashed run err = %v, want injected tear", seed, shard, hit, err)
			}

			// Second life: same spill dir, no faults, resume on.
			cfg2 := crashStudyConfig(dir)
			cfg2.Resume = true
			s2, err := NewStudy(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s2.RunSurvey()
			if err != nil {
				t.Fatalf("seed=%d shard=%d hit=%d: resume failed: %v", seed, shard, hit, err)
			}
			got := aggregateReport(t, s2, res)
			if !bytes.Equal(got, want) {
				t.Fatalf("seed=%d shard=%d hit=%d: resumed report differs from uninterrupted run", seed, shard, hit)
			}
		}
	}
}

// TestResumeCompletedRunIsPure pins the fixpoint: resuming over a spill
// directory of a finished run replays every site, crawls nothing, and
// reports identically.
func TestResumeCompletedRunIsPure(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStudy(crashStudyConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunSurvey()
	if err != nil {
		t.Fatal(err)
	}
	want := aggregateReport(t, s, res)

	cfg := crashStudyConfig(dir)
	cfg.Resume = true
	s2, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.RunSurveyContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 10 {
		t.Fatalf("Resumed = %d, want all 10 sites replayed", res2.Resumed)
	}
	if got := aggregateReport(t, s2, res2); !bytes.Equal(got, want) {
		t.Fatal("resume of a completed run changed the report")
	}
}

// TestResumeFreshDirIsNoop pins that Resume on a virgin spill directory
// behaves exactly like a fresh run.
func TestResumeFreshDirIsNoop(t *testing.T) {
	cleanDir := t.TempDir()
	s, err := NewStudy(crashStudyConfig(cleanDir))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunSurvey()
	if err != nil {
		t.Fatal(err)
	}
	want := aggregateReport(t, s, res)

	dir := t.TempDir()
	cfg := crashStudyConfig(dir)
	cfg.Resume = true
	s2, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.RunSurvey()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 0 {
		t.Fatalf("fresh dir Resumed = %d, want 0", res2.Resumed)
	}
	if got := aggregateReport(t, s2, res2); !bytes.Equal(got, want) {
		t.Fatal("resume-enabled fresh run diverged from plain run")
	}
}
