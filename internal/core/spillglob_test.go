package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSpillGlob pins the shared -spills glob resolution, in particular the
// zero-match case: a glob that matches nothing must be an error naming the
// pattern (regression: cmd/report and cmd/serve exit non-zero instead of
// rendering an empty survey), and matches must come back sorted so shard
// merge order is deterministic.
func TestSpillGlob(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"shard2.spill", "shard0.spill", "shard1.spill"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	got, err := SpillGlob(filepath.Join(dir, "*.spill"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "shard0.spill"),
		filepath.Join(dir, "shard1.spill"),
		filepath.Join(dir, "shard2.spill"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SpillGlob = %v, want sorted %v", got, want)
	}

	_, err = SpillGlob(filepath.Join(dir, "*.nope"))
	if err == nil {
		t.Fatal("SpillGlob accepted a glob matching nothing")
	}
	if !strings.Contains(err.Error(), "no spill files matched") || !strings.Contains(err.Error(), "*.nope") {
		t.Errorf("zero-match error %q does not name the problem and pattern", err)
	}

	if _, err := SpillGlob("[bad"); err == nil {
		t.Error("SpillGlob accepted a malformed pattern")
	}
}
