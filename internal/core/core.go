package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/alexa"
	"repro/internal/analysis"
	"repro/internal/crawler"
	"repro/internal/cve"
	"repro/internal/firefoxhist"
	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/standards"
	"repro/internal/stats"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
	"repro/internal/webserver"
)

// Config parameterizes a study.
type Config struct {
	// Sites is the ranking size (the paper's 10,000). Required.
	Sites int
	// Seed drives all generation and crawling randomness.
	Seed int64
	// Rounds is the number of visits per (site, case); 0 means the
	// paper's 5.
	Rounds int
	// Cases lists the browser configurations; nil means all four
	// (default, blocking, ad-only, tracker-only).
	Cases []measure.Case
	// Parallelism is the crawl worker count; 0 means 4. It applies to
	// the sequential crawler (Shards == 0) and, divided across shards,
	// to the pipeline when ShardWorkers is unset.
	Parallelism int
	// Shards routes the survey through the sharded internal/pipeline
	// engine with this many site partitions; 0 keeps the sequential
	// crawler loop. Both paths produce identical logs for a seed.
	Shards int
	// ShardWorkers is the number of browser workers per shard; 0 derives
	// it from Parallelism as a total budget the engine never exceeds.
	ShardWorkers int
	// BatchSize is the pipeline's visit-merge batch size; 0 picks the
	// engine default.
	BatchSize int
	// UseHTTP routes all fetches through a real net/http server instead
	// of in-process resolution.
	UseHTTP bool
	// HumanSample is the external-validation sample size; 0 means the
	// paper's 92 completed domains.
	HumanSample int
	// LogFormat names the logstore codec WriteLog uses ("csv" or
	// "binary"); "" means csv, the original format. Reading always
	// auto-detects, so the format only matters when writing.
	LogFormat string
	// CacheDir, when non-empty, memoizes visit outcomes on disk so
	// re-runs with overlapping configs skip completed visits. The cache
	// is consulted by the sharded pipeline engine (Shards > 0).
	CacheDir string
	// SpillDir, when non-empty, streams each pipeline shard's completed
	// visits to a spill file in this directory (Shards > 0 only);
	// logstore.ReadSpillFiles reassembles them into the full log and
	// stats.FromSpills folds them into a warm aggregate.
	SpillDir string
	// SpillOnly drops the in-memory log (Shards > 0 only): each shard
	// folds its visits into a mergeable stats aggregate, Results.Log is
	// nil, and memory stays bounded regardless of site count. Aggregate
	// statistics — and so every headline table — are identical to an
	// in-memory run's. Combine with SpillDir to keep the full log on
	// disk.
	SpillOnly bool
	// CacheMaxBytes caps the visit cache's on-disk size; once entries
	// exceed it the least-recently-used are pruned (a manifest in the
	// cache directory tracks recency without directory scans). 0 means
	// unbounded.
	CacheMaxBytes int64
	// Resume, when set with SpillDir, makes RunSurvey crash-safe: before
	// crawling, the spill directory's files (including torn .partial
	// files a killed run left behind) are compacted into one stream of
	// durably committed sites, those sites are replayed into the
	// aggregate, and only the remainder is crawled. The resumed run's
	// report is byte-identical to an uninterrupted one. A fresh
	// directory resumes trivially (nothing committed, everything
	// crawled), so the flag is safe to leave on.
	Resume bool
	// SpillTap is a test seam forwarded to pipeline.Config.SpillTap:
	// fault-injection tests wrap each shard's spill file writer to tear
	// writes at deterministic points. Production runs leave it nil.
	SpillTap func(shard int, w io.Writer) io.Writer
	// DisableBrowserReuse, DisableScriptCompile, and DisableMatcherIndex
	// are ablation/debugging knobs forwarding to the matching
	// crawler.Config fields: respectively they disable the browser's
	// revisit fast path, the compiled-WebScript execution path, and the
	// ABP matcher's rule index. Survey logs are byte-identical with any
	// combination (test-enforced).
	DisableBrowserReuse  bool
	DisableScriptCompile bool
	DisableMatcherIndex  bool
}

// Study is a fully constructed experiment environment.
type Study struct {
	Cfg      Config
	Registry *webidl.Registry
	Web      *synthweb.Web
	Bindings *webapi.Bindings
	History  *firefoxhist.History
	CVEs     *cve.Database
	// Cache is the visit-outcome cache opened from Cfg.CacheDir, nil
	// when caching is off. Cache.Stats() reports hit/miss traffic.
	Cache *logstore.Cache

	codec  logstore.Codec
	server *webserver.Server
}

// Results bundles a completed survey.
type Results struct {
	// Log is the full measurement log; nil for spill-only surveys, whose
	// measurements live in Agg (and in spill files when SpillDir is set).
	Log   *measure.Log
	Stats *crawler.Stats
	// Agg is the warm statistics source — the mergeable aggregate
	// maintained while the survey ran, or an immutable snapshot of one;
	// nil for the sequential engine, which records straight into the log.
	Agg      stats.Source
	Analysis *analysis.Analysis
	// Resumed counts the sites replayed from a previous crashed life's
	// spill files rather than crawled; 0 for a fresh run.
	Resumed int
}

// NewStudy generates the study environment: WebIDL corpus, synthetic web,
// dispatch bindings, release history, and CVE database, all from the seed.
func NewStudy(cfg Config) (*Study, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("core: config requires a positive site count")
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 5
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 4
	}
	if len(cfg.Cases) == 0 {
		cfg.Cases = measure.AllCases()
	}
	if cfg.HumanSample == 0 {
		cfg.HumanSample = 92
	}
	if cfg.SpillOnly && cfg.Shards <= 0 {
		return nil, fmt.Errorf("core: spill-only mode requires the pipeline engine (Shards > 0)")
	}
	if cfg.Resume && (cfg.SpillDir == "" || cfg.Shards <= 0) {
		return nil, fmt.Errorf("core: resume requires a spill directory and the pipeline engine (Shards > 0)")
	}

	if cfg.LogFormat == "" {
		cfg.LogFormat = "csv"
	}
	codec, err := logstore.ByName(cfg.LogFormat)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	reg, err := webidl.Generate(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: generating corpus: %w", err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: cfg.Sites, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: generating web: %w", err)
	}
	s := &Study{
		Cfg:      cfg,
		Registry: reg,
		Web:      web,
		Bindings: webapi.NewBindings(reg),
		History:  firefoxhist.New(reg),
		CVEs:     cve.Generate(cfg.Seed),
		codec:    codec,
	}
	if cfg.CacheDir != "" {
		cache, err := logstore.OpenCacheLimited(cfg.CacheDir, len(reg.Features), s.cacheScope(), cfg.CacheMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.Cache = cache
	}
	if cfg.UseHTTP {
		srv, err := webserver.NewServer(web)
		if err != nil {
			return nil, fmt.Errorf("core: starting web server: %w", err)
		}
		s.server = srv
	}
	return s, nil
}

// Close releases study resources (the HTTP server, if any).
func (s *Study) Close() error {
	if s.server != nil {
		return s.server.Close()
	}
	return nil
}

// crawler builds the configured sequential crawler.
func (s *Study) crawler() *crawler.Crawler {
	c := crawler.New(s.Web, s.Bindings, s.crawlConfig())
	if s.server != nil {
		srv := s.server
		c.NewFetcher = func() webserver.Fetcher { return webserver.NewHTTPFetcher(srv) }
	}
	return c
}

// crawlConfig is the survey methodology shared by both execution engines.
func (s *Study) crawlConfig() crawler.Config {
	ccfg := crawler.DefaultConfig(s.Cfg.Seed)
	ccfg.Rounds = s.Cfg.Rounds
	ccfg.Cases = s.Cfg.Cases
	ccfg.Parallelism = s.Cfg.Parallelism
	ccfg.DisableBrowserReuse = s.Cfg.DisableBrowserReuse
	ccfg.DisableScriptCompile = s.Cfg.DisableScriptCompile
	ccfg.DisableMatcherIndex = s.Cfg.DisableMatcherIndex
	return ccfg
}

// cacheScope fingerprints everything beyond (VisitSeed, case) that shapes a
// visit's outcome: the synthetic web (site count + generation seed) and the
// per-visit methodology. Rounds, cases, and parallelism are deliberately
// absent — rounds and cases are part of the visit key, and parallelism
// never changes results — so overlapping configs share cache entries while
// a different web or methodology can never replay stale outcomes.
func (s *Study) cacheScope() string {
	ccfg := s.crawlConfig()
	return fmt.Sprintf("sites=%d seed=%d branch=%d page=%g aps=%g novelty=%t creds=%t",
		s.Cfg.Sites, s.Cfg.Seed, ccfg.Branch, ccfg.PageSeconds, ccfg.ActionsPerSecond,
		ccfg.PathNoveltyPreference, ccfg.WithCredentials)
}

// RunSurvey executes the full automated survey, through the sharded
// pipeline engine when Cfg.Shards > 0 and the sequential crawler otherwise.
func (s *Study) RunSurvey() (*Results, error) {
	return s.RunSurveyContext(context.Background())
}

// RunSurveyContext is RunSurvey with cancellation; the context only applies
// to the pipeline path (the sequential crawler has no cancellation points).
func (s *Study) RunSurveyContext(ctx context.Context) (*Results, error) {
	if s.Cfg.Shards > 0 {
		eng := s.pipeline()
		resumed := 0
		if s.Cfg.Resume {
			// Fold whatever the previous life durably committed — whole
			// shard files and the valid prefixes of torn .partial ones —
			// into one clean stream, replay it, and crawl the rest.
			comp, err := logstore.CompactSpillDir(s.Cfg.SpillDir, len(s.Registry.Features), s.domains())
			if err != nil {
				return nil, fmt.Errorf("core: scanning spill dir for resume: %w", err)
			}
			if len(comp.Committed) > 0 {
				committed := make(map[int]bool, len(comp.Committed))
				for _, site := range comp.Committed {
					committed[site] = true
				}
				remainder := make([]int, 0, len(s.Web.Sites)-len(comp.Committed))
				for i := range s.Web.Sites {
					if !committed[i] {
						remainder = append(remainder, i)
					}
				}
				eng.Cfg.ResumeSpills = []string{comp.Path}
				eng.Cfg.Sites = remainder
				resumed = len(comp.Committed)
			}
		}
		res, err := eng.Run(ctx)
		if err != nil {
			return nil, err
		}
		// The engine maintained a mergeable aggregate alongside the
		// crawl, so analysis starts warm — no log rescan. Spill-only
		// runs have no log at all; per-site queries then return nil.
		var a *analysis.Analysis
		if res.Log != nil {
			a = analysis.NewWarm(res.Log, res.Agg, s.Registry)
		} else {
			a = analysis.FromStats(res.Agg, s.Registry)
		}
		return &Results{Log: res.Log, Stats: res.Stats, Agg: res.Agg, Analysis: a, Resumed: resumed}, nil
	}
	log, stats, err := s.crawler().Run()
	if err != nil {
		return nil, err
	}
	return &Results{Log: log, Stats: stats, Analysis: analysis.New(log, s.Registry)}, nil
}

// pipeline builds the configured sharded engine. When ShardWorkers is
// unset, Parallelism (0 meaning 4) is treated as the total worker budget:
// shards collapse to at most Parallelism and each gets its floor share, so
// the engine never runs more concurrent workers than asked for.
func (s *Study) pipeline() *pipeline.Engine {
	shards := s.Cfg.Shards
	workers := s.Cfg.ShardWorkers
	if workers <= 0 {
		par := s.Cfg.Parallelism
		if par <= 0 {
			par = 4
		}
		if shards > par {
			shards = par
		}
		workers = par / shards
	}
	eng := pipeline.New(s.Web, s.Bindings, pipeline.Config{
		Shards:          shards,
		WorkersPerShard: workers,
		BatchSize:       s.Cfg.BatchSize,
		Cache:           s.Cache,
		SpillDir:        s.Cfg.SpillDir,
		SpillOnly:       s.Cfg.SpillOnly,
		SpillTap:        s.Cfg.SpillTap,
		Crawl:           s.crawlConfig(),
	})
	if s.server != nil {
		srv := s.server
		eng.NewFetcher = func() webserver.Fetcher { return webserver.NewHTTPFetcher(srv) }
	}
	return eng
}

// spec is the JSON shape of the study specification a distributed
// coordinator ships to its workers: the survey methodology alone. Engine
// geometry (shards, workers, cache) stays worker-local — it never changes
// results, only speed.
type spec struct {
	Version int            `json:"version"`
	Sites   int            `json:"sites"`
	Seed    int64          `json:"seed"`
	Rounds  int            `json:"rounds"`
	Cases   []measure.Case `json:"cases"`
}

// specVersion is bumped whenever a change to study construction would make
// two builds of the same spec diverge; coordinator and workers must match.
const specVersion = 1

// Spec serializes the study's survey methodology for distributed workers
// (internal/dist): everything a worker needs to regenerate the identical
// corpus, synthetic web, and per-visit randomness. StudyFromSpec is the
// inverse.
func (s *Study) Spec() ([]byte, error) {
	return json.Marshal(spec{
		Version: specVersion,
		Sites:   s.Cfg.Sites,
		Seed:    s.Cfg.Seed,
		Rounds:  s.Cfg.Rounds,
		Cases:   s.Cfg.Cases,
	})
}

// StudyFromSpec builds a worker's study from a coordinator's spec. The
// spec's methodology fields override opts; opts supplies the worker-local
// engine configuration (Shards, ShardWorkers, CacheDir, …). The returned
// study always runs the pipeline engine in spill-only mode — a distributed
// worker is exactly a spill-only shard.
func StudyFromSpec(data []byte, opts Config) (*Study, error) {
	var sp spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, fmt.Errorf("core: decoding study spec: %w", err)
	}
	if sp.Version != specVersion {
		return nil, fmt.Errorf("core: study spec version %d, this build speaks %d", sp.Version, specVersion)
	}
	opts.Sites = sp.Sites
	opts.Seed = sp.Seed
	opts.Rounds = sp.Rounds
	opts.Cases = sp.Cases
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	opts.SpillOnly = true
	opts.SpillDir = ""
	return NewStudy(opts)
}

// domains returns the study's site list, index-aligned with Web.Sites.
func (s *Study) domains() []string {
	out := make([]string, len(s.Web.Sites))
	for i, site := range s.Web.Sites {
		out[i] = site.Domain
	}
	return out
}

// Domains returns the survey's ranked site list as domain strings,
// index-aligned with the site indices spill streams and leases carry —
// what a distributed coordinator needs to validate seed spills against
// this exact study.
func (s *Study) Domains() []string { return s.domains() }

// CrawlSites crawls exactly the given site indices — a distributed lease —
// through a spill-only pipeline run, streaming the visits into spill as one
// complete spill stream (header first, then every observation, failure, and
// site-end marker). It matches dist.CrawlFunc; cmd/pipeline -worker wires
// it up.
func (s *Study) CrawlSites(ctx context.Context, sites []int, spill io.Writer) error {
	w, err := logstore.NewWriter(spill, len(s.Registry.Features), s.domains())
	if err != nil {
		return err
	}
	eng := s.pipeline()
	eng.Cfg.Sites = sites
	eng.Cfg.SpillOnly = true
	eng.Cfg.SpillDir = ""
	eng.Cfg.Spill = w
	if _, err := eng.Run(ctx); err != nil {
		return err
	}
	return w.Close() // flushes; the engine never closes an external writer
}

// AggregateResults wraps a warm statistics source — a distributed
// coordinator's merged total, any spill-only product, or an epoch snapshot
// served by the query server — in the Results shape every report path
// consumes, with warm analysis attached.
func (s *Study) AggregateResults(src stats.Source) *Results {
	return &Results{
		Stats:    pipeline.SurveyStats(src, s.crawlConfig().PageSeconds),
		Agg:      src,
		Analysis: analysis.FromStats(src, s.Registry),
	}
}

// SpillGlob expands a spill-file glob in deterministic (sorted) order. A
// pattern matching zero files is an error — rendering an empty report from
// a typo'd glob helps nobody — as is a malformed pattern.
func SpillGlob(pattern string) ([]string, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, fmt.Errorf("core: bad spill glob %q: %w", pattern, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("core: no spill files matched %q", pattern)
	}
	sort.Strings(paths)
	return paths, nil
}

// ResultsFromSpills reconstructs a warm Results from a spill-only run's
// per-shard spill files, streaming them through the mergeable stats layer —
// the full log is never materialized, so memory stays bounded regardless of
// site count. The spill files must come from a run of this study (same
// sites, same seed); every aggregate statistic and headline table matches
// the live run's exactly. Per-site artifacts (Figure 5, Figure 9) need the
// full log — use logstore.ReadSpillFiles for those.
func (s *Study) ResultsFromSpills(paths ...string) (*Results, error) {
	agg, err := stats.FromSpills(stats.StandardsOf(s.Registry), s.Cfg.Cases, paths...)
	if err != nil {
		return nil, fmt.Errorf("core: merging spills: %w", err)
	}
	return s.AggregateResults(agg), nil
}

// RunExternalValidation performs the §6.2 protocol: visit a visit-weighted
// sample of sites with the scripted human model and return, per site, how
// many standards the human saw that the automated survey never did.
func (s *Study) RunExternalValidation(results *Results) ([]int, error) {
	if results.Log == nil {
		return nil, fmt.Errorf("core: external validation compares per-site observations; it needs the full log, not a spill-only aggregate")
	}
	sample := s.Web.Ranking.WeightedSample(s.Cfg.HumanSample, s.Cfg.Seed+909)
	c := s.crawler()
	var deltas []int
	for i, rs := range sample {
		site := s.Web.Sites[rs.Rank-1]
		if site.Failure != synthweb.FailNone {
			continue
		}
		counts, err := c.HumanVisit(site, s.Cfg.Seed+int64(i))
		if err != nil {
			continue
		}
		deltas = append(deltas, results.Analysis.HumanDelta(site.Index, counts))
	}
	if len(deltas) == 0 {
		return nil, fmt.Errorf("core: external validation visited no sites")
	}
	return deltas, nil
}

// WriteReport renders every table and figure of the paper from the results.
// It needs the full log (Figures 5 and 9 are per-site artifacts).
func (s *Study) WriteReport(w io.Writer, results *Results) error {
	return s.writeReport(w, results, true)
}

// WriteAggregateReport renders every artifact derivable from aggregate
// statistics alone — the full report minus the two per-site artifacts
// (Figure 5's visit weighting and Figure 9's external validation) — so a
// spill-only survey reports without ever materializing its log.
func (s *Study) WriteAggregateReport(w io.Writer, results *Results) error {
	return s.writeReport(w, results, false)
}

func (s *Study) writeReport(w io.Writer, results *Results, perSite bool) error {
	a := results.Analysis

	report.Figure1(w)
	fmt.Fprintln(w)
	report.Table1(w, results.Stats)
	fmt.Fprintln(w)
	report.Headlines(w, a, s.CVEs)
	fmt.Fprintln(w)
	report.Figure3(w, a)
	fmt.Fprintln(w)
	report.Figure4(w, a)
	if perSite {
		fmt.Fprintln(w)
		report.Figure5(w, a.VisitWeightedPopularity(s.Web.Ranking))
	}
	fmt.Fprintln(w)
	report.Figure6(w, a.AgeSeries(s.History))
	fmt.Fprintln(w)
	report.Figure7(w, a.AdVsTrackerRates())
	fmt.Fprintln(w)
	report.Table2(w, a.Table2(s.CVEs))
	fmt.Fprintln(w)
	report.Table3(w, a.NewStandardsPerRound())
	fmt.Fprintln(w)
	report.Figure8(w, a.Complexity())
	if !perSite {
		return nil
	}

	deltas, err := s.RunExternalValidation(results)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	report.Figure9(w, deltas)
	return nil
}

// WriteLog serializes the measurement log in the study's configured format
// (Config.LogFormat). Logs written in any format load back through
// logstore.Read/ReadFile, which auto-detect.
func (s *Study) WriteLog(w io.Writer, l *measure.Log) error {
	if l == nil {
		return fmt.Errorf("core: no in-memory log to write (spill-only survey)")
	}
	return s.codec.Encode(w, l)
}

// SaveLog writes the measurement log to a file in the configured format.
func (s *Study) SaveLog(path string, l *measure.Log) error {
	if l == nil {
		return fmt.Errorf("core: no in-memory log to save (spill-only survey)")
	}
	return logstore.WriteFile(path, s.codec, l)
}

// Ranking exposes the study's Alexa model.
func (s *Study) Ranking() *alexa.Ranking { return s.Web.Ranking }

// StandardsCatalog exposes the standards catalog for reporting.
func (s *Study) StandardsCatalog() []standards.Standard { return standards.Catalog() }
