package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/logstore"
	"repro/internal/measure"
)

// TestSurveyLogRoundTrip exercises the cmd/crawl → cmd/report handoff for
// every registered codec: a survey log serialized and read back (via
// format auto-detection, as cmd/report does) must yield identical analysis
// results.
func TestSurveyLogRoundTrip(t *testing.T) {
	study, results := smallStudy(t, Config{
		Sites: 60, Seed: 31, Rounds: 2,
		Cases: []measure.Case{measure.CaseDefault, measure.CaseBlocking},
	})
	for _, name := range logstore.Names() {
		t.Run(name, func(t *testing.T) {
			codec, err := logstore.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			testLogRoundTrip(t, study, results, codec)
		})
	}
}

func testLogRoundTrip(t *testing.T, study *Study, results *Results, codec logstore.Codec) {
	var buf bytes.Buffer
	if err := codec.Encode(&buf, results.Log); err != nil {
		t.Fatal(err)
	}
	restored, err := logstore.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored, results.Log) {
		t.Error("restored survey log not deep-equal to the original")
	}

	a1 := results.Analysis
	a2 := analysis.New(restored, study.Registry)

	s1 := a1.StandardSites(measure.CaseDefault)
	s2 := a2.StandardSites(measure.CaseDefault)
	for std, n := range s1 {
		if s2[std] != n {
			t.Errorf("standard %s: %d sites direct, %d via CSV", std, n, s2[std])
		}
	}

	b1 := a1.Bands(measure.CaseDefault)
	b2 := a2.Bands(measure.CaseDefault)
	if b1 != b2 {
		t.Errorf("bands differ: %+v vs %+v", b1, b2)
	}

	r1 := a1.BlockRates(measure.CaseBlocking)
	r2 := a2.BlockRates(measure.CaseBlocking)
	for std, br := range r1 {
		if r2[std] != br {
			t.Errorf("block rate %s differs across CSV round trip", std)
		}
	}

	t3a := a1.NewStandardsPerRound()
	t3b := a2.NewStandardsPerRound()
	for i := range t3a {
		if t3a[i] != t3b[i] {
			t.Errorf("table 3 round %d differs: %v vs %v", i, t3a, t3b)
		}
	}
}
