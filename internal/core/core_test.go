package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/measure"
)

func smallStudy(t testing.TB, cfg Config) (*Study, *Results) {
	t.Helper()
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { study.Close() })
	results, err := study.RunSurvey()
	if err != nil {
		t.Fatal(err)
	}
	return study, results
}

func TestEndToEndReport(t *testing.T) {
	study, results := smallStudy(t, Config{Sites: 100, Seed: 21, HumanSample: 20})
	var buf bytes.Buffer
	if err := study.WriteReport(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1:", "Table 1:", "Figure 3:", "Figure 4:", "Figure 5:",
		"Figure 6:", "Figure 7:", "Table 2:", "Table 3:", "Figure 8:",
		"Figure 9:", "Headline results",
		"Domains measured", "Feature invocations recorded",
		"never used (default)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The paper-shaped anchors must appear.
	if !strings.Contains(out, "AJAX") || !strings.Contains(out, "DOM1") {
		t.Error("report missing standard abbreviations")
	}
}

func TestExternalValidationMostlyZero(t *testing.T) {
	study, results := smallStudy(t, Config{Sites: 100, Seed: 22, HumanSample: 40})
	deltas, err := study.RunExternalValidation(results)
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, d := range deltas {
		if d == 0 {
			zero++
		}
	}
	// Paper §6.2: in 83.7% of cases the human found nothing new.
	share := float64(zero) / float64(len(deltas))
	if share < 0.6 {
		t.Errorf("zero-delta share %.2f, paper 0.837", share)
	}
}

func TestHTTPModeMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("HTTP crawl is slow")
	}
	direct, dres := smallStudy(t, Config{
		Sites: 25, Seed: 33, Rounds: 2,
		Cases: []measure.Case{measure.CaseDefault}, Parallelism: 2,
	})
	httpStudy, hres := smallStudy(t, Config{
		Sites: 25, Seed: 33, Rounds: 2,
		Cases: []measure.Case{measure.CaseDefault}, Parallelism: 2,
		UseHTTP: true,
	})
	_ = direct
	_ = httpStudy
	// The HTTP hop must be observationally transparent.
	for site := range dres.Log.Domains {
		a := dres.Log.SiteUnion(measure.CaseDefault, site)
		b := hres.Log.SiteUnion(measure.CaseDefault, site)
		if (a == nil) != (b == nil) {
			t.Fatalf("site %d measured differently over HTTP", site)
		}
		if a != nil && a.Count() != b.Count() {
			t.Fatalf("site %d features differ over HTTP: %d vs %d", site, a.Count(), b.Count())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewStudy(Config{}); err == nil {
		t.Fatal("zero-site config accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	study, err := NewStudy(Config{Sites: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	if study.Cfg.Rounds != 5 || study.Cfg.Parallelism != 4 || study.Cfg.HumanSample != 92 {
		t.Errorf("defaults not applied: %+v", study.Cfg)
	}
	if len(study.Cfg.Cases) != 4 {
		t.Errorf("default cases = %v", study.Cfg.Cases)
	}
	if study.Ranking() == nil || len(study.StandardsCatalog()) != 75 {
		t.Error("accessors broken")
	}
}
