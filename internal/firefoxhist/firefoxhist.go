package firefoxhist

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/standards"
	"repro/internal/webidl"
)

// ReleaseCount is the number of Firefox versions since 2004 (paper §3.4).
const ReleaseCount = 186

// Release identifies one Firefox version and its release date.
type Release struct {
	Version string
	Date    time.Time
}

func (r Release) String() string {
	return fmt.Sprintf("Firefox %s (%s)", r.Version, r.Date.Format("2006-01-02"))
}

// Build is one installable Firefox version together with the set of corpus
// features it implements. The paper's methodology tests each feature against
// each historical build; Has is that test.
type Build struct {
	Release Release
	// features[featureID] reports whether the feature exists in this
	// build.
	features []bool
}

// Has reports whether the build implements the feature.
func (b *Build) Has(f *webidl.Feature) bool {
	if f.ID < 0 || f.ID >= len(b.features) {
		return false
	}
	return b.features[f.ID]
}

// History is the full release line with per-feature introduction data.
type History struct {
	releases []Release
	builds   []*Build
	intro    []int // feature ID → index into releases
	reg      *webidl.Registry
}

// date is a helper for constructing UTC dates.
func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// calendar generates the 186-release calendar: the pre-rapid-release majors,
// the 6-weekly rapid-release majors 5.0..46.0, and deterministic point
// releases filling out the line, sorted by date.
func calendar() []Release {
	majors := []Release{
		{"1.0", date(2004, time.November, 9)},
		{"1.5", date(2005, time.November, 29)},
		{"2.0", date(2006, time.October, 24)},
		{"3.0", date(2008, time.June, 17)},
		{"3.5", date(2009, time.June, 30)},
		{"3.6", date(2010, time.January, 21)},
		{"4.0", date(2011, time.March, 22)},
	}
	// Rapid release: 5.0 on 2011-06-21, then every 6 weeks through 46.0.
	rapid := date(2011, time.June, 21)
	for v := 5; v <= 46; v++ {
		majors = append(majors, Release{fmt.Sprintf("%d.0", v), rapid})
		rapid = rapid.AddDate(0, 0, 42)
	}
	releases := append([]Release(nil), majors...)
	// Point releases: deterministically interleave x.0.N chemspill-style
	// updates after each major until the calendar holds 186 versions.
	// Earlier majors received more point releases, which the round-robin
	// with a declining cap reproduces.
	for patch := 1; len(releases) < ReleaseCount; patch++ {
		for _, m := range majors {
			if len(releases) >= ReleaseCount {
				break
			}
			// Pre-rapid majors got long point-release trains;
			// rapid majors got at most two.
			maxPatches := 12
			if m.Date.Year() >= 2011 {
				maxPatches = 2
			}
			if patch > maxPatches {
				continue
			}
			releases = append(releases, Release{
				Version: fmt.Sprintf("%s.%d", m.Version, patch),
				Date:    m.Date.AddDate(0, 0, 14*patch),
			})
		}
	}
	sort.Slice(releases, func(i, j int) bool {
		if !releases[i].Date.Equal(releases[j].Date) {
			return releases[i].Date.Before(releases[j].Date)
		}
		return releases[i].Version < releases[j].Version
	})
	return releases
}

// New builds the history for a feature corpus. Feature introduction dates
// are deterministic in the corpus: a standard's rank-0 feature lands in the
// first release of the standard's catalog introduction year, and deeper
// ranks are spread over the following three years by a stable hash of the
// feature name.
func New(reg *webidl.Registry) *History {
	releases := calendar()
	h := &History{
		releases: releases,
		intro:    make([]int, len(reg.Features)),
		reg:      reg,
	}

	firstIn := func(t time.Time) int {
		idx := sort.Search(len(releases), func(i int) bool {
			return !releases[i].Date.Before(t)
		})
		if idx == len(releases) {
			idx = len(releases) - 1
		}
		return idx
	}

	for _, f := range reg.Features {
		std := standards.MustByAbbrev(f.Standard)
		era := date(std.IntroYear, time.January, 1)
		if f.Rank == 0 {
			h.intro[f.ID] = firstIn(era)
			continue
		}
		hash := fnv.New32a()
		hash.Write([]byte(f.Name()))
		spreadDays := int(hash.Sum32() % (3 * 365))
		h.intro[f.ID] = firstIn(era.AddDate(0, 0, spreadDays))
	}

	// Materialize one Build per release with its cumulative feature set.
	h.builds = make([]*Build, len(releases))
	for i := range releases {
		b := &Build{Release: releases[i], features: make([]bool, len(reg.Features))}
		for id, ri := range h.intro {
			b.features[id] = ri <= i
		}
		h.builds[i] = b
	}
	return h
}

// Releases returns the full calendar in chronological order. The returned
// slice is a copy.
func (h *History) Releases() []Release {
	out := make([]Release, len(h.releases))
	copy(out, h.releases)
	return out
}

// Builds returns the materialized builds in chronological order. The
// returned slice is shared; callers must not mutate it.
func (h *History) Builds() []*Build { return h.builds }

// Introduced returns the earliest release implementing the feature,
// found by scanning the historical builds exactly as the paper's
// methodology does (binary search over the monotone feature sets).
func (h *History) Introduced(f *webidl.Feature) Release {
	idx := sort.Search(len(h.builds), func(i int) bool {
		return h.builds[i].Has(f)
	})
	if idx == len(h.builds) {
		// Every corpus feature exists in the final build by
		// construction; reaching here indicates corruption.
		panic(fmt.Sprintf("firefoxhist: feature %s missing from all builds", f.Name()))
	}
	return h.builds[idx].Release
}

// StandardDate implements the paper's standard-dating rule: the
// implementation date of the standard's most popular feature, where
// popularity is supplied by the measurement (feature → sites using it).
// Ties — in particular standards none of whose features were ever seen —
// fall back to the earliest feature introduction available.
func (h *History) StandardDate(a standards.Abbrev, sitesUsing func(*webidl.Feature) int) (Release, bool) {
	fs := h.reg.OfStandard(a)
	if len(fs) == 0 {
		return Release{}, false
	}
	best := fs[0]
	bestSites := sitesUsing(best)
	earliest := h.Introduced(fs[0])
	for _, f := range fs[1:] {
		if s := sitesUsing(f); s > bestSites {
			best, bestSites = f, s
		}
		if r := h.Introduced(f); r.Date.Before(earliest.Date) {
			earliest = r
		}
	}
	if bestSites == 0 {
		return earliest, true
	}
	return h.Introduced(best), true
}
