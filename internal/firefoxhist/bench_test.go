package firefoxhist

import (
	"testing"

	"repro/internal/webidl"
)

func BenchmarkNewHistory(b *testing.B) {
	reg, err := webidl.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(reg)
	}
}

func BenchmarkIntroduced(b *testing.B) {
	reg, err := webidl.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	h := New(reg)
	f := reg.TopFeature("AJAX")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Introduced(f)
	}
}
