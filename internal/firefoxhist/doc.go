// Package firefoxhist models the historical Firefox release line the paper
// uses to date browser features (§3.4).
//
// The paper examines the 186 versions of Firefox released since 2004 and,
// for each of the 1,392 features of the current (46.0.1) corpus, finds the
// earliest release in which the feature appears; that release's date is the
// feature's "implementation date". A standard's implementation date is the
// introduction date of its currently most popular feature, with ties broken
// by the earliest feature available.
//
// This package reproduces both the release calendar (major trains from 1.0
// in November 2004 through 46.0 in April 2016, with point releases, 186
// versions in total) and the feature-dating procedure: every release is
// materialized as a Build exposing its feature set, and Introduced performs
// the same build-by-build search the paper describes.
package firefoxhist
