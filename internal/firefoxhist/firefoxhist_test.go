package firefoxhist

import (
	"testing"

	"repro/internal/standards"
	"repro/internal/webidl"
)

func testHistory(t testing.TB) (*History, *webidl.Registry) {
	t.Helper()
	reg, err := webidl.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	return New(reg), reg
}

func TestCalendarCount(t *testing.T) {
	rels := calendar()
	if len(rels) != ReleaseCount {
		t.Fatalf("calendar has %d releases, want %d", len(rels), ReleaseCount)
	}
}

func TestCalendarSortedAndUnique(t *testing.T) {
	rels := calendar()
	seen := map[string]bool{}
	for i, r := range rels {
		if seen[r.Version] {
			t.Errorf("duplicate version %s", r.Version)
		}
		seen[r.Version] = true
		if i > 0 && rels[i].Date.Before(rels[i-1].Date) {
			t.Errorf("releases out of order at %d: %s before %s", i, rels[i], rels[i-1])
		}
	}
}

func TestCalendarSpan(t *testing.T) {
	rels := calendar()
	if got := rels[0].Version; got != "1.0" {
		t.Errorf("first release = %s, want 1.0", got)
	}
	if y := rels[0].Date.Year(); y != 2004 {
		t.Errorf("first release year = %d, want 2004", y)
	}
	last := rels[len(rels)-1]
	if y := last.Date.Year(); y != 2016 {
		t.Errorf("last release year = %d, want 2016", y)
	}
}

func TestIntroducedMatchesBuildScan(t *testing.T) {
	h, reg := testHistory(t)
	// Linear scan must agree with the binary search for a sample.
	for _, f := range reg.Features[:40] {
		want := Release{}
		for _, b := range h.Builds() {
			if b.Has(f) {
				want = b.Release
				break
			}
		}
		got := h.Introduced(f)
		if got != want {
			t.Errorf("%s: Introduced = %s, linear scan = %s", f.Name(), got, want)
		}
	}
}

func TestBuildsMonotone(t *testing.T) {
	h, reg := testHistory(t)
	// Once a feature appears it never disappears (vendors rarely remove
	// features — the premise of the paper).
	builds := h.Builds()
	for _, f := range reg.Features[:60] {
		present := false
		for _, b := range builds {
			has := b.Has(f)
			if present && !has {
				t.Fatalf("feature %s disappeared in %s", f.Name(), b.Release)
			}
			present = has
		}
		if !present {
			t.Fatalf("feature %s never appeared", f.Name())
		}
	}
}

func TestTopFeatureLandsInIntroYear(t *testing.T) {
	h, reg := testHistory(t)
	for _, std := range standards.Catalog() {
		top := reg.TopFeature(std.Abbrev)
		if top == nil {
			continue
		}
		got := h.Introduced(top).Date.Year()
		// The first release at or after Jan 1 of the intro year may
		// itself be dated in that year or the one before ties; the
		// calendar guarantees a release in every year, so the year
		// must match exactly.
		if got != std.IntroYear {
			t.Errorf("standard %s top feature introduced %d, want %d", std.Abbrev, got, std.IntroYear)
		}
	}
}

func TestAJAXOldVibrationNewer(t *testing.T) {
	h, reg := testHistory(t)
	ajax := h.Introduced(reg.TopFeature("AJAX"))
	vib := h.Introduced(reg.TopFeature("V"))
	slc := h.Introduced(reg.TopFeature("SLC"))
	if !ajax.Date.Before(vib.Date) {
		t.Errorf("AJAX (%s) should predate Vibration (%s)", ajax, vib)
	}
	// Paper §5.6: Vibration has been available longer than Selectors API
	// Level 1.
	if !vib.Date.Before(slc.Date) {
		t.Errorf("Vibration (%s) should predate Selectors L1 (%s)", vib, slc)
	}
}

func TestStandardDateUsesPopularity(t *testing.T) {
	h, reg := testHistory(t)
	fs := reg.OfStandard("HTML")
	// Pretend the rank-5 feature is the most popular.
	sites := func(f *webidl.Feature) int {
		if f.ID == fs[5].ID {
			return 100
		}
		return 1
	}
	rel, ok := h.StandardDate("HTML", sites)
	if !ok {
		t.Fatal("StandardDate(HTML) failed")
	}
	if want := h.Introduced(fs[5]); rel != want {
		t.Errorf("StandardDate = %s, want %s (rank-5 intro)", rel, want)
	}
}

func TestStandardDateTieFallsBackToEarliest(t *testing.T) {
	h, reg := testHistory(t)
	// A standard with zero usage dates to its earliest feature.
	zero := func(*webidl.Feature) int { return 0 }
	rel, ok := h.StandardDate("SW", zero)
	if !ok {
		t.Fatal("StandardDate(SW) failed")
	}
	earliest := h.Introduced(reg.OfStandard("SW")[0])
	for _, f := range reg.OfStandard("SW") {
		if r := h.Introduced(f); r.Date.Before(earliest.Date) {
			earliest = r
		}
	}
	if rel != earliest {
		t.Errorf("StandardDate(SW, zero) = %s, want earliest %s", rel, earliest)
	}
}

func TestReleasesReturnsCopy(t *testing.T) {
	h, _ := testHistory(t)
	a := h.Releases()
	a[0].Version = "mutated"
	b := h.Releases()
	if b[0].Version == "mutated" {
		t.Fatal("Releases returned shared storage")
	}
}

func TestHasOutOfRange(t *testing.T) {
	h, _ := testHistory(t)
	b := h.Builds()[0]
	if b.Has(&webidl.Feature{ID: -1}) || b.Has(&webidl.Feature{ID: 1 << 20}) {
		t.Fatal("Has accepted out-of-range feature ID")
	}
}
