package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Releasepair flags functions that obtain a pooled resource — a page from
// Browser.Load, or a value from a sync.Pool's Get — and have a return
// path on which the resource is never handed back. Since PR 4 pages and
// runtimes are pool-recycled; a Load without a matching Release doesn't
// crash, it silently degrades the fast path back to cold allocations (and
// a runtime that never returns to the pool never gets its counters
// recycled), so the leak only shows up as a perf regression long after
// the commit that introduced it.
//
// For each acquisition `v := b.Load(...)` / `v := pool.Get()` the
// function is clean when any of these hold:
//
//   - a deferred release covers every path: `defer b.Release(v)` (or a
//     deferred closure that releases v);
//   - ownership escapes: v is returned, stored into a field, global,
//     map, or slice element, sent on a channel, or handed to a goroutine
//     — some other code is now responsible for it;
//   - every return after the acquisition is preceded by a release on the
//     straight-line path (the analyzer checks lexically: a return between
//     the acquisition and the first release is a leak, except returns
//     inside an `if` guarding the acquisition's own error — on the error
//     path Load returns no page to release).
//
// The lexical check is an approximation: it catches the
// early-return-between-Load-and-Release class (the bug PR 4 made
// possible) and accepts the two idioms the tree actually uses (defer, and
// release-before-every-exit). A function with genuinely exotic flow can
// `//lint:allow releasepair` with a comment saying who releases.
var Releasepair = &Analyzer{
	Name: "releasepair",
	Doc:  "flag return paths that leak a pooled page/runtime obtained from Browser.Load or pool.Get",
	Run:  runReleasepair,
}

// releaseFuncNames are callee names that hand a pooled resource back.
var releaseFuncNames = map[string]bool{"Release": true, "Put": true}

func runReleasepair(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range functions(f) {
			checkReleasepairFunc(pass, fn)
		}
	}
	return nil
}

// acquisition is one pooled-resource obtain site inside a function.
type acquisition struct {
	obj    types.Object // the variable bound to the resource
	pos    token.Pos    // position of the acquiring call
	what   string       // "Browser.Load" or "Pool.Get"
	errObj types.Object // the error bound in the same assignment, if any
}

func checkReleasepairFunc(pass *Pass, fn funcBody) {
	info := pass.TypesInfo
	var acqs []acquisition

	// Collect acquisitions belonging to this function (not to nested
	// literals — those are their own functions).
	inspectOwn(fn, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, what := acquiringCall(info, as.Rhs[0])
		if call == nil || len(as.Lhs) == 0 {
			return
		}
		obj := identObj(info, ast.Unparen(as.Lhs[0]))
		if obj == nil || obj.Name() == "_" {
			return
		}
		acq := acquisition{obj: obj, pos: call.Pos(), what: what}
		if len(as.Lhs) > 1 {
			acq.errObj = identObj(info, ast.Unparen(as.Lhs[1]))
		}
		acqs = append(acqs, acq)
	})
	if len(acqs) == 0 {
		return
	}

	for _, acq := range acqs {
		checkAcquisition(pass, fn, acq)
	}
}

// acquiringCall recognizes the acquire forms, unwrapping a type assertion
// (`p, _ := pool.Get().(*Page)` is the pool idiom).
func acquiringCall(info *types.Info, rhs ast.Expr) (*ast.CallExpr, string) {
	e := rhs
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.TypeAssertExpr:
			e = v.X
			continue
		}
		break
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	fnObj := calleeFunc(info, call)
	if fnObj == nil {
		return nil, ""
	}
	sig, ok := fnObj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	recv := namedType(sig.Recv().Type())
	if recv == nil {
		return nil, ""
	}
	switch {
	case fnObj.Name() == "Load" && recv.Obj().Name() == "Browser":
		return call, "Browser.Load"
	case fnObj.Name() == "Get" && recv.Obj().Name() == "Pool" && recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "sync":
		return call, "Pool.Get"
	}
	return nil, ""
}

func checkAcquisition(pass *Pass, fn funcBody, acq acquisition) {
	info := pass.TypesInfo

	// 1. A deferred release (direct or in a deferred closure) covers
	// every return path. Releases inside nested literals also count for
	// the never-released check below: a closure that releases v is
	// plausibly invoked on every path, and assuming so keeps the
	// analyzer quiet on correct code (the early-return check still
	// fires on the paths we can see).
	deferred := false
	var releases []token.Pos
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			if callReleases(info, s.Call, acq.obj) || closureReleases(info, s.Call, acq.obj) {
				deferred = true
			}
		case *ast.CallExpr:
			if callReleases(info, s, acq.obj) {
				releases = append(releases, s.Pos())
			}
		}
		return true
	})
	if deferred {
		return
	}

	// 2. Ownership escapes: someone else releases.
	if escapes(info, fn, acq.obj) {
		return
	}

	// 3. No release anywhere: the resource always leaks.
	if len(releases) == 0 {
		pass.Reportf(acq.pos,
			"%s result %q is never released in this function and does not escape: every path leaks the pooled resource (call Release/Put, or defer it)",
			acq.what, acq.obj.Name())
		return
	}

	// 4. Early return between the acquisition and the first release.
	first := releases[0]
	for _, r := range releases {
		if r < first {
			first = r
		}
	}
	inspectOwn(fn, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= acq.pos || ret.Pos() >= first {
			return
		}
		if errGuarded(info, fn, ret, acq.errObj) {
			return
		}
		pass.Reportf(ret.Pos(),
			"return leaks %q (%s at %s is released only later): release before returning or defer the release",
			acq.obj.Name(), acq.what, pass.Fset.Position(acq.pos))
	})
}

// callReleases reports whether the call is a Release/Put receiving obj as
// an argument, or a method call on obj itself named like a release.
func callReleases(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	fnObj := calleeFunc(info, call)
	if fnObj == nil || !releaseFuncNames[fnObj.Name()] {
		return false
	}
	for _, arg := range call.Args {
		if identObj(info, ast.Unparen(arg)) == obj {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if identObj(info, ast.Unparen(sel.X)) == obj {
			return true
		}
	}
	return false
}

// closureReleases reports whether the deferred call is a func literal
// whose body releases obj.
func closureReleases(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && callReleases(info, c, obj) {
			found = true
		}
		return !found
	})
	return found
}

// escapes reports whether obj's value leaves the function's custody:
// returned, stored into non-local storage, sent, captured by a goroutine,
// or aliased into another variable (the alias may be the one released).
func escapes(info *types.Info, fn funcBody, obj types.Object) bool {
	esc := false
	inspectOwn(fn, func(n ast.Node) {
		if esc {
			return
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			// Only the value itself escaping counts — returning
			// len(v) or v.Field() is a read, not a transfer.
			for _, r := range s.Results {
				if identObj(info, unwrap(info, r)) == obj {
					esc = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if identObj(info, ast.Unparen(rhs)) != obj {
					continue
				}
				if i < len(s.Lhs) {
					switch lhs := ast.Unparen(s.Lhs[i]).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						esc = true // field/element/pointer store
					case *ast.Ident:
						if lhs.Name != "_" { // discard is not an alias
							esc = true // alias: the alias may be released
						}
					}
				} else {
					esc = true
				}
			}
		case *ast.SendStmt:
			if containsIdentObj(info, s.Value, obj) {
				esc = true
			}
		case *ast.GoStmt:
			if containsIdentObj(info, s.Call, obj) {
				esc = true
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				if containsIdentObj(info, el, obj) {
					esc = true
				}
			}
		}
	})
	return esc
}

// errGuarded reports whether the return statement sits inside an if whose
// condition tests the acquisition's own error — the path on which there
// is no resource to release.
func errGuarded(info *types.Info, fn funcBody, ret *ast.ReturnStmt, errObj types.Object) bool {
	if errObj == nil || errObj.Name() == "_" {
		return false
	}
	guarded := false
	inspectOwn(fn, func(n ast.Node) {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !containsIdentObj(info, ifs.Cond, errObj) {
			return
		}
		if ret.Pos() >= ifs.Body.Pos() && ret.End() <= ifs.Body.End() {
			guarded = true
		}
	})
	return guarded
}

// inspectOwn walks the function body without descending into nested
// function literals (which are analyzed as functions of their own).
func inspectOwn(fn funcBody, visit func(ast.Node)) {
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		visit(n)
		return true
	})
}
