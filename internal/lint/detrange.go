package lint

import (
	"go/ast"
	"go/types"
)

// Detrange flags `range` over a map in a deterministic package when the
// iteration's results flow — in map order — into something
// order-sensitive: an append to a slice that outlives the loop, or bytes
// written to an output (fmt.Fprintf, Writer.WriteString, ...). Go
// randomizes map iteration order per run, so such a loop is the classic
// silent killer of byte-identical logs: it passes every test until two
// runs happen to iterate differently.
//
// The sanctioned idioms are recognized and not flagged:
//
//   - drain-then-sort: append the keys (or values) to a slice inside the
//     loop, then sort that slice later in the same function before use;
//   - commutative folds: loops whose body only does order-insensitive
//     writes (counter increments, map inserts, sum accumulation) have no
//     order-sensitive sink and never trigger.
//
// A loop whose nondeterministic order is genuinely fine (e.g. the slice
// is used as an unordered work pool) escapes with `//lint:allow detrange`.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc:  "flag map iteration whose order reaches logs, reports, or appends without an intervening sort",
	Run:  runDetrange,
}

// detrangeWriterMethods are method names whose call inside a map-range
// body means bytes are being emitted in iteration order.
var detrangeWriterMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// detrangeFmtSinks are fmt functions that emit directly to an output in
// call order. (Sprintf and friends build values; those only matter if the
// value is then appended or written, which the other sinks catch.)
var detrangeFmtSinks = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runDetrange(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range functions(f) {
			checkDetrangeFunc(pass, fn)
		}
	}
	return nil
}

func checkDetrangeFunc(pass *Pass, fn funcBody) {
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fn.node {
			return false // literals are analyzed as their own functions
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || !isMapType(tv.Type) {
			return true
		}
		checkMapRange(pass, fn, rng)
		return true
	})
}

func checkMapRange(pass *Pass, fn funcBody, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			// A nested map range reports on its own; don't double up.
			if tv, ok := info.Types[s.X]; ok && isMapType(tv.Type) && s != rng {
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(s.Lhs) {
					continue
				}
				dest := identObj(info, ast.Unparen(s.Lhs[i]))
				if dest == nil {
					// Append into a field or element
					// (x.f = append(x.f, ...)): outlives the loop
					// and cannot be tracked to a later sort.
					pass.Reportf(call.Pos(),
						"append inside range over map %s: iteration order is random and the destination cannot be sorted here; drain into a local slice and sort it",
						exprString(rng.X))
					continue
				}
				if dest.Pos() >= rng.Body.Pos() && dest.Pos() <= rng.Body.End() {
					continue // loop-local slice: order scoped to one iteration
				}
				if !sortedAfter(info, fn, rng, dest) {
					pass.Reportf(call.Pos(),
						"appending to %s while ranging over map %s without a later sort: iteration order is random and will break byte-identical output (sort %s before use, or //lint:allow detrange)",
						dest.Name(), exprString(rng.X), dest.Name())
				}
			}
		case *ast.CallExpr:
			if fnObj := calleeFunc(info, s); fnObj != nil && fnObj.Pkg() != nil {
				if fnObj.Pkg().Path() == "fmt" && detrangeFmtSinks[fnObj.Name()] {
					pass.Reportf(s.Pos(),
						"fmt.%s inside range over map %s emits in random iteration order; sort the keys first",
						fnObj.Name(), exprString(rng.X))
					return true
				}
				if sig, ok := fnObj.Type().(*types.Signature); ok && sig.Recv() != nil && detrangeWriterMethods[fnObj.Name()] {
					pass.Reportf(s.Pos(),
						"%s call inside range over map %s writes bytes in random iteration order; sort the keys first",
						fnObj.Name(), exprString(rng.X))
				}
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether the slice object is passed to a sort —
// sort.Strings, sort.Ints, sort.Slice, slices.Sort* — anywhere after the
// range statement in the enclosing function. Lexical position is the
// right notion here: the drain-then-sort idiom always sorts downstream of
// the loop in straight-line code.
func sortedAfter(info *types.Info, fn funcBody, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fnObj := calleeFunc(info, call)
		if fnObj == nil || fnObj.Pkg() == nil {
			return true
		}
		pkg := fnObj.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if containsIdentObj(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	default:
		return "expression"
	}
}
