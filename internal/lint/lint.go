package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer (Name, Doc, Run over a Pass) so
// the checks can migrate to the upstream driver wholesale if the x/tools
// dependency ever lands; until then the driver in this package is a
// self-contained stdlib-only reimplementation of the subset we need.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppression directives. Lower-case, no
	// spaces.
	Name string
	// Doc is the one-paragraph description `repolint -help` prints.
	Doc string
	// Run inspects one type-checked package and reports findings via
	// Pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding: a position and a message, already attributed
// to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer runs one analyzer over one type-checked package and returns
// its findings with `//lint:allow <name>` suppressions already filtered
// out and the remainder sorted by position. This is the single entry point
// both the repolint driver and the linttest fixture runner use, so the
// suppression semantics can never diverge between CI and the analyzer's
// own tests.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	allowed := allowedLines(a.Name, fset, files)
	var out []Diagnostic
	for _, d := range pass.diags {
		if allowed[lineKey{d.Pos.Filename, d.Pos.Line}] {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out, nil
}

type lineKey struct {
	file string
	line int
}

// allowedLines collects the lines suppressed for the named analyzer: a
// `//lint:allow <name>` comment silences findings on its own line and on
// the line directly below it (so the directive can sit either at the end
// of the offending line or on its own line above it). `//lint:allow all`
// silences every analyzer — reserve it for generated code.
func allowedLines(name string, fset *token.FileSet, files []*ast.File) map[lineKey]bool {
	allowed := make(map[lineKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
				match := false
				for _, n := range strings.Fields(rest) {
					if n == name || n == "all" {
						match = true
					}
				}
				if !match {
					continue
				}
				pos := fset.Position(c.Pos())
				allowed[lineKey{pos.Filename, pos.Line}] = true
				allowed[lineKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return allowed
}

// DeterministicPackages lists the packages whose execution must be
// byte-reproducible from the survey seed alone: everything on the path
// from site generation through page load, script execution, monkey
// testing, and measurement to the log record. detrange and nowrand only
// fire inside these packages — a heartbeat in dist or an uptime counter
// in serve is allowed to look at the clock.
var DeterministicPackages = []string{
	"blocking",
	"browser",
	"crawler",
	"dom",
	"extension",
	"gremlins",
	"measure",
	"synthweb",
	"webapi",
	"webscript",
}

// Rule binds an analyzer to the set of packages it applies to. The
// package filter lives here in the suite, not inside the analyzers:
// an analyzer checks whatever package it is handed (which is what lets
// the fixture tests drive them directly), and the suite decides where
// each invariant holds.
type Rule struct {
	Analyzer *Analyzer
	// Match reports whether the analyzer applies to the package with
	// this import path.
	Match func(pkgPath string) bool
}

func matchBase(bases ...string) func(string) bool {
	set := make(map[string]bool, len(bases))
	for _, b := range bases {
		set[b] = true
	}
	return func(pkgPath string) bool { return set[path.Base(pkgPath)] }
}

func matchAll(string) bool { return true }

// Suite returns the repository's analyzer suite: every analyzer paired
// with the packages its invariant governs.
func Suite() []Rule {
	deterministic := matchBase(DeterministicPackages...)
	return []Rule{
		{Analyzer: Detrange, Match: deterministic},
		{Analyzer: Nowrand, Match: deterministic},
		// The snapshot type's home package is the one place allowed to
		// build (and therefore write) snapshots.
		{Analyzer: Snapmut, Match: func(p string) bool { return path.Base(p) != "stats" }},
		{Analyzer: Releasepair, Match: matchAll},
		{Analyzer: Framecap, Match: matchBase("logstore", "dist")},
	}
}

// Analyzers returns every analyzer in the suite, for -help listings.
func Analyzers() []*Analyzer {
	var out []*Analyzer
	seen := make(map[string]bool)
	for _, r := range Suite() {
		if !seen[r.Analyzer.Name] {
			seen[r.Analyzer.Name] = true
			out = append(out, r.Analyzer)
		}
	}
	return out
}
