package lint

import (
	"go/ast"
	"go/types"
)

// Nowrand bans ambient nondeterminism — the wall clock and the global
// math/rand source — inside the deterministic packages. Every visit must
// replay bit-for-bit from the survey seed, so randomness must flow through
// an explicitly seeded *rand.Rand and time must be the simulated page
// clock, never the host's.
//
// Allowed:
//   - rand.New, rand.NewSource, rand.NewZipf — constructing a seeded
//     generator is the sanctioned idiom (rng := rand.New(rand.NewSource(seed))).
//   - Methods on a *rand.Rand value (rng.Intn, rng.Float64, ...): those
//     draw from the seeded stream.
//
// Flagged:
//   - time.Now, time.Since: wall-clock reads.
//   - Package-level math/rand draws (rand.Intn, rand.Float64,
//     rand.Shuffle, rand.Perm, rand.Seed, rand.Read, ...): those hit the
//     process-global source, which is shared across goroutines and seeded
//     once per process — two runs of the same survey diverge.
//
// Genuinely wall-clock code (a heartbeat, a progress log) escapes with
// `//lint:allow nowrand` on or above the offending line.
var Nowrand = &Analyzer{
	Name: "nowrand",
	Doc:  "flag time.Now/time.Since and global math/rand draws in deterministic packages",
	Run:  runNowrand,
}

// nowrandAllowedRand are the math/rand package-level functions that do not
// draw from the global source.
var nowrandAllowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runNowrand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Methods (receiver != nil) are fine: rng.Intn draws from
			// the seeded stream, not the global source.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					pass.Reportf(call.Pos(),
						"call to time.%s in a deterministic package: visits must replay from the seed alone (thread a simulated clock, or //lint:allow nowrand for genuine wall-clock code)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !nowrandAllowedRand[fn.Name()] {
					pass.Reportf(call.Pos(),
						"call to rand.%s draws from the process-global source: use a seeded *rand.Rand (rng := rand.New(rand.NewSource(seed)))",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
