// Package lint is repolint: a static-analysis suite that turns the
// repository's prose invariants — determinism, snapshot immutability,
// resource lifecycle, decoder hardening — into build-breaking checks.
// The analyzers mirror the golang.org/x/tools/go/analysis shapes
// (Analyzer, Pass, Diagnostic) but are built on the standard library
// alone, because this module vendors nothing; if x/tools ever becomes a
// dependency, each analyzer ports by swapping the Pass type.
//
// # The analyzers
//
//   - detrange flags map ranges whose iteration order can reach output:
//     an append to an outer slice with no later sort, or a direct
//     print/write inside the loop. Commutative folds and drain-then-sort
//     are fine — the point is that bytes leaving a deterministic package
//     must not depend on map order.
//   - nowrand bans time.Now/time.Since and the process-global math/rand
//     functions in deterministic packages. The seeded idiom — a
//     *rand.Rand built with rand.New(rand.NewSource(...)) and drawn from
//     via methods — is untouched.
//   - snapmut flags writes through values reachable from a
//     *stats.Snapshot outside internal/stats. Snapshots are shared
//     immutable epochs; a mutation corrupts every concurrent reader.
//   - releasepair flags functions that obtain a pooled resource
//     (Browser.Load page, sync.Pool Get) with a return path that never
//     releases it. Defer-release, release-before-every-return, and
//     genuine ownership transfer (return/store/send) all pass.
//   - framecap flags make() sized by a wire-read length (ReadUvarint and
//     friends) with no intervening bound check — two bytes on the wire
//     must not allocate 2^60 elements.
//
// # Scope
//
// Analyzers are written unscoped and directly testable; Suite attaches
// the package filters. detrange and nowrand run only on the
// DeterministicPackages (the seed-to-bytes pipeline); snapmut runs
// everywhere except internal/stats itself; releasepair everywhere;
// framecap on the wire packages (logstore, dist). cmd/repolint applies
// Suite to whatever packages it is pointed at; the lint-smoke CI step
// runs the fixture tests under testdata/src, which are the analyzers'
// executable specification.
//
// # Suppressing a finding
//
// A `//lint:allow <name>` comment on the flagged line (or the line
// above) suppresses that analyzer there:
//
//	buf := make([]byte, n) //lint:allow framecap — length is our own encoder's
//
// Use it only when the invariant genuinely does not apply (a trusted
// same-process round-trip, an ownership model the heuristic cannot see)
// and say why in the comment — the directive is a reviewed claim, not an
// off switch. `//lint:allow all` exists for generated code. If the same
// suppression keeps recurring, fix the analyzer's heuristic instead.
//
// # Adding an analyzer
//
//  1. Write the Analyzer in its own file; Run receives a *Pass with the
//     parsed files and full types.Info and calls pass.Reportf. Keep it
//     unscoped — package filtering belongs in Suite.
//  2. Add fixtures under testdata/src/<name>/ with `// want "regexp"`
//     annotations on every line that must fire and none elsewhere, plus
//     an allow.go proving the directive path. Wire a test in lint_test.go
//     via linttest.Run.
//  3. Register it in Analyzers and, with its package filter, in Suite.
//     TestTreeIsClean then enforces it over the whole module, and
//     cmd/repolint picks it up with no further wiring.
package lint
