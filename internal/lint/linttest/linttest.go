// Package linttest drives a lint.Analyzer over an annotated fixture
// package, in the style of golang.org/x/tools/go/analysis/analysistest:
// fixture sources live under testdata/src/<pkg>, and every line where the
// analyzer must fire carries a `// want "regexp"` comment (several
// patterns per line are allowed). The runner fails the test when a
// diagnostic appears on an unannotated line, when an annotation goes
// unmatched, or when a message does not match its pattern.
//
// Because `//lint:allow` filtering happens inside lint.RunAnalyzer — the
// same entry point cmd/repolint uses — a fixture line carrying both a
// violation and an allow directive (and no want annotation) exercises the
// suppression path exactly as CI would see it.
//
// Fixture packages may import the standard library (resolved through the
// toolchain's export data) and sibling fixture packages under the same
// testdata/src root (type-checked from source), so a fixture can mirror
// real shapes like a stats.Snapshot without depending on the real tree.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run checks the analyzer against the fixture package at srcRoot/pkg.
func Run(t *testing.T, a *lint.Analyzer, srcRoot, pkg string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{root: srcRoot, fset: fset, pkgs: make(map[string]*types.Package)}
	files, _, info, err := ld.check(pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	tpkg := ld.pkgs[pkg]

	diags, err := lint.RunAnalyzer(a, fset, files, tpkg, info)
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, pkg, err)
	}

	wants, err := parseWants(fset, files)
	if err != nil {
		t.Fatalf("fixture %s: %v", pkg, err)
	}
	compare(t, a.Name, diags, wants)
}

// want is one expectation: a pattern at a file:line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts `// want "re" ["re" ...]` annotations.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				n := 0
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%s: malformed want annotation %q", pos, c.Text)
					}
					lit, remainder, err := cutQuoted(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: %v", pos, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, lit, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
					rest = strings.TrimSpace(remainder)
					n++
				}
				if n == 0 {
					return nil, fmt.Errorf("%s: want annotation with no patterns", pos)
				}
			}
		}
	}
	return wants, nil
}

// cutQuoted splits one Go string literal off the front of s.
func cutQuoted(s string) (lit, rest string, err error) {
	if s[0] == '`' {
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in want annotation")
		}
		return s[1 : 1+end], s[end+2:], nil
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			unq, err := strconv.Unquote(s[:i+1])
			return unq, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated string in want annotation")
}

func compare(t *testing.T, name string, diags []lint.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s: %s", name, d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", name, w.pattern, w.file, w.line)
		}
	}
}

// fixtureLoader type-checks fixture packages, resolving sibling fixture
// imports from source and everything else through the toolchain's export
// data.
type fixtureLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*types.Package
	std  types.ImporterFrom
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

func (ld *fixtureLoader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if fi, err := os.Stat(filepath.Join(ld.root, path)); err == nil && fi.IsDir() {
		_, _, _, err := ld.check(path)
		return ld.pkgs[path], err
	}
	if ld.std == nil {
		std, err := stdImporter(ld.fset, ld.root)
		if err != nil {
			return nil, err
		}
		ld.std = std
	}
	return ld.std.ImportFrom(path, dir, mode)
}

// check parses and type-checks one fixture package.
func (ld *fixtureLoader) check(pkg string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(ld.root, pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	conf := types.Config{Importer: ld, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	info := lint.NewTypesInfo()
	tpkg, err := conf.Check(pkg, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", pkg, err)
	}
	ld.pkgs[pkg] = tpkg
	return files, tpkg, info, nil
}

// stdImporter builds an export-data importer covering every non-fixture
// import mentioned anywhere under the fixture root: one `go list -deps
// -export` invocation compiles (or pulls from the build cache) export
// data for the transitive closure.
func stdImporter(fset *token.FileSet, root string) (types.ImporterFrom, error) {
	need, err := externalImports(root)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	if len(need) > 0 {
		args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, need...)
		cmd := exec.Command("go", args...)
		out, err := cmd.Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(need, " "), err, ee.Stderr)
			}
			return nil, err
		}
		type listed struct {
			ImportPath string
			Export     string
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listed
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("linttest: no export data for %q (fixture imports must be std or sibling fixtures)", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom), nil
}

// externalImports scans every fixture file under root and returns the
// sorted set of imports that are not sibling fixture packages.
func externalImports(root string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if fi, err := os.Stat(filepath.Join(root, p)); err == nil && fi.IsDir() {
				continue // sibling fixture
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}
