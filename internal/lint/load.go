package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Name       string
	Error      *struct{ Err string }
}

// Load lists, parses, and type-checks the packages matching the patterns
// (relative to dir), returning them sorted by import path. It is the
// module-aware package loader behind repolint — a stdlib-only stand-in for
// golang.org/x/tools/go/packages: `go list -deps -export -json` supplies
// the file lists plus compiled export data for every dependency, the
// target packages themselves are parsed from source (with comments, so
// `//lint:allow` directives survive), and imports resolve through the gc
// export-data importer so no dependency is ever re-type-checked from
// source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,ImportMap,DepOnly,Name,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := make(map[string]string)   // import path -> export data file
	importMap := make(map[string]string) // import-as path -> real path (vendoring etc.)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	lookup := func(ipath string) (io.ReadCloser, error) {
		if mapped, ok := importMap[ipath]; ok {
			ipath = mapped
		}
		f, ok := exports[ipath]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", ipath)
		}
		return os.Open(f)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}

	var pkgs []*Package
	for _, t := range targets {
		if t.Name == "main" && len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := NewTypesInfo()
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// NewTypesInfo allocates a types.Info with every map the analyzers
// consult. Shared with the linttest fixture loader so fixtures are
// type-checked with identical fidelity to real packages.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
