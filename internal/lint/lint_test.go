package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The fixture suites are the analyzers' specification: every `// want`
// line must fire, every unannotated line must stay quiet, and the
// allow.go files prove `//lint:allow` suppression end to end (the
// directive path runs through lint.RunAnalyzer — the same code CI runs).

func TestDetrange(t *testing.T) {
	linttest.Run(t, lint.Detrange, "testdata/src", "detrange")
}

func TestNowrand(t *testing.T) {
	linttest.Run(t, lint.Nowrand, "testdata/src", "nowrand")
}

func TestSnapmut(t *testing.T) {
	linttest.Run(t, lint.Snapmut, "testdata/src", "snapmut")
}

func TestReleasepair(t *testing.T) {
	linttest.Run(t, lint.Releasepair, "testdata/src", "releasepair")
}

func TestFramecap(t *testing.T) {
	linttest.Run(t, lint.Framecap, "testdata/src", "framecap")
}

// TestSuiteRulesCoverDeterministicPackages pins the suite wiring: the
// determinism analyzers fire exactly on the deterministic packages, the
// snapshot analyzer everywhere but stats, the decoder analyzer on the
// wire packages.
func TestSuiteRulesCoverDeterministicPackages(t *testing.T) {
	byName := make(map[string]lint.Rule)
	for _, r := range lint.Suite() {
		byName[r.Analyzer.Name] = r
	}
	if len(byName) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(byName))
	}
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"detrange", "repro/internal/dom", true},
		{"detrange", "repro/internal/crawler", true},
		{"detrange", "repro/internal/serve", false},
		{"detrange", "repro/internal/report", false},
		{"nowrand", "repro/internal/synthweb", true},
		{"nowrand", "repro/internal/dist", false},
		{"snapmut", "repro/internal/serve", true},
		{"snapmut", "repro/internal/stats", false},
		{"releasepair", "repro/internal/crawler", true},
		{"releasepair", "repro/cmd/serve", true},
		{"framecap", "repro/internal/logstore", true},
		{"framecap", "repro/internal/dist", true},
		{"framecap", "repro/internal/browser", false},
	}
	for _, c := range cases {
		r, ok := byName[c.analyzer]
		if !ok {
			t.Fatalf("suite is missing analyzer %q", c.analyzer)
		}
		if got := r.Match(c.pkg); got != c.want {
			t.Errorf("%s.Match(%q) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

// TestLoadTypesRealPackage smokes the go-list/export-data loader against
// a real module package.
func TestLoadTypesRealPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("loader invokes go list")
	}
	pkgs, err := lint.Load(".", "repro/internal/measure")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "repro/internal/measure" {
		t.Fatalf("loaded %v, want exactly repro/internal/measure", pkgs)
	}
	p := pkgs[0]
	if p.Types == nil || p.Types.Scope().Lookup("Bitset") == nil {
		t.Fatalf("measure.Bitset not in loaded package scope")
	}
	if len(p.Files) == 0 || len(p.TypesInfo.Types) == 0 {
		t.Fatalf("loaded package has no parsed files or type info")
	}
}

// TestTreeIsClean is the acceptance gate in test form: the full suite
// over the whole module reports nothing. A regression that reintroduces
// a map-range log path, a wall-clock read in deterministic code, a
// snapshot mutation, a leaked page, or an unchecked wire length fails
// this test even before the CI lint job runs repolint.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := lint.Load(".", "repro/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern repro/... should cover the tree", len(pkgs))
	}
	var sb strings.Builder
	for _, pkg := range pkgs {
		for _, rule := range lint.Suite() {
			if !rule.Match(pkg.ImportPath) {
				continue
			}
			diags, err := lint.RunAnalyzer(rule.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				sb.WriteString(d.Pos.String() + ": " + d.Analyzer + ": " + d.Message + "\n")
			}
		}
	}
	if sb.Len() > 0 {
		t.Errorf("repolint suite found violations in the tree:\n%s", sb.String())
	}
}
