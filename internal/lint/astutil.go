package lint

import (
	"go/ast"
	"go/types"
)

// funcBody is one analyzable function: a declaration or a function
// literal. Analyzers that reason about control flow (releasepair) treat
// each literal as its own function — an acquisition inside a closure must
// be balanced inside that closure's dynamic extent, not its parent's.
type funcBody struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
}

// functions returns every function declaration and function literal in
// the file, outermost first.
func functions(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{node: fn, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{node: fn, body: fn.Body})
		}
		return true
	})
	return out
}

// unwrap strips parens, type conversions to basic/named types, and type
// assertions, returning the expression that produces the value.
func unwrap(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		case *ast.CallExpr:
			// A conversion parses as a call with exactly one
			// argument whose "function" is a type.
			if len(v.Args) == 1 {
				if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
					e = v.Args[0]
					continue
				}
			}
			return e
		default:
			return e
		}
	}
}

// identObj resolves an identifier expression to its object, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil for builtins, conversions,
// and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fnObj, _ := info.Uses[id].(*types.Func)
	return fnObj
}

// namedType returns the named type behind t, unwrapping pointers and
// aliases, or nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// containsIdentObj reports whether obj is referenced anywhere inside n.
func containsIdentObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
