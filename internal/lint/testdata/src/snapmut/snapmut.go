// Fixture for the snapmut analyzer: any write rooted at a stats.Snapshot
// outside package stats must be flagged; mutating your own copy, or using
// the snapshot only to compute a key, must not.
package snapmut

import "stats"

// Bad: direct field writes.
func fieldWrites(snap *stats.Snapshot) {
	snap.Epoch = 7      // want `assignment writes through a stats\.Snapshot`
	snap.PerCase[0] = 1 // want `assignment writes through a stats\.Snapshot`
	snap.PerCase[2]++   // want `increment writes through a stats\.Snapshot`
	snap.Std["dom"] = 3 // want `assignment writes through a stats\.Snapshot`
}

// Bad: writing into a method result — views are read-only even when the
// implementation happens to copy today.
func methodResultWrites(snap *stats.Snapshot) {
	snap.FeatureSites()[0] = 9    // want `assignment writes through a stats\.Snapshot`
	snap.StandardSites()["css"]++ // want `increment writes through a stats\.Snapshot`
}

// Bad: delete and clear are writes too.
func builtinWrites(snap *stats.Snapshot) {
	delete(snap.Std, "dom") // want `delete writes through a stats\.Snapshot`
	clear(snap.PerCase)     // want `clear writes through a stats\.Snapshot`
}

// Good: mutate your own copy.
func mutateCopy(snap *stats.Snapshot) map[string]int {
	m := snap.CopyStd()
	m["dom"]++
	delete(m, "css")
	return m
}

// Good: the snapshot computes the key; the write lands in the cache.
func epochKeyedCache(cache map[uint64]int, snap *stats.Snapshot) {
	cache[snap.Epoch] = len(snap.PerCase)
}

// Good: reads are reads.
func reads(snap *stats.Snapshot) int {
	total := 0
	for _, n := range snap.FeatureSites() {
		total += n
	}
	return total + snap.StandardSites()["dom"]
}
