package detrange

// The //lint:allow escape hatch: this loop feeds an unordered work pool,
// so map order is genuinely fine. No `want` annotations here — the
// runner fails if the analyzer still reports through the directive.

func unorderedWorkPool(m map[string]bool) []string {
	var pool []string
	for k := range m {
		pool = append(pool, k) //lint:allow detrange — consumed as an unordered set
	}
	return pool
}

func directiveOnLineAbove(m map[string]bool) []string {
	var pool []string
	for k := range m {
		//lint:allow detrange — consumed as an unordered set
		pool = append(pool, k)
	}
	return pool
}
