// Fixture for the detrange analyzer: map iteration whose order reaches
// order-sensitive sinks must be flagged; the sanctioned idioms must not.
package detrange

import (
	"fmt"
	"sort"
	"strings"
)

// Bad: keys drain into a slice that outlives the loop and is never
// sorted — the slice's order changes run to run.
func drainNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appending to out while ranging over map m without a later sort`
	}
	return out
}

// Bad: emitting during iteration writes bytes in map order.
func printDuringRange(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside range over map m`
	}
}

// Bad: building output through a writer during iteration.
func buildDuringRange(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString call inside range over map m`
	}
	return b.String()
}

// Bad: append into a field cannot be tracked to a later sort.
type holder struct{ names []string }

func fieldAppend(h *holder, m map[string]bool) {
	for k := range m {
		h.names = append(h.names, k) // want `append inside range over map m`
	}
}

// Good: the drain-then-sort idiom — exactly what the deterministic
// packages do before any map contents reach a log or report.
func drainThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Good: sort.Slice also counts as the intervening sort.
func drainThenSortSlice(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Good: commutative folds have no order-sensitive sink.
func commutativeFold(m map[int]int64) (int64, map[int]int64) {
	var sum int64
	counts := make(map[int]int64)
	for id, n := range m {
		sum += n
		counts[id] += n
	}
	return sum, counts
}

// Good: a slice scoped to one iteration carries no cross-iteration
// order.
func loopLocalAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// Good: ranging over a slice is always ordered.
func sliceRange(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
