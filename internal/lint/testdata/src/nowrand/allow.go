package nowrand

import "time"

// Genuine wall-clock code — a heartbeat deadline — escapes with the
// directive. No want annotations: the runner fails if the analyzer still
// reports here.

func heartbeatDeadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout) //lint:allow nowrand — heartbeats are wall-clock by definition
}
