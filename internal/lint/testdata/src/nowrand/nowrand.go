// Fixture for the nowrand analyzer: ambient nondeterminism (wall clock,
// global math/rand source) must be flagged; the seeded-generator idiom
// the deterministic packages actually use must not.
package nowrand

import (
	"math/rand"
	"time"
)

// Bad: wall-clock reads.
func wallClock() time.Duration {
	start := time.Now()      // want `call to time\.Now in a deterministic package`
	return time.Since(start) // want `call to time\.Since in a deterministic package`
}

// Bad: draws from the process-global source.
func globalDraws() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the process-global source`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	_ = rand.Perm(5)                   // want `rand\.Perm draws from the process-global source`
}

// site mirrors the synthweb shape so the seeded idiom below is verbatim.
type site struct{ Index int }

type cfg struct{ Seed int64 }

// Good: the exact seeded-rand idiom synthweb and gremlins use — a
// per-visitor *rand.Rand built from the survey seed, drawn from via
// methods.
func seededIdiom(c cfg, s site) int {
	rng := rand.New(rand.NewSource(c.Seed ^ (int64(s.Index)+1)*2654435761))
	if rng.Float64() < 0.5 {
		return rng.Intn(10)
	}
	return rng.Perm(4)[0]
}

// Good: a seeded generator handed in as a parameter (gremlins.Unleash
// style) is drawn from via methods, never the global source.
func unleash(rng *rand.Rand, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rng.Intn(n))
	}
	return out
}

// Good: rand.NewZipf takes the seeded generator.
func zipf(rng *rand.Rand) uint64 {
	z := rand.NewZipf(rng, 1.1, 1, 100)
	return z.Uint64()
}
