// Package stats is a fixture mirror of repro/internal/stats: the snapmut
// analyzer matches the type by (package path suffix "stats", type name
// "Snapshot"), so this miniature exposes the same shape with exported
// fields — letting the fixture exercise every write form the real
// package's unexported fields would reject at compile time anyway.
package stats

// Snapshot mirrors the immutable epoch snapshot.
type Snapshot struct {
	Epoch   uint64
	PerCase []int
	Std     map[string]int
}

// FeatureSites mirrors a method returning a reference-typed view.
func (s *Snapshot) FeatureSites() []int { return s.PerCase }

// StandardSites mirrors a method returning a map view.
func (s *Snapshot) StandardSites() map[string]int { return s.Std }

// CopyStd is the sanctioned read path: callers mutate their own copy.
func (s *Snapshot) CopyStd() map[string]int {
	out := make(map[string]int, len(s.Std))
	for k, v := range s.Std {
		out[k] = v
	}
	return out
}

// Publish is the in-package write side; package stats itself is exempt
// from the analyzer by the suite's package filter.
func Publish(epoch uint64) *Snapshot {
	s := &Snapshot{Epoch: epoch, Std: make(map[string]int)}
	s.PerCase = append(s.PerCase, 0)
	return s
}
