package framecap

import (
	"bufio"
	"encoding/binary"
	"io"
)

// The //lint:allow escape hatch: a decode path that only ever reads a
// stream this same process just wrote (a test helper round-tripping an
// in-memory buffer). The directive names the bound so a reviewer can
// judge it. No want annotations here — the runner fails if the analyzer
// still reports through the directive.

func allowTrustedRoundTrip(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n) //lint:allow framecap — round-trips a buffer this process wrote; length is our own encoder's
	_, err = io.ReadFull(br, buf)
	return buf, err
}
