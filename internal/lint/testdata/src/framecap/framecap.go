// Fixture for the framecap analyzer: a make sized by an unchecked
// wire-read length must be flagged; the guard idioms the wire packages
// use (explicit cap compare, remaining-bytes compare) must not.
package framecap

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

const maxPayload = 1 << 20

// Bad: the classic unbounded allocation — two varint bytes can claim
// 2^64 elements.
func uncheckedByteSlice(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n) // want `make sized by wire-read length "n" with no bound check`
	_, err = io.ReadFull(br, buf)
	return buf, err
}

// Bad: taint survives a conversion.
func uncheckedThroughConversion(br *bufio.Reader) ([]int, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	count := int(n)
	sites := make([]int, count) // want `make sized by wire-read length "count" with no bound check`
	return sites, nil
}

// Bad: a local wrapper named readUvarint is still a wire read.
func readUvarint(r io.ByteReader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("decoding %s: %w", what, err)
	}
	return v, nil
}

func uncheckedViaWrapper(r *bytes.Reader) ([]uint64, error) {
	n, err := readUvarint(r, "count")
	if err != nil {
		return nil, err
	}
	vals := make([]uint64, n) // want `make sized by wire-read length "n" with no bound check`
	return vals, nil
}

// Good: checked against the package's hardening cap.
func checkedAgainstCap(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > uint64(maxPayload) {
		return nil, fmt.Errorf("payload %d exceeds limit %d", n, maxPayload)
	}
	buf := make([]byte, n)
	_, err = io.ReadFull(br, buf)
	return buf, err
}

// Good: checked against the bytes actually remaining — the dist decoder
// idiom (each element is at least one byte).
func checkedAgainstRemaining(r *bytes.Reader) ([]int, error) {
	n, err := readUvarint(r, "site count")
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("claims %d sites in a %d-byte payload", n, r.Len())
	}
	sites := make([]int, n)
	return sites, nil
}

// Good: a length derived from in-memory data, not the wire.
func lenSized(domains []string) []bool {
	return make([]bool, len(domains))
}
