package releasepair

// Ownership transfer the lexical analyzer cannot see: passing to a call
// is normally a borrow (measurers and monkey-testers borrow pages all the
// time), so handing the page to a reaper that releases it later looks
// like a leak. The directive documents who releases. No want annotations
// here — the runner fails if the analyzer still reports through it.

func reap(p *Page) {}

func allowReaperOwnership(b *Browser, url string) error {
	page, err := b.Load(url) //lint:allow releasepair — the reaper releases at end of visit
	if err != nil {
		return err
	}
	reap(page)
	return nil
}
