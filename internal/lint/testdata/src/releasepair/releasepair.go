// Fixture for the releasepair analyzer. The Browser/Page pair mirrors
// repro/internal/browser's pooled-page lifecycle (the analyzer matches
// the method shape, Load on a type named Browser, not the import path);
// the sync.Pool cases cover the raw pool idiom.
package releasepair

import (
	"errors"
	"sync"
)

type Page struct{ open bool }

type Browser struct{ pool sync.Pool }

func (b *Browser) Load(url string) (*Page, error) { return &Page{open: true}, nil }

func (b *Browser) Release(p *Page) {}

// Bad: no release on any path.
func leakAlways(b *Browser, url string) error {
	page, err := b.Load(url) // want `Browser\.Load result "page" is never released`
	if err != nil {
		return err
	}
	_ = page
	return nil
}

// Bad: the early return between Load and Release leaks the page.
func leakEarlyReturn(b *Browser, url string, bad bool) error {
	page, err := b.Load(url)
	if err != nil {
		return err
	}
	if bad {
		return errors.New("bad input") // want `return leaks "page"`
	}
	b.Release(page)
	return nil
}

// Good: a deferred release covers every path.
func cleanDefer(b *Browser, url string, bad bool) error {
	page, err := b.Load(url)
	if err != nil {
		return err
	}
	defer b.Release(page)
	if bad {
		return errors.New("bad input")
	}
	return nil
}

// Good: a deferred closure that releases also covers every path.
func cleanDeferClosure(b *Browser, url string) error {
	page, err := b.Load(url)
	if err != nil {
		return err
	}
	defer func() { b.Release(page) }()
	return nil
}

// Good: released on the straight-line path before every later return.
func cleanReleaseBeforeReturn(b *Browser, url string, parseErr bool) error {
	page, err := b.Load(url)
	if err != nil {
		return err
	}
	if parseErr {
		b.Release(page)
		return errors.New("parse errors")
	}
	b.Release(page)
	return nil
}

// Good: ownership escapes to the caller, who releases.
func cleanEscapeReturn(b *Browser, url string) (*Page, error) {
	page, err := b.Load(url)
	if err != nil {
		return nil, err
	}
	return page, nil
}

// Good: ownership escapes into a struct; the holder releases later.
type session struct{ current *Page }

func cleanEscapeField(b *Browser, s *session, url string) error {
	page, err := b.Load(url)
	if err != nil {
		return err
	}
	s.current = page
	return nil
}

// Bad: a raw pool Get with no Put and no escape.
func leakPoolGet(p *sync.Pool) int {
	buf, _ := p.Get().([]byte) // want `Pool\.Get result "buf" is never released`
	return len(buf)
}

// Good: pool Get paired with a deferred Put.
func cleanPoolGet(p *sync.Pool) int {
	buf, _ := p.Get().([]byte)
	defer p.Put(buf)
	return len(buf)
}
