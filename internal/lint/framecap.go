package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Framecap guards the decoder-hardening invariant in the wire packages
// (logstore, dist): a length read off the wire must be checked against a
// cap before it sizes an allocation. A varint can claim 2^64 elements in
// two bytes — `make([]byte, n)` on an unchecked claim lets a corrupt spill
// file or a hostile peer allocate unboundedly before the follow-up
// ReadFull ever fails. Both packages already route most lengths through
// capped helpers (binReader.count/str/bitset take an explicit max); this
// analyzer catches the raw path those helpers exist to prevent.
//
// Tainted sources: encoding/binary.ReadUvarint / ReadVarint / Uvarint /
// Varint, and local wrappers named readUvarint / readVarint (dist's
// error-annotating wrapper). A taint is cleared by any if-statement
// between the read and the make whose condition compares the tainted
// variable (n > max, n > uint64(r.Len()), ...).
//
// A length that is genuinely bounded some other way can
// `//lint:allow framecap` with a comment naming the bound.
var Framecap = &Analyzer{
	Name: "framecap",
	Doc:  "flag slice allocations sized by an unchecked wire-read length in logstore/dist",
	Run:  runFramecap,
}

func runFramecap(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range functions(f) {
			checkFramecapFunc(pass, fn)
		}
	}
	return nil
}

// taintedLen is one wire-read length variable.
type taintedLen struct {
	obj types.Object
	pos token.Pos
}

func checkFramecapFunc(pass *Pass, fn funcBody) {
	info := pass.TypesInfo
	var tainted []taintedLen

	taintOf := func(e ast.Expr) *taintedLen {
		obj := identObj(info, unwrap(info, e))
		if obj == nil {
			return nil
		}
		for i := range tainted {
			if tainted[i].obj == obj {
				return &tainted[i]
			}
		}
		return nil
	}

	inspectOwn(fn, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				obj := identObj(info, ast.Unparen(s.Lhs[i]))
				if obj == nil {
					continue
				}
				src := unwrap(info, rhs)
				if call, ok := src.(*ast.CallExpr); ok && isWireRead(info, call) {
					tainted = append(tainted, taintedLen{obj: obj, pos: s.Pos()})
					continue
				}
				// Conversion/assignment propagates taint:
				// m := int(n).
				if t := taintOf(rhs); t != nil {
					tainted = append(tainted, taintedLen{obj: obj, pos: s.Pos()})
				}
			}
			// Multi-value form: n, err := readUvarint(...).
			if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
				if call, ok := unwrap(info, s.Rhs[0]).(*ast.CallExpr); ok && isWireRead(info, call) {
					if obj := identObj(info, ast.Unparen(s.Lhs[0])); obj != nil {
						tainted = append(tainted, taintedLen{obj: obj, pos: s.Pos()})
					}
				}
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(s.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				return
			}
			if _, ok := info.Uses[id].(*types.Builtin); !ok {
				return
			}
			if len(s.Args) < 2 {
				return
			}
			if _, ok := info.Types[s.Args[0]].Type.Underlying().(*types.Slice); !ok {
				return
			}
			for _, sizeArg := range s.Args[1:] {
				t := taintOf(sizeArg)
				if t == nil {
					continue
				}
				if guardedBetween(info, fn, t, s.Pos()) {
					continue
				}
				pass.Reportf(s.Pos(),
					"make sized by wire-read length %q with no bound check between the read and the allocation: a corrupt or hostile stream can claim 2^64 elements (compare against a hardening cap first)",
					t.obj.Name())
			}
		}
	})
}

// isWireRead reports whether the call produces an unbounded length from
// the wire.
func isWireRead(info *types.Info, call *ast.CallExpr) bool {
	fnObj := calleeFunc(info, call)
	if fnObj == nil {
		return false
	}
	name := fnObj.Name()
	if fnObj.Pkg() != nil && fnObj.Pkg().Path() == "encoding/binary" {
		switch name {
		case "ReadUvarint", "ReadVarint", "Uvarint", "Varint":
			return true
		}
	}
	return name == "readUvarint" || name == "readVarint"
}

// guardedBetween reports whether an if-statement between the taint and
// the allocation compares the tainted variable — the bound check that
// clears the taint.
func guardedBetween(info *types.Info, fn funcBody, t *taintedLen, makePos token.Pos) bool {
	guarded := false
	inspectOwn(fn, func(n ast.Node) {
		if guarded {
			return
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() < t.pos || ifs.Pos() > makePos {
			return
		}
		if condCompares(info, ifs.Cond, t.obj) {
			guarded = true
		}
	})
	return guarded
}

// condCompares reports whether the condition contains an ordered
// comparison involving obj.
func condCompares(info *types.Info, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
			if containsIdentObj(info, b.X, obj) || containsIdentObj(info, b.Y, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
