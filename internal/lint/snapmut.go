package lint

import (
	"go/ast"
	"go/types"
	"path"
)

// Snapmut pins the snapshots-are-immutable invariant (ARCHITECTURE.md
// §10): once `stats.Aggregate.Snapshot()` publishes a *stats.Snapshot,
// nothing outside internal/stats may write through it. Readers share one
// snapshot per epoch with zero synchronization — a single mutation is a
// data race against every concurrent query and silently corrupts every
// later read of the epoch.
//
// The analyzer flags any assignment, increment, delete, or clear whose
// target expression is rooted at a value of type stats.Snapshot: direct
// field writes, writes through indexed fields (snap.PerCase[i] = ...),
// and writes into the result of a Snapshot method call
// (snap.StandardSites(c)[k]++ — method results must be treated as
// read-only views even when today's implementation copies).
//
// Mutating your own copy is fine and not flagged:
//
//	m := snap.StandardSites(c) // copies out
//	m[k]++                     // local copy, not rooted at the snapshot
//
// There is deliberately no sanctioned escape here beyond working inside
// internal/stats itself; `//lint:allow snapmut` exists for the framework's
// sake but a use of it should fail review.
var Snapmut = &Analyzer{
	Name: "snapmut",
	Doc:  "flag writes through a stats.Snapshot outside internal/stats",
	Run:  runSnapmut,
}

func runSnapmut(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					reportSnapshotRooted(pass, lhs, "assignment")
				}
			case *ast.IncDecStmt:
				reportSnapshotRooted(pass, s.X, "increment")
			case *ast.CallExpr:
				if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "delete" || b.Name() == "clear") && len(s.Args) > 0 {
						reportSnapshotRooted(pass, s.Args[0], b.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// reportSnapshotRooted reports if the storage chain of target — the
// sequence of selectors, indexes, derefs, and method receivers the write
// lands through — passes through a value of type stats.Snapshot. Only the
// chain is walked, not arbitrary subexpressions: a snapshot used to
// *compute* an index or key (cache[snap.Epoch()] = v) roots the write in
// the cache, not the snapshot, and is fine.
func reportSnapshotRooted(pass *Pass, target ast.Expr, kind string) {
	info := pass.TypesInfo
	for e := target; e != nil; {
		if tv, ok := info.Types[e]; ok && isStatsSnapshot(tv.Type) {
			pass.Reportf(target.Pos(),
				"%s writes through a stats.Snapshot: snapshots are immutable after publish and shared lock-free by every reader of the epoch (copy first, or move the mutation into internal/stats)",
				kind)
			return
		}
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		case *ast.CallExpr:
			// Writing into a call's result: the storage belongs to
			// whatever the method was invoked on.
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				e = sel.X
			} else {
				return
			}
		default:
			return
		}
	}
}

// isStatsSnapshot reports whether t is (a pointer to) the named type
// Snapshot from a package whose final path element is "stats". Matching
// on the path suffix rather than the full module path keeps the analyzer
// testable against fixture packages while being unambiguous in-tree.
func isStatsSnapshot(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Snapshot" && path.Base(n.Obj().Pkg().Path()) == "stats"
}
