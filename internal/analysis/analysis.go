package analysis

import (
	"sort"

	"repro/internal/alexa"
	"repro/internal/cve"
	"repro/internal/firefoxhist"
	"repro/internal/measure"
	"repro/internal/standards"
	"repro/internal/stats"
	"repro/internal/webidl"
)

// Analysis joins a survey's measurements with the corpus it measured. It
// has two data sources, and holds at least one of them:
//
//   - Log, the full per-visit measurement log. Aggregate statistics are
//     derived by scanning it ("cold"), and per-site queries
//     (SiteStandards, VisitWeightedPopularity, HumanDelta) require it.
//
//   - Agg, a warm statistics source: a mergeable stats.Aggregate
//     maintained incrementally while the survey ran (or folded from spill
//     files), or an immutable stats.Snapshot of one (the query server's
//     epoch read path). When present, every aggregate statistic is read
//     from it directly — no rescan ("warm"). With no Log alongside (a
//     spill-only run), per-site queries degrade gracefully: they return
//     nil.
//
// Warm and cold construction produce identical results for every aggregate
// method; the only documented difference is Complexity's element order
// (its consumers are order-insensitive distributions).
type Analysis struct {
	Log *measure.Log
	Reg *webidl.Registry
	// Agg is the warm statistics source; nil for a purely cold analysis.
	Agg stats.Source

	// stdOf[featureID] is the feature's standard, memoized.
	stdOf []standards.Abbrev
	// stdSitesCache memoizes per-case standard site counts.
	stdSitesCache map[measure.Case]map[standards.Abbrev]int
	// siteStdCache memoizes per-case, per-site standard sets.
	siteStdCache map[measure.Case][]map[standards.Abbrev]bool
	// featureSitesCache memoizes per-case feature site counts, so even
	// the cold path scans the log at most once per case.
	featureSitesCache map[measure.Case][]int
}

// New builds a cold analysis over a log and corpus.
func New(log *measure.Log, reg *webidl.Registry) *Analysis {
	return newAnalysis(log, nil, reg)
}

// FromStats builds a warm analysis directly from a statistics source — a
// live mergeable aggregate or an immutable snapshot — no log, no rescan.
// Aggregate methods match a cold analysis of the same survey exactly;
// per-site methods return nil (reassemble the log from spill files when
// they are needed).
func FromStats(src stats.Source, reg *webidl.Registry) *Analysis {
	return newAnalysis(nil, src, reg)
}

// NewWarm builds an analysis with both sources: aggregate statistics come
// from the warm source, per-site queries from the log.
func NewWarm(log *measure.Log, src stats.Source, reg *webidl.Registry) *Analysis {
	return newAnalysis(log, src, reg)
}

func newAnalysis(log *measure.Log, src stats.Source, reg *webidl.Registry) *Analysis {
	a := &Analysis{
		Log:               log,
		Agg:               src,
		Reg:               reg,
		stdOf:             make([]standards.Abbrev, len(reg.Features)),
		stdSitesCache:     make(map[measure.Case]map[standards.Abbrev]int),
		siteStdCache:      make(map[measure.Case][]map[standards.Abbrev]bool),
		featureSitesCache: make(map[measure.Case][]int),
	}
	for i, f := range reg.Features {
		a.stdOf[i] = f.Standard
	}
	return a
}

// numSites returns the survey's site-list size.
func (a *Analysis) numSites() int {
	if a.Log != nil {
		return len(a.Log.Domains)
	}
	return a.Agg.NumSites()
}

// measuredCount returns how many sites produced measurements.
func (a *Analysis) measuredCount() int {
	if a.Agg != nil {
		return a.Agg.MeasuredCount()
	}
	return a.Log.MeasuredCount()
}

// SiteStandards returns, per site, the set of standards with at least one
// feature observed under the case (nil for unobserved sites). It is a
// per-site query: without a log (FromStats) it returns nil.
func (a *Analysis) SiteStandards(c measure.Case) []map[standards.Abbrev]bool {
	if a.Log == nil {
		return nil
	}
	if cached, ok := a.siteStdCache[c]; ok {
		return cached
	}
	out := make([]map[standards.Abbrev]bool, len(a.Log.Domains))
	for site := range a.Log.Domains {
		u := a.Log.SiteUnion(c, site)
		if u == nil {
			continue
		}
		set := make(map[standards.Abbrev]bool)
		u.ForEach(a.Log.NumFeatures, func(id int) {
			set[a.stdOf[id]] = true
		})
		out[site] = set
	}
	a.siteStdCache[c] = out
	return out
}

// StandardSites returns the number of sites using each standard under the
// case ("standard popularity" numerators, §5.1).
func (a *Analysis) StandardSites(c measure.Case) map[standards.Abbrev]int {
	if cached, ok := a.stdSitesCache[c]; ok {
		return cached
	}
	var out map[standards.Abbrev]int
	if a.Agg != nil {
		out = a.Agg.StandardSites(c)
	} else {
		out = make(map[standards.Abbrev]int)
		for _, set := range a.SiteStandards(c) {
			for std := range set {
				out[std]++
			}
		}
	}
	a.stdSitesCache[c] = out
	return out
}

// FeatureSites returns per-feature site counts under the case ("feature
// popularity" numerators). Warm analyses read the incrementally maintained
// counts; cold ones scan the log once per case and memoize.
func (a *Analysis) FeatureSites(c measure.Case) []int {
	if cached, ok := a.featureSitesCache[c]; ok {
		return cached
	}
	var out []int
	if a.Agg != nil {
		out = a.Agg.FeatureSites(c)
	} else {
		out = a.Log.FeatureSites(c)
	}
	a.featureSitesCache[c] = out
	return out
}

// FeatureBands summarizes §5.3: how many corpus features were never seen,
// and how many were seen on fewer than onePct sites.
type FeatureBands struct {
	// Total is the corpus size (1,392).
	Total int
	// NeverUsed counts features observed on zero sites (paper: 689).
	NeverUsed int
	// UnderOnePct counts features observed on more than zero but fewer
	// than 1% of sites (paper: 416 default, 83% cumulative blocking).
	UnderOnePct int
	// OnePctThreshold is the site-count threshold used.
	OnePctThreshold int
}

// Bands computes the feature-popularity bands for a case.
func (a *Analysis) Bands(c measure.Case) FeatureBands {
	fs := a.FeatureSites(c)
	// 1% of the ranking, with a floor of 2 so the band stays meaningful
	// at sub-paper scales (a threshold of 1 would make "used on fewer
	// than 1% of sites" unsatisfiable for used features).
	threshold := a.numSites() / 100
	if threshold < 2 {
		threshold = 2
	}
	b := FeatureBands{Total: len(fs), OnePctThreshold: threshold}
	for _, n := range fs {
		switch {
		case n == 0:
			b.NeverUsed++
		case n < threshold:
			b.UnderOnePct++
		}
	}
	return b
}

// BlockRate is one standard's §5.1 block-rate measurement.
type BlockRate struct {
	Standard standards.Abbrev
	// DefaultSites is the number of sites using the standard in the
	// default case.
	DefaultSites int
	// BlockedSites is the number of default-using sites on which no
	// feature of the standard executed under the blocking case.
	BlockedSites int
	// Rate is BlockedSites / DefaultSites (0 when DefaultSites is 0).
	Rate float64
}

// BlockRates computes per-standard block rates between the default case and
// a blocking case, per the paper's definition: of the sites that used the
// standard by default, the fraction on which no feature of the standard
// executed with blocking installed.
func (a *Analysis) BlockRates(blockingCase measure.Case) map[standards.Abbrev]BlockRate {
	if a.Agg != nil {
		def := a.StandardSites(measure.CaseDefault)
		blocked := a.Agg.BlockedSites(blockingCase)
		out := make(map[standards.Abbrev]BlockRate)
		for _, std := range standards.Catalog() {
			br := BlockRate{
				Standard:     std.Abbrev,
				DefaultSites: def[std.Abbrev],
				BlockedSites: blocked[std.Abbrev],
			}
			if br.DefaultSites > 0 {
				br.Rate = float64(br.BlockedSites) / float64(br.DefaultSites)
			}
			out[std.Abbrev] = br
		}
		return out
	}
	def := a.SiteStandards(measure.CaseDefault)
	blk := a.SiteStandards(blockingCase)
	out := make(map[standards.Abbrev]BlockRate)
	for _, std := range standards.Catalog() {
		br := BlockRate{Standard: std.Abbrev}
		for site := range def {
			if def[site] == nil || !def[site][std.Abbrev] {
				continue
			}
			br.DefaultSites++
			if blk[site] == nil || !blk[site][std.Abbrev] {
				br.BlockedSites++
			}
		}
		if br.DefaultSites > 0 {
			br.Rate = float64(br.BlockedSites) / float64(br.DefaultSites)
		}
		out[std.Abbrev] = br
	}
	return out
}

// Complexity returns, per measured site, the number of standards used in
// the default case (§5.9 / Figure 8). With a log the series is in site
// order; a purely warm analysis returns the same multiset ascending (its
// consumers — histograms, CDFs — are order-insensitive).
func (a *Analysis) Complexity() []int {
	if a.Log == nil {
		return a.Agg.Complexity()
	}
	var out []int
	for site, set := range a.SiteStandards(measure.CaseDefault) {
		if !a.Log.Measured[site] || set == nil {
			continue
		}
		out = append(out, len(set))
	}
	return out
}

// StandardPopularityCDF computes Figure 3: the cumulative distribution of
// standard popularity (sites using each standard, default case), including
// never-observed standards as zeros.
func (a *Analysis) StandardPopularityCDF() []CDFPoint {
	counts := a.StandardSites(measure.CaseDefault)
	var values []float64
	for _, std := range standards.Catalog() {
		values = append(values, float64(counts[std.Abbrev]))
	}
	return CDF(values)
}

// VisitWeighted is one standard's Figure 5 point.
type VisitWeighted struct {
	Standard standards.Abbrev
	// SiteFraction is the portion of all measured sites using the
	// standard.
	SiteFraction float64
	// VisitFraction is the estimated portion of all site views using it
	// (sites weighted by Alexa monthly visits).
	VisitFraction float64
}

// VisitWeightedPopularity computes Figure 5 against an Alexa ranking. It
// is a per-site query: without a log (FromStats) it returns nil.
func (a *Analysis) VisitWeightedPopularity(rank *alexa.Ranking) []VisitWeighted {
	if a.Log == nil {
		return nil
	}
	siteStd := a.SiteStandards(measure.CaseDefault)
	var totalVisits float64
	measured := 0
	for site := range a.Log.Domains {
		if siteStd[site] == nil {
			continue
		}
		measured++
		totalVisits += float64(rank.Sites[site].MonthlyVisits)
	}
	var out []VisitWeighted
	for _, std := range standards.Catalog() {
		vw := VisitWeighted{Standard: std.Abbrev}
		var sites, visits float64
		for site, set := range siteStd {
			if set == nil || !set[std.Abbrev] {
				continue
			}
			sites++
			visits += float64(rank.Sites[site].MonthlyVisits)
		}
		if measured > 0 {
			vw.SiteFraction = sites / float64(measured)
		}
		if totalVisits > 0 {
			vw.VisitFraction = visits / totalVisits
		}
		out = append(out, vw)
	}
	return out
}

// AgePoint is one standard's Figure 6 point.
type AgePoint struct {
	Standard standards.Abbrev
	// Introduced is the standard's implementation date per the paper's
	// rule (most popular feature's introduction; ties → earliest).
	Introduced firefoxhist.Release
	// Sites is the standard's default-case popularity.
	Sites int
	// BlockRate is the standard's combined-extension block rate.
	BlockRate float64
}

// AgeSeries computes Figure 6 from the release history.
func (a *Analysis) AgeSeries(hist *firefoxhist.History) []AgePoint {
	featureSites := a.FeatureSites(measure.CaseDefault)
	stdSites := a.StandardSites(measure.CaseDefault)
	rates := a.BlockRates(measure.CaseBlocking)
	var out []AgePoint
	for _, std := range standards.Catalog() {
		rel, ok := hist.StandardDate(std.Abbrev, func(f *webidl.Feature) int {
			return featureSites[f.ID]
		})
		if !ok {
			continue
		}
		out = append(out, AgePoint{
			Standard:   std.Abbrev,
			Introduced: rel,
			Sites:      stdSites[std.Abbrev],
			BlockRate:  rates[std.Abbrev].Rate,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Introduced.Date.Before(out[j].Introduced.Date) })
	return out
}

// AdVsTracker is one standard's Figure 7 point.
type AdVsTracker struct {
	Standard standards.Abbrev
	// AdRate is the block rate with only the ad blocker installed.
	AdRate float64
	// TrackerRate is the block rate with only the tracking blocker.
	TrackerRate float64
	// Sites is the default-case popularity (the figure's point size).
	Sites int
}

// AdVsTrackerRates computes Figure 7.
func (a *Analysis) AdVsTrackerRates() []AdVsTracker {
	ad := a.BlockRates(measure.CaseAdBlock)
	tr := a.BlockRates(measure.CaseGhostery)
	sites := a.StandardSites(measure.CaseDefault)
	var out []AdVsTracker
	for _, std := range standards.Catalog() {
		if sites[std.Abbrev] == 0 {
			continue
		}
		out = append(out, AdVsTracker{
			Standard:    std.Abbrev,
			AdRate:      ad[std.Abbrev].Rate,
			TrackerRate: tr[std.Abbrev].Rate,
			Sites:       sites[std.Abbrev],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Standard < out[j].Standard })
	return out
}

// Table2Row joins a standard's measured results with its CVE count for the
// paper's Table 2.
type Table2Row struct {
	Standard  standards.Standard
	Features  int
	Sites     int
	BlockRate float64
	CVEs      int
}

// Table2 computes the measured Table 2 (standards used on at least 1% of
// sites or carrying at least one CVE).
func (a *Analysis) Table2(db *cve.Database) []Table2Row {
	sites := a.StandardSites(measure.CaseDefault)
	rates := a.BlockRates(measure.CaseBlocking)
	perCVE := db.PerStandard()
	onePct := a.numSites() / 100
	if onePct < 1 {
		onePct = 1
	}
	var out []Table2Row
	for _, std := range standards.Catalog() {
		row := Table2Row{
			Standard:  std,
			Features:  std.Features,
			Sites:     sites[std.Abbrev],
			BlockRate: rates[std.Abbrev].Rate,
			CVEs:      perCVE[std.Abbrev],
		}
		if row.Sites >= onePct || row.CVEs > 0 {
			out = append(out, row)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CVEs != out[j].CVEs {
			return out[i].CVEs > out[j].CVEs
		}
		return out[i].Sites > out[j].Sites
	})
	return out
}

// NewStandardsPerRound computes Table 3: the average number of standards
// first observed in each round of the default case, across measured sites.
// Warm analyses read the incrementally folded per-round sums.
func (a *Analysis) NewStandardsPerRound() []float64 {
	if a.Agg != nil {
		return a.Agg.NewStandardsPerRound()
	}
	cl := a.Log.Cases[measure.CaseDefault]
	if cl == nil {
		return nil
	}
	perRound := make([]float64, len(cl.Rounds))
	measured := 0
	for site := range a.Log.Domains {
		if !a.Log.Measured[site] {
			continue
		}
		visited := false
		seen := make(map[standards.Abbrev]bool)
		for round, rl := range cl.Rounds {
			sf := rl.SiteFeatures[site]
			if sf == nil {
				continue
			}
			visited = true
			newStd := 0
			for id := 0; id < a.Log.NumFeatures; id++ {
				if sf.Get(id) && !seen[a.stdOf[id]] {
					seen[a.stdOf[id]] = true
					newStd++
				}
			}
			perRound[round] += float64(newStd)
		}
		if visited {
			measured++
		}
	}
	if measured == 0 {
		return perRound
	}
	for i := range perRound {
		perRound[i] /= float64(measured)
	}
	return perRound
}

// HumanDelta compares one site's manually-observed standards against the
// automated survey's union for the site (Figure 9's per-site statistic:
// standards seen by the human but never by the monkey). It is a per-site
// query: without a log every human-seen standard counts as new.
func (a *Analysis) HumanDelta(site int, humanCounts map[int]int64) int {
	var auto map[standards.Abbrev]bool
	if ss := a.SiteStandards(measure.CaseDefault); site >= 0 && site < len(ss) {
		auto = ss[site]
	}
	humanStd := make(map[standards.Abbrev]bool)
	for id := range humanCounts {
		humanStd[a.stdOf[id]] = true
	}
	delta := 0
	for std := range humanStd {
		if auto == nil || !auto[std] {
			delta++
		}
	}
	return delta
}

// UsedStandards counts standards observed on at least one site under the
// case.
func (a *Analysis) UsedStandards(c measure.Case) int {
	n := 0
	for _, count := range a.StandardSites(c) {
		if count > 0 {
			n++
		}
	}
	return n
}
