package analysis

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 2, 2, 3})
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].X != 1 || math.Abs(pts[0].Fraction-0.25) > 1e-9 {
		t.Errorf("point 0 = %+v", pts[0])
	}
	if pts[1].X != 2 || math.Abs(pts[1].Fraction-0.75) > 1e-9 {
		t.Errorf("point 1 = %+v", pts[1])
	}
	if pts[2].Fraction != 1 {
		t.Errorf("CDF does not reach 1: %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	check := func(values []float64) bool {
		for i := range values {
			if math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
				values[i] = 0
			}
		}
		pts := CDF(values)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return len(values) == 0 || pts[len(pts)-1].Fraction == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 1, 1, 2, 9}, 0, 10, 10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Count != 1 || bins[1].Count != 2 || bins[2].Count != 1 || bins[9].Count != 1 {
		t.Errorf("bin counts wrong: %+v", bins)
	}
	total := 0.0
	for _, b := range bins {
		total += b.Fraction
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("fractions sum to %v", total)
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Error("degenerate histogram should be nil")
	}
}

func TestHistogramClamps(t *testing.T) {
	bins := Histogram([]float64{-5, 100}, 0, 10, 5)
	if bins[0].Count != 1 || bins[4].Count != 1 {
		t.Errorf("out-of-range values not clamped: %+v", bins)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if q := Quantile(vals, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(vals, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(vals, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(vals, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileOrderProperty(t *testing.T) {
	check := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		sort.Float64s(vals)
		q1, q2, q3 := Quantile(vals, 0.25), Quantile(vals, 0.5), Quantile(vals, 0.75)
		return q1 <= q2 && q2 <= q3 && q1 >= vals[0] && q3 <= vals[len(vals)-1]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndPearson(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-9 {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-9 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	if !math.IsNaN(Pearson(xs, []float64{1})) {
		t.Error("mismatched lengths should be NaN")
	}
	if !math.IsNaN(Pearson(xs, []float64{5, 5, 5, 5})) {
		t.Error("zero variance should be NaN")
	}
}
