// Package analysis derives the paper's results (§5, §6 of "Browser Feature
// Usage on the Modern Web", IMC 2016) from survey measurements: popularity
// distributions (§5.1), block rates under the blocking profiles (§5.4,
// Figure 4), site complexity (Figure 8), age/popularity relations (§5.2,
// Figure 6), CVE association (Table 2), and the internal/external
// validation statistics (§6).
//
// An Analysis is built three ways. New(log, reg) is the cold path: every
// aggregate statistic is derived by scanning the measure.Log (once, then
// memoized). FromStats(agg, reg) is the warm path: the statistics are read
// straight from a mergeable stats.Aggregate that the pipeline maintained
// while the survey ran — or that stats.FromSpills folded from spill files —
// with no log and no rescan; the per-site methods (SiteStandards,
// VisitWeightedPopularity, HumanDelta) then degrade to nil. NewWarm(log,
// agg, reg) combines both: warm aggregate statistics plus log-backed
// per-site queries. Warm and cold construction return identical results
// for every aggregate method (enforced by TestWarmAnalysisMatchesCold).
//
// Analysis consumes only measured data — never the synthetic web's
// calibration profile — so the same code analyzes logs from the sequential
// crawler, the sharded internal/pipeline engine, a CSV written by an
// earlier run, or the merged spill stream of a spill-only survey.
// TopFeatures and FeatureDeltas render the headline tables the
// cmd/pipeline binary prints: per-feature popularity and the per-feature
// usage drops caused by content blocking.
package analysis
