// Package analysis derives the paper's results (§5, §6 of "Browser Feature
// Usage on the Modern Web", IMC 2016) from survey measurement logs:
// popularity distributions (§5.1), block rates under the blocking profiles
// (§5.4, Figure 4), site complexity (Figure 8), age/popularity relations
// (§5.2, Figure 6), CVE association (Table 2), and the internal/external
// validation statistics (§6).
//
// Analysis consumes only measured data — a measure.Log plus the
// webidl.Registry it was measured against — never the synthetic web's
// calibration profile, so the same code analyzes logs from the sequential
// crawler, the sharded internal/pipeline engine, or a CSV written by an
// earlier run. TopFeatures and FeatureDeltas render the headline tables the
// cmd/pipeline binary prints: per-feature popularity and the per-feature
// usage drops caused by content blocking.
package analysis
