package analysis

import (
	"math"
	"testing"

	"repro/internal/crawler"
	"repro/internal/cve"
	"repro/internal/firefoxhist"
	"repro/internal/measure"
	"repro/internal/standards"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
)

// The analysis tests run one shared small survey.
var (
	sharedWeb  *synthweb.Web
	sharedAna  *Analysis
	sharedHist *firefoxhist.History
)

func surveyed(t testing.TB) (*synthweb.Web, *Analysis) {
	t.Helper()
	if sharedAna != nil {
		return sharedWeb, sharedAna
	}
	reg, err := webidl.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 150, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	c := crawler.New(web, webapi.NewBindings(reg), crawler.DefaultConfig(17))
	log, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	sharedWeb = web
	sharedAna = New(log, reg)
	sharedHist = firefoxhist.New(reg)
	return web, sharedAna
}

func TestStandardSitesAgainstGroundTruth(t *testing.T) {
	web, a := surveyed(t)
	got := a.StandardSites(measure.CaseDefault)
	for _, std := range standards.Catalog() {
		want := web.GroundTruthSites(std.Abbrev)
		tolerance := 2 + want/12
		if got[std.Abbrev] > want || want-got[std.Abbrev] > tolerance {
			t.Errorf("standard %s: %d sites, ground truth %d", std.Abbrev, got[std.Abbrev], want)
		}
	}
}

func TestBandsShape(t *testing.T) {
	_, a := surveyed(t)
	def := a.Bands(measure.CaseDefault)
	if def.Total != 1392 {
		t.Fatalf("corpus size = %d", def.Total)
	}
	// The profile pins never-used to 689; the measurement can only lose
	// a few gated features on top.
	if def.NeverUsed < 689 || def.NeverUsed > 740 {
		t.Errorf("never-used = %d, want ~689", def.NeverUsed)
	}
	// Under blocking, more features vanish and the under-1% share grows
	// to ~83% of the corpus (paper §5.3).
	blk := a.Bands(measure.CaseBlocking)
	if blk.NeverUsed <= def.NeverUsed {
		t.Errorf("blocking never-used %d <= default %d", blk.NeverUsed, def.NeverUsed)
	}
	defShare := float64(def.NeverUsed+def.UnderOnePct) / float64(def.Total)
	blkShare := float64(blk.NeverUsed+blk.UnderOnePct) / float64(blk.Total)
	if blkShare <= defShare {
		t.Errorf("blocking <1%% share %.2f <= default %.2f", blkShare, defShare)
	}
	if defShare < 0.70 || defShare > 0.90 {
		t.Errorf("default <1%% share %.2f, paper ~0.79", defShare)
	}
	if blkShare < 0.75 || blkShare > 0.95 {
		t.Errorf("blocking <1%% share %.2f, paper ~0.83", blkShare)
	}
}

func TestBlockRatesMatchPaperShape(t *testing.T) {
	_, a := surveyed(t)
	rates := a.BlockRates(measure.CaseBlocking)
	for _, std := range standards.Catalog() {
		br := rates[std.Abbrev]
		if br.DefaultSites < 15 {
			continue
		}
		if math.Abs(br.Rate-std.BlockRate) > 0.18 {
			t.Errorf("standard %s: block rate %.2f, paper %.2f (on %d sites)",
				std.Abbrev, br.Rate, std.BlockRate, br.DefaultSites)
		}
	}
}

func TestComplexityDistribution(t *testing.T) {
	_, a := surveyed(t)
	comp := a.Complexity()
	if len(comp) == 0 {
		t.Fatal("no complexity data")
	}
	var vals []float64
	for _, c := range comp {
		vals = append(vals, float64(c))
	}
	// Paper §5.9: most sites use 14-32 standards, none more than 41.
	med := Quantile(vals, 0.5)
	if med < 10 || med > 36 {
		t.Errorf("median complexity %.0f, paper range 14-32", med)
	}
	if max := Quantile(vals, 1); max > 55 {
		t.Errorf("max complexity %.0f, paper max 41", max)
	}
}

func TestStandardPopularityCDF(t *testing.T) {
	_, a := surveyed(t)
	pts := a.StandardPopularityCDF()
	if len(pts) == 0 {
		t.Fatal("empty CDF")
	}
	// Paper §5.2: some standards are never used (the CDF starts above
	// zero at x=0), and the most popular standards reach most sites.
	if pts[0].X != 0 {
		t.Errorf("CDF does not include never-used standards: first x=%v", pts[0].X)
	}
	if pts[0].Fraction < 0.1 {
		t.Errorf("never-used fraction %.2f too small", pts[0].Fraction)
	}
	if pts[len(pts)-1].Fraction != 1 {
		t.Error("CDF does not reach 1")
	}
}

func TestVisitWeightedPopularity(t *testing.T) {
	web, a := surveyed(t)
	pts := a.VisitWeightedPopularity(web.Ranking)
	if len(pts) != standards.Count() {
		t.Fatalf("points = %d, want %d", len(pts), standards.Count())
	}
	// Site and visit fractions must correlate strongly (the paper's
	// clustering around x=y).
	var xs, ys []float64
	for _, p := range pts {
		if p.SiteFraction > 0 {
			xs = append(xs, p.SiteFraction)
			ys = append(ys, p.VisitFraction)
		}
	}
	if r := Pearson(xs, ys); r < 0.9 {
		t.Errorf("site/visit correlation %.2f, want > 0.9 (paper: clustered around x=y)", r)
	}
}

func TestAgeSeries(t *testing.T) {
	_, a := surveyed(t)
	pts := a.AgeSeries(sharedHist)
	if len(pts) != standards.Count() {
		t.Fatalf("age points = %d, want %d", len(pts), standards.Count())
	}
	byStd := map[standards.Abbrev]AgePoint{}
	for _, p := range pts {
		byStd[p.Standard] = p
	}
	// AJAX: old and popular. SLC: newer but popular. Both paper-called.
	ajax, slc := byStd["AJAX"], byStd["SLC"]
	if ajax.Introduced.Date.Year() != 2004 {
		t.Errorf("AJAX introduced %v, want 2004", ajax.Introduced)
	}
	if slc.Introduced.Date.Year() != 2013 {
		t.Errorf("SLC introduced %v, want 2013", slc.Introduced)
	}
	if ajax.Sites == 0 || slc.Sites == 0 {
		t.Error("AJAX/SLC unexpectedly unpopular")
	}
	// The series is sorted by date.
	for i := 1; i < len(pts); i++ {
		if pts[i].Introduced.Date.Before(pts[i-1].Introduced.Date) {
			t.Fatal("age series not sorted")
		}
	}
}

func TestAdVsTrackerRates(t *testing.T) {
	_, a := surveyed(t)
	pts := a.AdVsTrackerRates()
	if len(pts) == 0 {
		t.Fatal("no ad-vs-tracker points")
	}
	byStd := map[standards.Abbrev]AdVsTracker{}
	for _, p := range pts {
		byStd[p.Standard] = p
	}
	// Paper §5.7.2: WCR is blocked more by tracking blockers; UIE more
	// by ad blockers.
	if p, ok := byStd["WCR"]; ok && p.Sites > 20 && p.TrackerRate <= p.AdRate {
		t.Errorf("WCR tracker rate %.2f <= ad rate %.2f", p.TrackerRate, p.AdRate)
	}
	if p, ok := byStd["UIE"]; ok && p.Sites > 10 && p.AdRate <= p.TrackerRate {
		t.Errorf("UIE ad rate %.2f <= tracker rate %.2f", p.AdRate, p.TrackerRate)
	}
}

func TestTable2(t *testing.T) {
	_, a := surveyed(t)
	db := cve.Generate(1)
	rows := a.Table2(db)
	if len(rows) < 40 {
		t.Fatalf("table 2 has %d rows, want ~53", len(rows))
	}
	// Rows are sorted by CVEs then sites; the top row must be H-C (15
	// CVEs).
	if rows[0].Standard.Abbrev != "H-C" || rows[0].CVEs != 15 {
		t.Errorf("top row = %s with %d CVEs, want H-C with 15", rows[0].Standard.Abbrev, rows[0].CVEs)
	}
	for _, r := range rows {
		if r.Sites == 0 && r.CVEs == 0 {
			t.Errorf("row %s has neither sites nor CVEs", r.Standard.Abbrev)
		}
	}
}

func TestNewStandardsPerRound(t *testing.T) {
	_, a := surveyed(t)
	perRound := a.NewStandardsPerRound()
	if len(perRound) != 5 {
		t.Fatalf("rounds = %d", len(perRound))
	}
	if perRound[0] < 5 {
		t.Errorf("round-1 discovery %.2f too low (most standards load on the home page)", perRound[0])
	}
	// Table 3 shape: monotone-ish decay to near zero.
	if perRound[1] <= perRound[4] {
		t.Errorf("no decay: %v", perRound)
	}
	if perRound[4] > 0.25 {
		t.Errorf("round-5 discovery %.2f, paper 0.00", perRound[4])
	}
}

func TestHumanDelta(t *testing.T) {
	web, a := surveyed(t)
	// A human observing exactly what the monkey saw has delta zero.
	for site := range web.Sites {
		u := a.Log.SiteUnion(measure.CaseDefault, site)
		if u == nil {
			continue
		}
		counts := map[int]int64{}
		for id := 0; id < a.Log.NumFeatures; id++ {
			if u.Get(id) {
				counts[id] = 1
			}
		}
		if d := a.HumanDelta(site, counts); d != 0 {
			t.Fatalf("identical observation yields delta %d", d)
		}
		// A human seeing one feature of a never-observed standard
		// yields delta 1.
		for _, f := range a.Reg.Features {
			if !u.Get(f.ID) && a.StandardSites(measure.CaseDefault)[f.Standard] == 0 {
				counts[f.ID] = 1
				if d := a.HumanDelta(site, counts); d != 1 {
					t.Fatalf("novel standard yields delta %d", d)
				}
				return
			}
		}
		return
	}
}

func TestUsedStandards(t *testing.T) {
	_, a := surveyed(t)
	def := a.UsedStandards(measure.CaseDefault)
	blk := a.UsedStandards(measure.CaseBlocking)
	// Paper: 64 standards used by default (75 - 11 never used); under
	// blocking, additional standards disappear entirely.
	if def < 55 || def > 64 {
		t.Errorf("default used standards = %d, want ~64", def)
	}
	if blk > def {
		t.Errorf("blocking used %d standards > default %d", blk, def)
	}
}
