package analysis

import (
	"math"
	"sort"
)

// CDFPoint is one point of a cumulative distribution: the fraction of the
// population with Value <= X.
type CDFPoint struct {
	X        float64
	Fraction float64
}

// CDF computes the empirical cumulative distribution of the values.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, CDFPoint{X: sorted[i], Fraction: float64(j) / n})
		i = j
	}
	return out
}

// Bin is one histogram bucket.
type Bin struct {
	// Lo is the bucket's inclusive lower bound; Hi its exclusive upper
	// bound.
	Lo, Hi float64
	// Count is the number of observations in the bucket.
	Count int
	// Fraction is Count over the population size.
	Fraction float64
}

// Histogram buckets values into equal-width bins over [lo, hi).
func Histogram(values []float64, lo, hi float64, bins int) []Bin {
	if bins <= 0 || hi <= lo {
		return nil
	}
	out := make([]Bin, bins)
	width := (hi - lo) / float64(bins)
	for i := range out {
		out[i].Lo = lo + float64(i)*width
		out[i].Hi = out[i].Lo + width
	}
	for _, v := range values {
		idx := int((v - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		out[idx].Count++
	}
	if n := float64(len(values)); n > 0 {
		for i := range out {
			out[i].Fraction = float64(out[i].Count) / n
		}
	}
	return out
}

// Quantile returns the q-quantile (0..1) of values by linear interpolation.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Pearson computes the Pearson correlation of two equal-length series.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
