package analysis

import (
	"sort"

	"repro/internal/measure"
)

// PopularFeature is one row of the feature-popularity headline table: a
// feature and the share of measured sites that executed it (§5.1's
// definition of feature popularity).
type PopularFeature struct {
	ID int
	// Name is the feature's WebIDL name, e.g. "Document.createElement".
	Name string
	// Sites is the number of measured sites that executed the feature.
	Sites int
	// Fraction is Sites over the number of measured sites.
	Fraction float64
}

// TopFeatures returns the n most popular features under the case, ordered
// by site count (ties broken by feature ID for determinism).
func (a *Analysis) TopFeatures(c measure.Case, n int) []PopularFeature {
	siteCounts := a.FeatureSites(c)
	measured := a.measuredCount()
	rows := make([]PopularFeature, 0, len(siteCounts))
	for id, sites := range siteCounts {
		if sites == 0 {
			continue
		}
		row := PopularFeature{ID: id, Name: a.Reg.Features[id].Name(), Sites: sites}
		if measured > 0 {
			row.Fraction = float64(sites) / float64(measured)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Sites != rows[j].Sites {
			return rows[i].Sites > rows[j].Sites
		}
		return rows[i].ID < rows[j].ID
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// FeatureDelta is one row of the blocked-vs-unblocked headline table: how a
// feature's site count changes when a blocking extension is active (the
// per-feature view behind Figure 4's per-standard block rates).
type FeatureDelta struct {
	ID   int
	Name string
	// BaseSites and BlockedSites are the feature's site counts under the
	// baseline and blocking cases.
	BaseSites    int
	BlockedSites int
	// Drop is BaseSites - BlockedSites; positive when blocking prevents
	// the feature from executing somewhere.
	Drop int
	// DropRate is Drop over BaseSites (0 when the feature was unused).
	DropRate float64
}

// FeatureDeltas compares two cases feature by feature and returns the n
// features whose usage drops the most under blocking (ties broken by ID).
// Features unused in both cases are omitted.
func (a *Analysis) FeatureDeltas(base, blocked measure.Case, n int) []FeatureDelta {
	baseCounts := a.FeatureSites(base)
	blockedCounts := a.FeatureSites(blocked)
	rows := make([]FeatureDelta, 0, len(baseCounts))
	for id := range baseCounts {
		b, k := baseCounts[id], blockedCounts[id]
		if b == 0 && k == 0 {
			continue
		}
		row := FeatureDelta{ID: id, Name: a.Reg.Features[id].Name(), BaseSites: b, BlockedSites: k, Drop: b - k}
		if b > 0 {
			row.DropRate = float64(row.Drop) / float64(b)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Drop != rows[j].Drop {
			return rows[i].Drop > rows[j].Drop
		}
		return rows[i].ID < rows[j].ID
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}
