package extension

import (
	"testing"

	"repro/internal/webserver"

	brws "repro/internal/browser"
)

func TestEventMeasurerObservesRegistrations(t *testing.T) {
	web, bind, site := setup(t)
	em := NewEventMeasurer()
	b := brws.New(bind, webserver.DirectFetcher{Web: web}, em)
	if _, err := b.Load("http://" + site.Domain + "/"); err != nil {
		t.Fatal(err)
	}
	regs := em.Registrations()
	if len(regs) == 0 {
		t.Fatal("no event registrations observed (generated pages carry handlers)")
	}
	var total int64
	for _, n := range regs {
		total += n
	}
	if total == 0 {
		t.Fatal("zero registrations")
	}
	if len(em.Events()) != len(regs) {
		t.Error("Events and Registrations disagree")
	}
}

func TestEventMeasurerComposesWithFeatureMeasurer(t *testing.T) {
	web, bind, site := setup(t)
	em := NewEventMeasurer()
	fm := NewMeasurer()
	b := brws.New(bind, webserver.DirectFetcher{Web: web}, fm, em)
	if _, err := b.Load("http://" + site.Domain + "/"); err != nil {
		t.Fatal(err)
	}
	if len(fm.Take()) == 0 {
		t.Error("feature measurer starved by event measurer")
	}
	if len(em.Registrations()) == 0 {
		t.Error("event measurer observed nothing alongside feature measurer")
	}
}

func TestEventMeasurerChainsCallbacks(t *testing.T) {
	web, bind, site := setup(t)
	em1 := NewEventMeasurer()
	em2 := NewEventMeasurer()
	b := brws.New(bind, webserver.DirectFetcher{Web: web}, em1, em2)
	if _, err := b.Load("http://" + site.Domain + "/"); err != nil {
		t.Fatal(err)
	}
	r1, r2 := em1.Registrations(), em2.Registrations()
	if len(r1) == 0 || len(r2) == 0 {
		t.Fatal("chained observers did not both fire")
	}
	for ev, n := range r1 {
		if r2[ev] != n {
			t.Errorf("event %s: observer counts differ (%d vs %d)", ev, n, r2[ev])
		}
	}
}

func TestEventMeasurerSelectorsAndReset(t *testing.T) {
	web, bind, site := setup(t)
	em := NewEventMeasurer()
	b := brws.New(bind, webserver.DirectFetcher{Web: web}, em)
	if _, err := b.Load("http://" + site.Domain + "/"); err != nil {
		t.Fatal(err)
	}
	// Click handlers in the generated web always carry selectors.
	if em.SelectorCount("click") == 0 {
		t.Error("no click selectors observed")
	}
	em.Reset()
	if len(em.Registrations()) != 0 || em.SelectorCount("click") != 0 {
		t.Error("reset did not clear state")
	}
	if em.OnBeforeRequest(blockingRequestStub()) {
		t.Error("event measurer blocked a request")
	}
	if em.Name() == "" {
		t.Error("unnamed extension")
	}
}
