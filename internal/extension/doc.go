// Package extension implements the paper's measuring extension (§4.2): a
// browser extension that, injected before any page script runs, shims every
// method on the interface prototypes with a counting wrapper (§4.2.1) and
// registers Object.watch-style watchpoints on the writable properties of
// singleton objects (§4.2.2). Everything the extension observes lands in a
// per-visit count table the crawler drains after each page.
package extension
