package extension

import (
	"testing"

	"repro/internal/blocking"

	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
	"repro/internal/webserver"

	brws "repro/internal/browser"
)

func setup(t testing.TB) (*synthweb.Web, *webapi.Bindings, *synthweb.Site) {
	t.Helper()
	reg, err := webidl.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range web.Sites {
		if s.Failure == synthweb.FailNone {
			return web, webapi.NewBindings(reg), s
		}
	}
	t.Fatal("no measurable site")
	return nil, nil, nil
}

func TestMeasurerObservesLoadActivity(t *testing.T) {
	web, bind, site := setup(t)
	m := NewMeasurer()
	b := brws.New(bind, webserver.DirectFetcher{Web: web}, m)
	page, err := b.Load("http://" + site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	counts := m.Take()
	if len(counts) == 0 {
		t.Fatal("measurer observed nothing")
	}
	// The measurer's observations must equal the runtime's native call
	// counts: shims forward every call.
	var measured, native int64
	for id, n := range counts {
		measured += n
		native += page.Runtime.NativeCalls(web.Registry.Features[id])
	}
	if measured != native {
		t.Errorf("measured %d calls, native %d", measured, native)
	}
	if m.Watchpoints() == 0 {
		t.Error("no singleton watchpoints installed")
	}
}

func TestTakeResets(t *testing.T) {
	web, bind, site := setup(t)
	m := NewMeasurer()
	b := brws.New(bind, webserver.DirectFetcher{Web: web}, m)
	if _, err := b.Load("http://" + site.Domain + "/"); err != nil {
		t.Fatal(err)
	}
	first := m.Take()
	if len(first) == 0 {
		t.Fatal("first take empty")
	}
	if second := m.Take(); len(second) != 0 {
		t.Fatalf("take did not reset: %d entries remain", len(second))
	}
}

func TestMeasurerNeverBlocks(t *testing.T) {
	m := NewMeasurer()
	req := blocking.Request{URL: "http://adnet-00.example/x.js", PageHost: "a.example"}
	if m.OnBeforeRequest(req) {
		t.Fatal("measurer blocked a request")
	}
	if m.Name() == "" {
		t.Fatal("measurer has no name")
	}
}

func TestMeasurerCountsMatchGroundTruthKinds(t *testing.T) {
	web, bind, site := setup(t)
	m := NewMeasurer()
	b := brws.New(bind, webserver.DirectFetcher{Web: web}, m)
	if _, err := b.Load("http://" + site.Domain + "/"); err != nil {
		t.Fatal(err)
	}
	counts := m.Take()
	for id := range counts {
		f := web.Registry.Features[id]
		if !webapi.Measurable(f) {
			t.Errorf("measurer observed unmeasurable feature %s", f.Name())
		}
	}
}

// blockingRequestStub builds a representative third-party script request.
func blockingRequestStub() blocking.Request {
	return blocking.Request{URL: "http://adnet-00.example/x.js", PageHost: "a.example", Type: blocking.ResourceScript}
}
