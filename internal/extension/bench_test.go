package extension

import "testing"

// drainOnePage simulates the survey's hottest extension path: a page's
// worth of shim observations followed by the crawler's per-page drain.
func drainOnePage(m *Measurer) map[int]int64 {
	for id := 0; id < 64; id++ {
		m.observe(id, 3)
	}
	return m.Take()
}

// TestTakeDoesNotAllocate guards the double-buffered count table: once both
// buffers are warm, the observe-then-Take page drain must be allocation-free
// (Take used to build a fresh map per page — the top remaining allocation
// site after the PR 4 fast path).
func TestTakeDoesNotAllocate(t *testing.T) {
	m := NewMeasurer()
	drainOnePage(m) // warm buffer A
	drainOnePage(m) // warm buffer B
	if allocs := testing.AllocsPerRun(100, func() { drainOnePage(m) }); allocs != 0 {
		t.Errorf("page drain allocates %v times per run; want 0", allocs)
	}
}

// TestTakeRecyclesBuffers pins the contract change: the map Take returns is
// invalidated by the next Take (it becomes the new accumulation buffer), so
// callers must fold it immediately — which both survey engines do.
func TestTakeRecyclesBuffers(t *testing.T) {
	m := NewMeasurer()
	first := drainOnePage(m)
	if len(first) != 64 || first[0] != 3 {
		t.Fatalf("first drain saw %d entries, first[0]=%d; want 64 and 3", len(first), first[0])
	}
	second := drainOnePage(m)
	if len(second) != 64 || second[0] != 3 {
		t.Fatalf("second drain saw %d entries, second[0]=%d; want 64 and 3", len(second), second[0])
	}
	// "first" is now the accumulation buffer again: the second Take
	// cleared it. This is the documented invalidation.
	if len(first) != 0 {
		t.Fatalf("previously returned map still holds %d entries; want it recycled empty", len(first))
	}
}

func BenchmarkMeasurerTake(b *testing.B) {
	m := NewMeasurer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		drainOnePage(m)
	}
}
