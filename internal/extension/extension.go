package extension

import (
	"sync"

	"repro/internal/blocking"
	"repro/internal/browser"
	"repro/internal/webapi"
	"repro/internal/webidl"
)

// Measurer is the measuring extension. One Measurer serves one browser
// worker; counts accumulate until Take is called.
type Measurer struct {
	mu sync.Mutex
	// counts and scratch double-buffer the per-page count table: Take
	// hands out counts and installs the (cleared) scratch, so the survey's
	// hottest drain — once per page, hundreds of thousands of times per
	// run — allocates nothing.
	counts  map[int]int64
	scratch map[int]int64
	// watchpoints counts installed property watchpoints on the last
	// instrumented page (diagnostic).
	watchpoints int
}

// NewMeasurer creates an empty measurer.
func NewMeasurer() *Measurer {
	return &Measurer{counts: make(map[int]int64), scratch: make(map[int]int64)}
}

// Name implements browser.Extension.
func (m *Measurer) Name() string { return "feature-measurer" }

// OnBeforeRequest implements browser.Extension; the measurer never blocks.
func (m *Measurer) OnBeforeRequest(blocking.Request) bool { return false }

// OnDOMReady instruments the page: every prototype method is replaced with
// a closure-wrapped shim that logs and forwards to the original, and every
// watchable singleton property gets a write watchpoint.
//
// A runtime recycled through Browser.Release arrives with this measurer's
// shims and watchpoints already installed (and its counters zeroed), so
// instrumentation is skipped — re-wrapping would double every count. The
// shims only forward to m, which serves every page of the worker's browser,
// so the reused instrumentation observes exactly what fresh shims would.
func (m *Measurer) OnDOMReady(p *browser.Page) {
	rt := p.Runtime
	if rt.InstrumentedBy(m) {
		return
	}
	rt.PatchAllMethods(func(f *webidl.Feature, original webapi.MethodFunc) webapi.MethodFunc {
		return func(ctx *webapi.CallContext) {
			m.observe(ctx.Feature.ID, int64(ctx.Count))
			original(ctx) // preserve page functionality
		}
	})
	m.watchpoints = rt.WatchAllSingletons(func(f *webidl.Feature, count int) {
		m.observe(f.ID, int64(count))
	})
	rt.MarkInstrumented(m)
}

func (m *Measurer) observe(id int, n int64) {
	m.mu.Lock()
	m.counts[id] += n
	m.mu.Unlock()
}

// Take returns the accumulated counts and resets the measurer. The
// returned map is the measurer's recycled scratch: it stays valid only
// until the next Take, so callers that keep counts past that point must
// copy them. Both survey engines fold the map into their own accumulator
// immediately (crawler.CrawlOnce's merge), which is why the page-drain path
// can run allocation-free.
func (m *Measurer) Take() map[int]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.counts
	clear(m.scratch)
	m.counts = m.scratch
	m.scratch = out
	return out
}

// Watchpoints reports how many property watchpoints the last instrumented
// page received.
func (m *Measurer) Watchpoints() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.watchpoints
}
