package extension

import (
	"sort"
	"sync"

	"repro/internal/blocking"
	"repro/internal/browser"
	"repro/internal/webscript"
)

// EventMeasurer implements the event-registration measurement the paper
// describes but deliberately omits (§4.2.3): by watching addEventListener-
// style registrations it can observe *some* event use, but it cannot see
// legacy DOM0 registrations (onclick assignments) on non-singleton objects,
// so its counts are a documented subset of true event usage. It exists so
// the omission can be quantified: comparing its registrations against the
// WebScript ground truth shows what fraction of event behaviour an
// extension-based approach captures.
type EventMeasurer struct {
	mu sync.Mutex
	// counts maps event name → registrations observed.
	counts map[string]int64
	// selectors maps event name → distinct selectors seen.
	selectors map[string]map[string]bool
}

// NewEventMeasurer creates an empty event measurer.
func NewEventMeasurer() *EventMeasurer {
	return &EventMeasurer{
		counts:    make(map[string]int64),
		selectors: make(map[string]map[string]bool),
	}
}

// Name implements browser.Extension.
func (m *EventMeasurer) Name() string { return "event-measurer" }

// OnBeforeRequest implements browser.Extension; the measurer never blocks.
func (m *EventMeasurer) OnBeforeRequest(blocking.Request) bool { return false }

// OnDOMReady hooks the page's registration callback, chaining any callback
// already installed so multiple observers compose.
func (m *EventMeasurer) OnDOMReady(p *browser.Page) {
	prev := p.OnHandlerRegistered
	p.OnHandlerRegistered = func(ev webscript.EventType, selector string) {
		m.observe(ev, selector)
		if prev != nil {
			prev(ev, selector)
		}
	}
}

func (m *EventMeasurer) observe(ev webscript.EventType, selector string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name := ev.String()
	m.counts[name]++
	set := m.selectors[name]
	if set == nil {
		set = make(map[string]bool)
		m.selectors[name] = set
	}
	if selector != "" {
		set[selector] = true
	}
}

// Registrations returns the per-event registration counts observed so far.
func (m *EventMeasurer) Registrations() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}

// Events returns the distinct event names observed, sorted.
func (m *EventMeasurer) Events() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.counts))
	for k := range m.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SelectorCount returns how many distinct selectors were bound for an event.
func (m *EventMeasurer) SelectorCount(event string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.selectors[event])
}

// Reset clears the measurer.
func (m *EventMeasurer) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts = make(map[string]int64)
	m.selectors = make(map[string]map[string]bool)
}
