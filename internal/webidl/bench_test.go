package webidl

import "testing"

func BenchmarkGenerateCorpus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(int64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseFile(b *testing.B) {
	files, err := GenerateFiles(1)
	if err != nil {
		b.Fatal(err)
	}
	src := files["dom/Document.webidl"]
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFile("dom/Document.webidl", src); err != nil {
			b.Fatal(err)
		}
	}
}
