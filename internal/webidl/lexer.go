package webidl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes of the WebIDL subset.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokPunct  // { } ( ) [ ] ; , : = < > ?
	tokString // "..."
	tokNumber
)

// keywords of the supported WebIDL subset.
var idlKeywords = map[string]bool{
	"interface": true,
	"partial":   true,
	"attribute": true,
	"readonly":  true,
	"static":    true,
	"const":     true,
	"optional":  true,
	"sequence":  true,
	"Promise":   true,
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "EOF"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexError reports a lexical error with position information.
type lexError struct {
	file string
	line int
	col  int
	msg  string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.file, e.line, e.col, e.msg)
}

// lexer tokenizes a WebIDL-subset document.
type lexer struct {
	file  string
	src   string
	pos   int
	line  int
	col   int
	toks  []token
	fatal error
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) {
	if l.fatal == nil {
		l.fatal = &lexError{file: l.file, line: line, col: col, msg: fmt.Sprintf(format, args...)}
	}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// run tokenizes the whole input, returning the token stream.
func (l *lexer) run() ([]token, error) {
	for l.pos < len(l.src) && l.fatal == nil {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			l.skipLineComment()
		case c == '/' && l.peek2() == '*':
			l.skipBlockComment()
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9', c == '-' && l.peek2() >= '0' && l.peek2() <= '9':
			l.lexNumber()
		case c == '"':
			l.lexString()
		case strings.IndexByte("{}()[];,:=<>?", c) >= 0:
			line, col := l.line, l.col
			l.advance()
			l.toks = append(l.toks, token{kind: tokPunct, text: string(c), line: line, col: col})
		default:
			l.errorf(l.line, l.col, "unexpected character %q", c)
		}
	}
	if l.fatal != nil {
		return nil, l.fatal
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line, col: l.col})
	return l.toks, nil
}

func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

func (l *lexer) skipBlockComment() {
	startLine, startCol := l.line, l.col
	l.advance() // '/'
	l.advance() // '*'
	for l.pos < len(l.src) {
		if l.peek() == '*' && l.peek2() == '/' {
			l.advance()
			l.advance()
			return
		}
		l.advance()
	}
	l.errorf(startLine, startCol, "unterminated block comment")
}

func (l *lexer) lexIdent() {
	line, col := l.line, l.col
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if idlKeywords[text] {
		kind = tokKeyword
	}
	l.toks = append(l.toks, token{kind: kind, text: text, line: line, col: col})
}

func (l *lexer) lexNumber() {
	line, col := l.line, l.col
	start := l.pos
	if l.peek() == '-' {
		l.advance()
	}
	for l.pos < len(l.src) && (isDigit(l.peek()) || l.peek() == '.' || l.peek() == 'x' ||
		(l.peek() >= 'a' && l.peek() <= 'f') || (l.peek() >= 'A' && l.peek() <= 'F')) {
		l.advance()
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col})
}

func (l *lexer) lexString() {
	line, col := l.line, l.col
	l.advance() // opening quote
	start := l.pos
	for l.pos < len(l.src) && l.peek() != '"' {
		if l.peek() == '\n' {
			l.errorf(line, col, "newline in string literal")
			return
		}
		l.advance()
	}
	if l.pos >= len(l.src) {
		l.errorf(line, col, "unterminated string literal")
		return
	}
	text := l.src[start:l.pos]
	l.advance() // closing quote
	l.toks = append(l.toks, token{kind: tokString, text: text, line: line, col: col})
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
