package webidl

import (
	"fmt"

	"repro/internal/standards"
)

// Kind distinguishes the two member kinds the paper instruments.
type Kind int

const (
	// Method is a JavaScript function exposed on an interface prototype.
	Method Kind = iota
	// Attribute is a property; the paper counts writes to attributes on
	// singleton objects (window, document, navigator, ...).
	Attribute
)

// String returns the WebIDL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Method:
		return "method"
	case Attribute:
		return "attribute"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Feature is one instrumentable browser capability: a method or property
// reachable from JavaScript.
type Feature struct {
	// ID is the feature's dense index within its Registry (stable for a
	// given corpus seed).
	ID int
	// Interface is the defining WebIDL interface, e.g. "Document".
	Interface string
	// Member is the method or attribute name, e.g. "createElement".
	Member string
	// Kind says whether the feature is a method or an attribute.
	Kind Kind
	// ReadOnly marks read-only attributes (their writes cannot occur, but
	// they remain part of the instrumented surface).
	ReadOnly bool
	// Standard is the abbreviation of the owning standard. Features that
	// appear in multiple standards documents are attributed to the
	// earliest published one, per the paper's §3.3 rule; the corpus
	// records only that canonical attribution.
	Standard standards.Abbrev
	// File is the .webidl file the feature was parsed from.
	File string
	// Rank is the feature's popularity rank within its standard
	// (0 = the standard's most popular feature). The synthetic-web
	// calibration and the Firefox release-history model both key off it.
	Rank int
}

// Name returns the paper's canonical feature name,
// "Interface.prototype.member".
func (f *Feature) Name() string {
	return f.Interface + ".prototype." + f.Member
}

// Interface describes a parsed WebIDL interface.
type Interface struct {
	// Name is the interface identifier.
	Name string
	// Parent is the inherited interface, if any.
	Parent string
	// Singleton marks interfaces instantiated exactly once per page
	// (window, document, navigator, ...); the measuring extension can
	// watch property writes only on these, per the paper's §4.2.2.
	Singleton bool
	// Standard is the owning standard of the interface's primary
	// definition.
	Standard standards.Abbrev
	// Members lists the interface's features in declaration order,
	// aggregated across partial interface declarations.
	Members []*Feature
	// Files lists every .webidl file contributing members, in first-seen
	// order.
	Files []string
}

// singletonInterfaces names the per-page singleton objects. Property writes
// are observable (via the Object.watch analog) only on instances of these.
var singletonInterfaces = map[string]bool{
	"Window":      true,
	"Document":    true,
	"Navigator":   true,
	"Screen":      true,
	"History":     true,
	"Location":    true,
	"Performance": true,
	"Crypto":      true,
	"Console":     true,
	"Storage":     true,
}

// IsSingletonInterface reports whether the named interface is one of the
// browser's per-page singletons.
func IsSingletonInterface(name string) bool { return singletonInterfaces[name] }
