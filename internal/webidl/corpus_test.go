package webidl

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/standards"
)

const testSeed = 1

func mustGenerate(t testing.TB) *Registry {
	t.Helper()
	r, err := Generate(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGenerateInvariants(t *testing.T) {
	r := mustGenerate(t)
	if len(r.Features) != TotalFeatures {
		t.Errorf("features = %d, want %d", len(r.Features), TotalFeatures)
	}
	if len(r.Files) != FileCount {
		t.Errorf("files = %d, want %d", len(r.Files), FileCount)
	}
	for _, std := range standards.Catalog() {
		if got := len(r.OfStandard(std.Abbrev)); got != std.Features {
			t.Errorf("standard %s: %d features, want %d", std.Abbrev, got, std.Features)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateFiles(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFiles(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("file counts differ: %d vs %d", len(a), len(b))
	}
	for name, src := range a {
		if b[name] != src {
			t.Fatalf("file %s differs between runs with same seed", name)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, err := GenerateFiles(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFiles(2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for name, src := range a {
		if b[name] != src {
			same = false
			break
		}
	}
	if same {
		t.Fatal("corpora for different seeds are identical")
	}
}

func TestPaperNamedFeatures(t *testing.T) {
	r := mustGenerate(t)
	want := []struct {
		name string
		std  standards.Abbrev
		kind Kind
	}{
		{"Document.prototype.createElement", "DOM1", Method},
		{"Node.prototype.insertBefore", "DOM1", Method},
		{"Node.prototype.cloneNode", "DOM1", Method},
		{"XMLHttpRequest.prototype.open", "AJAX", Method},
		{"Document.prototype.querySelectorAll", "SLC", Method},
		{"Navigator.prototype.vibrate", "V", Method},
		{"PluginArray.prototype.refresh", "H-P", Method},
		{"SVGTextContentElement.prototype.getComputedTextLength", "SVG", Method},
		{"Crypto.prototype.getRandomValues", "WCR", Method},
		{"Navigator.prototype.sendBeacon", "BE", Method},
		{"Performance.prototype.now", "HRT", Method},
		{"Window.prototype.requestAnimationFrame", "TC", Method},
		{"Element.prototype.innerHTML", "DOM-PS", Attribute},
	}
	for _, w := range want {
		f, ok := r.ByName(w.name)
		if !ok {
			t.Errorf("feature %s missing from corpus", w.name)
			continue
		}
		if f.Standard != w.std {
			t.Errorf("%s: standard %s, want %s", w.name, f.Standard, w.std)
		}
		if f.Kind != w.kind {
			t.Errorf("%s: kind %v, want %v", w.name, f.Kind, w.kind)
		}
	}
}

func TestTopFeatures(t *testing.T) {
	r := mustGenerate(t)
	want := map[standards.Abbrev]string{
		"DOM1": "Document.prototype.createElement",
		"AJAX": "XMLHttpRequest.prototype.open",
		"SLC":  "Document.prototype.querySelectorAll",
		"V":    "Navigator.prototype.vibrate",
		"H-P":  "PluginArray.prototype.refresh",
		"HRT":  "Performance.prototype.now",
	}
	for std, name := range want {
		top := r.TopFeature(std)
		if top == nil {
			t.Errorf("standard %s has no top feature", std)
			continue
		}
		if top.Name() != name {
			t.Errorf("standard %s top feature = %s, want %s", std, top.Name(), name)
		}
		if top.Rank != 0 {
			t.Errorf("standard %s top feature rank = %d, want 0", std, top.Rank)
		}
	}
}

func TestRanksAreDense(t *testing.T) {
	r := mustGenerate(t)
	for _, std := range standards.Catalog() {
		fs := r.OfStandard(std.Abbrev)
		for i, f := range fs {
			if f.Rank != i {
				t.Fatalf("standard %s: feature %s has rank %d at index %d", std.Abbrev, f.Name(), f.Rank, i)
			}
		}
	}
}

func TestFeatureNamesUnique(t *testing.T) {
	r := mustGenerate(t)
	seen := make(map[string]bool, len(r.Features))
	for _, f := range r.Features {
		name := f.Name()
		if seen[name] {
			t.Fatalf("duplicate feature name %s", name)
		}
		seen[name] = true
	}
}

func TestSingletonFlags(t *testing.T) {
	r := mustGenerate(t)
	for _, name := range []string{"Window", "Document", "Navigator"} {
		iface, ok := r.InterfaceOf(name)
		if !ok {
			t.Fatalf("interface %s missing", name)
		}
		if !iface.Singleton {
			t.Errorf("interface %s should be a singleton", name)
		}
	}
	if iface, ok := r.InterfaceOf("Element"); ok && iface.Singleton {
		t.Error("Element should not be a singleton")
	}
}

func TestInterfaceParents(t *testing.T) {
	r := mustGenerate(t)
	cases := map[string]string{
		"Document":         "Node",
		"Element":          "Node",
		"HTMLInputElement": "HTMLElement",
		"HTMLElement":      "Element",
	}
	for child, parent := range cases {
		iface, ok := r.InterfaceOf(child)
		if !ok {
			t.Fatalf("interface %s missing", child)
		}
		if iface.Parent != parent {
			t.Errorf("interface %s parent = %q, want %q", child, iface.Parent, parent)
		}
	}
}

func TestEveryFeatureRoundTripsThroughParser(t *testing.T) {
	// The registry is built by parsing the generated sources, so every
	// feature's defining file must re-parse to a definition containing it.
	r := mustGenerate(t)
	for _, f := range r.Features[:50] {
		defs, err := ParseFile(f.File, r.Files[f.File])
		if err != nil {
			t.Fatalf("re-parsing %s: %v", f.File, err)
		}
		found := false
		for _, d := range defs {
			if d.Interface != f.Interface {
				continue
			}
			for _, m := range d.Members {
				if m.Name == f.Member && m.Kind == f.Kind {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("feature %s not found in its defining file %s", f.Name(), f.File)
		}
	}
}

func TestGenerateSeedProperty(t *testing.T) {
	// Property: any seed yields a structurally valid corpus.
	check := func(seed int64) bool {
		r, err := Generate(seed % 1000)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return len(r.Features) == TotalFeatures && len(r.Files) == FileCount
	}
	cfg := &quick.Config{MaxCount: 5}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusSourcesMentionStandards(t *testing.T) {
	files, err := GenerateFiles(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	src, ok := files["dom/Document.webidl"]
	if !ok {
		t.Fatal("dom/Document.webidl missing")
	}
	if !strings.Contains(src, "createElement") {
		t.Errorf("Document.webidl does not declare createElement:\n%s", src)
	}
	if !strings.Contains(src, "Singleton") {
		t.Errorf("Document.webidl lacks Singleton attribute:\n%s", src)
	}
}
