package webidl

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/standards"
)

// FileCount is the number of .webidl files in the generated corpus, matching
// the 757 WebIDL files of the Firefox 46.0.1 source tree (paper §3.2).
const FileCount = 757

// TotalFeatures is the instrumented feature count (paper §3.2).
const TotalFeatures = 1392

// maxMembersPerChunk bounds how many member declarations one file carries;
// larger interfaces are split across partial-interface files, as Firefox
// does for Window and Document.
const maxMembersPerChunk = 24

// word pools for synthesized member names. The pools are deliberately large
// so that a 1,392-feature corpus does not read as repetitive.
var (
	synthVerbs = []string{
		"get", "set", "create", "update", "remove", "insert", "append",
		"compute", "resolve", "observe", "register", "unregister",
		"dispatch", "enumerate", "normalize", "serialize", "restore",
		"clone", "attach", "detach", "request", "cancel", "begin",
		"commit", "sync", "flush", "measure", "encode", "decode",
		"lookup", "validate", "capture", "release", "suspend", "resume",
		"invalidate", "reset", "initialize", "merge", "split",
	}
	synthNouns = []string{
		"State", "Buffer", "Context", "Frame", "Region", "Rect",
		"Channel", "Stream", "Track", "Sample", "Key", "Entry", "Range",
		"Rule", "Layout", "Timing", "Metric", "Gradient", "Path",
		"Texture", "Shader", "Matrix", "Transform", "Point", "Handle",
		"Descriptor", "Registration", "Snapshot", "Segment", "Cursor",
		"Binding", "Slot", "Record", "Source", "Target", "Anchor",
		"Viewport", "Fragment", "Token", "Profile",
	}
	synthAdjectives = []string{
		"pending", "active", "current", "default", "preferred", "cached",
		"effective", "nominal", "raw", "committed", "visible", "internal",
		"native", "initial", "maximum", "minimum", "total", "last",
	}
	synthArgTypes = []string{
		"DOMString", "long", "unsigned long", "double", "boolean", "any",
		"object", "Node", "Element", "sequence<DOMString>",
	}
	synthReturnTypes = []string{
		"void", "DOMString", "long", "unsigned long", "double", "boolean",
		"any", "object", "Promise<any>", "sequence<DOMString>",
	}
	synthAttrTypes = []string{
		"DOMString", "long", "unsigned long", "double", "boolean", "any", "object",
	}
)

// parentOf returns the inheritance parent for an interface, mirroring the
// real DOM hierarchy closely enough for the corpus to read naturally.
func parentOf(name string) string {
	switch name {
	case "EventTarget", "Event", "Blob", "HTMLElement", "SVGElement", "UIEvent", "AudioNode":
		switch name {
		case "HTMLElement", "SVGElement":
			return "Element"
		case "UIEvent":
			return "Event"
		case "AudioNode":
			return "EventTarget"
		}
		return ""
	case "Node", "Window", "Worker", "WebSocket", "XMLHttpRequest", "MediaStreamTrack",
		"MediaSource", "SourceBuffer", "FileReader", "Notification", "BatteryManager",
		"MediaRecorder", "ScreenOrientation", "Performance", "MediaKeySession",
		"FontFaceSet", "IDBDatabase", "IDBTransaction", "IDBRequest", "RTCPeerConnection",
		"RTCDataChannel", "TextTrack", "ServiceWorker", "ServiceWorkerContainer":
		return "EventTarget"
	case "Document", "Element", "CharacterData", "Attr", "DocumentFragment":
		return "Node"
	case "File":
		return "Blob"
	case "MouseEvent", "KeyboardEvent", "FocusEvent", "InputEvent", "CompositionEvent":
		return "UIEvent"
	case "WheelEvent", "DragEvent", "PointerEvent":
		return "MouseEvent"
	case "AudioDestinationNode", "OscillatorNode", "GainNode", "AnalyserNode",
		"AudioBufferSourceNode", "BiquadFilterNode", "PannerNode", "ScriptProcessorNode":
		return "AudioNode"
	case "XMLHttpRequestUpload":
		return "EventTarget"
	}
	if strings.HasPrefix(name, "HTML") && strings.HasSuffix(name, "Element") {
		return "HTMLElement"
	}
	if strings.HasPrefix(name, "SVG") && strings.HasSuffix(name, "Element") {
		return "SVGElement"
	}
	if strings.HasSuffix(name, "Event") {
		return "Event"
	}
	return ""
}

// genFeature is a fully specified member before serialization.
type genFeature struct {
	genMember
	std  standards.Abbrev
	rank int
	ret  string
	args []string // rendered "Type name" strings
	typ  string   // attribute type
}

// GenerateFiles deterministically produces the corpus as a set of .webidl
// sources (file name → content). The same seed always yields byte-identical
// files.
func GenerateFiles(seed int64) (map[string]string, error) {
	rng := rand.New(rand.NewSource(seed))
	cat := standards.Catalog()

	usedNames := make(map[string]bool) // "Interface.member"
	for _, list := range curated {
		for _, gm := range list {
			usedNames[gm.iface+"."+gm.name] = true
		}
	}

	// 1. Build the exact member list per standard.
	perStd := make(map[standards.Abbrev][]genFeature, len(cat))
	for _, std := range cat {
		members := curated[std.Abbrev]
		if len(members) > std.Features {
			members = members[:std.Features]
		}
		pool := pools[std.Abbrev]
		if len(pool) == 0 {
			pool = []string{identFromAbbrev(std.Abbrev) + "Manager"}
		}
		feats := make([]genFeature, 0, std.Features)
		for i, gm := range members {
			feats = append(feats, fillSignature(rng, genFeature{genMember: gm, std: std.Abbrev, rank: i}))
		}
		for len(feats) < std.Features {
			iface := pool[len(feats)%len(pool)]
			gm := synthesizeMember(rng, iface, usedNames)
			feats = append(feats, fillSignature(rng, genFeature{genMember: gm, std: std.Abbrev, rank: len(feats)}))
		}
		perStd[std.Abbrev] = feats
	}

	// 2. Group members by interface, preserving global generation order.
	type ifaceChunkKey struct {
		iface string
		std   standards.Abbrev
	}
	ifaceOrder := []string{}
	seenIface := map[string]bool{}
	chunkOrder := []ifaceChunkKey{}
	chunks := map[ifaceChunkKey][]genFeature{}
	primaryStd := map[string]standards.Abbrev{}
	for _, std := range cat {
		for _, f := range perStd[std.Abbrev] {
			if !seenIface[f.iface] {
				seenIface[f.iface] = true
				ifaceOrder = append(ifaceOrder, f.iface)
				primaryStd[f.iface] = std.Abbrev
			}
			key := ifaceChunkKey{f.iface, std.Abbrev}
			if _, ok := chunks[key]; !ok {
				chunkOrder = append(chunkOrder, key)
			}
			chunks[key] = append(chunks[key], f)
		}
	}

	// 3. Assign files: the primary chunk's first file is the interface's
	// canonical definition; everything else is a partial interface.
	files := make(map[string]string)
	var fileNames []string
	emit := func(name, content string) error {
		if _, dup := files[name]; dup {
			return fmt.Errorf("webidl: duplicate generated file %q", name)
		}
		files[name] = content
		fileNames = append(fileNames, name)
		return nil
	}

	for _, key := range chunkOrder {
		members := chunks[key]
		isPrimary := primaryStd[key.iface] == key.std
		for ci := 0; len(members) > 0; ci++ {
			n := len(members)
			if n > maxMembersPerChunk {
				n = maxMembersPerChunk
			}
			part := members[:n]
			members = members[n:]
			partial := !(isPrimary && ci == 0)
			fname := chunkFileName(key.iface, key.std, isPrimary, ci)
			src := renderChunk(key.iface, key.std, partial, part)
			if err := emit(fname, src); err != nil {
				return nil, err
			}
		}
	}

	if len(files) > FileCount {
		return nil, fmt.Errorf("webidl: generated %d interface files, exceeding the %d-file corpus", len(files), FileCount)
	}

	// 4. Filler files: constants-only interfaces, mirroring the many
	// Firefox WebIDL files (dictionaries, enums, callbacks, constants)
	// that contribute no instrumentable methods or properties.
	for i := 0; len(files) < FileCount; i++ {
		name := fmt.Sprintf("support/Gen%03dConstants.webidl", i)
		src := renderConstants(rng, fmt.Sprintf("Gen%03dConstants", i))
		if err := emit(name, src); err != nil {
			return nil, err
		}
	}
	return files, nil
}

// chunkFileName names the file carrying one chunk of an interface's members.
func chunkFileName(iface string, std standards.Abbrev, primary bool, chunkIndex int) string {
	base := "dom/" + iface
	if !primary {
		base += "-" + sanitizeAbbrev(std)
	}
	if chunkIndex > 0 {
		base += fmt.Sprintf("-%d", chunkIndex+1)
	}
	return base + ".webidl"
}

func sanitizeAbbrev(a standards.Abbrev) string {
	s := strings.ToLower(string(a))
	s = strings.ReplaceAll(s, "-", "")
	return s
}

func identFromAbbrev(a standards.Abbrev) string {
	var b strings.Builder
	up := true
	for _, r := range string(a) {
		if r == '-' {
			up = true
			continue
		}
		if up {
			b.WriteString(strings.ToUpper(string(r)))
			up = false
		} else {
			b.WriteString(strings.ToLower(string(r)))
		}
	}
	return b.String()
}

// synthesizeMember invents a plausible, globally unique member for iface.
func synthesizeMember(rng *rand.Rand, iface string, used map[string]bool) genMember {
	for attempt := 0; ; attempt++ {
		var name string
		kind := Method
		readOnly := false
		if rng.Float64() < 0.35 {
			kind = Attribute
			readOnly = rng.Float64() < 0.5
			adj := synthAdjectives[rng.Intn(len(synthAdjectives))]
			noun := synthNouns[rng.Intn(len(synthNouns))]
			name = adj + noun
		} else {
			verb := synthVerbs[rng.Intn(len(synthVerbs))]
			noun := synthNouns[rng.Intn(len(synthNouns))]
			name = verb + noun
		}
		if attempt > 8 {
			name = fmt.Sprintf("%s%d", name, rng.Intn(100))
		}
		key := iface + "." + name
		if !used[key] {
			used[key] = true
			return genMember{iface: iface, name: name, kind: kind, readOnly: readOnly}
		}
	}
}

// fillSignature attaches synthesized types and arguments to a member.
func fillSignature(rng *rand.Rand, f genFeature) genFeature {
	if f.kind == Attribute {
		f.typ = synthAttrTypes[rng.Intn(len(synthAttrTypes))]
		return f
	}
	f.ret = synthReturnTypes[rng.Intn(len(synthReturnTypes))]
	nargs := rng.Intn(4)
	for i := 0; i < nargs; i++ {
		t := synthArgTypes[rng.Intn(len(synthArgTypes))]
		argName := strings.ToLower(synthNouns[rng.Intn(len(synthNouns))])
		if i > 0 {
			argName = fmt.Sprintf("%s%d", argName, i)
		}
		opt := ""
		if i == nargs-1 && rng.Float64() < 0.3 {
			opt = "optional "
		}
		f.args = append(f.args, opt+t+" "+argName)
	}
	return f
}

// renderChunk serializes one interface chunk as WebIDL source.
func renderChunk(iface string, std standards.Abbrev, partial bool, members []genFeature) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Generated corpus chunk: interface %s, standard %s.\n", iface, std)
	b.WriteString("[Standard=" + string(std))
	if IsSingletonInterface(iface) {
		b.WriteString(", Singleton")
	}
	b.WriteString("]\n")
	if partial {
		b.WriteString("partial ")
	}
	b.WriteString("interface " + iface)
	if !partial {
		if p := parentOf(iface); p != "" {
			b.WriteString(" : " + p)
		}
	}
	b.WriteString(" {\n")
	for _, f := range members {
		switch f.kind {
		case Attribute:
			b.WriteString("  ")
			if f.readOnly {
				b.WriteString("readonly ")
			}
			fmt.Fprintf(&b, "attribute %s %s;\n", f.typ, f.name)
		default:
			fmt.Fprintf(&b, "  %s %s(%s);\n", f.ret, f.name, strings.Join(f.args, ", "))
		}
	}
	b.WriteString("};\n")
	return b.String()
}

// renderConstants serializes a constants-only filler interface.
func renderConstants(rng *rand.Rand, iface string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Generated support file (no instrumentable members).\n")
	fmt.Fprintf(&b, "interface %s {\n", iface)
	n := 2 + rng.Intn(6)
	for i := 0; i < n; i++ {
		noun := synthNouns[rng.Intn(len(synthNouns))]
		fmt.Fprintf(&b, "  const unsigned short %s_%d = %d;\n", strings.ToUpper(noun), i, rng.Intn(64))
	}
	b.WriteString("};\n")
	return b.String()
}

// Registry is the parsed feature corpus: the reproduction's equivalent of
// the 1,392-entry feature list the paper extracts from Firefox.
type Registry struct {
	// Features lists every instrumentable feature in a stable global
	// order (standards catalog order, then per-standard rank).
	Features []*Feature
	// Interfaces maps interface name to its merged definition.
	Interfaces map[string]*Interface
	// Files holds the corpus sources the registry was parsed from.
	Files map[string]string

	byName     map[string]*Feature
	byStandard map[standards.Abbrev][]*Feature
}

// Generate produces the corpus files for seed and parses them into a
// Registry. It verifies the paper's headline corpus invariants.
func Generate(seed int64) (*Registry, error) {
	files, err := GenerateFiles(seed)
	if err != nil {
		return nil, err
	}
	return Load(files)
}

// Load parses a corpus (file name → WebIDL source) into a Registry.
func Load(files map[string]string) (*Registry, error) {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)

	r := &Registry{
		Interfaces: make(map[string]*Interface),
		Files:      files,
		byName:     make(map[string]*Feature),
		byStandard: make(map[standards.Abbrev][]*Feature),
	}

	type rawFeature struct {
		f        *Feature
		fileName string
		declIdx  int
	}
	var raw []rawFeature

	for _, fname := range names {
		defs, err := ParseFile(fname, files[fname])
		if err != nil {
			return nil, err
		}
		for _, d := range defs {
			iface := r.Interfaces[d.Interface]
			if iface == nil {
				iface = &Interface{Name: d.Interface, Singleton: IsSingletonInterface(d.Interface)}
				r.Interfaces[d.Interface] = iface
			}
			if !d.Partial {
				iface.Parent = d.Parent
				iface.Standard = d.Standard
			}
			iface.Files = append(iface.Files, fname)
			for i, md := range d.Members {
				if md.Const {
					continue
				}
				if d.Standard == "" {
					return nil, fmt.Errorf("%s: interface %s declares members without a Standard attribution", fname, d.Interface)
				}
				f := &Feature{
					Interface: d.Interface,
					Member:    md.Name,
					Kind:      md.Kind,
					ReadOnly:  md.ReadOnly,
					Standard:  d.Standard,
					File:      fname,
				}
				if _, dup := r.byName[f.Name()]; dup {
					return nil, fmt.Errorf("%s: duplicate feature %s", fname, f.Name())
				}
				r.byName[f.Name()] = f
				raw = append(raw, rawFeature{f: f, fileName: fname, declIdx: i})
				iface.Members = append(iface.Members, f)
			}
		}
	}

	// Rank features within each standard: curated members keep their
	// curated position (the first curated member is the standard's most
	// popular feature); synthesized members follow in (file, declaration)
	// order.
	curPos := make(map[string]int)
	for abbrev, list := range curated {
		for i, gm := range list {
			curPos[string(abbrev)+"|"+gm.iface+"."+gm.name] = i
		}
	}
	perStd := make(map[standards.Abbrev][]rawFeature)
	for _, rf := range raw {
		perStd[rf.f.Standard] = append(perStd[rf.f.Standard], rf)
	}
	const uncurated = 1 << 30
	for _, std := range standards.Catalog() {
		list := perStd[std.Abbrev]
		sort.SliceStable(list, func(i, j int) bool {
			pi, iok := curPos[string(std.Abbrev)+"|"+list[i].f.Interface+"."+list[i].f.Member]
			pj, jok := curPos[string(std.Abbrev)+"|"+list[j].f.Interface+"."+list[j].f.Member]
			if !iok {
				pi = uncurated
			}
			if !jok {
				pj = uncurated
			}
			if pi != pj {
				return pi < pj
			}
			if list[i].fileName != list[j].fileName {
				return list[i].fileName < list[j].fileName
			}
			return list[i].declIdx < list[j].declIdx
		})
		for rank, rf := range list {
			rf.f.Rank = rank
			rf.f.ID = len(r.Features)
			r.Features = append(r.Features, rf.f)
			r.byStandard[std.Abbrev] = append(r.byStandard[std.Abbrev], rf.f)
		}
	}

	if err := r.validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// validate checks the registry against the paper's corpus invariants.
func (r *Registry) validate() error {
	if got := len(r.Features); got != TotalFeatures {
		return fmt.Errorf("webidl: corpus has %d features, want %d", got, TotalFeatures)
	}
	if got := len(r.Files); got != FileCount {
		return fmt.Errorf("webidl: corpus has %d files, want %d", got, FileCount)
	}
	for _, std := range standards.Catalog() {
		if got := len(r.byStandard[std.Abbrev]); got != std.Features {
			return fmt.Errorf("webidl: standard %s has %d features, want %d", std.Abbrev, got, std.Features)
		}
	}
	for i, f := range r.Features {
		if f.ID != i {
			return fmt.Errorf("webidl: feature %s has ID %d at index %d", f.Name(), f.ID, i)
		}
	}
	return nil
}

// ByName looks a feature up by its canonical "Interface.prototype.member"
// name.
func (r *Registry) ByName(name string) (*Feature, bool) {
	f, ok := r.byName[name]
	return f, ok
}

// OfStandard returns the features of one standard in rank order. The
// returned slice is shared; callers must not mutate it.
func (r *Registry) OfStandard(a standards.Abbrev) []*Feature {
	return r.byStandard[a]
}

// TopFeature returns the rank-0 (most popular) feature of a standard, or nil
// if the standard has no features.
func (r *Registry) TopFeature(a standards.Abbrev) *Feature {
	fs := r.byStandard[a]
	if len(fs) == 0 {
		return nil
	}
	return fs[0]
}

// InterfaceOf returns the merged interface definition by name.
func (r *Registry) InterfaceOf(name string) (*Interface, bool) {
	i, ok := r.Interfaces[name]
	return i, ok
}
