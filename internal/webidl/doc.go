// Package webidl models the JavaScript-exposed browser feature corpus of
// "Browser Feature Usage on the Modern Web" (IMC 2016), §3.2–3.3.
//
// The paper extracts 1,392 methods and properties from the 757 WebIDL files
// shipped in the Firefox 46.0.1 source tree and attributes each to one of 75
// standards. This package provides:
//
//   - a parser for a WebIDL subset sufficient to describe that corpus,
//   - a deterministic corpus generator that emits 757 .webidl files whose
//     contents realize the per-standard feature counts of the standards
//     catalog (including the specific features the paper names, such as
//     Document.prototype.createElement and Navigator.prototype.vibrate), and
//   - a Registry for looking features up by name, interface, or standard.
//
// The browser simulator's API dispatch layer (package webapi) is built from
// this corpus, exactly as Firefox's DOM bindings are generated from its
// WebIDL files. Feature IDs are dense indices into Registry.Features and are
// stable for a corpus seed; every measurement structure in internal/measure
// and internal/pipeline is keyed by them.
package webidl
