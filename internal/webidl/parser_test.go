package webidl

import (
	"strings"
	"testing"
)

func TestParseSimpleInterface(t *testing.T) {
	src := `
// A comment.
[Standard=DOM1, Singleton]
interface Document : Node {
  Element createElement(DOMString localName);
  readonly attribute DOMString title;
  attribute long cursorPos;
  const unsigned short SHOW_ALL = 1;
};
`
	defs, err := ParseFile("test.webidl", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 {
		t.Fatalf("got %d definitions, want 1", len(defs))
	}
	d := defs[0]
	if d.Interface != "Document" || d.Parent != "Node" {
		t.Errorf("interface = %s : %s, want Document : Node", d.Interface, d.Parent)
	}
	if d.Standard != "DOM1" {
		t.Errorf("standard = %s, want DOM1", d.Standard)
	}
	if !d.Singleton {
		t.Error("singleton flag not parsed")
	}
	if d.Partial {
		t.Error("unexpected partial flag")
	}
	if len(d.Members) != 4 {
		t.Fatalf("got %d members, want 4", len(d.Members))
	}
	if d.Members[0].Kind != Method || d.Members[0].Name != "createElement" {
		t.Errorf("member 0 = %+v, want createElement method", d.Members[0])
	}
	if len(d.Members[0].Args) != 1 || d.Members[0].Args[0].Type != "DOMString" {
		t.Errorf("createElement args = %+v", d.Members[0].Args)
	}
	if d.Members[1].Kind != Attribute || !d.Members[1].ReadOnly {
		t.Errorf("member 1 = %+v, want readonly attribute", d.Members[1])
	}
	if d.Members[2].ReadOnly {
		t.Errorf("member 2 should not be readonly")
	}
	if !d.Members[3].Const {
		t.Errorf("member 3 should be a const")
	}
}

func TestParsePartialInterface(t *testing.T) {
	src := `
[Standard=SLC]
partial interface Document {
  sequence<Element> querySelectorAll(DOMString selectors);
  Promise<any> resolveLayout(optional boolean deep = true);
};
`
	defs, err := ParseFile("p.webidl", src)
	if err != nil {
		t.Fatal(err)
	}
	if !defs[0].Partial {
		t.Error("partial flag not parsed")
	}
	if got := defs[0].Members[0].Type; got != "sequence<Element>" {
		t.Errorf("return type = %q, want sequence<Element>", got)
	}
	if got := defs[0].Members[1].Type; got != "Promise<any>" {
		t.Errorf("return type = %q, want Promise<any>", got)
	}
	if !defs[0].Members[1].Args[0].Optional {
		t.Error("optional arg not parsed")
	}
}

func TestParseMultiWordTypes(t *testing.T) {
	src := `
[Standard=HTML]
interface Thing {
  unsigned long long computeSize(long long offset);
};
`
	defs, err := ParseFile("t.webidl", src)
	if err != nil {
		t.Fatal(err)
	}
	m := defs[0].Members[0]
	if m.Type != "unsigned long long" {
		t.Errorf("return type = %q, want unsigned long long", m.Type)
	}
	if m.Args[0].Type != "long long" {
		t.Errorf("arg type = %q, want long long", m.Args[0].Type)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unterminated comment", "/* oops", "unterminated block comment"},
		{"missing semicolon", "[Standard=X] interface A { void f() }", "expected ;"},
		{"bad char", "interface A @ {};", "unexpected character"},
		{"readonly method", "[Standard=X] interface A { readonly void f(); };", "readonly must precede attribute"},
		{"unterminated string", `[Standard=X] interface A { const long B = "x`, "unterminated string"},
		{"missing brace", "[Standard=X] interface A ;", "expected {"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseFile("e.webidl", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := ParseFile("pos.webidl", "interface A {\n  void f()\n};\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "pos.webidl:3") {
		t.Errorf("error %q lacks file:line position", err)
	}
}

func TestLexerComments(t *testing.T) {
	src := `
// line comment
/* block
   comment */
[Standard=X]
interface A {};
`
	defs, err := ParseFile("c.webidl", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 || defs[0].Interface != "A" {
		t.Fatalf("defs = %+v", defs)
	}
}

func TestKindString(t *testing.T) {
	if Method.String() != "method" || Attribute.String() != "attribute" {
		t.Errorf("Kind strings wrong: %s, %s", Method, Attribute)
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestFeatureName(t *testing.T) {
	f := &Feature{Interface: "Document", Member: "createElement"}
	if got := f.Name(); got != "Document.prototype.createElement" {
		t.Errorf("Name = %q", got)
	}
}
