package webidl

import (
	"fmt"

	"repro/internal/standards"
)

// Definition is one parsed interface declaration (possibly partial).
type Definition struct {
	Interface string
	Parent    string
	Partial   bool
	Standard  standards.Abbrev
	Singleton bool
	Members   []MemberDecl
	File      string
}

// MemberDecl is one parsed member declaration. Constants are parsed for
// fidelity with real WebIDL files but are not features.
type MemberDecl struct {
	Kind     Kind
	Name     string
	Type     string
	ReadOnly bool
	Static   bool
	Const    bool
	Args     []ArgDecl
}

// ArgDecl is one parsed method argument.
type ArgDecl struct {
	Name     string
	Type     string
	Optional bool
}

// parser consumes a token stream into Definitions.
type parser struct {
	file string
	toks []token
	pos  int
}

// ParseFile parses one WebIDL-subset document.
func ParseFile(file, src string) ([]Definition, error) {
	toks, err := newLexer(file, src).run()
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	var defs []Definition
	for !p.at(tokEOF, "") {
		d, err := p.parseDefinition()
		if err != nil {
			return nil, err
		}
		defs = append(defs, d)
	}
	return defs, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, fmt.Errorf("%s:%d:%d: expected %s, got %s", p.file, t.line, t.col, want, t)
}

// parseDefinition parses one (possibly partial) interface with optional
// extended attributes.
func (p *parser) parseDefinition() (Definition, error) {
	d := Definition{File: p.file}
	if p.at(tokPunct, "[") {
		if err := p.parseExtAttrs(&d); err != nil {
			return d, err
		}
	}
	if p.accept(tokKeyword, "partial") {
		d.Partial = true
	}
	if _, err := p.expect(tokKeyword, "interface"); err != nil {
		return d, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return d, err
	}
	d.Interface = name.text
	if p.accept(tokPunct, ":") {
		parent, err := p.expect(tokIdent, "")
		if err != nil {
			return d, err
		}
		d.Parent = parent.text
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return d, err
	}
	for !p.at(tokPunct, "}") {
		m, err := p.parseMember()
		if err != nil {
			return d, err
		}
		d.Members = append(d.Members, m)
	}
	p.next() // '}'
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return d, err
	}
	return d, nil
}

// parseExtAttrs parses "[Standard=DOM1, Singleton]"-style lists.
func (p *parser) parseExtAttrs(d *Definition) error {
	if _, err := p.expect(tokPunct, "["); err != nil {
		return err
	}
	for {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return err
		}
		var value string
		if p.accept(tokPunct, "=") {
			v := p.next()
			if v.kind != tokIdent && v.kind != tokString && v.kind != tokNumber {
				return fmt.Errorf("%s:%d:%d: bad extended attribute value %s", p.file, v.line, v.col, v)
			}
			value = v.text
		}
		switch name.text {
		case "Standard":
			d.Standard = standards.Abbrev(value)
		case "Singleton":
			d.Singleton = true
		default:
			// Unknown extended attributes are tolerated, as real
			// Firefox WebIDL carries many binding annotations.
		}
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	_, err := p.expect(tokPunct, "]")
	return err
}

// parseMember parses one const, attribute, or method declaration.
func (p *parser) parseMember() (MemberDecl, error) {
	var m MemberDecl
	if p.accept(tokKeyword, "const") {
		m.Const = true
		typ, err := p.parseType()
		if err != nil {
			return m, err
		}
		m.Type = typ
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return m, err
		}
		m.Name = name.text
		if _, err := p.expect(tokPunct, "="); err != nil {
			return m, err
		}
		v := p.next()
		if v.kind != tokNumber && v.kind != tokIdent && v.kind != tokString {
			return m, fmt.Errorf("%s:%d:%d: bad const value %s", p.file, v.line, v.col, v)
		}
		_, err = p.expect(tokPunct, ";")
		return m, err
	}

	if p.accept(tokKeyword, "static") {
		m.Static = true
	}
	if p.accept(tokKeyword, "readonly") {
		m.ReadOnly = true
	}
	if p.accept(tokKeyword, "attribute") {
		m.Kind = Attribute
		typ, err := p.parseType()
		if err != nil {
			return m, err
		}
		m.Type = typ
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return m, err
		}
		m.Name = name.text
		_, err = p.expect(tokPunct, ";")
		return m, err
	}
	if m.ReadOnly {
		t := p.cur()
		return m, fmt.Errorf("%s:%d:%d: readonly must precede attribute", p.file, t.line, t.col)
	}

	// Method: type name(args);
	m.Kind = Method
	typ, err := p.parseType()
	if err != nil {
		return m, err
	}
	m.Type = typ
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return m, err
	}
	m.Name = name.text
	if _, err := p.expect(tokPunct, "("); err != nil {
		return m, err
	}
	for !p.at(tokPunct, ")") {
		arg, err := p.parseArg()
		if err != nil {
			return m, err
		}
		m.Args = append(m.Args, arg)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return m, err
	}
	_, err = p.expect(tokPunct, ";")
	return m, err
}

// parseType parses a type expression, returning its flattened spelling.
func (p *parser) parseType() (string, error) {
	if p.at(tokKeyword, "sequence") || p.at(tokKeyword, "Promise") {
		outer := p.next().text
		if _, err := p.expect(tokPunct, "<"); err != nil {
			return "", err
		}
		inner, err := p.parseType()
		if err != nil {
			return "", err
		}
		if _, err := p.expect(tokPunct, ">"); err != nil {
			return "", err
		}
		s := outer + "<" + inner + ">"
		if p.accept(tokPunct, "?") {
			s += "?"
		}
		return s, nil
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	s := t.text
	// Multi-word integer types: "unsigned long long", "long long".
	for (s == "unsigned" || s == "long" || s == "unsigned long") && p.at(tokIdent, "long") {
		s += " " + p.next().text
	}
	if s == "unsigned" && p.at(tokIdent, "short") {
		s += " " + p.next().text
	}
	if p.accept(tokPunct, "?") {
		s += "?"
	}
	return s, nil
}

// parseArg parses one method argument.
func (p *parser) parseArg() (ArgDecl, error) {
	var a ArgDecl
	if p.accept(tokKeyword, "optional") {
		a.Optional = true
	}
	typ, err := p.parseType()
	if err != nil {
		return a, err
	}
	a.Type = typ
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return a, err
	}
	a.Name = name.text
	if p.accept(tokPunct, "=") {
		v := p.next()
		if v.kind != tokNumber && v.kind != tokIdent && v.kind != tokString {
			return a, fmt.Errorf("%s:%d:%d: bad default value %s", p.file, v.line, v.col, v)
		}
	}
	return a, nil
}
