package browserstats

import (
	"fmt"
	"sort"
)

// Browser identifies one of the charted browsers.
type Browser string

const (
	Chrome  Browser = "Chrome"
	Firefox Browser = "Firefox"
	Safari  Browser = "Safari"
	IE      Browser = "IE"
)

// Browsers lists the charted browsers in the figure's legend order.
func Browsers() []Browser { return []Browser{Chrome, Firefox, Safari, IE} }

// Point is one yearly observation.
type Point struct {
	Year int
	// Standards is the number of web-standard families implemented.
	Standards int
	// MLoC maps browser to total lines of code, in millions.
	MLoC map[Browser]float64
}

// BlinkCutMLoC is the WebKit code removed from Chrome at the 2013 Blink
// switch, in millions of lines (paper §2.1).
const BlinkCutMLoC = 8.8

// BlinkCutYear is the year of the Blink engine switch.
const BlinkCutYear = 2013

// series is the embedded Figure 1 dataset. Standards counts rise from about
// a dozen families in 2009 to roughly forty by 2015; code sizes grow
// monotonically except for Chrome's Blink discontinuity.
var series = []Point{
	{Year: 2009, Standards: 12, MLoC: map[Browser]float64{Chrome: 4.5, Firefox: 5.4, Safari: 3.2, IE: 4.1}},
	{Year: 2010, Standards: 16, MLoC: map[Browser]float64{Chrome: 6.2, Firefox: 6.7, Safari: 3.9, IE: 4.6}},
	{Year: 2011, Standards: 21, MLoC: map[Browser]float64{Chrome: 8.0, Firefox: 8.1, Safari: 4.7, IE: 5.2}},
	{Year: 2012, Standards: 26, MLoC: map[Browser]float64{Chrome: 10.1, Firefox: 9.6, Safari: 5.6, IE: 5.9}},
	{Year: 2013, Standards: 31, MLoC: map[Browser]float64{Chrome: 12.4 - BlinkCutMLoC + 5.1, Firefox: 11.0, Safari: 6.4, IE: 6.5}},
	{Year: 2014, Standards: 36, MLoC: map[Browser]float64{Chrome: 11.1, Firefox: 12.6, Safari: 7.3, IE: 7.0}},
	{Year: 2015, Standards: 40, MLoC: map[Browser]float64{Chrome: 13.9, Firefox: 14.1, Safari: 8.1, IE: 7.4}},
}

// Series returns the yearly observations in chronological order. The
// returned slice is a deep copy.
func Series() []Point {
	out := make([]Point, len(series))
	for i, p := range series {
		cp := Point{Year: p.Year, Standards: p.Standards, MLoC: make(map[Browser]float64, len(p.MLoC))}
		for b, v := range p.MLoC {
			cp.MLoC[b] = v
		}
		out[i] = cp
	}
	return out
}

// ByYear returns the observation for one year.
func ByYear(year int) (Point, bool) {
	for _, p := range Series() {
		if p.Year == year {
			return p, true
		}
	}
	return Point{}, false
}

// StandardsGrowth returns (first, last) standards-family counts over the
// charted window.
func StandardsGrowth() (int, int) {
	return series[0].Standards, series[len(series)-1].Standards
}

// ChromeBlinkDrop returns the modeled Chrome code-size change (in MLoC)
// from 2012 to the post-Blink 2013 measurement; it is negative, reflecting
// the removal of WebKit code.
func ChromeBlinkDrop() float64 {
	y2012, _ := ByYear(2012)
	y2013, _ := ByYear(BlinkCutYear)
	return y2013.MLoC[Chrome] - y2012.MLoC[Chrome]
}

// Validate checks the dataset invariants: chronological order, monotone
// standards growth, monotone code growth for every browser except Chrome's
// single Blink discontinuity.
func Validate() error {
	pts := Series()
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Year < pts[j].Year }) {
		return fmt.Errorf("browserstats: series not in chronological order")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Standards <= pts[i-1].Standards {
			return fmt.Errorf("browserstats: standards count not growing at %d", pts[i].Year)
		}
		for _, b := range Browsers() {
			if b == Chrome && pts[i].Year == BlinkCutYear {
				continue // the one sanctioned discontinuity
			}
			if pts[i].MLoC[b] <= pts[i-1].MLoC[b] {
				return fmt.Errorf("browserstats: %s code size not growing at %d", b, pts[i].Year)
			}
		}
	}
	if ChromeBlinkDrop() >= 0 {
		return fmt.Errorf("browserstats: Blink switch did not shrink Chrome (%+.1f MLoC)", ChromeBlinkDrop())
	}
	return nil
}
