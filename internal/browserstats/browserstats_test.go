package browserstats

import "testing"

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesIsCopy(t *testing.T) {
	a := Series()
	a[0].MLoC[Chrome] = -1
	a[0].Standards = -1
	b := Series()
	if b[0].MLoC[Chrome] == -1 || b[0].Standards == -1 {
		t.Fatal("Series returned shared storage")
	}
}

func TestByYear(t *testing.T) {
	p, ok := ByYear(2013)
	if !ok {
		t.Fatal("2013 missing")
	}
	if p.Standards != 31 {
		t.Errorf("2013 standards = %d, want 31", p.Standards)
	}
	if _, ok := ByYear(1999); ok {
		t.Fatal("found a year outside the window")
	}
}

func TestStandardsGrowth(t *testing.T) {
	first, last := StandardsGrowth()
	if first >= last {
		t.Errorf("standards did not grow: %d -> %d", first, last)
	}
	if last < 35 || last > 45 {
		t.Errorf("2015 standards count %d implausible for Figure 1 (~40)", last)
	}
}

func TestBlinkDropNegative(t *testing.T) {
	if d := ChromeBlinkDrop(); d >= 0 {
		t.Errorf("Blink switch should shrink Chrome, got %+.1f MLoC", d)
	}
}

func TestAllBrowsersPresentEveryYear(t *testing.T) {
	for _, p := range Series() {
		for _, b := range Browsers() {
			if _, ok := p.MLoC[b]; !ok {
				t.Errorf("year %d missing browser %s", p.Year, b)
			}
		}
	}
}
