// Package browserstats embeds the browser-complexity time series behind the
// paper's Figure 1: the number of web-standard families available in modern
// browsers over time (from W3C documents and Can I Use) and the total lines
// of code of the major browsers (from Open Hub), 2009-2015.
//
// The series reproduce the figure's qualitative shape: steady growth in both
// standards and code size for every browser, with the one discontinuity the
// paper calls out — Google's mid-2013 move to the Blink rendering engine,
// which removed at least 8.8 million lines of WebKit-derived code from
// Chrome.
package browserstats
