package logstore

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/measure"
)

// csvMagic is the CSV format's self-identifying first line prefix: every
// log ever written by this repository's CSV writer starts with its feature
// count, so pre-logstore files auto-detect without modification.
const csvMagic = "#features,"

// CSV is the repository's original log format, kept byte-for-byte
// compatible so logs written before the logstore API existed still load.
//
// The format aggregates per (case, round, site, feature):
//
//	case,round,site,featureID...
//
// preceded by a header carrying corpus and site metadata:
//
//	#features,N
//	#domains,N
//	#domain,index,name,measured
//	#case,name,rounds,invocations,pagesVisited
type CSV struct{}

// Name implements Codec.
func (CSV) Name() string { return "csv" }

// Encode implements Codec.
func (CSV) Encode(w io.Writer, l *measure.Log) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s%d\n", csvMagic, l.NumFeatures)
	fmt.Fprintf(bw, "#domains,%d\n", len(l.Domains))
	for i, d := range l.Domains {
		fmt.Fprintf(bw, "#domain,%d,%s,%v\n", i, d, l.Measured[i])
	}
	for _, cs := range sortedCases(l) {
		cl := l.Cases[measure.Case(cs)]
		fmt.Fprintf(bw, "#case,%s,%d,%d,%d\n", cs, len(cl.Rounds), cl.Invocations, cl.PagesVisited)
		for round, rl := range cl.Rounds {
			for site, sf := range rl.SiteFeatures {
				// Empty-but-present observations matter: a site that
				// was visited and used no features (a static site)
				// is different from an unvisited site.
				if sf == nil {
					continue
				}
				var ids []string
				bitsetRuns(sf, l.NumFeatures, func(start, run int) {
					for id := start; id < start+run; id++ {
						ids = append(ids, strconv.Itoa(id))
					}
				})
				fmt.Fprintf(bw, "%s,%d,%d,%s\n", cs, round, site, strings.Join(ids, " "))
			}
		}
	}
	return bw.Flush()
}

// Decode implements Codec.
func (CSV) Decode(r io.Reader) (*measure.Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	l := &measure.Log{Cases: make(map[measure.Case]*measure.CaseLog)}
	line, cells := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		switch {
		case strings.HasPrefix(text, csvMagic):
			if l.NumFeatures != 0 {
				return nil, fmt.Errorf("logstore: csv line %d: duplicate feature header", line)
			}
			n, err := strconv.Atoi(parts[1])
			if err != nil || n <= 0 || n > maxFeatures {
				return nil, fmt.Errorf("logstore: csv line %d: bad feature count", line)
			}
			l.NumFeatures = n
		case strings.HasPrefix(text, "#domains,"):
			// Header order is part of the format: features, domains,
			// then data. Enforcing it keeps every bitset in the log
			// sized by the one true feature count.
			if l.NumFeatures == 0 || l.Domains != nil {
				return nil, fmt.Errorf("logstore: csv line %d: misplaced domain header", line)
			}
			n, err := strconv.Atoi(parts[1])
			if err != nil || n < 0 || n > maxDomains {
				return nil, fmt.Errorf("logstore: csv line %d: bad domain count", line)
			}
			l.Domains = make([]string, n)
			l.Measured = make([]bool, n)
		case strings.HasPrefix(text, "#domain,"):
			if len(parts) != 4 {
				return nil, fmt.Errorf("logstore: csv line %d: bad domain record", line)
			}
			idx, err := strconv.Atoi(parts[1])
			if err != nil || idx < 0 || idx >= len(l.Domains) {
				return nil, fmt.Errorf("logstore: csv line %d: bad domain index", line)
			}
			l.Domains[idx] = parts[2]
			l.Measured[idx] = parts[3] == "true"
		case strings.HasPrefix(text, "#case,"):
			if len(parts) != 5 {
				return nil, fmt.Errorf("logstore: csv line %d: bad case record", line)
			}
			if l.Domains == nil {
				return nil, fmt.Errorf("logstore: csv line %d: case before domain header", line)
			}
			if _, dup := l.Cases[measure.Case(parts[1])]; dup {
				return nil, fmt.Errorf("logstore: csv line %d: duplicate case %q", line, parts[1])
			}
			cl := &measure.CaseLog{}
			var err error
			if cl.Invocations, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
				return nil, fmt.Errorf("logstore: csv line %d: bad invocation count", line)
			}
			if cl.PagesVisited, err = strconv.ParseInt(parts[4], 10, 64); err != nil {
				return nil, fmt.Errorf("logstore: csv line %d: bad page count", line)
			}
			rounds, err := strconv.Atoi(parts[2])
			if err != nil || rounds < 0 || rounds > maxRounds {
				return nil, fmt.Errorf("logstore: csv line %d: bad round count", line)
			}
			if len(l.Cases) >= maxCases {
				return nil, fmt.Errorf("logstore: csv line %d: too many cases", line)
			}
			cells += rounds * len(l.Domains)
			if cells > maxCells {
				return nil, fmt.Errorf("logstore: csv line %d: log exceeds %d cells", line, maxCells)
			}
			for i := 0; i < rounds; i++ {
				cl.Rounds = append(cl.Rounds, &measure.RoundLog{SiteFeatures: make([]measure.Bitset, len(l.Domains))})
			}
			l.Cases[measure.Case(parts[1])] = cl
		default:
			if len(parts) != 4 {
				return nil, fmt.Errorf("logstore: csv line %d: bad observation %q", line, text)
			}
			cl := l.Cases[measure.Case(parts[0])]
			if cl == nil {
				return nil, fmt.Errorf("logstore: csv line %d: unknown case %q", line, parts[0])
			}
			round, err := strconv.Atoi(parts[1])
			if err != nil || round < 0 || round >= len(cl.Rounds) {
				return nil, fmt.Errorf("logstore: csv line %d: bad round", line)
			}
			site, err := strconv.Atoi(parts[2])
			if err != nil || site < 0 || site >= len(l.Domains) {
				return nil, fmt.Errorf("logstore: csv line %d: bad site", line)
			}
			sf := measure.NewBitset(l.NumFeatures)
			for _, idStr := range strings.Fields(parts[3]) {
				id, err := strconv.Atoi(idStr)
				if err != nil || id < 0 || id >= l.NumFeatures {
					return nil, fmt.Errorf("logstore: csv line %d: bad feature id %q", line, idStr)
				}
				sf.Set(id)
			}
			cl.Rounds[round].SiteFeatures[site] = sf
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if l.NumFeatures == 0 || l.Domains == nil {
		return nil, fmt.Errorf("logstore: csv log missing header records")
	}
	return l, nil
}
