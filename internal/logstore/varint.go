package logstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"repro/internal/measure"
)

// binWriter wraps a buffered writer with the primitives every binary
// logstore format is built from: unsigned varints, length-prefixed strings,
// and run-length-encoded bitsets. The first write error sticks.
type binWriter struct {
	bw      *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

func newBinWriter(w io.Writer) *binWriter {
	if bw, ok := w.(*bufio.Writer); ok {
		return &binWriter{bw: bw}
	}
	return &binWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

func (w *binWriter) bytes(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.bw.Write(p)
}

func (w *binWriter) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.scratch[:], v)
	_, w.err = w.bw.Write(w.scratch[:n])
}

func (w *binWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.bw.WriteString(s)
}

// bitset writes b's first n bits as varint-encoded runs: the run count,
// then per run of consecutive set bits one varint holding the gap from the
// end of the previous run shifted left once, with the low bit flagging a
// second varint carrying the run's extra length. An isolated bit after a
// small gap — the dominant shape of a visit's feature set, ~60 scattered
// bits out of 1,392 — costs a single byte instead of a decimal feature ID.
func (w *binWriter) bitset(b measure.Bitset, n int) {
	runs := 0
	bitsetRuns(b, n, func(int, int) { runs++ })
	w.uvarint(uint64(runs))
	prev := 0
	bitsetRuns(b, n, func(start, run int) {
		gap := start - prev
		if run == 1 {
			w.uvarint(uint64(gap) << 1)
		} else {
			w.uvarint(uint64(gap)<<1 | 1)
			w.uvarint(uint64(run - 2))
		}
		prev = start + run
	})
}

// bitsetRuns calls fn(start, length) for every maximal run of consecutive
// set bits among b's first n bits. It skips zero words and uses trailing-
// zero counts instead of probing bit by bit, which is what makes binary
// encoding fast on the survey's sparse per-visit bitsets.
func bitsetRuns(b measure.Bitset, n int, fn func(start, run int)) {
	for i := 0; i < n; {
		// Find the next set bit at or after i.
		w := i / 64
		if w >= len(b) {
			return // the rest is zeros
		}
		word := b[w] >> (uint(i) % 64)
		if word == 0 {
			i = (w + 1) * 64
			continue
		}
		i += bits.TrailingZeros64(word)
		if i >= n {
			return
		}
		start := i
		// Find the first clear bit after the run.
		for i < n {
			w = i / 64
			if w >= len(b) {
				break
			}
			inv := ^b[w] >> (uint(i) % 64)
			if inv == 0 {
				i = (w + 1) * 64
				continue
			}
			i += bits.TrailingZeros64(inv)
			break
		}
		if i > n {
			i = n
		}
		fn(start, i-start)
	}
}

func (w *binWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// binReader is the decoding counterpart of binWriter. Every primitive
// validates against a caller-supplied cap so corrupt or hostile input can
// never make a decoder allocate unboundedly or panic.
type binReader struct {
	br *bufio.Reader
}

func newBinReader(r io.Reader) *binReader {
	if br, ok := r.(*bufio.Reader); ok {
		return &binReader{br: br}
	}
	return &binReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// uvarint reads one varint and rejects values above max.
func (r *binReader) uvarint(max uint64, what string) (uint64, error) {
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, fmt.Errorf("logstore: reading %s: %w", what, err)
	}
	if v > max {
		return 0, fmt.Errorf("logstore: %s %d exceeds limit %d", what, v, max)
	}
	return v, nil
}

// count reads a small non-negative int (lengths, indices, counts).
func (r *binReader) count(max int, what string) (int, error) {
	v, err := r.uvarint(uint64(max), what)
	return int(v), err
}

// int64Val reads a non-negative int64 (invocation and page totals).
func (r *binReader) int64Val(what string) (int64, error) {
	v, err := r.uvarint(math.MaxInt64, what)
	return int64(v), err
}

// str reads a length-prefixed string of at most max bytes.
func (r *binReader) str(max int, what string) (string, error) {
	n, err := r.count(max, what+" length")
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return "", fmt.Errorf("logstore: reading %s: %w", what, err)
	}
	return string(buf), nil
}

// bitset reads an n-bit run-encoded bitset written by binWriter.bitset.
func (r *binReader) bitset(n int) (measure.Bitset, error) {
	runs, err := r.count(n, "bitset run count")
	if err != nil {
		return nil, err
	}
	b := measure.NewBitset(n)
	pos := 0
	for p := 0; p < runs; p++ {
		head, err := r.uvarint(uint64(n)<<1|1, "bitset gap")
		if err != nil {
			return nil, err
		}
		gap, run := int(head>>1), 1
		if head&1 != 0 {
			extra, err := r.count(n, "bitset run length")
			if err != nil {
				return nil, err
			}
			run = extra + 2
		}
		pos += gap
		if pos+run > n {
			return nil, fmt.Errorf("logstore: bitset run [%d,%d) outside %d bits", pos, pos+run, n)
		}
		for i := 0; i < run; i++ {
			b.Set(pos + i)
		}
		pos += run
	}
	return b, nil
}

// expectMagic consumes and verifies a format's magic bytes.
func (r *binReader) expectMagic(magic, format string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return fmt.Errorf("logstore: reading %s magic: %w", format, err)
	}
	if string(buf) != magic {
		return fmt.Errorf("logstore: not a %s log (magic bytes %q)", format, buf)
	}
	return nil
}
