package logstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/measure"
)

// benchLog generates a survey-shaped log: sites × 1,392 features × 5
// rounds, ~60 features per visit, two cases — the shape cmd/pipeline
// writes at -sites 1000.
func benchLog(sites int) *measure.Log {
	domains := make([]string, sites)
	for i := range domains {
		domains[i] = fmt.Sprintf("site-%04d.example", i)
	}
	l := measure.NewLog(1392, domains)
	for site := 0; site < sites; site++ {
		counts := map[int]int64{}
		for f := 0; f < 60; f++ {
			counts[(site*7+f*13)%1392] = int64(f + 1)
		}
		blocked := map[int]int64{}
		for f := 0; f < 40; f++ {
			blocked[(site*11+f*17)%1392] = int64(f + 1)
		}
		for round := 0; round < 5; round++ {
			l.Record(measure.CaseDefault, round, site, counts, 13)
			l.Record(measure.CaseBlocking, round, site, blocked, 13)
		}
	}
	return l
}

func encodedSize(tb testing.TB, c Codec, l *measure.Log) int {
	tb.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf, l); err != nil {
		tb.Fatal(err)
	}
	return buf.Len()
}

// TestBinaryAtLeastThreeTimesSmaller pins the size claim: on the benchmark
// log the binary encoding is at least 3× smaller than the CSV encoding.
func TestBinaryAtLeastThreeTimesSmaller(t *testing.T) {
	l := benchLog(1000)
	csvSize := encodedSize(t, CSV{}, l)
	binSize := encodedSize(t, Binary{}, l)
	t.Logf("1k-site log: csv %d bytes, binary %d bytes (%.1fx smaller)",
		csvSize, binSize, float64(csvSize)/float64(binSize))
	if binSize*3 > csvSize {
		t.Errorf("binary = %d bytes, csv = %d bytes; want ≥ 3x smaller", binSize, csvSize)
	}
}

func BenchmarkEncode(b *testing.B) {
	l := benchLog(1000)
	for _, c := range codecs {
		b.Run(c.Name(), func(b *testing.B) {
			size := encodedSize(b, c, l)
			b.SetBytes(int64(size))
			b.ReportMetric(float64(size), "encoded-bytes")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := c.Encode(&buf, l); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	l := benchLog(1000)
	for _, c := range codecs {
		b.Run(c.Name(), func(b *testing.B) {
			var buf bytes.Buffer
			if err := c.Encode(&buf, l); err != nil {
				b.Fatal(err)
			}
			data := buf.Bytes()
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSpillAppend(b *testing.B) {
	sf := measure.NewBitset(1392)
	for f := 0; f < 60; f++ {
		sf.Set((f * 13) % 1392)
	}
	domains := make([]string, 1000)
	for i := range domains {
		domains[i] = "site.example"
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1392, domains)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(Observation{
			Case: measure.CaseDefault, Round: i % 5, Site: i % 1000,
			Features: sf, Invocations: 1800, Pages: 13,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
