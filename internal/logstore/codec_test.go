package logstore

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/measure"
)

// buildLog is the fixture shared by the round-trip tests: several cases,
// several rounds, an unmeasured site, an empty-but-present observation.
func buildLog() *measure.Log {
	l := measure.NewLog(100, []string{"a.example", "b.example", "c.example"})
	l.Record(measure.CaseDefault, 0, 0, map[int]int64{1: 5, 2: 1}, 13)
	l.Record(measure.CaseDefault, 1, 0, map[int]int64{3: 2}, 13)
	l.Record(measure.CaseDefault, 0, 1, map[int]int64{1: 1}, 13)
	l.Record(measure.CaseBlocking, 0, 0, map[int]int64{1: 2}, 13)
	// A visited site that used no features at all (a static page).
	l.Record(measure.CaseBlocking, 0, 1, map[int]int64{}, 13)
	return l
}

// denseLog exercises run encoding: long runs, isolated bits, full rounds.
func denseLog() *measure.Log {
	l := measure.NewLog(1392, []string{"d.example", "e.example"})
	counts := map[int]int64{}
	for f := 0; f < 700; f++ {
		counts[f] = 1 // one long run
	}
	counts[1000] = 3 // an isolated bit
	counts[1391] = 2 // the last bit
	l.Record(measure.CaseDefault, 0, 0, counts, 13)
	l.Record(measure.CaseAdBlock, 2, 1, map[int]int64{0: 1}, 5)
	return l
}

func TestRoundTripDeepEqual(t *testing.T) {
	for _, c := range codecs {
		for name, l := range map[string]*measure.Log{"small": buildLog(), "dense": denseLog()} {
			var buf bytes.Buffer
			if err := c.Encode(&buf, l); err != nil {
				t.Fatalf("%s/%s: encode: %v", c.Name(), name, err)
			}
			got, err := c.Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", c.Name(), name, err)
			}
			if !reflect.DeepEqual(got, l) {
				t.Errorf("%s/%s: round trip not deep-equal", c.Name(), name)
			}
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	l := buildLog()
	for _, c := range codecs {
		var a, b bytes.Buffer
		if err := c.Encode(&a, l); err != nil {
			t.Fatal(err)
		}
		if err := c.Encode(&b, l); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: two encodes of the same log differ", c.Name())
		}
	}
}

func TestDetectAndRead(t *testing.T) {
	l := buildLog()
	for _, c := range codecs {
		var buf bytes.Buffer
		if err := c.Encode(&buf, l); err != nil {
			t.Fatal(err)
		}
		detected, err := Detect(buf.Bytes()[:detectPeek])
		if err != nil {
			t.Fatalf("%s: detect: %v", c.Name(), err)
		}
		if detected.Name() != c.Name() {
			t.Errorf("detected %q, want %q", detected.Name(), c.Name())
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", c.Name(), err)
		}
		if !reflect.DeepEqual(got, l) {
			t.Errorf("%s: auto-detected read not deep-equal", c.Name())
		}
	}
}

func TestDetectUnknownFormatNamesMagicBytes(t *testing.T) {
	_, err := Detect([]byte("PK\x03\x04zipfile"))
	if err == nil {
		t.Fatal("Detect accepted a zip header")
	}
	if !strings.Contains(err.Error(), "unknown log format") || !strings.Contains(err.Error(), `PK\x03\x04`) {
		t.Errorf("error should quote the offending magic bytes, got: %v", err)
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("Read accepted an empty stream")
	}
}

// TestLegacyCSVStillLoads pins backward compatibility: a log file in the
// exact format measure.WriteCSV produced before this package existed must
// load via auto-detection.
func TestLegacyCSVStillLoads(t *testing.T) {
	legacy := "#features,100\n" +
		"#domains,3\n" +
		"#domain,0,a.example,true\n" +
		"#domain,1,b.example,true\n" +
		"#domain,2,c.example,false\n" +
		"#case,blocking,1,2,13\n" +
		"blocking,0,0,1\n" +
		"#case,default,2,9,39\n" +
		"default,0,0,1 2\n" +
		"default,0,1,1\n" +
		"default,1,0,3\n"
	l, err := Read(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy CSV failed to load: %v", err)
	}
	if l.NumFeatures != 100 || len(l.Domains) != 3 || l.Domains[1] != "b.example" {
		t.Fatal("legacy header mislaid")
	}
	if l.Measured[2] || !l.Measured[0] {
		t.Fatal("legacy measured flags mislaid")
	}
	cl := l.Cases[measure.CaseDefault]
	if cl == nil || cl.Invocations != 9 || cl.PagesVisited != 39 || len(cl.Rounds) != 2 {
		t.Fatalf("legacy default case mislaid: %+v", cl)
	}
	u := l.SiteUnion(measure.CaseDefault, 0)
	if u == nil || !u.Get(1) || !u.Get(2) || !u.Get(3) || u.Count() != 3 {
		t.Fatal("legacy observations mislaid")
	}
}

func TestCSVDecodeErrors(t *testing.T) {
	cases := []string{
		"#features,xyz\n",                                                // bad count
		"#features,10\nbogus\n",                                          // bad observation
		"#features,10\n#domains,1\n#domain,5,x,true\n",                   // bad index
		"#features,10\n#domains,1\n#domain,0,x,true\nno,0,0,1\n",         // unknown case
		"#features,10\n#domains,1\n#case,default,1,0,0\nq\n",             // malformed line
		"#features,10\n#domains,1\n#case,default,1,0,0\ndefault,9,0,1\n", // bad round
		"#features,99999999999\n",                                        // implausible corpus
	}
	for _, c := range cases {
		if _, err := (CSV{}).Decode(strings.NewReader(c)); err == nil {
			t.Errorf("Decode(%q) should fail", c)
		}
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	var good bytes.Buffer
	if err := (Binary{}).Encode(&good, buildLog()); err != nil {
		t.Fatal(err)
	}
	data := good.Bytes()
	cases := map[string][]byte{
		"empty":           {},
		"truncated magic": data[:3],
		"wrong magic":     []byte("\xF1XXX1rest"),
		"truncated body":  data[:len(data)-5],
		"truncated mid":   data[:len(data)/2],
	}
	for name, c := range cases {
		if _, err := (Binary{}).Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("%s: Decode should fail", name)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("protobuf"); err == nil {
		t.Error("ByName accepted an unregistered format")
	}
	if len(Names()) != 2 {
		t.Errorf("Names() = %v, want csv and binary", Names())
	}
}

func TestWriteFileReadFile(t *testing.T) {
	dir := t.TempDir()
	l := buildLog()
	for _, c := range codecs {
		path := filepath.Join(dir, "log-"+c.Name())
		if err := WriteFile(path, c, l); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, l) {
			t.Errorf("%s: file round trip not deep-equal", c.Name())
		}
	}
	if _, err := ReadFile(filepath.Join(dir, "absent")); err == nil {
		t.Error("ReadFile of a missing file should fail")
	}
}
