package logstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/measure"
)

func testOutcome() VisitOutcome {
	sf := measure.NewBitset(100)
	sf.Set(3)
	sf.Set(4)
	sf.Set(99)
	return VisitOutcome{Features: sf, Invocations: 42, Pages: 13}
}

func TestCachePutGet(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(7, measure.CaseDefault); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := testOutcome()
	if err := c.Put(7, measure.CaseDefault, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(7, measure.CaseDefault)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cache round trip: got %+v, want %+v", got, want)
	}
	// Different case or seed: distinct keys.
	if _, ok := c.Get(7, measure.CaseBlocking); ok {
		t.Error("hit under the wrong case")
	}
	if _, ok := c.Get(8, measure.CaseDefault); ok {
		t.Error("hit under the wrong seed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v, want 1 hit, 1 put, 3 misses", st)
	}
}

func TestCacheFailedOutcome(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(-3, measure.CaseGhostery, VisitOutcome{Failed: true}); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(-3, measure.CaseGhostery)
	if !ok || !got.Failed {
		t.Fatalf("failed outcome lost: %+v ok=%v", got, ok)
	}
}

// TestCacheCorpusMismatch: a cache populated under one corpus size must
// never serve entries to a study with another.
func TestCacheCorpusMismatch(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir, 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(1, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir, 200, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(1, measure.CaseDefault); ok {
		t.Fatal("entry served across corpus sizes")
	}
	if st := c2.Stats(); st.Errors != 1 {
		t.Errorf("mismatch should count as an error, stats = %+v", st)
	}
}

// TestCacheScopeMismatch: entries recorded under one study scope (site
// count, generation seed, methodology) must never serve another, even with
// the same visit seed, case, and corpus size.
func TestCacheScopeMismatch(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir, 100, "sites=1000 seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(1, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir, 100, "sites=10000 seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(1, measure.CaseDefault); ok {
		t.Fatal("entry served across study scopes")
	}
	// Same scope again: still a hit.
	c3, err := OpenCache(dir, 100, "sites=1000 seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(1, measure.CaseDefault); !ok {
		t.Fatal("entry lost for its own scope")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(5, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.visit"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one entry, got %v (%v)", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(5, measure.CaseDefault); ok {
		t.Fatal("corrupt entry served")
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Errorf("corruption should count as an error, stats = %+v", st)
	}
}

func TestOpenCacheValidation(t *testing.T) {
	if _, err := OpenCache(t.TempDir(), 0, ""); err == nil {
		t.Error("zero-feature cache accepted")
	}
	// dir is created if missing.
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	if _, err := OpenCache(dir, 10, ""); err != nil {
		t.Errorf("OpenCache did not create %s: %v", dir, err)
	}
}
