package logstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/measure"
)

func testOutcome() VisitOutcome {
	sf := measure.NewBitset(100)
	sf.Set(3)
	sf.Set(4)
	sf.Set(99)
	return VisitOutcome{Features: sf, Invocations: 42, Pages: 13}
}

func TestCachePutGet(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(7, measure.CaseDefault); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := testOutcome()
	if err := c.Put(7, measure.CaseDefault, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(7, measure.CaseDefault)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cache round trip: got %+v, want %+v", got, want)
	}
	// Different case or seed: distinct keys.
	if _, ok := c.Get(7, measure.CaseBlocking); ok {
		t.Error("hit under the wrong case")
	}
	if _, ok := c.Get(8, measure.CaseDefault); ok {
		t.Error("hit under the wrong seed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Puts != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v, want 1 hit, 1 put, 3 misses", st)
	}
}

func TestCacheFailedOutcome(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(-3, measure.CaseGhostery, VisitOutcome{Failed: true}); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(-3, measure.CaseGhostery)
	if !ok || !got.Failed {
		t.Fatalf("failed outcome lost: %+v ok=%v", got, ok)
	}
}

// TestCacheCorpusMismatch: a cache populated under one corpus size must
// never serve entries to a study with another.
func TestCacheCorpusMismatch(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir, 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(1, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir, 200, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(1, measure.CaseDefault); ok {
		t.Fatal("entry served across corpus sizes")
	}
	if st := c2.Stats(); st.Errors != 1 {
		t.Errorf("mismatch should count as an error, stats = %+v", st)
	}
}

// TestCacheScopeMismatch: entries recorded under one study scope (site
// count, generation seed, methodology) must never serve another, even with
// the same visit seed, case, and corpus size.
func TestCacheScopeMismatch(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir, 100, "sites=1000 seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(1, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir, 100, "sites=10000 seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(1, measure.CaseDefault); ok {
		t.Fatal("entry served across study scopes")
	}
	// Same scope again: still a hit.
	c3, err := OpenCache(dir, 100, "sites=1000 seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(1, measure.CaseDefault); !ok {
		t.Fatal("entry lost for its own scope")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(5, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.visit"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one entry, got %v (%v)", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(5, measure.CaseDefault); ok {
		t.Fatal("corrupt entry served")
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Errorf("corruption should count as an error, stats = %+v", st)
	}
}

func TestOpenCacheValidation(t *testing.T) {
	if _, err := OpenCache(t.TempDir(), 0, ""); err == nil {
		t.Error("zero-feature cache accepted")
	}
	// dir is created if missing.
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	if _, err := OpenCache(dir, 10, ""); err != nil {
		t.Errorf("OpenCache did not create %s: %v", dir, err)
	}
}

// entrySize measures one encoded entry so the eviction tests can set caps
// in exact entry multiples.
func entrySize(t *testing.T) int64 {
	t.Helper()
	c, err := OpenCache(t.TempDir(), 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(c.Dir(), "*.visit"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected 1 entry, got %v (%v)", entries, err)
	}
	info, err := os.Stat(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func TestCacheEvictsLRU(t *testing.T) {
	size := entrySize(t)
	c, err := OpenCacheLimited(t.TempDir(), 100, "study-a", 3*size)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		if err := c.Put(seed, measure.CaseDefault, testOutcome()); err != nil {
			t.Fatal(err)
		}
	}
	// Touch entry 1 so entry 2 is the least recently used.
	if _, ok := c.Get(1, measure.CaseDefault); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	if err := c.Put(4, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 eviction", st)
	}
	if _, ok := c.Get(2, measure.CaseDefault); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	for _, seed := range []int64{1, 3, 4} {
		if _, ok := c.Get(seed, measure.CaseDefault); !ok {
			t.Errorf("recently used entry %d was evicted", seed)
		}
	}
}

// TestCacheManifestSurvivesReopen proves recency persists: after reopening,
// eviction still removes the least recently used entry — without the
// manifest the reopened cache would have no recency at all.
func TestCacheManifestSurvivesReopen(t *testing.T) {
	size := entrySize(t)
	dir := t.TempDir()
	c1, err := OpenCacheLimited(dir, 100, "study-a", 3*size)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		if err := c1.Put(seed, measure.CaseDefault, testOutcome()); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c1.Get(1, measure.CaseDefault); !ok { // 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("capped cache wrote no manifest: %v", err)
	}

	c2, err := OpenCacheLimited(dir, 100, "study-a", 3*size)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Put(4, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(2, measure.CaseDefault); ok {
		t.Error("reopened cache evicted the wrong entry (manifest recency lost)")
	}
	for _, seed := range []int64{1, 3, 4} {
		if _, ok := c2.Get(seed, measure.CaseDefault); !ok {
			t.Errorf("reopened cache lost recently used entry %d", seed)
		}
	}
}

// TestCacheCapSeedsFromDirectory applies a cap to a directory populated by
// an uncapped cache: the one-time seeding scan must pick the pre-existing
// entries up so they count against the cap and can be evicted.
func TestCacheCapSeedsFromDirectory(t *testing.T) {
	size := entrySize(t)
	dir := t.TempDir()
	c1, err := OpenCache(dir, 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		if err := c1.Put(seed, measure.CaseDefault, testOutcome()); err != nil {
			t.Fatal(err)
		}
	}

	c2, err := OpenCacheLimited(dir, 100, "study-a", 2*size)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Put(5, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.visit"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 2 {
		t.Errorf("cap of 2 entries left %d entry files", len(entries))
	}
	if _, ok := c2.Get(5, measure.CaseDefault); !ok {
		t.Error("most recent entry was evicted")
	}
}

// TestCacheUnboundedWritesNoManifest pins that the uncapped cache stays
// zero-overhead: no manifest file, no eviction.
func TestCacheUnboundedWritesNoManifest(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 100, "study-a")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 10; seed++ {
		if err := c.Put(seed, measure.CaseDefault, testOutcome()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Errorf("unbounded cache wrote a manifest: %v", err)
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Errorf("unbounded cache evicted: %+v", st)
	}
}

// corruptibleCache seeds a capped cache directory with three entries and
// returns (dir, per-entry size). The cache is closed state-wise: tests
// reopen it after mangling the manifest.
func corruptibleCache(t *testing.T) (string, int64) {
	t.Helper()
	size := entrySize(t)
	dir := t.TempDir()
	c, err := OpenCacheLimited(dir, 100, "study-a", 10*size)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		if err := c.Put(seed, measure.CaseDefault, testOutcome()); err != nil {
			t.Fatal(err)
		}
	}
	return dir, size
}

// reopenAndCheck reopens the capped cache and requires every seeded
// entry to still be served — a mangled manifest must cost recency at
// worst, never entries or the open itself.
func reopenAndCheck(t *testing.T, dir string, size int64) {
	t.Helper()
	c, err := OpenCacheLimited(dir, 100, "study-a", 10*size)
	if err != nil {
		t.Fatalf("reopening cache over mangled manifest: %v", err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		if _, ok := c.Get(seed, measure.CaseDefault); !ok {
			t.Errorf("entry %d lost after manifest corruption", seed)
		}
	}
}

func TestCacheToleratesBitFlippedManifest(t *testing.T) {
	dir, size := corruptibleCache(t)
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("manifest empty before corruption")
	}
	data[len(data)/2] ^= 0x40 // flip a bit mid-manifest
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck(t, dir, size)
}

func TestCacheToleratesTruncatedManifest(t *testing.T) {
	dir, size := corruptibleCache(t)
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck(t, dir, size)
}

func TestCacheRebuildsOnUnscannableManifest(t *testing.T) {
	dir, size := corruptibleCache(t)
	path := filepath.Join(dir, manifestName)
	// A line past the scanner's buffer cap makes replay fail outright;
	// the cache must rebuild from the directory instead of erroring.
	junk := make([]byte, 2<<20)
	for i := range junk {
		junk[i] = 'x'
	}
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	reopenAndCheck(t, dir, size)
	// The rebuild compacted a fresh, replayable manifest.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != 'p' {
		t.Fatalf("manifest not rewritten after rebuild (starts %q)", data[:1])
	}
}

func TestCacheManifestCannotEscapeDirectory(t *testing.T) {
	size := entrySize(t)
	parent := t.TempDir()
	dir := filepath.Join(parent, "cache")
	victim := filepath.Join(parent, "victim.visit")
	if err := os.WriteFile(victim, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A hostile or corrupted manifest registers a huge entry outside the
	// cache dir; eviction must never follow it there.
	manifest := "p 999999999 ../victim.visit\n"
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCacheLimited(dir, 100, "study-a", size)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, measure.CaseDefault, testOutcome()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("eviction escaped the cache directory: %v", err)
	}
}
