package logstore

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: 0x01, Payload: nil},
		{Type: 0x05, Payload: []byte("spill bytes")},
		{Type: 0x07, Payload: make([]byte, 70_000)}, // > one varint byte of length
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f.Type, f.Payload); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range frames {
		got, err := ReadFrame(r, 1<<20)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got type %#x, %d bytes; want type %#x, %d bytes",
				i, got.Type, len(got.Payload), want.Type, len(want.Payload))
		}
	}
	if _, err := ReadFrame(r, 1<<20); err != io.EOF {
		t.Fatalf("clean end of stream: got %v, want io.EOF", err)
	}
}

// TestFrameTruncation distinguishes the two ways a frame stream can end:
// exactly between frames is a clean io.EOF; anywhere inside a frame is
// io.ErrUnexpectedEOF — the signal the dist coordinator uses to tell a
// finished worker from a dead one.
func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0x05, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Len()
	for off := 0; off < whole; off++ {
		r := bufio.NewReader(bytes.NewReader(buf.Bytes()[:off]))
		_, err := ReadFrame(r, 1<<20)
		switch {
		case off == 0:
			if err != io.EOF {
				t.Errorf("offset 0: got %v, want io.EOF", err)
			}
		case err == nil:
			t.Errorf("offset %d: truncated frame read cleanly", off)
		case !errors.Is(err, io.ErrUnexpectedEOF):
			t.Errorf("offset %d: got %v, want io.ErrUnexpectedEOF", off, err)
		}
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0x05, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf.Bytes())), 99); err == nil {
		t.Fatal("payload above the cap accepted")
	}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf.Bytes())), 100); err != nil {
		t.Fatalf("payload at the cap rejected: %v", err)
	}
}
