// Package logstore is the persistence layer for the survey's measurement
// log. internal/measure owns the in-memory model; everything that touches
// disk — formats, streaming, caching — lives here, behind a pluggable
// Codec API.
//
// # Codecs
//
// A Codec serializes a complete measure.Log: Encode(io.Writer, *Log) and
// Decode(io.Reader) (*Log, error). Two codecs are registered:
//
//   - "csv" is the repository's original line format, kept byte-for-byte
//     compatible so logs written before this package existed still load.
//   - "binary" is the compact format: a magic header plus varint metadata
//     and run-length-encoded feature bitsets, several times smaller and
//     faster than CSV (internal/logstore benchmarks measure both claims).
//
// Every format is self-identifying. Detect picks the decoder from a file's
// first bytes, and Read/ReadFile auto-detect, so readers (cmd/report, any
// analysis tool) never need to be told which format they were handed.
//
// # Streaming spill
//
// The codecs need the whole log in memory; the streaming layer does not.
// A Writer appends per-visit Observations to a spill file as they complete,
// so a pipeline shard can spill partial results instead of holding the full
// log — a spilled shard file is exactly the partial aggregate a future
// network shard would ship home. ReadSpills/ReadSpillFiles reassemble any
// number of spill streams into the single measure.Log the visits describe.
//
// # Visit cache
//
// Cache memoizes VisitOutcomes on disk keyed by (VisitSeed, case). Because
// crawler.VisitSeed makes a visit's randomness a pure function of
// (base seed, site, case, round), a re-run with an overlapping
// configuration skips every cached visit — hits counted, log byte-identical
// to the uncached run. Failed visits are cached too; they are just as
// deterministic.
package logstore
