// Package logstore is the persistence layer for the survey's measurement
// log. internal/measure owns the in-memory model; everything that touches
// disk — formats, streaming, caching — lives here, behind a pluggable
// Codec API.
//
// # Codecs
//
// A Codec serializes a complete measure.Log: Encode(io.Writer, *Log) and
// Decode(io.Reader) (*Log, error). Two codecs are registered:
//
//   - "csv" is the repository's original line format, kept byte-for-byte
//     compatible so logs written before this package existed still load.
//   - "binary" is the compact format: a magic header plus varint metadata
//     and run-length-encoded feature bitsets, several times smaller and
//     faster than CSV (internal/logstore benchmarks measure both claims).
//
// Every format is self-identifying. Detect picks the decoder from a file's
// first bytes, and Read/ReadFile auto-detect, so readers (cmd/report, any
// analysis tool) never need to be told which format they were handed.
//
// # Streaming spill
//
// The codecs need the whole log in memory; the streaming layer does not.
// A Writer appends per-visit Observations to a spill file as they complete,
// so a pipeline shard can spill partial results instead of holding the full
// log — and a spilled stream is exactly what a distributed worker ships to
// its coordinator (internal/dist). ReadSpills/ReadSpillFiles reassemble any
// number of spill streams into the single measure.Log the visits describe;
// stats.FromSpills folds them into a mergeable aggregate without ever
// materializing the log.
//
// # Spill frame format (bytes on the wire)
//
// A spill stream — whether a shard-NNN.spill file on disk or the payload
// bytes a dist worker streams home — is a header followed by
// self-delimiting records. All integers are unsigned LEB128 varints
// (encoding/binary uvarint); strings are a varint length followed by that
// many bytes; there is no padding or alignment anywhere.
//
//	header:
//	  magic     5 bytes   F1 53 50 4C 31           ("\xF1SPL1")
//	  features  uvarint   corpus size (bitset width of every record)
//	  domains   uvarint   site-list size, then that many strings,
//	                      index-aligned with site indices
//
//	record: 1 type byte, then per type —
//	  01 observation:
//	     case        string    browser configuration name
//	     round       uvarint
//	     site        uvarint   index into the header's domain list
//	     invocations uvarint
//	     pages       uvarint
//	     features    bitset    see below
//	  02 failure:
//	     site        uvarint   a visit of this site failed
//	  03 site-end:
//	     site        uvarint   every visit of this site precedes this
//	                           record (streaming consumers retire it)
//
//	bitset (run-length encoded set bits):
//	  runs      uvarint   number of maximal runs of consecutive set bits
//	  per run:  uvarint   (gap from end of previous run) << 1, low bit set
//	                      when a second uvarint follows carrying
//	                      (run length − 2); no second varint means a
//	                      1-bit run
//
// The stream is truncation-evident at record granularity: a stream cut on
// a record boundary reads as a shorter valid stream (a crashed shard's
// spill stays usable to its last durable record), while a cut inside a
// record surfaces a decode error (TestSpillStreamTruncation sweeps every
// offset). Every varint decodes against a caller-side cap, so corrupt or
// hostile input can never force an unbounded allocation.
//
// # Frames
//
// WriteFrame/ReadFrame add a minimal message envelope — type byte, uvarint
// payload length, payload — used by the internal/dist coordinator/worker
// protocol to interleave spill chunks with control messages on one TCP
// connection. A frame stream distinguishes a clean end (io.EOF exactly on
// a frame boundary) from a death mid-frame (io.ErrUnexpectedEOF).
//
// # Visit cache
//
// Cache memoizes VisitOutcomes on disk keyed by (VisitSeed, case). Because
// crawler.VisitSeed makes a visit's randomness a pure function of
// (base seed, site, case, round), a re-run with an overlapping
// configuration skips every cached visit — hits counted, log byte-identical
// to the uncached run. Failed visits are cached too; they are just as
// deterministic.
package logstore
