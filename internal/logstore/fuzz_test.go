package logstore

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/measure"
)

// seedCorpus feeds the fuzzers every round-trip fixture plus degenerate
// inputs, so coverage starts from well-formed logs and mutates outward.
func seedCorpus(f *testing.F, c Codec) {
	for _, l := range []*measure.Log{buildLog(), denseLog()} {
		var buf bytes.Buffer
		if err := c.Encode(&buf, l); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte(csvMagic))
	f.Add([]byte(binaryMagic))
	f.Add([]byte(spillMagic))
}

// fuzzRoundTrip is the shared property: the decoder never panics on
// arbitrary bytes, and any input it accepts re-encodes and re-decodes to a
// deep-equal log (decode∘encode is the identity on the decoder's image).
func fuzzRoundTrip(t *testing.T, c Codec, data []byte) {
	l, err := c.Decode(bytes.NewReader(data))
	if err != nil {
		return // rejecting corrupt input is fine; panicking is not
	}
	var buf bytes.Buffer
	if err := c.Encode(&buf, l); err != nil {
		t.Fatalf("decoded log failed to re-encode: %v", err)
	}
	l2, err := c.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-encoded log failed to decode: %v", err)
	}
	if !reflect.DeepEqual(l, l2) {
		t.Fatal("decode(encode(log)) != log")
	}
}

func FuzzRoundTripCSV(f *testing.F) {
	seedCorpus(f, CSV{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRoundTrip(t, CSV{}, data)
	})
}

func FuzzRoundTripBinary(f *testing.F) {
	seedCorpus(f, Binary{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRoundTrip(t, Binary{}, data)
	})
}

// FuzzReadSpills: the spill replayer never panics on arbitrary bytes.
func FuzzReadSpills(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 100, []string{"a.example", "b.example"})
	if err != nil {
		f.Fatal(err)
	}
	sf := measure.NewBitset(100)
	sf.Set(7)
	w.Append(Observation{Case: measure.CaseDefault, Site: 0, Features: sf, Invocations: 3, Pages: 13})
	w.Fail(1)
	w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte(spillMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadSpills(bytes.NewReader(data))
		if err == nil && l == nil {
			t.Fatal("nil log without error")
		}
	})
}
