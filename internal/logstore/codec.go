package logstore

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/measure"
)

// Codec serializes a complete measure.Log to one on-disk format and back.
// Every format is self-identifying: its first bytes are enough for Detect
// to pick the right decoder, so readers never need to be told what they are
// loading.
//
// Codec implementations must round-trip: Decode(Encode(l)) is deep-equal to
// l for every log built through the measure API. Encoders must also be
// deterministic — the same log always produces the same bytes — because the
// repository's whole verification strategy compares serialized logs.
type Codec interface {
	// Name is the codec's registry key (the -format flag value).
	Name() string
	// Encode writes the log to w.
	Encode(w io.Writer, l *measure.Log) error
	// Decode reads one log from r.
	Decode(r io.Reader) (*measure.Log, error)
}

// Sanity caps applied by every decoder. They bound what a corrupt or
// hostile input can make a decoder allocate, and are far above anything the
// study produces (the paper: 1,392 features, 10,000 domains, 5 rounds).
const (
	maxFeatures = 1 << 20
	maxDomains  = 1 << 21
	maxRounds   = 1 << 14
	maxCases    = 1 << 10
	// maxCells bounds the total number of (case, round, site) slots a
	// decoder will materialize, so a header claiming both huge domain and
	// round counts cannot multiply into an unbounded allocation.
	maxCells = 1 << 24
)

// codecs is the format registry, in preference order.
var codecs = []Codec{CSV{}, Binary{}}

// Names lists the registered codec names (the valid -format values).
func Names() []string {
	out := make([]string, len(codecs))
	for i, c := range codecs {
		out[i] = c.Name()
	}
	return out
}

// ByName returns the named codec.
func ByName(name string) (Codec, error) {
	for _, c := range codecs {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("logstore: unknown log format %q (want %s)", name, strings.Join(Names(), " or "))
}

// detectPeek is how many leading bytes Detect needs: enough for the longest
// magic, the CSV header prefix, and the spill magic.
const detectPeek = len(csvMagic)

// Detect identifies the format of a log from its first bytes and returns
// the codec that reads it. It recognizes every registered codec plus spill
// files (which decode by merging, see ReadSpills). Unknown leading bytes
// produce an error quoting the offending magic so a user pointed at the
// wrong file sees what was actually there.
func Detect(prefix []byte) (Codec, error) {
	switch {
	case bytes.HasPrefix(prefix, []byte(binaryMagic)):
		return Binary{}, nil
	case bytes.HasPrefix(prefix, []byte(spillMagic)):
		return spillCodec{}, nil
	case bytes.HasPrefix(prefix, []byte(csvMagic)):
		return CSV{}, nil
	}
	n := len(prefix)
	if n > 8 {
		n = 8
	}
	return nil, fmt.Errorf("logstore: unknown log format (magic bytes %q)", prefix[:n])
}

// Read decodes a log from r, auto-detecting its format from the leading
// magic bytes. It accepts everything Detect does: CSV, binary, and spill
// files (a single spill file decodes to the log of its observations).
func Read(r io.Reader) (*measure.Log, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	prefix, err := br.Peek(detectPeek)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("logstore: reading log header: %w", err)
	}
	c, err := Detect(prefix)
	if err != nil {
		return nil, err
	}
	return c.Decode(br)
}

// ReadFile decodes the log in the named file, auto-detecting its format.
func ReadFile(path string) (*measure.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// WriteFile encodes the log to the named file with the given codec.
func WriteFile(path string, c Codec, l *measure.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Encode(f, l); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// sortedCases returns a log's case names in canonical (sorted) order; every
// encoder iterates cases this way so output is deterministic.
func sortedCases(l *measure.Log) []string {
	cases := make([]string, 0, len(l.Cases))
	for c := range l.Cases {
		cases = append(cases, string(c))
	}
	sort.Strings(cases)
	return cases
}
