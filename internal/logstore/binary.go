package logstore

import (
	"fmt"
	"io"

	"repro/internal/measure"
)

// binaryMagic identifies the binary log format: a non-UTF8 lead byte (so
// the file can never be mistaken for CSV), a format tag, and a version.
const binaryMagic = "\xF1FLG1"

// Binary is the compact log format: a magic header followed by
// varint-encoded metadata and run-length-encoded feature bitsets. On the
// benchmark log it is several times smaller than CSV and faster to encode
// and decode, because set bits cost a couple of varint bytes per run
// instead of a decimal feature ID per bit.
//
// Layout after the magic, all integers unsigned varints:
//
//	numFeatures
//	numDomains, then per domain a length-prefixed name
//	measured flags as one run-encoded bitset over the domains
//	numCases, then per case (sorted by name):
//	    name, rounds, invocations, pagesVisited
//	    per round: count of present sites, then per present site
//	    (ascending) its index delta and its run-encoded feature bitset
type Binary struct{}

// Name implements Codec.
func (Binary) Name() string { return "binary" }

// Encode implements Codec.
func (Binary) Encode(w io.Writer, l *measure.Log) error {
	bw := newBinWriter(w)
	bw.bytes([]byte(binaryMagic))
	bw.uvarint(uint64(l.NumFeatures))
	bw.uvarint(uint64(len(l.Domains)))
	for _, d := range l.Domains {
		bw.str(d)
	}
	meas := measure.NewBitset(len(l.Domains))
	for i, m := range l.Measured {
		if m {
			meas.Set(i)
		}
	}
	bw.bitset(meas, len(l.Domains))

	cases := sortedCases(l)
	bw.uvarint(uint64(len(cases)))
	for _, cs := range cases {
		cl := l.Cases[measure.Case(cs)]
		bw.str(cs)
		bw.uvarint(uint64(len(cl.Rounds)))
		bw.uvarint(uint64(cl.Invocations))
		bw.uvarint(uint64(cl.PagesVisited))
		for _, rl := range cl.Rounds {
			present := 0
			for _, sf := range rl.SiteFeatures {
				if sf != nil {
					present++
				}
			}
			bw.uvarint(uint64(present))
			prev := 0
			for site, sf := range rl.SiteFeatures {
				if sf == nil {
					continue
				}
				bw.uvarint(uint64(site - prev))
				prev = site
				bw.bitset(sf, l.NumFeatures)
			}
		}
	}
	return bw.flush()
}

// Decode implements Codec.
func (Binary) Decode(r io.Reader) (*measure.Log, error) {
	br := newBinReader(r)
	if err := br.expectMagic(binaryMagic, "binary"); err != nil {
		return nil, err
	}
	numFeatures, err := br.count(maxFeatures, "feature count")
	if err != nil {
		return nil, err
	}
	if numFeatures == 0 {
		return nil, fmt.Errorf("logstore: binary log has zero features")
	}
	numDomains, err := br.count(maxDomains, "domain count")
	if err != nil {
		return nil, err
	}
	domains := make([]string, numDomains)
	for i := range domains {
		if domains[i], err = br.str(4096, "domain name"); err != nil {
			return nil, err
		}
	}
	l := measure.NewLog(numFeatures, domains)
	meas, err := br.bitset(numDomains)
	if err != nil {
		return nil, err
	}
	for i := range l.Measured {
		l.Measured[i] = meas.Get(i)
	}

	numCases, err := br.count(maxCases, "case count")
	if err != nil {
		return nil, err
	}
	cells := 0
	for c := 0; c < numCases; c++ {
		name, err := br.str(256, "case name")
		if err != nil {
			return nil, err
		}
		rounds, err := br.count(maxRounds, "round count")
		if err != nil {
			return nil, err
		}
		cl := &measure.CaseLog{}
		if cl.Invocations, err = br.int64Val("invocation count"); err != nil {
			return nil, err
		}
		if cl.PagesVisited, err = br.int64Val("page count"); err != nil {
			return nil, err
		}
		if _, dup := l.Cases[measure.Case(name)]; dup {
			return nil, fmt.Errorf("logstore: binary log repeats case %q", name)
		}
		l.Cases[measure.Case(name)] = cl
		cells += rounds * numDomains
		if cells > maxCells {
			return nil, fmt.Errorf("logstore: binary log exceeds %d cells", maxCells)
		}
		for r := 0; r < rounds; r++ {
			rl := &measure.RoundLog{SiteFeatures: make([]measure.Bitset, numDomains)}
			cl.Rounds = append(cl.Rounds, rl)
			present, err := br.count(numDomains, "present site count")
			if err != nil {
				return nil, err
			}
			site := 0
			for p := 0; p < present; p++ {
				delta, err := br.count(numDomains, "site delta")
				if err != nil {
					return nil, err
				}
				site += delta
				if site >= numDomains || rl.SiteFeatures[site] != nil {
					return nil, fmt.Errorf("logstore: binary log site index %d invalid", site)
				}
				if rl.SiteFeatures[site], err = br.bitset(numFeatures); err != nil {
					return nil, err
				}
			}
		}
	}
	return l, nil
}
