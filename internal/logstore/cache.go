package logstore

import (
	"bufio"
	"bytes"
	"container/list"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/measure"
)

// cacheMagic identifies one cached visit outcome on disk.
const cacheMagic = "\xF1VCH1"

// manifestName is the recency manifest's filename inside a capped cache
// directory. Entry files are hex-named *.visit files, so the name can never
// collide with an entry.
const manifestName = "manifest"

// VisitOutcome is everything one visit contributes to the survey log: the
// feature set, invocation and page totals — or the fact that the visit
// failed and made the site unmeasurable. Failures are cached too, because
// they are as deterministic as successes.
type VisitOutcome struct {
	Failed      bool
	Features    measure.Bitset
	Invocations int64
	Pages       int
}

// CacheStats counts cache traffic. Errors counts unreadable or mismatched
// entries, which degrade to misses rather than failing a run; Evictions
// counts entries pruned to honor the size cap.
type CacheStats struct {
	Hits, Misses, Puts, Errors, Evictions int64
}

// Cache memoizes visit outcomes on disk, keyed by the visit's deterministic
// seed and its browser configuration (the blocking profile of the visit).
// Because crawler.VisitSeed derives a visit's randomness purely from
// (base seed, site, case, round), a re-run with an overlapping config can
// skip every visit the cache already holds and still produce the identical
// log.
//
// VisitSeed does not encode the study itself — a different site count or
// generation seed builds a different synthetic web whose visits must never
// be replayed across runs — so every entry also records the corpus size and
// the caller's scope string (the study parameters that shape visit
// outcomes). Entries from another scope degrade to misses.
//
// A capped cache (OpenCacheLimited with maxBytes > 0) prunes
// least-recently-used entries once their total size exceeds the cap. An
// append-only manifest in the cache directory journals puts, touches, and
// deletions, so recency survives restarts and neither lookups nor eviction
// ever scan the directory — the only scan is a one-time seeding when a cap
// is first applied to a directory without a manifest. The manifest is an
// accelerator like the cache itself: if it is lost or stale, entries are
// re-registered as they are hit.
//
// A Cache is safe for concurrent use; entries are written to a temp file
// and renamed into place so a crashed run never leaves a torn entry.
type Cache struct {
	dir         string
	numFeatures int
	scope       string

	hits, misses, puts, errors, evictions atomic.Int64

	// Eviction state, active only when maxBytes > 0.
	mu           sync.Mutex
	maxBytes     int64
	totalBytes   int64
	entries      map[string]*list.Element // entry filename → lru element
	lru          *list.List               // front = most recently used
	manifest     *os.File
	journalLines int
}

// cacheEntry is one tracked entry file.
type cacheEntry struct {
	name string
	size int64
}

// OpenCache opens (creating if needed) an unbounded visit cache rooted at
// dir for a study with the given corpus size. scope fingerprints everything
// beyond (VisitSeed, case) that determines a visit's outcome — the site
// count, generation seed, and crawl methodology; cache entries only ever
// serve a cache opened with the identical scope.
func OpenCache(dir string, numFeatures int, scope string) (*Cache, error) {
	return OpenCacheLimited(dir, numFeatures, scope, 0)
}

// OpenCacheLimited is OpenCache with a size cap: once the entries exceed
// maxBytes in total, the least-recently-used are deleted. maxBytes <= 0
// means unbounded (no manifest is maintained).
func OpenCacheLimited(dir string, numFeatures int, scope string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: opening cache: %w", err)
	}
	if numFeatures <= 0 || numFeatures > maxFeatures {
		return nil, fmt.Errorf("logstore: cache corpus size %d out of range", numFeatures)
	}
	c := &Cache{dir: dir, numFeatures: numFeatures, scope: scope}
	if maxBytes > 0 {
		c.maxBytes = maxBytes
		c.entries = make(map[string]*list.Element)
		c.lru = list.New()
		if err := c.loadManifest(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a (visit seed, case, scope) key to its entry file. Case and
// scope are user-influenced strings, so they are hashed rather than
// embedded in the filename; the entry body stores both verbatim for
// collision safety.
func (c *Cache) path(seed int64, cs measure.Case) string {
	return filepath.Join(c.dir, c.entryName(seed, cs))
}

func (c *Cache) entryName(seed int64, cs measure.Case) string {
	h := fnv.New64a()
	h.Write([]byte(cs))
	h.Write([]byte{0})
	h.Write([]byte(c.scope))
	return fmt.Sprintf("%016x-%016x.visit", uint64(seed), h.Sum64())
}

// Get looks up the outcome of the visit keyed by (seed, cs). A missing,
// corrupt, or mismatched entry is a miss.
func (c *Cache) Get(seed int64, cs measure.Case) (VisitOutcome, bool) {
	name := c.entryName(seed, cs)
	data, err := os.ReadFile(filepath.Join(c.dir, name))
	if err != nil {
		c.misses.Add(1)
		c.forget(name)
		return VisitOutcome{}, false
	}
	out, err := c.decode(data, cs)
	if err != nil {
		c.errors.Add(1)
		c.misses.Add(1)
		return VisitOutcome{}, false
	}
	c.hits.Add(1)
	c.touch(name, int64(len(data)))
	return out, true
}

// Put stores the outcome of the visit keyed by (seed, cs). Write failures
// are counted and reported but a caller may treat them as non-fatal: the
// cache is an accelerator, not a correctness dependency.
func (c *Cache) Put(seed int64, cs measure.Case, out VisitOutcome) error {
	var buf bytes.Buffer
	w := newBinWriter(&buf)
	w.bytes([]byte(cacheMagic))
	w.uvarint(uint64(c.numFeatures))
	w.str(c.scope)
	w.str(string(cs))
	if out.Failed {
		w.bytes([]byte{1})
	} else {
		w.bytes([]byte{0})
		w.uvarint(uint64(out.Invocations))
		w.uvarint(uint64(out.Pages))
		w.bitset(out.Features, c.numFeatures)
	}
	if err := w.flush(); err != nil {
		c.errors.Add(1)
		return err
	}

	name := c.entryName(seed, cs)
	tmp, err := os.CreateTemp(c.dir, ".visit-*")
	if err != nil {
		c.errors.Add(1)
		return fmt.Errorf("logstore: writing cache entry: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return fmt.Errorf("logstore: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return fmt.Errorf("logstore: writing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, name)); err != nil {
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return fmt.Errorf("logstore: writing cache entry: %w", err)
	}
	c.puts.Add(1)
	c.record(name, int64(len(buf.Bytes())))
	return nil
}

// decode parses one entry, validating it against the cache's corpus and
// the case it was looked up under.
func (c *Cache) decode(data []byte, cs measure.Case) (VisitOutcome, error) {
	r := newBinReader(bytes.NewReader(data))
	if err := r.expectMagic(cacheMagic, "cache entry"); err != nil {
		return VisitOutcome{}, err
	}
	nf, err := r.count(maxFeatures, "feature count")
	if err != nil {
		return VisitOutcome{}, err
	}
	if nf != c.numFeatures {
		return VisitOutcome{}, fmt.Errorf("logstore: cache entry for a %d-feature corpus, want %d", nf, c.numFeatures)
	}
	storedScope, err := r.str(4096, "scope")
	if err != nil {
		return VisitOutcome{}, err
	}
	if storedScope != c.scope {
		return VisitOutcome{}, fmt.Errorf("logstore: cache entry for scope %q, want %q", storedScope, c.scope)
	}
	storedCase, err := r.str(256, "case name")
	if err != nil {
		return VisitOutcome{}, err
	}
	if storedCase != string(cs) {
		return VisitOutcome{}, fmt.Errorf("logstore: cache entry for case %q, want %q", storedCase, cs)
	}
	flag, err := r.br.ReadByte()
	if err != nil {
		return VisitOutcome{}, err
	}
	if flag == 1 {
		return VisitOutcome{Failed: true}, nil
	}
	var out VisitOutcome
	if out.Invocations, err = r.int64Val("invocations"); err != nil {
		return VisitOutcome{}, err
	}
	pages, err := r.count(1<<30, "pages")
	if err != nil {
		return VisitOutcome{}, err
	}
	out.Pages = pages
	if out.Features, err = r.bitset(c.numFeatures); err != nil {
		return VisitOutcome{}, err
	}
	return out, nil
}

// Stats returns a snapshot of the cache's traffic counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Errors:    c.errors.Load(),
		Evictions: c.evictions.Load(),
	}
}

// --- eviction state ---------------------------------------------------

// loadManifest rebuilds the recency list. When the directory has a
// manifest, it is replayed (later lines are more recent) — no directory
// scan. When a cap is applied to a directory without one (first capped
// open, or a deleted manifest), the entries are seeded from a one-time
// directory listing ordered by modification time. Either way the state is
// compacted back to one put-line per entry.
func (c *Cache) loadManifest() error {
	path := filepath.Join(c.dir, manifestName)
	f, err := os.Open(path)
	switch {
	case err == nil:
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			op, rest, ok := strings.Cut(sc.Text(), " ")
			if !ok {
				continue
			}
			switch op {
			case "p": // p <size> <name>
				sizeStr, name, ok := strings.Cut(rest, " ")
				if !ok {
					continue
				}
				size, err := strconv.ParseInt(sizeStr, 10, 64)
				if err != nil || size < 0 || !validEntryName(name) {
					continue
				}
				c.registerLocked(name, size)
			case "t": // t <name>
				if el, ok := c.entries[rest]; ok {
					c.lru.MoveToFront(el)
				}
			case "d": // d <name>
				c.dropLocked(rest)
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			// A corrupt or truncated manifest (a crash mid-append, a
			// flipped bit growing a line past any sane length) costs
			// recency, not correctness: drop whatever replayed and
			// rebuild from the directory itself, like a first capped
			// open. compactLocked below then rewrites a clean manifest.
			c.entries = make(map[string]*list.Element)
			c.lru.Init()
			c.totalBytes = 0
			if err := c.seedFromDirectory(); err != nil {
				return err
			}
		}
	case os.IsNotExist(err):
		if err := c.seedFromDirectory(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("logstore: opening cache manifest: %w", err)
	}
	return c.compactLocked()
}

// validEntryName reports whether a manifest-supplied name is a real
// cache entry filename. Eviction removes tracked names from the cache
// directory, so a corrupted manifest line must never smuggle in a path
// that escapes it or aliases the manifest.
func validEntryName(name string) bool {
	return strings.HasSuffix(name, ".visit") && !strings.ContainsAny(name, "/\\")
}

// seedFromDirectory lists existing entries once, oldest first, so a cap
// applied to a pre-existing uncapped cache starts with sensible recency.
func (c *Cache) seedFromDirectory() error {
	names, err := filepath.Glob(filepath.Join(c.dir, "*.visit"))
	if err != nil {
		return fmt.Errorf("logstore: seeding cache manifest: %w", err)
	}
	type aged struct {
		entry cacheEntry
		mtime int64
	}
	var found []aged
	for _, p := range names {
		info, err := os.Stat(p)
		if err != nil {
			continue
		}
		found = append(found, aged{cacheEntry{filepath.Base(p), info.Size()}, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, e := range found {
		c.registerLocked(e.entry.name, e.entry.size)
	}
	return nil
}

// compactLocked rewrites the manifest as one put-line per entry, oldest
// first, and reopens it for appending.
func (c *Cache) compactLocked() error {
	if c.manifest != nil {
		c.manifest.Close()
		c.manifest = nil
	}
	path := filepath.Join(c.dir, manifestName)
	tmp, err := os.CreateTemp(c.dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("logstore: compacting cache manifest: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(cacheEntry)
		fmt.Fprintf(w, "p %d %s\n", e.size, e.name)
	}
	if err := w.Flush(); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), path)
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("logstore: compacting cache manifest: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("logstore: reopening cache manifest: %w", err)
	}
	c.manifest = f
	c.journalLines = 0
	return nil
}

// registerLocked inserts or refreshes an entry at the recency front.
func (c *Cache) registerLocked(name string, size int64) {
	if el, ok := c.entries[name]; ok {
		c.totalBytes += size - el.Value.(cacheEntry).size
		el.Value = cacheEntry{name, size}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[name] = c.lru.PushFront(cacheEntry{name, size})
	c.totalBytes += size
}

// dropLocked removes an entry from the recency state (not from disk).
func (c *Cache) dropLocked(name string) {
	if el, ok := c.entries[name]; ok {
		c.totalBytes -= el.Value.(cacheEntry).size
		c.lru.Remove(el)
		delete(c.entries, name)
	}
}

// journalLocked appends one manifest line, compacting when the journal has
// grown well past the live entry count. Manifest I/O failures are counted
// and swallowed: recency degrades, correctness does not.
func (c *Cache) journalLocked(line string) {
	if c.manifest == nil {
		return
	}
	if _, err := c.manifest.WriteString(line); err != nil {
		c.errors.Add(1)
		return
	}
	c.journalLines++
	if c.journalLines > 4*len(c.entries)+64 {
		if err := c.compactLocked(); err != nil {
			c.errors.Add(1)
		}
	}
}

// touch marks an entry recently used (registering untracked entries, which
// self-heals a lost manifest) and prunes if a stale registration pushed the
// total over the cap.
func (c *Cache) touch(name string, size int64) {
	if c.maxBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[name]; ok {
		c.lru.MoveToFront(el)
		c.journalLocked("t " + name + "\n")
		return
	}
	// Untracked entry. The Get read the file outside the lock, so a
	// concurrent eviction may have deleted it since; evictions run under
	// this lock, so a stat here settles it — registering a ghost would
	// inflate totalBytes and evict a live entry in its place.
	if _, err := os.Stat(filepath.Join(c.dir, name)); err != nil {
		return
	}
	c.registerLocked(name, size)
	c.journalLocked(fmt.Sprintf("p %d %s\n", size, name))
	c.evictLocked()
}

// forget removes a vanished entry from the recency state.
func (c *Cache) forget(name string) {
	if c.maxBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok {
		c.dropLocked(name)
		c.journalLocked("d " + name + "\n")
	}
}

// record tracks a fresh Put and prunes least-recently-used entries until
// the cache fits its cap again.
func (c *Cache) record(name string, size int64) {
	if c.maxBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.registerLocked(name, size)
	c.journalLocked(fmt.Sprintf("p %d %s\n", size, name))
	c.evictLocked()
}

// evictLocked deletes from the recency back until under the cap.
func (c *Cache) evictLocked() {
	for c.totalBytes > c.maxBytes && c.lru.Len() > 0 {
		el := c.lru.Back()
		e := el.Value.(cacheEntry)
		if err := os.Remove(filepath.Join(c.dir, e.name)); err != nil && !os.IsNotExist(err) {
			c.errors.Add(1)
		}
		c.dropLocked(e.name)
		c.journalLocked("d " + e.name + "\n")
		c.evictions.Add(1)
	}
}
