package logstore

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/measure"
)

// cacheMagic identifies one cached visit outcome on disk.
const cacheMagic = "\xF1VCH1"

// VisitOutcome is everything one visit contributes to the survey log: the
// feature set, invocation and page totals — or the fact that the visit
// failed and made the site unmeasurable. Failures are cached too, because
// they are as deterministic as successes.
type VisitOutcome struct {
	Failed      bool
	Features    measure.Bitset
	Invocations int64
	Pages       int
}

// CacheStats counts cache traffic. Errors counts unreadable or mismatched
// entries, which degrade to misses rather than failing a run.
type CacheStats struct {
	Hits, Misses, Puts, Errors int64
}

// Cache memoizes visit outcomes on disk, keyed by the visit's deterministic
// seed and its browser configuration (the blocking profile of the visit).
// Because crawler.VisitSeed derives a visit's randomness purely from
// (base seed, site, case, round), a re-run with an overlapping config can
// skip every visit the cache already holds and still produce the identical
// log.
//
// VisitSeed does not encode the study itself — a different site count or
// generation seed builds a different synthetic web whose visits must never
// be replayed across runs — so every entry also records the corpus size and
// the caller's scope string (the study parameters that shape visit
// outcomes). Entries from another scope degrade to misses.
//
// A Cache is safe for concurrent use; entries are written to a temp file
// and renamed into place so a crashed run never leaves a torn entry.
type Cache struct {
	dir         string
	numFeatures int
	scope       string

	hits, misses, puts, errors atomic.Int64
}

// OpenCache opens (creating if needed) a visit cache rooted at dir for a
// study with the given corpus size. scope fingerprints everything beyond
// (VisitSeed, case) that determines a visit's outcome — the site count,
// generation seed, and crawl methodology; cache entries only ever serve a
// cache opened with the identical scope.
func OpenCache(dir string, numFeatures int, scope string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: opening cache: %w", err)
	}
	if numFeatures <= 0 || numFeatures > maxFeatures {
		return nil, fmt.Errorf("logstore: cache corpus size %d out of range", numFeatures)
	}
	return &Cache{dir: dir, numFeatures: numFeatures, scope: scope}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a (visit seed, case, scope) key to its entry file. Case and
// scope are user-influenced strings, so they are hashed rather than
// embedded in the filename; the entry body stores both verbatim for
// collision safety.
func (c *Cache) path(seed int64, cs measure.Case) string {
	h := fnv.New64a()
	h.Write([]byte(cs))
	h.Write([]byte{0})
	h.Write([]byte(c.scope))
	return filepath.Join(c.dir, fmt.Sprintf("%016x-%016x.visit", uint64(seed), h.Sum64()))
}

// Get looks up the outcome of the visit keyed by (seed, cs). A missing,
// corrupt, or mismatched entry is a miss.
func (c *Cache) Get(seed int64, cs measure.Case) (VisitOutcome, bool) {
	data, err := os.ReadFile(c.path(seed, cs))
	if err != nil {
		c.misses.Add(1)
		return VisitOutcome{}, false
	}
	out, err := c.decode(data, cs)
	if err != nil {
		c.errors.Add(1)
		c.misses.Add(1)
		return VisitOutcome{}, false
	}
	c.hits.Add(1)
	return out, true
}

// Put stores the outcome of the visit keyed by (seed, cs). Write failures
// are counted and reported but a caller may treat them as non-fatal: the
// cache is an accelerator, not a correctness dependency.
func (c *Cache) Put(seed int64, cs measure.Case, out VisitOutcome) error {
	var buf bytes.Buffer
	w := newBinWriter(&buf)
	w.bytes([]byte(cacheMagic))
	w.uvarint(uint64(c.numFeatures))
	w.str(c.scope)
	w.str(string(cs))
	if out.Failed {
		w.bytes([]byte{1})
	} else {
		w.bytes([]byte{0})
		w.uvarint(uint64(out.Invocations))
		w.uvarint(uint64(out.Pages))
		w.bitset(out.Features, c.numFeatures)
	}
	if err := w.flush(); err != nil {
		c.errors.Add(1)
		return err
	}

	path := c.path(seed, cs)
	tmp, err := os.CreateTemp(c.dir, ".visit-*")
	if err != nil {
		c.errors.Add(1)
		return fmt.Errorf("logstore: writing cache entry: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return fmt.Errorf("logstore: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return fmt.Errorf("logstore: writing cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.errors.Add(1)
		return fmt.Errorf("logstore: writing cache entry: %w", err)
	}
	c.puts.Add(1)
	return nil
}

// decode parses one entry, validating it against the cache's corpus and
// the case it was looked up under.
func (c *Cache) decode(data []byte, cs measure.Case) (VisitOutcome, error) {
	r := newBinReader(bytes.NewReader(data))
	if err := r.expectMagic(cacheMagic, "cache entry"); err != nil {
		return VisitOutcome{}, err
	}
	nf, err := r.count(maxFeatures, "feature count")
	if err != nil {
		return VisitOutcome{}, err
	}
	if nf != c.numFeatures {
		return VisitOutcome{}, fmt.Errorf("logstore: cache entry for a %d-feature corpus, want %d", nf, c.numFeatures)
	}
	storedScope, err := r.str(4096, "scope")
	if err != nil {
		return VisitOutcome{}, err
	}
	if storedScope != c.scope {
		return VisitOutcome{}, fmt.Errorf("logstore: cache entry for scope %q, want %q", storedScope, c.scope)
	}
	storedCase, err := r.str(256, "case name")
	if err != nil {
		return VisitOutcome{}, err
	}
	if storedCase != string(cs) {
		return VisitOutcome{}, fmt.Errorf("logstore: cache entry for case %q, want %q", storedCase, cs)
	}
	flag, err := r.br.ReadByte()
	if err != nil {
		return VisitOutcome{}, err
	}
	if flag == 1 {
		return VisitOutcome{Failed: true}, nil
	}
	var out VisitOutcome
	if out.Invocations, err = r.int64Val("invocations"); err != nil {
		return VisitOutcome{}, err
	}
	pages, err := r.count(1<<30, "pages")
	if err != nil {
		return VisitOutcome{}, err
	}
	out.Pages = pages
	if out.Features, err = r.bitset(c.numFeatures); err != nil {
		return VisitOutcome{}, err
	}
	return out, nil
}

// Stats returns a snapshot of the cache's traffic counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Puts:   c.puts.Load(),
		Errors: c.errors.Load(),
	}
}
