package logstore

import (
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/measure"
)

// spillMagic identifies a spill file: an append-only stream of per-visit
// observations, as opposed to the complete logs the codecs write.
const spillMagic = "\xF1SPL1"

// Spill record types.
const (
	recObservation = 1
	recFailure     = 2
)

// Observation is one completed visit: the feature set, invocation total,
// and page count of a single (case, round, site) crawl. It is the unit the
// streaming Writer appends and the unit a pipeline shard would ship to a
// remote merger.
type Observation struct {
	Case        measure.Case
	Round       int
	Site        int
	Features    measure.Bitset
	Invocations int64
	Pages       int
}

// Writer streams per-visit observations to a spill file so a producer
// (a pipeline shard, a remote worker) never has to hold a full log in
// memory. Records become durable at Flush; ReadSpills reassembles one or
// more spill files into the measure.Log the visits describe.
//
// A Writer is safe for concurrent use: the workers of a pipeline shard
// append to one shared spill.
type Writer struct {
	mu          sync.Mutex
	w           *binWriter
	closer      io.Closer
	numFeatures int
	numDomains  int
}

// NewWriter starts a spill stream on w for the given corpus and site list,
// writing the header immediately.
func NewWriter(w io.Writer, numFeatures int, domains []string) (*Writer, error) {
	bw := newBinWriter(w)
	bw.bytes([]byte(spillMagic))
	bw.uvarint(uint64(numFeatures))
	bw.uvarint(uint64(len(domains)))
	for _, d := range domains {
		bw.str(d)
	}
	if err := bw.flush(); err != nil {
		return nil, fmt.Errorf("logstore: writing spill header: %w", err)
	}
	return &Writer{w: bw, numFeatures: numFeatures, numDomains: len(domains)}, nil
}

// Create starts a spill stream in a new file at path.
func Create(path string, numFeatures int, domains []string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, numFeatures, domains)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	return w, nil
}

// Append records one observation.
func (w *Writer) Append(obs Observation) error {
	if obs.Site < 0 || obs.Site >= w.numDomains || obs.Round < 0 || obs.Invocations < 0 || obs.Pages < 0 {
		return fmt.Errorf("logstore: invalid observation %+v", obs)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.bytes([]byte{recObservation})
	w.w.str(string(obs.Case))
	w.w.uvarint(uint64(obs.Round))
	w.w.uvarint(uint64(obs.Site))
	w.w.uvarint(uint64(obs.Invocations))
	w.w.uvarint(uint64(obs.Pages))
	w.w.bitset(obs.Features, w.numFeatures)
	return w.w.err
}

// Fail records that a visit to the site failed, making the site
// unmeasurable in the reassembled log (the paper's 267 lost domains).
func (w *Writer) Fail(site int) error {
	if site < 0 || site >= w.numDomains {
		return fmt.Errorf("logstore: invalid failure site %d", site)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.bytes([]byte{recFailure})
	w.w.uvarint(uint64(site))
	return w.w.err
}

// Flush makes all appended records durable.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.flush()
}

// Close flushes and, when the Writer owns its file, closes it.
func (w *Writer) Close() error {
	err := w.Flush()
	if w.closer != nil {
		if cerr := w.closer.Close(); err == nil {
			err = cerr
		}
		w.closer = nil
	}
	return err
}

// spillHeader is the decoded fixed prelude of one spill stream.
type spillHeader struct {
	numFeatures int
	domains     []string
}

func readSpillHeader(r *binReader) (*spillHeader, error) {
	if err := r.expectMagic(spillMagic, "spill"); err != nil {
		return nil, err
	}
	numFeatures, err := r.count(maxFeatures, "feature count")
	if err != nil {
		return nil, err
	}
	if numFeatures == 0 {
		return nil, fmt.Errorf("logstore: spill has zero features")
	}
	numDomains, err := r.count(maxDomains, "domain count")
	if err != nil {
		return nil, err
	}
	h := &spillHeader{numFeatures: numFeatures, domains: make([]string, numDomains)}
	for i := range h.domains {
		if h.domains[i], err = r.str(4096, "domain name"); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// sameStudy reports whether two spill headers describe the identical study:
// same corpus size and the same site list, domain by domain. Counts alone
// are not enough — two different seeds generate different webs of the same
// shape whose visits must never merge.
func (h *spillHeader) sameStudy(other *spillHeader) error {
	if h.numFeatures != other.numFeatures || len(h.domains) != len(other.domains) {
		return fmt.Errorf("describes a different study (%d features × %d domains, want %d × %d)",
			h.numFeatures, len(h.domains), other.numFeatures, len(other.domains))
	}
	for i, d := range h.domains {
		if d != other.domains[i] {
			return fmt.Errorf("describes a different study (domain %d is %q, want %q)", i, d, other.domains[i])
		}
	}
	return nil
}

// replaySpill applies one spill stream's records to the log, accumulating
// failed sites into failed. The stream ends at a clean EOF on a record
// boundary; anything else is corruption. cells tracks the (case, round,
// site) slots materialized across the whole merge so a crafted stream
// cannot grow the log unboundedly through EnsureRound.
func replaySpill(r *binReader, h *spillHeader, l *measure.Log, failed []bool, cells *int) error {
	for {
		kind, err := r.br.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("logstore: reading spill record: %w", err)
		}
		if len(h.domains) == 0 {
			return fmt.Errorf("logstore: spill records a visit but declares zero domains")
		}
		switch kind {
		case recObservation:
			cs, err := r.str(256, "case name")
			if err != nil {
				return err
			}
			round, err := r.count(maxRounds-1, "round")
			if err != nil {
				return err
			}
			site, err := r.count(len(h.domains)-1, "site")
			if err != nil {
				return err
			}
			inv, err := r.int64Val("invocations")
			if err != nil {
				return err
			}
			pages, err := r.int64Val("pages")
			if err != nil {
				return err
			}
			sf, err := r.bitset(h.numFeatures)
			if err != nil {
				return err
			}
			if cl := l.Cases[measure.Case(cs)]; cl == nil || round >= len(cl.Rounds) {
				have := 0
				if cl != nil {
					have = len(cl.Rounds)
				}
				*cells += (round + 1 - have) * len(h.domains)
				if *cells > maxCells {
					return fmt.Errorf("logstore: spill merge exceeds %d cells", maxCells)
				}
				if cl == nil && len(l.Cases) >= maxCases {
					return fmt.Errorf("logstore: spill merge exceeds %d cases", maxCases)
				}
			}
			rl := l.EnsureRound(measure.Case(cs), round)
			rl.SiteFeatures[site] = sf
			cl := l.Cases[measure.Case(cs)]
			cl.Invocations += inv
			cl.PagesVisited += pages
			l.Measured[site] = true
		case recFailure:
			site, err := r.count(len(h.domains)-1, "failure site")
			if err != nil {
				return err
			}
			failed[site] = true
		default:
			return fmt.Errorf("logstore: unknown spill record type %d", kind)
		}
	}
}

// ReadSpills reassembles one or more spill streams into a single
// measure.Log, exactly as if every observation had been recorded into one
// in-memory log: per-case rounds grow to the highest round observed, and a
// site is measured when it produced at least one observation and no visit
// of it failed. Every stream must describe the same corpus and site list.
func ReadSpills(readers ...io.Reader) (*measure.Log, error) {
	if len(readers) == 0 {
		return nil, fmt.Errorf("logstore: no spill streams to read")
	}
	var l *measure.Log
	var h0 *spillHeader
	var failed []bool
	cells := 0
	for i, r := range readers {
		br := newBinReader(r)
		h, err := readSpillHeader(br)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			h0 = h
			l = measure.NewLog(h.numFeatures, h.domains)
			failed = make([]bool, len(h.domains))
		} else if err := h.sameStudy(h0); err != nil {
			return nil, fmt.Errorf("logstore: spill stream %d: %w", i, err)
		}
		if err := replaySpill(br, h, l, failed, &cells); err != nil {
			return nil, err
		}
	}
	for site, f := range failed {
		if f {
			l.Measured[site] = false
		}
	}
	return l, nil
}

// ReadSpillFiles reassembles the named spill files into one log.
func ReadSpillFiles(paths ...string) (*measure.Log, error) {
	readers := make([]io.Reader, len(paths))
	files := make([]*os.File, len(paths))
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		files[i] = f
		readers[i] = f
	}
	return ReadSpills(readers...)
}

// spillCodec adapts a single spill stream to the Codec Decode side so Read
// and Detect handle spill files transparently. Spill files are produced by
// the streaming Writer, never by Encode.
type spillCodec struct{}

func (spillCodec) Name() string { return "spill" }

func (spillCodec) Encode(io.Writer, *measure.Log) error {
	return fmt.Errorf("logstore: spill files are written by the streaming Writer, not a codec")
}

func (spillCodec) Decode(r io.Reader) (*measure.Log, error) {
	return ReadSpills(r)
}
