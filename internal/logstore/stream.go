package logstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/measure"
)

// spillMagic identifies a spill file: an append-only stream of per-visit
// observations, as opposed to the complete logs the codecs write.
const spillMagic = "\xF1SPL1"

// SpillKind discriminates the records of a spill stream. The numeric
// values are the on-disk record-type bytes.
type SpillKind byte

const (
	// SpillObservation is one completed visit.
	SpillObservation SpillKind = 1
	// SpillFailure marks a site unmeasurable (a visit of it failed).
	SpillFailure SpillKind = 2
	// SpillSiteEnd marks that every visit of a site is in the stream. It
	// carries no measurement data — it exists so a streaming consumer
	// (stats.FromSpills) can retire the site's accumulator and keep its
	// memory bounded by in-flight sites instead of total sites. Streams
	// without end markers (older files, a crashed shard) stay readable;
	// consumers simply retire everything at EOF.
	SpillSiteEnd SpillKind = 3
)

// Observation is one completed visit: the feature set, invocation total,
// and page count of a single (case, round, site) crawl. It is the unit the
// streaming Writer appends and the unit a pipeline shard would ship to a
// remote merger.
type Observation struct {
	Case        measure.Case
	Round       int
	Site        int
	Features    measure.Bitset
	Invocations int64
	Pages       int
}

// SpillRecord is one decoded event of a spill stream.
type SpillRecord struct {
	Kind SpillKind
	// Obs holds the visit for SpillObservation records.
	Obs Observation
	// Site is the subject site of SpillFailure and SpillSiteEnd records
	// (for observations it duplicates Obs.Site).
	Site int
}

// Writer streams per-visit observations to a spill file so a producer
// (a pipeline shard, a remote worker) never has to hold a full log in
// memory. Records become durable at Flush; ReadSpills reassembles one or
// more spill files into the measure.Log the visits describe, and
// stats.FromSpills folds them straight into a mergeable aggregate.
//
// A Writer is safe for concurrent use: the workers of a pipeline shard
// append to one shared spill.
type Writer struct {
	mu          sync.Mutex
	w           *binWriter
	closer      io.Closer
	file        *os.File // set when the Writer owns a real file
	finalPath   string   // atomic mode: rename file to this on Close
	numFeatures int
	numDomains  int
}

// NewWriter starts a spill stream on w for the given corpus and site list,
// writing the header immediately.
func NewWriter(w io.Writer, numFeatures int, domains []string) (*Writer, error) {
	bw := newBinWriter(w)
	bw.bytes([]byte(spillMagic))
	bw.uvarint(uint64(numFeatures))
	bw.uvarint(uint64(len(domains)))
	for _, d := range domains {
		bw.str(d)
	}
	if err := bw.flush(); err != nil {
		return nil, fmt.Errorf("logstore: writing spill header: %w", err)
	}
	return &Writer{w: bw, numFeatures: numFeatures, numDomains: len(domains)}, nil
}

// Create starts a spill stream in a new file at path.
func Create(path string, numFeatures int, domains []string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, numFeatures, domains)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	w.file = f
	return w, nil
}

// CreateAtomic starts a spill stream that becomes visible at path only
// on a clean Close: records accumulate in path+".partial", and Close
// flushes, fsyncs, renames the file into place, and fsyncs the
// directory. A crash — or a Discard after a failed run — leaves only
// the .partial file, which resume scanning treats as a torn stream, so
// a half-written spill can never be mistaken for a complete one.
func CreateAtomic(path string, numFeatures int, domains []string) (*Writer, error) {
	return CreateAtomicTapped(path, numFeatures, domains, nil)
}

// CreateAtomicTapped is CreateAtomic with every byte the stream sends
// to its file routed through tap(file) first — the seam crash tests use
// to tear writes at reproducible points. A nil tap is the identity.
func CreateAtomicTapped(path string, numFeatures int, domains []string, tap func(io.Writer) io.Writer) (*Writer, error) {
	f, err := os.Create(path + ".partial")
	if err != nil {
		return nil, err
	}
	var dst io.Writer = f
	if tap != nil {
		dst = tap(f)
	}
	w, err := NewWriter(dst, numFeatures, domains)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	w.file = f
	w.finalPath = path
	return w, nil
}

// Append records one observation.
func (w *Writer) Append(obs Observation) error {
	if obs.Site < 0 || obs.Site >= w.numDomains || obs.Round < 0 || obs.Invocations < 0 || obs.Pages < 0 {
		return fmt.Errorf("logstore: invalid observation %+v", obs)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.bytes([]byte{byte(SpillObservation)})
	w.w.str(string(obs.Case))
	w.w.uvarint(uint64(obs.Round))
	w.w.uvarint(uint64(obs.Site))
	w.w.uvarint(uint64(obs.Invocations))
	w.w.uvarint(uint64(obs.Pages))
	w.w.bitset(obs.Features, w.numFeatures)
	return w.w.err
}

// Fail records that a visit to the site failed, making the site
// unmeasurable in the reassembled log (the paper's 267 lost domains).
func (w *Writer) Fail(site int) error {
	if site < 0 || site >= w.numDomains {
		return fmt.Errorf("logstore: invalid failure site %d", site)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.bytes([]byte{byte(SpillFailure)})
	w.w.uvarint(uint64(site))
	return w.w.err
}

// EndSite records that every visit of the site has been appended, letting
// streaming consumers retire the site immediately instead of at EOF. All
// of the site's Append and Fail calls must precede it.
func (w *Writer) EndSite(site int) error {
	if site < 0 || site >= w.numDomains {
		return fmt.Errorf("logstore: invalid site-end site %d", site)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.bytes([]byte{byte(SpillSiteEnd)})
	w.w.uvarint(uint64(site))
	return w.w.err
}

// Flush makes all appended records durable.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.flush()
}

// Close flushes and, when the Writer owns its file, closes it. A
// Writer from CreateAtomic additionally fsyncs and renames the file to
// its final name — but only when every earlier write succeeded, so a
// failed stream is never published as complete.
func (w *Writer) Close() error {
	err := w.Flush()
	if err == nil && w.file != nil && w.finalPath != "" {
		err = w.file.Sync()
	}
	tmp := ""
	if w.file != nil {
		tmp = w.file.Name()
	}
	if w.closer != nil {
		if cerr := w.closer.Close(); err == nil {
			err = cerr
		}
		w.closer = nil
		w.file = nil
	}
	if err == nil && w.finalPath != "" && tmp != "" {
		if err = os.Rename(tmp, w.finalPath); err == nil {
			err = syncDir(filepath.Dir(w.finalPath))
		}
	}
	w.finalPath = ""
	return err
}

// Discard closes the Writer without publishing its stream: flushed
// records stay in the .partial file (resume can still salvage any
// fully committed sites), but the final name is never created. For a
// non-atomic Writer it is equivalent to Close.
func (w *Writer) Discard() error {
	w.finalPath = ""
	w.Flush()
	if w.closer != nil {
		err := w.closer.Close()
		w.closer = nil
		w.file = nil
		return err
	}
	return nil
}

// spillHeader is the decoded fixed prelude of one spill stream.
type spillHeader struct {
	numFeatures int
	domains     []string
}

func readSpillHeader(r *binReader) (*spillHeader, error) {
	if err := r.expectMagic(spillMagic, "spill"); err != nil {
		return nil, err
	}
	numFeatures, err := r.count(maxFeatures, "feature count")
	if err != nil {
		return nil, err
	}
	if numFeatures == 0 {
		return nil, fmt.Errorf("logstore: spill has zero features")
	}
	numDomains, err := r.count(maxDomains, "domain count")
	if err != nil {
		return nil, err
	}
	h := &spillHeader{numFeatures: numFeatures, domains: make([]string, numDomains)}
	for i := range h.domains {
		if h.domains[i], err = r.str(4096, "domain name"); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// sameStudy reports whether two spill headers describe the identical study:
// same corpus size and the same site list, domain by domain. Counts alone
// are not enough — two different seeds generate different webs of the same
// shape whose visits must never merge.
func (h *spillHeader) sameStudy(other *spillHeader) error {
	if h.numFeatures != other.numFeatures || len(h.domains) != len(other.domains) {
		return fmt.Errorf("describes a different study (%d features × %d domains, want %d × %d)",
			h.numFeatures, len(h.domains), other.numFeatures, len(other.domains))
	}
	for i, d := range h.domains {
		if d != other.domains[i] {
			return fmt.Errorf("describes a different study (domain %d is %q, want %q)", i, d, other.domains[i])
		}
	}
	return nil
}

// SpillStream is a streaming reader over one or more spill streams of the
// same study: records decode one at a time, so a consumer folding them into
// bounded state (a mergeable stats aggregate) never materializes the full
// log. Streams are concatenated in the order given; every header after the
// first must describe the first's study.
type SpillStream struct {
	header  *spillHeader
	readers []io.Reader
	files   []*os.File
	idx     int
	cur     *binReader
}

// OpenSpills starts streaming over the given spill streams.
func OpenSpills(readers ...io.Reader) (*SpillStream, error) {
	if len(readers) == 0 {
		return nil, fmt.Errorf("logstore: no spill streams to read")
	}
	s := &SpillStream{readers: readers}
	br := newBinReader(readers[0])
	h, err := readSpillHeader(br)
	if err != nil {
		return nil, err
	}
	s.header = h
	s.cur = br
	s.idx = 1
	return s, nil
}

// OpenSpillFiles starts streaming over the named spill files. Close
// releases them.
func OpenSpillFiles(paths ...string) (*SpillStream, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("logstore: no spill files to read")
	}
	files := make([]*os.File, 0, len(paths))
	readers := make([]io.Reader, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			for _, open := range files {
				open.Close()
			}
			return nil, err
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	s, err := OpenSpills(readers...)
	if err != nil {
		for _, open := range files {
			open.Close()
		}
		return nil, err
	}
	s.files = files
	return s, nil
}

// NumFeatures returns the streams' corpus size.
func (s *SpillStream) NumFeatures() int { return s.header.numFeatures }

// Domains returns the streams' site list.
func (s *SpillStream) Domains() []string {
	return append([]string(nil), s.header.domains...)
}

// Next decodes the next record, transparently advancing across streams. It
// returns io.EOF after the last stream's last record; any other error means
// corruption or a study mismatch.
func (s *SpillStream) Next() (SpillRecord, error) {
	for {
		kind, err := s.cur.br.ReadByte()
		if err == io.EOF {
			// Clean end of one stream on a record boundary: move to
			// the next stream, validating its header.
			if s.idx >= len(s.readers) {
				return SpillRecord{}, io.EOF
			}
			br := newBinReader(s.readers[s.idx])
			h, err := readSpillHeader(br)
			if err != nil {
				return SpillRecord{}, err
			}
			if err := h.sameStudy(s.header); err != nil {
				return SpillRecord{}, fmt.Errorf("logstore: spill stream %d: %w", s.idx, err)
			}
			s.cur = br
			s.idx++
			continue
		}
		if err != nil {
			return SpillRecord{}, fmt.Errorf("logstore: reading spill record: %w", err)
		}
		if len(s.header.domains) == 0 {
			return SpillRecord{}, fmt.Errorf("logstore: spill records a visit but declares zero domains")
		}
		return s.decodeRecord(SpillKind(kind))
	}
}

func (s *SpillStream) decodeRecord(kind SpillKind) (SpillRecord, error) {
	r := s.cur
	h := s.header
	switch kind {
	case SpillObservation:
		cs, err := r.str(256, "case name")
		if err != nil {
			return SpillRecord{}, err
		}
		round, err := r.count(maxRounds-1, "round")
		if err != nil {
			return SpillRecord{}, err
		}
		site, err := r.count(len(h.domains)-1, "site")
		if err != nil {
			return SpillRecord{}, err
		}
		inv, err := r.int64Val("invocations")
		if err != nil {
			return SpillRecord{}, err
		}
		pages, err := r.int64Val("pages")
		if err != nil {
			return SpillRecord{}, err
		}
		sf, err := r.bitset(h.numFeatures)
		if err != nil {
			return SpillRecord{}, err
		}
		return SpillRecord{
			Kind: SpillObservation,
			Site: site,
			Obs: Observation{
				Case:        measure.Case(cs),
				Round:       round,
				Site:        site,
				Features:    sf,
				Invocations: inv,
				Pages:       int(pages),
			},
		}, nil
	case SpillFailure:
		site, err := r.count(len(h.domains)-1, "failure site")
		if err != nil {
			return SpillRecord{}, err
		}
		return SpillRecord{Kind: SpillFailure, Site: site}, nil
	case SpillSiteEnd:
		site, err := r.count(len(h.domains)-1, "site-end site")
		if err != nil {
			return SpillRecord{}, err
		}
		return SpillRecord{Kind: SpillSiteEnd, Site: site}, nil
	default:
		return SpillRecord{}, fmt.Errorf("logstore: unknown spill record type %d", kind)
	}
}

// Close releases any files the stream owns.
func (s *SpillStream) Close() error {
	var err error
	for _, f := range s.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	s.files = nil
	return err
}

// readIntoLog drains a stream into a full measure.Log. cells caps the
// (case, round, site) slots materialized so a crafted stream cannot grow
// the log unboundedly through EnsureRound.
func readIntoLog(s *SpillStream) (*measure.Log, error) {
	l := measure.NewLog(s.header.numFeatures, s.header.domains)
	failed := make([]bool, len(s.header.domains))
	cells := 0
	for {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch rec.Kind {
		case SpillObservation:
			cs, round := rec.Obs.Case, rec.Obs.Round
			if cl := l.Cases[cs]; cl == nil || round >= len(cl.Rounds) {
				have := 0
				if cl != nil {
					have = len(cl.Rounds)
				}
				cells += (round + 1 - have) * len(s.header.domains)
				if cells > maxCells {
					return nil, fmt.Errorf("logstore: spill merge exceeds %d cells", maxCells)
				}
				if cl == nil && len(l.Cases) >= maxCases {
					return nil, fmt.Errorf("logstore: spill merge exceeds %d cases", maxCases)
				}
			}
			rl := l.EnsureRound(cs, round)
			rl.SiteFeatures[rec.Obs.Site] = rec.Obs.Features
			cl := l.Cases[cs]
			cl.Invocations += rec.Obs.Invocations
			cl.PagesVisited += int64(rec.Obs.Pages)
			l.Measured[rec.Obs.Site] = true
		case SpillFailure:
			failed[rec.Site] = true
		case SpillSiteEnd:
			// A scheduling marker, not measurement data: the log
			// gains nothing by retiring sites early.
		}
	}
	for site, f := range failed {
		if f {
			l.Measured[site] = false
		}
	}
	return l, nil
}

// ReadSpills reassembles one or more spill streams into a single
// measure.Log, exactly as if every observation had been recorded into one
// in-memory log: per-case rounds grow to the highest round observed, and a
// site is measured when it produced at least one observation and no visit
// of it failed. Every stream must describe the same corpus and site list.
func ReadSpills(readers ...io.Reader) (*measure.Log, error) {
	s, err := OpenSpills(readers...)
	if err != nil {
		return nil, err
	}
	return readIntoLog(s)
}

// ReadSpillFiles reassembles the named spill files into one log.
func ReadSpillFiles(paths ...string) (*measure.Log, error) {
	s, err := OpenSpillFiles(paths...)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return readIntoLog(s)
}

// spillCodec adapts a single spill stream to the Codec Decode side so Read
// and Detect handle spill files transparently. Spill files are produced by
// the streaming Writer, never by Encode.
type spillCodec struct{}

func (spillCodec) Name() string { return "spill" }

func (spillCodec) Encode(io.Writer, *measure.Log) error {
	return fmt.Errorf("logstore: spill files are written by the streaming Writer, not a codec")
}

func (spillCodec) Decode(r io.Reader) (*measure.Log, error) {
	return ReadSpills(r)
}
