package logstore

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/measure"
)

// TestBitsetRunEncoding round-trips randomized bitsets through the run
// encoder at several densities and sizes, including word-boundary shapes.
func TestBitsetRunEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct {
		n       int
		density float64
	}{
		{1, 1}, {63, 0.5}, {64, 0.5}, {65, 0.5}, {128, 0},
		{1392, 0.04}, {1392, 0.5}, {1392, 0.97}, {1392, 1},
		{200, 0.01}, {10_000, 0.001},
	}
	for _, s := range shapes {
		for trial := 0; trial < 20; trial++ {
			b := measure.NewBitset(s.n)
			for i := 0; i < s.n; i++ {
				if rng.Float64() < s.density {
					b.Set(i)
				}
			}
			var buf bytes.Buffer
			w := newBinWriter(&buf)
			w.bitset(b, s.n)
			if err := w.flush(); err != nil {
				t.Fatal(err)
			}
			got, err := newBinReader(bytes.NewReader(buf.Bytes())).bitset(s.n)
			if err != nil {
				t.Fatalf("n=%d density=%v: decode: %v", s.n, s.density, err)
			}
			if !reflect.DeepEqual(got, b) {
				t.Fatalf("n=%d density=%v: bitset round trip mismatch", s.n, s.density)
			}
		}
	}
}

// TestBitsetRunsMatchesNaive pins the word-skipping run iterator against a
// bit-by-bit reference.
func TestBitsetRunsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		b := measure.NewBitset(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.3 {
				b.Set(i)
			}
		}
		var naive [][2]int
		for i := 0; i < n; {
			if !b.Get(i) {
				i++
				continue
			}
			start := i
			for i < n && b.Get(i) {
				i++
			}
			naive = append(naive, [2]int{start, i - start})
		}
		var fast [][2]int
		bitsetRuns(b, n, func(start, run int) { fast = append(fast, [2]int{start, run}) })
		if !reflect.DeepEqual(naive, fast) {
			t.Fatalf("n=%d: runs mismatch:\nnaive %v\nfast  %v", n, naive, fast)
		}
	}
}
