package logstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/measure"
)

// resumeDomains builds a small site list for resume tests.
func resumeDomains(n int) []string {
	d := make([]string, n)
	for i := range d {
		d[i] = "site-" + string(rune('a'+i)) + ".example"
	}
	return d
}

// buildResumeStream writes one spill stream of numSites sites (two
// observations and an end marker each; site 1 also fails) into a
// buffer, flushing after every record, and returns the stream bytes
// plus the byte offset just past each site's end marker in commit
// order. Offsets let truncation tests compute the exact expected
// committed count for any prefix length.
func buildResumeStream(t *testing.T, numFeatures, numSites int) (data []byte, endOffsets []int) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, numFeatures, resumeDomains(numSites))
	if err != nil {
		t.Fatal(err)
	}
	for site := 0; site < numSites; site++ {
		for round := 0; round < 2; round++ {
			sf := measure.NewBitset(numFeatures)
			sf.Set((site + round) % numFeatures)
			if err := w.Append(Observation{
				Case: "default", Round: round, Site: site,
				Features: sf, Invocations: int64(10*site + round), Pages: 1 + round,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if site == 1 {
			if err := w.Fail(site); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.EndSite(site); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		endOffsets = append(endOffsets, buf.Len())
	}
	return buf.Bytes(), endOffsets
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScanCommittedEveryByteOffset(t *testing.T) {
	const nf, sites = 16, 4
	data, ends := buildResumeStream(t, nf, sites)
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-000.spill")
	for cut := 0; cut <= len(data); cut++ {
		writeFile(t, path, data[:cut])
		res, err := ScanCommittedFiles(nf, resumeDomains(sites), path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		for _, off := range ends {
			if off <= cut {
				want++
			}
		}
		if got := len(res.Sites()); got != want {
			t.Fatalf("cut %d: committed %d sites, want %d", cut, got, want)
		}
	}
}

func TestScanCommittedIgnoresUncommittedInterleaved(t *testing.T) {
	// Records of a never-ended site interleave before a committed site's
	// end marker; the scan must keep the committed site and drop the
	// open one, or resume would double-count it after a re-crawl.
	const nf = 8
	domains := resumeDomains(3)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, nf, domains)
	if err != nil {
		t.Fatal(err)
	}
	sf := measure.NewBitset(nf)
	sf.Set(1)
	obs := func(site int) Observation {
		return Observation{Case: "default", Site: site, Features: sf, Invocations: 5, Pages: 1}
	}
	if err := w.Append(obs(2)); err != nil { // open site, never ended
		t.Fatal(err)
	}
	if err := w.Append(obs(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.EndSite(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "a.spill")
	writeFile(t, path, buf.Bytes())
	res, err := ScanCommittedFiles(nf, domains, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sites(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("committed sites = %v, want [0]", got)
	}
	if res.Has(2) {
		t.Fatal("open site 2 reported committed")
	}
}

func TestScanCommittedSkipsTornHeaderFile(t *testing.T) {
	const nf, sites = 16, 4
	data, _ := buildResumeStream(t, nf, sites)
	dir := t.TempDir()
	good := filepath.Join(dir, "a.spill")
	torn := filepath.Join(dir, "b.spill")
	writeFile(t, good, data)
	writeFile(t, torn, data[:3]) // mid-magic: crash during header write
	res, err := ScanCommittedFiles(nf, resumeDomains(sites), good, torn)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Sites()); got != sites {
		t.Fatalf("committed %d sites, want %d", got, sites)
	}
}

func TestScanCommittedRejectsForeignStudy(t *testing.T) {
	const nf = 16
	data, _ := buildResumeStream(t, nf, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, "a.spill")
	writeFile(t, path, data)
	_, err := ScanCommittedFiles(nf, resumeDomains(5), path)
	if err == nil || !strings.Contains(err.Error(), "different study") {
		t.Fatalf("err = %v, want a different-study rejection", err)
	}
}

func TestScanCommittedFirstFileWinsOnDuplicate(t *testing.T) {
	const nf = 8
	domains := resumeDomains(2)
	build := func(inv int64) []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, nf, domains)
		sf := measure.NewBitset(nf)
		sf.Set(0)
		w.Append(Observation{Case: "default", Site: 0, Features: sf, Invocations: inv, Pages: 1})
		w.EndSite(0)
		w.Flush()
		return buf.Bytes()
	}
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.spill"), filepath.Join(dir, "b.spill")
	writeFile(t, a, build(11))
	writeFile(t, b, build(99))
	res, err := ScanCommittedFiles(nf, domains, a, b)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w, err := NewWriter(&out, nf, domains)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.AppendSite(w, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	l, err := ReadSpills(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Cases["default"].Invocations; got != 11 {
		t.Fatalf("duplicate site folded %d invocations, want first file's 11", got)
	}
}

func TestCompactSpillDirRoundTrip(t *testing.T) {
	const nf, sites = 16, 4
	data, ends := buildResumeStream(t, nf, sites)
	domains := resumeDomains(sites)
	dir := t.TempDir()
	// A complete shard, a torn shard (last site's end marker lost), and
	// a crash-era .partial file that duplicates the torn shard.
	writeFile(t, filepath.Join(dir, "shard-000.spill"), data)
	torn := data[:ends[len(ends)-2]+3]
	writeFile(t, filepath.Join(dir, "shard-001.spill.partial"), torn)

	c, err := CompactSpillDir(dir, nf, domains)
	if err != nil {
		t.Fatal(err)
	}
	if c.Path != filepath.Join(dir, CommittedName) {
		t.Fatalf("compaction path = %q", c.Path)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(c.Committed, want) {
		t.Fatalf("committed = %v, want %v", c.Committed, want)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(names) != 1 || names[0] != c.Path {
		t.Fatalf("directory after compaction = %v, want only %s", names, CommittedName)
	}
	// The compacted stream replays to the same log as the full shard.
	want, err := ReadSpills(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpillFiles(c.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compacted stream does not replay to the original log")
	}

	// Compacting again (as a resumed resume would) is a fixpoint.
	c2, err := CompactSpillDir(dir, nf, domains)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c2.Committed, c.Committed) || c2.Path != c.Path {
		t.Fatalf("re-compaction changed the result: %+v vs %+v", c2, c)
	}
}

func TestCompactSpillDirEmpty(t *testing.T) {
	dir := t.TempDir()
	c, err := CompactSpillDir(dir, 16, resumeDomains(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Path != "" || len(c.Committed) != 0 {
		t.Fatalf("empty dir compaction = %+v", c)
	}
}

func TestCompactSpillDirNothingCommitted(t *testing.T) {
	const nf = 16
	data, ends := buildResumeStream(t, nf, 2)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "shard-000.spill.partial"), data[:ends[0]-2])
	c, err := CompactSpillDir(dir, nf, resumeDomains(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Path != "" || len(c.Committed) != 0 {
		t.Fatalf("compaction of an all-torn dir = %+v", c)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(names) != 0 {
		t.Fatalf("torn partials not cleaned up: %v", names)
	}
}

func TestCreateAtomicPublishesOnClose(t *testing.T) {
	const nf = 8
	domains := resumeDomains(2)
	dir := t.TempDir()
	path := filepath.Join(dir, "out.spill")
	w, err := CreateAtomic(path, nf, domains)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("final name exists before Close")
	}
	if _, err := os.Stat(path + ".partial"); err != nil {
		t.Fatalf("partial file missing during write: %v", err)
	}
	sf := measure.NewBitset(nf)
	sf.Set(3)
	if err := w.Append(Observation{Case: "default", Site: 0, Features: sf, Invocations: 1, Pages: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.EndSite(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".partial"); !os.IsNotExist(err) {
		t.Fatal("partial file survives Close")
	}
	l, err := ReadSpillFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Measured[0] {
		t.Fatal("published stream lost its observation")
	}
}

func TestCreateAtomicDiscardKeepsPartial(t *testing.T) {
	const nf = 8
	domains := resumeDomains(2)
	dir := t.TempDir()
	path := filepath.Join(dir, "out.spill")
	w, err := CreateAtomic(path, nf, domains)
	if err != nil {
		t.Fatal(err)
	}
	sf := measure.NewBitset(nf)
	sf.Set(1)
	if err := w.Append(Observation{Case: "default", Site: 1, Features: sf, Invocations: 2, Pages: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.EndSite(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Discard(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Discard published the final name")
	}
	// The flushed partial still yields its committed site on resume.
	res, err := ScanCommittedFiles(nf, domains, path+".partial")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Has(1) {
		t.Fatal("committed site lost from discarded partial")
	}
}

// FuzzScanCommitted drives the valid-prefix invariant from arbitrary
// truncation points and stream shapes: for any prefix of a valid spill
// stream, the committed-site count equals exactly the number of end
// markers whose bytes fit the prefix.
func FuzzScanCommitted(f *testing.F) {
	f.Add(uint8(3), uint32(40))
	f.Add(uint8(1), uint32(0))
	f.Add(uint8(6), uint32(1<<20))
	f.Fuzz(func(t *testing.T, sitesRaw uint8, cutRaw uint32) {
		sites := 1 + int(sitesRaw)%8
		const nf = 16
		data, ends := buildResumeStream(t, nf, sites)
		cut := int(cutRaw) % (len(data) + 1)
		dir := t.TempDir()
		path := filepath.Join(dir, "f.spill")
		writeFile(t, path, data[:cut])
		res, err := ScanCommittedFiles(nf, resumeDomains(sites), path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		for _, off := range ends {
			if off <= cut {
				want++
			}
		}
		if got := len(res.Sites()); got != want {
			t.Fatalf("cut %d of %d: committed %d, want %d", cut, len(data), got, want)
		}
	})
}
