package logstore

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame is the length-prefixed message envelope of the distributed shard
// protocol (internal/dist). On the wire a frame is:
//
//	[1 byte]  frame type (opaque to this package)
//	[uvarint] payload length
//	[n bytes] payload
//
// — the same varint primitives every binary logstore format uses, so a
// frame's payload can itself be a slice of a spill stream. The zero-copy
// contract: ReadFrame returns a freshly allocated payload the caller owns.
type Frame struct {
	Type    byte
	Payload []byte
}

// WriteFrame writes one frame. The write is a single Write call on w, so a
// caller serializing frames from several goroutines only needs to
// mutex-protect the WriteFrame call itself, not the underlying connection's
// byte stream.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	buf := make([]byte, 0, 1+n+len(payload))
	buf = append(buf, hdr[:1+n]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// FrameReader is the stream a frame decodes from: a buffered reader
// (bufio.Reader satisfies it) so the varint length can be read byte by byte
// and the payload in one ReadFull.
type FrameReader interface {
	io.Reader
	io.ByteReader
}

// ReadFrame reads one frame, rejecting payloads larger than maxPayload so a
// corrupt or hostile peer can never make the reader allocate unboundedly.
// It returns io.EOF only when the stream ends cleanly on a frame boundary;
// a stream that dies mid-frame returns io.ErrUnexpectedEOF (wrapped).
func ReadFrame(r FrameReader, maxPayload int) (Frame, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return Frame{}, err // io.EOF on a clean boundary
	}
	length, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("logstore: reading frame length: %w", err)
	}
	if length > uint64(maxPayload) {
		return Frame{}, fmt.Errorf("logstore: frame payload %d exceeds limit %d", length, maxPayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("logstore: reading frame payload: %w", err)
	}
	return Frame{Type: typ, Payload: payload}, nil
}
