package logstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// CommittedName is the file a spill-directory compaction writes: one
// clean stream holding every site that was durably committed before a
// crash. Resume replays it and crawls only the remaining sites.
const CommittedName = "committed.spill"

// ScanResult is the durable portion of one or more (possibly torn)
// spill files: every site whose end marker survived in a valid stream
// prefix, with the records that preceded it.
type ScanResult struct {
	numFeatures int
	domains     []string
	sites       []int
	records     map[int][]SpillRecord
	scanned     []string
}

// Sites returns the committed site indices in ascending order.
func (r *ScanResult) Sites() []int {
	return append([]int(nil), r.sites...)
}

// Has reports whether site was durably committed.
func (r *ScanResult) Has(site int) bool {
	_, ok := r.records[site]
	return ok
}

// AppendSite re-appends every record of a committed site to w,
// finishing with the site's end marker. It is a no-op for sites the
// scan did not commit.
func (r *ScanResult) AppendSite(w *Writer, site int) error {
	recs, ok := r.records[site]
	if !ok {
		return nil
	}
	for _, rec := range recs {
		var err error
		switch rec.Kind {
		case SpillObservation:
			err = w.Append(rec.Obs)
		case SpillFailure:
			err = w.Fail(rec.Site)
		}
		if err != nil {
			return err
		}
	}
	return w.EndSite(site)
}

// ScanCommittedFiles scans the valid prefix of each named spill file
// and collects the records of every committed site: a site counts as
// committed only when its SpillSiteEnd marker decodes before the first
// torn or corrupt byte of its file. Records past the last marker, or
// of sites whose marker never made it to disk, are treated as
// uncommitted work to redo.
//
// A file whose header cannot be read contributes nothing (a crash
// during header write commits no sites). A file with a valid header
// describing a different study is an error — mixing studies in one
// spill directory loses data silently otherwise. When the same site is
// committed by several files (a crash mid-compaction leaves overlap),
// the earliest file in the given order wins.
func ScanCommittedFiles(numFeatures int, domains []string, paths ...string) (*ScanResult, error) {
	expect := &spillHeader{numFeatures: numFeatures, domains: domains}
	res := &ScanResult{
		numFeatures: numFeatures,
		domains:     append([]string(nil), domains...),
		records:     make(map[int][]SpillRecord),
	}
	for _, path := range paths {
		if err := scanOneCommitted(path, expect, res); err != nil {
			return nil, err
		}
	}
	sort.Ints(res.sites)
	return res, nil
}

func scanOneCommitted(path string, expect *spillHeader, res *ScanResult) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := OpenSpills(f)
	if err != nil {
		// Torn or unreadable header: the crash predates the first
		// record, so the file holds no committed work.
		res.scanned = append(res.scanned, path)
		return nil
	}
	if err := s.header.sameStudy(expect); err != nil {
		return fmt.Errorf("logstore: spill file %s %w", path, err)
	}
	res.scanned = append(res.scanned, path)
	pending := make(map[int][]SpillRecord)
	for {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: everything from here on is uncommitted.
			break
		}
		switch rec.Kind {
		case SpillObservation, SpillFailure:
			pending[rec.Site] = append(pending[rec.Site], rec)
		case SpillSiteEnd:
			if _, dup := res.records[rec.Site]; !dup {
				res.records[rec.Site] = pending[rec.Site]
				res.sites = append(res.sites, rec.Site)
			}
			delete(pending, rec.Site)
		}
	}
	return nil
}

// Compaction is the outcome of compacting a spill directory.
type Compaction struct {
	// Path names the compacted stream of committed sites; it is empty
	// when the directory held no committed work.
	Path string
	// Committed lists the durably committed site indices, ascending.
	Committed []int
}

// CompactSpillDir folds every spill file in dir — including .partial
// files a crash left behind — into one clean CommittedName stream of
// the durably committed sites, then removes the inputs. The write is
// atomic (tmp file + rename + directory fsync), so a crash during
// compaction never loses committed work: the originals survive until
// the compacted stream is durable, and the duplicate-site scan makes a
// re-run converge. The expected study (numFeatures, domains) guards
// against resuming into the wrong directory.
func CompactSpillDir(dir string, numFeatures int, domains []string) (*Compaction, error) {
	whole, err := filepath.Glob(filepath.Join(dir, "*.spill"))
	if err != nil {
		return nil, err
	}
	partial, err := filepath.Glob(filepath.Join(dir, "*.spill.partial"))
	if err != nil {
		return nil, err
	}
	paths := append(whole, partial...)
	sort.Strings(paths)
	if len(paths) == 0 {
		return &Compaction{}, nil
	}
	res, err := ScanCommittedFiles(numFeatures, domains, paths...)
	if err != nil {
		return nil, err
	}
	out := filepath.Join(dir, CommittedName)
	if len(res.sites) > 0 {
		w, err := CreateAtomic(out, numFeatures, domains)
		if err != nil {
			return nil, err
		}
		for _, site := range res.sites {
			if err := res.AppendSite(w, site); err != nil {
				w.Discard()
				return nil, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	for _, p := range res.scanned {
		if p == out {
			continue
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	c := &Compaction{Committed: res.Sites()}
	if len(res.sites) > 0 {
		c.Path = out
	}
	return c, nil
}

// syncDir fsyncs a directory so a just-renamed or just-removed entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
