package logstore

import (
	"bytes"
	"io"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/measure"
)

// logObservations flattens a log into per-visit observations, attributing
// each cell's invocations evenly (the tests only need totals to match).
func logToObservations(l *measure.Log) []Observation {
	var obs []Observation
	for cs, cl := range l.Cases {
		cells := 0
		for _, rl := range cl.Rounds {
			for _, sf := range rl.SiteFeatures {
				if sf != nil {
					cells++
				}
			}
		}
		seen := 0
		for round, rl := range cl.Rounds {
			for site, sf := range rl.SiteFeatures {
				if sf == nil {
					continue
				}
				seen++
				inv := cl.Invocations / int64(cells)
				if seen == cells {
					inv = cl.Invocations - inv*int64(cells-1)
				}
				pages := cl.PagesVisited / int64(cells)
				if seen == cells {
					pages = cl.PagesVisited - pages*int64(cells-1)
				}
				obs = append(obs, Observation{
					Case: cs, Round: round, Site: site,
					Features: sf, Invocations: inv, Pages: int(pages),
				})
			}
		}
	}
	return obs
}

func TestSpillRoundTrip(t *testing.T) {
	l := buildLog()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, l.NumFeatures, l.Domains)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range logToObservations(l) {
		if err := w.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	// Site 2 was never visited in the fixture; fail it to exercise the
	// failure path (measured must stay false).
	if err := w.Fail(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadSpills(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("spill replay not deep-equal to the source log")
	}

	// Spill files are self-identifying: Read handles them transparently.
	got2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, l) {
		t.Error("auto-detected spill read not deep-equal")
	}
}

// TestSpillFailureUnmeasures pins the failed-site semantics: a site with
// observations and a later failed visit is unmeasurable, like the
// sequential crawler's bookkeeping.
func TestSpillFailureUnmeasures(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 10, []string{"x.example"})
	if err != nil {
		t.Fatal(err)
	}
	sf := measure.NewBitset(10)
	sf.Set(3)
	if err := w.Append(Observation{Case: measure.CaseDefault, Site: 0, Features: sf, Invocations: 1, Pages: 13}); err != nil {
		t.Fatal(err)
	}
	if err := w.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := ReadSpills(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Measured[0] {
		t.Error("failed site reported measured")
	}
	if u := l.SiteUnion(measure.CaseDefault, 0); u == nil || !u.Get(3) {
		t.Error("observation before the failure was lost")
	}
}

// TestSpillMergeAcrossFiles splits a log's observations over three spill
// files (as three pipeline shards would) and requires the merged log to be
// deep-equal to the source.
func TestSpillMergeAcrossFiles(t *testing.T) {
	l := denseLog()
	dir := t.TempDir()
	obs := logToObservations(l)
	paths := []string{
		filepath.Join(dir, "shard-0.spill"),
		filepath.Join(dir, "shard-1.spill"),
		filepath.Join(dir, "shard-2.spill"),
	}
	writers := make([]*Writer, len(paths))
	for i, p := range paths {
		w, err := Create(p, l.NumFeatures, l.Domains)
		if err != nil {
			t.Fatal(err)
		}
		writers[i] = w
	}
	for i, o := range obs {
		if err := writers[i%len(writers)].Append(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadSpillFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Error("multi-file spill merge not deep-equal to the source log")
	}
}

func TestSpillHeaderMismatchRejected(t *testing.T) {
	spill := func(numFeatures int, domains ...string) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, numFeatures, domains)
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		return buf.Bytes()
	}
	a := spill(10, "x.example")
	if _, err := ReadSpills(bytes.NewReader(a), bytes.NewReader(spill(20, "x.example"))); err == nil {
		t.Error("merge across corpus sizes should fail")
	}
	// Same shape, different site list: a different study (e.g. another
	// generation seed) whose visits must never merge.
	if _, err := ReadSpills(bytes.NewReader(a), bytes.NewReader(spill(10, "y.example"))); err == nil {
		t.Error("merge across different domain lists should fail")
	}
}

// TestSpillReplayBoundsCells: a tiny hostile spill declaring a huge round
// number must be rejected, not turned into a multi-gigabyte EnsureRound
// allocation.
func TestSpillReplayBoundsCells(t *testing.T) {
	domains := make([]string, 10_000)
	for i := range domains {
		domains[i] = "s.example"
	}
	var buf bytes.Buffer
	w := newBinWriter(&buf)
	w.bytes([]byte(spillMagic))
	w.uvarint(uint64(100))
	w.uvarint(uint64(len(domains)))
	for _, d := range domains {
		w.str(d)
	}
	w.bytes([]byte{byte(SpillObservation)})
	w.str(string(measure.CaseDefault))
	w.uvarint(uint64(maxRounds - 1)) // round bomb: 16k rounds × 10k sites
	w.uvarint(0)                     // site
	w.uvarint(0)                     // invocations
	w.uvarint(0)                     // pages
	w.uvarint(0)                     // empty bitset
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpills(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("round-bomb spill accepted")
	}
}

func TestSpillWriterConcurrent(t *testing.T) {
	var buf syncBuffer
	w, err := NewWriter(&buf, 64, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sf := measure.NewBitset(64)
				sf.Set((g*50 + i) % 64)
				w.Append(Observation{
					Case: measure.CaseDefault, Round: g, Site: i % 4,
					Features: sf, Invocations: 1, Pages: 1,
				})
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := ReadSpills(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrently written spill unreadable: %v", err)
	}
	cl := l.Cases[measure.CaseDefault]
	if cl == nil || cl.Invocations != 400 || len(cl.Rounds) != 8 {
		t.Fatalf("concurrent spill lost records: %+v", cl)
	}
}

func TestSpillRejectsInvalidRecords(t *testing.T) {
	w, err := NewWriter(&bytes.Buffer{}, 10, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Observation{Site: 5}); err == nil {
		t.Error("out-of-range site accepted")
	}
	if err := w.Append(Observation{Site: 0, Invocations: -1}); err == nil {
		t.Error("negative invocations accepted")
	}
	if err := w.Fail(-1); err == nil {
		t.Error("negative failure site accepted")
	}
	if _, err := ReadSpills(); err == nil {
		t.Error("ReadSpills() with no streams should fail")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the concurrency test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Bytes()
}

// TestSpillStreamTruncation sweeps every possible truncation point of a
// spill stream and pins the reader's contract at each: a stream cut inside
// the header or inside a record must surface an error (never a panic, never
// a silently short read), while a cut exactly on a record boundary reads as
// a clean, shorter stream — the property that keeps a crashed shard's spill
// usable up to its last durable record.
func TestSpillStreamTruncation(t *testing.T) {
	domains := []string{"a.example", "b.example", "c.example"}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 64, domains)
	if err != nil {
		t.Fatal(err)
	}
	// boundaries[i] is the offset at which exactly i records are durable.
	var boundaries []int
	mark := func() {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, buf.Len())
	}
	mark() // header only: a valid, empty stream
	sf := measure.NewBitset(64)
	sf.Set(3)
	sf.Set(40)
	if err := w.Append(Observation{Case: measure.CaseDefault, Round: 0, Site: 0, Features: sf, Invocations: 5, Pages: 1}); err != nil {
		t.Fatal(err)
	}
	mark()
	if err := w.Fail(1); err != nil {
		t.Fatal(err)
	}
	mark()
	if err := w.EndSite(0); err != nil {
		t.Fatal(err)
	}
	mark()
	sf2 := measure.NewBitset(64)
	sf2.Set(0)
	if err := w.Append(Observation{Case: measure.CaseBlocking, Round: 1, Site: 2, Features: sf2, Invocations: 2, Pages: 1}); err != nil {
		t.Fatal(err)
	}
	mark()

	headerLen := boundaries[0]
	records := map[int]int{} // boundary offset → records before it
	for i, off := range boundaries {
		records[off] = i
	}

	drain := func(s *SpillStream) (int, error) {
		n := 0
		for {
			_, err := s.Next()
			if err == io.EOF {
				return n, nil
			}
			if err != nil {
				return n, err
			}
			n++
		}
	}

	total := buf.Len()
	for off := 0; off <= total; off++ {
		s, err := OpenSpills(bytes.NewReader(buf.Bytes()[:off]))
		if off < headerLen {
			if err == nil {
				t.Errorf("offset %d: truncated header opened cleanly", off)
			}
			continue
		}
		if err != nil {
			t.Fatalf("offset %d: header unexpectedly unreadable: %v", off, err)
		}
		n, derr := drain(s)
		if want, boundary := records[off]; boundary {
			if derr != nil {
				t.Errorf("offset %d (boundary): unexpected error after %d records: %v", off, n, derr)
			} else if n != want {
				t.Errorf("offset %d (boundary): read %d records, want %d", off, n, want)
			}
		} else if derr == nil {
			t.Errorf("offset %d (mid-record): drained %d records with no error; truncation went undetected", off, n)
		}
	}
}
