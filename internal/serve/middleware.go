package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// This file is the hardening middleware: the request-path wrappers that
// stand between untrusted sockets and the render path. Each wrapper is a
// plain http.Handler decorator; New composes them (outermost first) as
//
//	metrics → method guard → rate limit → request deadline → mux
//
// so even a 405 or a 429 is observed by /metrics, and nothing past the
// limiter runs for a dropped request.

// methodGuard rejects every method except GET and HEAD across all
// endpoints. The server is a pure read surface: there is nothing a POST
// could mean, and answering 405 (with Allow) beats each handler deciding
// for itself — /healthz and /statusz historically forgot to.
func methodGuard(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withDeadline attaches a per-request context deadline. Handlers that can
// block (the render wait in serveQuery) select against it and answer 503,
// so a slow render costs the client a bounded wait, never a hung
// connection. d <= 0 disables the deadline.
func withDeadline(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// rateLimitExempt lists paths the per-client limiter never drops:
// liveness probes and metrics scrapes are operator traffic, and starving
// them under load is exactly when they matter most.
func rateLimitExempt(path string) bool {
	return path == "/healthz" || path == "/metrics"
}

// withRateLimit applies the per-client token bucket. Dropped requests get
// 429 with a Retry-After telling the client when the next token lands.
func (s *Server) withRateLimit(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rateLimitExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if retryAfter, ok := s.limiter.allow(s.clientKey(r)); !ok {
			s.metrics.rateLimited.Add(1)
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(retryAfter)))
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// retryAfterSeconds renders a wait as the integer seconds the Retry-After
// header wants, rounding up so the advertised wait is never an
// under-promise; the minimum is 1 because Retry-After: 0 invites an
// immediate, equally doomed retry.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// clientKey derives the limiter's bucket key for a request: the canonical
// client host. By default that is the TCP peer (RemoteAddr); with
// Config.TrustForwarded — safe only behind a proxy that overwrites the
// header — the first X-Forwarded-For hop wins so all connections relayed
// by one proxy don't share a single bucket.
func (s *Server) clientKey(r *http.Request) string {
	if s.trustForwarded {
		if k := forwardedClient(r.Header.Get("X-Forwarded-For")); k != "" {
			return k
		}
	}
	return canonicalHost(r.RemoteAddr)
}

// canonicalHost reduces an address to a canonical host key: the port is
// stripped when one parses, IPv6 brackets are removed, and the result is
// trimmed and lowercased. Two connections from one host always map to one
// bucket, and no input panics — RemoteAddr is trusted shape-wise, but the
// forwarded path below feeds this attacker-controlled bytes.
func canonicalHost(addr string) string {
	addr = strings.TrimSpace(addr)
	if host, _, err := net.SplitHostPort(addr); err == nil {
		addr = host
	}
	addr = strings.TrimPrefix(addr, "[")
	addr = strings.TrimSuffix(addr, "]")
	return strings.ToLower(strings.TrimSpace(addr))
}

// forwardedClient extracts the client hop from an X-Forwarded-For value:
// the first comma-separated entry, canonicalized. Empty or all-whitespace
// values return "" so the caller falls back to RemoteAddr instead of
// pooling every spoofed-empty-header client into one bucket.
func forwardedClient(v string) string {
	first, _, _ := strings.Cut(v, ",")
	return canonicalHost(first)
}

// epochTag is the opaque entity-tag contents for an epoch: the served
// body of any URL is a pure function of (URL, epoch), so the epoch is the
// whole validator. The tag is served weak (W/) because the gzip and
// identity representations of one epoch share it.
func epochTag(epoch uint64) string {
	return fmt.Sprintf("e%d", epoch)
}

// etagHeader renders the epoch's ETag header value.
func etagHeader(epoch uint64) string {
	return `W/"` + epochTag(epoch) + `"`
}

// ifNoneMatchMatches reports whether an If-None-Match header value
// revalidates the entity tag `opaque` (the unquoted tag contents). It
// implements RFC 9110 weak comparison over the header's entity-tag list:
// W/ prefixes are ignored, `*` matches anything, and tags compare as
// exact opaque strings. Malformed input stops the scan and never matches
// — a garbage header must never produce a false 304, because a false 304
// tells a cache its stale body is current.
func ifNoneMatchMatches(header, opaque string) bool {
	s := header
	for {
		s = strings.TrimLeft(s, " \t,")
		if s == "" {
			return false
		}
		if s[0] == '*' {
			// `*` is only valid as the entire field value — not as a list
			// member, not with trailing junk. Anything else is malformed
			// and must not match.
			return strings.TrimSpace(header) == "*"
		}
		if len(s) >= 2 && (s[0] == 'W' || s[0] == 'w') && s[1] == '/' {
			s = s[2:]
		}
		if s == "" || s[0] != '"' {
			return false
		}
		end := strings.IndexByte(s[1:], '"')
		if end < 0 {
			return false
		}
		if s[1:1+end] == opaque {
			return true
		}
		s = s[end+2:]
		// Between tags only optional whitespace and a comma are legal.
		rest := strings.TrimLeft(s, " \t")
		if rest != "" && rest[0] != ',' {
			return false
		}
	}
}

// acceptsGzip reports whether the request's Accept-Encoding admits a gzip
// response: a gzip token (or *) with a nonzero q-value.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(part, ";")
		coding = strings.ToLower(strings.TrimSpace(coding))
		if coding != "gzip" && coding != "*" {
			continue
		}
		q := strings.ToLower(strings.ReplaceAll(params, " ", ""))
		if strings.HasPrefix(q, "q=0") && !strings.HasPrefix(q, "q=0.") {
			return false
		}
		if q == "q=0.0" || q == "q=0.00" || q == "q=0.000" {
			return false
		}
		return true
	}
	return false
}

// statusWriter captures the response code for the metrics middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// endpointOf maps a request path to its metrics label. Unknown paths
// collapse into "other" so an attacker scanning random URLs cannot mint
// unbounded label values.
func endpointOf(path string) string {
	switch path {
	case "/":
		return "index"
	case "/healthz", "/statusz", "/metrics", "/report":
		return strings.TrimPrefix(path, "/")
	}
	if name, ok := strings.CutPrefix(path, "/api/"); ok {
		if _, known := endpoints[name]; known {
			return name
		}
	}
	return "other"
}

// withMetrics is the outermost wrapper: it stamps every response —
// hits, misses, 304s, 405s, 429s, 503s — into the per-endpoint request
// counters and latency histograms.
func (s *Server) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.observe(endpointOf(r.URL.Path), code, time.Since(start))
	})
}
