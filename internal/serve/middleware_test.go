package serve

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestCanonicalHost pins the client-key canonicalization table: ports
// strip, IPv6 brackets drop, case and whitespace fold — so every
// connection from one host lands in one limiter bucket.
func TestCanonicalHost(t *testing.T) {
	cases := []struct{ in, want string }{
		{"192.0.2.7:51234", "192.0.2.7"},
		{"192.0.2.7:80", "192.0.2.7"},
		{"192.0.2.7", "192.0.2.7"},
		{"[2001:db8::1]:443", "2001:db8::1"},
		{"[2001:DB8::1]:443", "2001:db8::1"},
		{"2001:db8::1", "2001:db8::1"},
		{" 192.0.2.7:9 ", "192.0.2.7"},
		{"EXAMPLE.test:8080", "example.test"},
		{"", ""},
		{":", ""},
		{"[]:0", ""},
	}
	for _, tc := range cases {
		if got := canonicalHost(tc.in); got != tc.want {
			t.Errorf("canonicalHost(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestForwardedClient pins X-Forwarded-For extraction: first hop wins,
// canonicalized; empty input falls through to "".
func TestForwardedClient(t *testing.T) {
	cases := []struct{ in, want string }{
		{"203.0.113.9", "203.0.113.9"},
		{"203.0.113.9, 10.0.0.1, 10.0.0.2", "203.0.113.9"},
		{" 203.0.113.9:4711 ,10.0.0.1", "203.0.113.9"},
		{"[2001:db8::9]:123, 10.0.0.1", "2001:db8::9"},
		{"", ""},
		{"  ,10.0.0.1", ""},
	}
	for _, tc := range cases {
		if got := forwardedClient(tc.in); got != tc.want {
			t.Errorf("forwardedClient(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestIfNoneMatchTable pins the revalidation parser against the RFC 9110
// shapes plus the malformed ones that must never match.
func TestIfNoneMatchTable(t *testing.T) {
	const tag = "e42"
	cases := []struct {
		header string
		want   bool
	}{
		{`"e42"`, true},
		{`W/"e42"`, true},
		{`w/"e42"`, true},
		{`"e41", "e42"`, true},
		{`W/"e41" , W/"e42"`, true},
		{`*`, true},
		{`  *  `, true},
		{`"e41"`, false},
		{`"e420"`, false},
		{`""`, false},
		{`e42`, false},         // unquoted: malformed
		{`"e42`, false},        // unterminated
		{`W/e42`, false},       // weak prefix without quotes
		{`"e41" "e42"`, false}, // missing comma: malformed, stop
		{`*, "e42"`, false},    // * must be the whole field
		{`,*`, false},          // * as a list member: malformed
		{`,,  ,`, false},       // only separators
		{``, false},
		{`"e42",`, true},     // trailing comma is fine
		{`W/W/"e42"`, false}, // double weak prefix
	}
	for _, tc := range cases {
		if got := ifNoneMatchMatches(tc.header, tag); got != tc.want {
			t.Errorf("ifNoneMatchMatches(%q, %q) = %v, want %v", tc.header, tag, got, tc.want)
		}
	}
}

// TestLimiterSweep fills the bucket map past its cap and checks idle
// (fully refilled) clients are swept while active ones survive.
func TestLimiterSweep(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	l := newLimiter(1, 2, clock)
	for i := 0; i < limiterMaxClients; i++ {
		l.allow(fmt.Sprintf("client-%d", i))
	}
	if l.size() != limiterMaxClients {
		t.Fatalf("tracked %d clients, want %d", l.size(), limiterMaxClients)
	}
	// Everyone refills; the next new client triggers the sweep.
	now = now.Add(time.Hour)
	l.allow("fresh")
	if got := l.size(); got != 1 {
		t.Errorf("after sweep: %d clients tracked, want 1 (only the fresh one)", got)
	}
	// A still-draining client survives the sweep.
	l.allow("busy")
	l.allow("busy") // bucket now below capacity
	now = now.Add(time.Millisecond)
	l.mu.Lock()
	l.sweepLocked(now)
	l.mu.Unlock()
	if _, ok := l.clients["busy"]; !ok {
		t.Error("sweep dropped a client whose bucket had not refilled")
	}
}

// TestRetryAfterSeconds pins the header math: round up, never below 1.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Millisecond, 2},
		{2500 * time.Millisecond, 3},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// FuzzIfNoneMatch holds the no-false-304 property against arbitrary
// header bytes: a match is only ever reported when the header genuinely
// lists the current tag (in weak or strong form) or is exactly `*`. A
// false positive here would feed stale bodies to every polling cache.
func FuzzIfNoneMatch(f *testing.F) {
	f.Add(`W/"e5"`, "e5")
	f.Add(`"e5"`, "e5")
	f.Add(`"e4", "e5"`, "e5")
	f.Add(`*`, "e5")
	f.Add(`W/"e5`, "e5")
	f.Add(`""`, "")
	f.Add(`"e5"junk`, "e5")
	f.Add("\"e5\",\t W/\"e6\"", "e6")
	f.Add(`*, "e5"`, "e5")
	f.Add(strings.Repeat(`"x",`, 50)+`"e5"`, "e5")
	f.Fuzz(func(t *testing.T, header, opaque string) {
		got := ifNoneMatchMatches(header, opaque) // must never panic
		if !got {
			return
		}
		// A reported match must be justified by the raw header: either a
		// lone `*` or the exact quoted tag appearing in it.
		if strings.TrimSpace(header) == "*" {
			return
		}
		if strings.Contains(header, `"`+opaque+`"`) {
			return
		}
		t.Fatalf("false revalidation: header %q matched tag %q", header, opaque)
	})
}

// FuzzClientKey throws arbitrary bytes at the client-key path: neither
// parser may panic, both must be idempotent (a canonical key re-canonicalizes
// to itself — what makes limiter buckets collide exactly when two
// requests share a client), and keys never carry spaces or uppercase.
func FuzzClientKey(f *testing.F) {
	f.Add("192.0.2.7:51234")
	f.Add("[2001:db8::1]:443")
	f.Add("203.0.113.9, 10.0.0.1")
	f.Add("  EXAMPLE.test:80  ")
	f.Add(",,,")
	f.Add("[")
	f.Add("a]b[")
	f.Add(strings.Repeat(":", 100))
	f.Fuzz(func(t *testing.T, in string) {
		for name, fn := range map[string]func(string) string{
			"canonicalHost":   canonicalHost,
			"forwardedClient": forwardedClient,
		} {
			key := fn(in) // must never panic
			if key != strings.TrimSpace(key) || key != strings.ToLower(key) {
				t.Fatalf("%s(%q) = %q: not trimmed/lowercased", name, in, key)
			}
			if again := canonicalHost(key); again != key {
				t.Fatalf("%s(%q) = %q is not canonical: re-canonicalizes to %q", name, in, key, again)
			}
		}
	})
}
