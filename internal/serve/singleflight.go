package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// renderGate is the render-side admission control: a single-flight group
// keyed by (epoch, canonical query) so N concurrent readers of one
// uncached query coalesce onto one render, plus a semaphore capping how
// many distinct renders run at once. Before it existed, eight readers
// arriving behind one slow /report render queued on the epoch view's
// mutex and rendered the identical bytes eight times — the convoy the
// hardening suite pins to exactly one render.
//
// The epoch is part of the key, which is what keeps the gate compatible
// with the snapshots-are-prefixes invariant: every waiter that joins a
// flight asked for that flight's epoch, so the coalesced body is rendered
// from one immutable snapshot — no reader is ever handed bytes from an
// epoch other than the one it resolved.
type renderGate struct {
	sem      chan struct{}
	inflight atomic.Int64

	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress render. done closes after the result is
// cached, so a waiter that saw a cache miss and then joins a completed
// flight still observes the entry.
type flight struct {
	done  chan struct{}
	entry cacheEntry
	err   error
}

func newRenderGate(maxRenders int) *renderGate {
	if maxRenders < 1 {
		maxRenders = 1
	}
	return &renderGate{
		sem:     make(chan struct{}, maxRenders),
		flights: make(map[string]*flight),
	}
}

// flightKey scopes coalescing to one epoch of one canonical query.
func flightKey(epoch uint64, key string) string {
	return fmt.Sprintf("%d|%s", epoch, key)
}

// do returns the flight for key, spawning its render goroutine if none is
// in progress. The render runs detached from any request context: a
// waiter whose deadline expires walks away with a 503 while the render
// finishes and lands in the cache, so the work is never wasted — the
// retry the 503 invites is a cache hit.
func (g *renderGate) do(key string, render func() (cacheEntry, error)) *flight {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		return f
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		g.sem <- struct{}{}
		g.inflight.Add(1)
		f.entry, f.err = render()
		g.inflight.Add(-1)
		<-g.sem
		// Deregister before signaling: render() has already cached the
		// entry, so a request arriving after the delete hits the cache.
		g.mu.Lock()
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
	}()
	return f
}
