package serve

import (
	"net/url"
	"strings"
	"testing"

	"repro/internal/measure"
)

// TestNormalizeQuery pins the canonical-key contract: defaults fill in,
// aliases and spellings collapse, unknown parameters drop out, and
// equivalent raw queries produce identical keys.
func TestNormalizeQuery(t *testing.T) {
	cases := []struct {
		name     string
		endpoint string
		raw      string
		wantKey  string
		wantErr  bool
		check    func(t *testing.T, p queryParams)
	}{
		{
			name: "defaults", endpoint: "top-features", raw: "",
			wantKey: "top-features?case=default&n=15",
			check: func(t *testing.T, p queryParams) {
				if p.Case != measure.CaseDefault || p.N != 15 {
					t.Errorf("defaults = %+v", p)
				}
			},
		},
		{
			name: "explicit-equals-default", endpoint: "top-features", raw: "case=default&n=15",
			wantKey: "top-features?case=default&n=15",
		},
		{
			name: "case-folding-and-space", endpoint: "top-features", raw: "case=+Blocking+",
			wantKey: "top-features?case=blocking&n=15",
		},
		{
			name: "param-order-irrelevant", endpoint: "top-features", raw: "n=30&case=adblock",
			wantKey: "top-features?case=adblock&n=30",
		},
		{
			name: "unknown-params-dropped", endpoint: "top-features", raw: "utm_source=x&n=5",
			wantKey: "top-features?case=default&n=5",
		},
		{
			name: "n-clamped", endpoint: "top-features", raw: "n=100000",
			wantKey: "top-features?case=default&n=500",
			check: func(t *testing.T, p queryParams) {
				if p.N != maxRows {
					t.Errorf("N = %d, want clamp to %d", p.N, maxRows)
				}
			},
		},
		{name: "n-zero", endpoint: "top-features", raw: "n=0", wantErr: true},
		{name: "n-negative", endpoint: "top-features", raw: "n=-2", wantErr: true},
		{name: "n-garbage", endpoint: "top-features", raw: "n=ten", wantErr: true},
		{name: "bad-case", endpoint: "top-features", raw: "case=nope", wantErr: true},
		{
			name: "profile-alias-abp", endpoint: "feature-deltas", raw: "profile=AdBlockPlus",
			wantKey: "feature-deltas?n=15&profile=adblock",
			check: func(t *testing.T, p queryParams) {
				if p.Blocked != measure.CaseAdBlock {
					t.Errorf("Blocked = %v", p.Blocked)
				}
			},
		},
		{
			name: "profile-default", endpoint: "feature-deltas", raw: "",
			wantKey: "feature-deltas?n=15&profile=blocking",
		},
		{name: "bad-profile", endpoint: "feature-deltas", raw: "profile=nope", wantErr: true},
		{
			name: "standards-defaults-blocking", endpoint: "standards", raw: "",
			wantKey: "standards?case=blocking",
		},
		{name: "no-params", endpoint: "headlines", raw: "ignored=yes", wantKey: "headlines"},
		{name: "report", endpoint: "report", raw: "", wantKey: "report"},
		{name: "unknown-endpoint", endpoint: "nope", raw: "", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := url.ParseQuery(tc.raw)
			if err != nil {
				t.Fatal(err)
			}
			key, p, err := normalizeQuery(tc.endpoint, raw)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("normalizeQuery accepted %q, key %q", tc.raw, key)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if key != tc.wantKey {
				t.Errorf("key = %q, want %q", key, tc.wantKey)
			}
			if tc.check != nil {
				tc.check(t, p)
			}
		})
	}
}

// TestQueryCacheEpochs pins the single-epoch invalidation story: entries
// live until the first store at a newer epoch, stale renders never land,
// and hit/miss counters track lookups.
func TestQueryCacheEpochs(t *testing.T) {
	c := newQueryCache()
	e1 := cacheEntry{body: []byte("one"), contentType: "text/plain"}

	if _, ok := c.get(1, "k"); ok {
		t.Fatal("hit on an empty cache")
	}
	c.put(1, "k", e1)
	if got, ok := c.get(1, "k"); !ok || string(got.body) != "one" {
		t.Fatal("miss after put")
	}
	if _, ok := c.get(2, "k"); ok {
		t.Fatal("epoch-1 entry served to an epoch-2 reader")
	}

	// A newer-epoch store drops every older entry.
	c.put(2, "k2", cacheEntry{body: []byte("two")})
	if _, ok := c.get(1, "k"); ok {
		t.Fatal("stale entry survived the epoch advance")
	}
	if _, ok := c.get(2, "k2"); !ok {
		t.Fatal("fresh entry missing after the epoch advance")
	}

	// A stale render arriving late must not clobber the fresh epoch.
	c.put(1, "k", e1)
	if _, ok := c.get(2, "k"); ok {
		t.Fatal("stale render landed in a newer epoch")
	}

	st := c.stats()
	if st.Epoch != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want epoch 2 with 1 entry", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("stats counters never moved: %+v", st)
	}
}

// FuzzQueryParams throws arbitrary endpoint names and query strings at the
// normalizer: it must never panic, and any accepted query's canonical key
// must be a fixed point — normalizing the key's own query string returns
// the identical key, the property that makes cache keys canonical.
func FuzzQueryParams(f *testing.F) {
	f.Add("top-features", "case=default&n=15")
	f.Add("top-features", "n=999999&case=+GHOSTERY+")
	f.Add("feature-deltas", "profile=AdBlockPlus")
	f.Add("standards", "case=blocking&junk=1")
	f.Add("headlines", "")
	f.Add("report", "a=b&a=c")
	f.Add("nope", "x=y")
	f.Add("top-features", "n=+7+&case")
	f.Fuzz(func(t *testing.T, endpoint, rawQuery string) {
		raw, err := url.ParseQuery(rawQuery)
		if err != nil {
			return
		}
		key, _, err := normalizeQuery(endpoint, raw)
		if err != nil {
			return
		}
		ep, query, _ := strings.Cut(key, "?")
		if ep != endpoint {
			t.Fatalf("key %q does not start with its endpoint %q", key, endpoint)
		}
		reRaw, err := url.ParseQuery(query)
		if err != nil {
			t.Fatalf("canonical key %q has an unparsable query: %v", key, err)
		}
		again, _, err := normalizeQuery(endpoint, reRaw)
		if err != nil {
			t.Fatalf("canonical key %q was rejected on re-normalization: %v", key, err)
		}
		if again != key {
			t.Fatalf("normalization is not a fixed point: %q → %q", key, again)
		}
	})
}
