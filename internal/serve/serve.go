package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/standards"
	"repro/internal/stats"
)

// Config parameterizes a query server.
type Config struct {
	// Study supplies everything beyond the measurements: the corpus, the
	// standards catalog, release history, CVE database, and the report
	// renderers. Required.
	Study *core.Study
	// Agg is the resident aggregate the server reads (and, in live
	// coordinator mode, the one lease commits merge into). Required.
	Agg *stats.Aggregate
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	// RequestTimeout bounds how long one request may wait on the render
	// path; past it the client gets 503 (the render itself finishes and
	// lands in the cache). 0 disables the deadline.
	RequestTimeout time.Duration
	// Rate enables per-client rate limiting at this many requests/second
	// per client (keyed by RemoteAddr host, or the first X-Forwarded-For
	// hop under TrustForwarded). 0 disables the limiter.
	Rate float64
	// Burst is the per-client bucket capacity when Rate > 0. Values < 1
	// are raised to 1.
	Burst int
	// MaxRenders caps concurrently executing renders (distinct uncached
	// queries; identical ones already coalesce). 0 means GOMAXPROCS.
	MaxRenders int
	// Gzip compresses /report for clients that accept it; the compressed
	// bytes are built once per (epoch, query) alongside the plain ones.
	Gzip bool
	// TrustForwarded keys the rate limiter by the first X-Forwarded-For
	// hop. Enable only behind a proxy that overwrites that header —
	// trusting it from the open internet lets clients mint buckets.
	TrustForwarded bool

	// RenderHook, when non-nil, runs at the start of every executed
	// render with the endpoint name. It exists for the hardening tests:
	// counting invocations proves convoy collapse, and a sleeping hook
	// simulates a slow render.
	RenderHook func(endpoint string)
	// Now substitutes the limiter's clock in tests. nil means time.Now.
	Now func() time.Time
}

// coordStatus is the live-survey progress shown on /statusz.
type coordStatus struct {
	LeasesMerged int  `json:"leases_merged"`
	LeasesTotal  int  `json:"leases_total"`
	Done         bool `json:"done"`
}

// Server is the resident query server. It serves every analysis/report
// product over HTTP from epoch snapshots of its aggregate: readers never
// take the aggregate's locks, so queries and ingestion cannot contend.
type Server struct {
	study *core.Study
	agg   *stats.Aggregate
	cache *queryCache
	mux   *http.ServeMux
	logf  func(string, ...any)
	start time.Time

	// Hardening: the middleware-wrapped handler plus the controls it
	// threads requests through (see middleware.go).
	handler        http.Handler
	limiter        *limiter
	gate           *renderGate
	metrics        *metrics
	gzip           bool
	trustForwarded bool
	renderHook     func(string)

	// cur is the current epoch view, swapped RCU-style when the
	// aggregate's epoch advances past it.
	cur   atomic.Pointer[epochView]
	coord atomic.Pointer[coordStatus]
}

// epochView is everything derived from one snapshot epoch: the immutable
// snapshot itself plus the warm analysis over it, built once and shared by
// every query of the epoch. The analysis memoizes per-case products
// lazily, so uncached computes are serialized by mu; cached queries never
// touch it.
type epochView struct {
	snap *stats.Snapshot
	res  *core.Results
	mu   sync.Mutex
}

// New builds a query server around a study and its resident aggregate.
func New(cfg Config) (*Server, error) {
	if cfg.Study == nil || cfg.Agg == nil {
		return nil, fmt.Errorf("serve: config requires a study and an aggregate")
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("serve: negative rate %v", cfg.Rate)
	}
	maxRenders := cfg.MaxRenders
	if maxRenders <= 0 {
		maxRenders = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		study:          cfg.Study,
		agg:            cfg.Agg,
		cache:          newQueryCache(),
		mux:            http.NewServeMux(),
		logf:           cfg.Logf,
		start:          time.Now(),
		gate:           newRenderGate(maxRenders),
		metrics:        newMetrics(),
		gzip:           cfg.Gzip,
		trustForwarded: cfg.TrustForwarded,
		renderHook:     cfg.RenderHook,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	if cfg.Rate > 0 {
		s.limiter = newLimiter(cfg.Rate, cfg.Burst, cfg.Now)
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/report", s.handleReport)
	s.mux.HandleFunc("/api/top-features", s.handleTopFeatures)
	s.mux.HandleFunc("/api/feature-deltas", s.handleFeatureDeltas)
	s.mux.HandleFunc("/api/standards", s.handleStandards)
	s.mux.HandleFunc("/api/headlines", s.handleHeadlines)
	s.mux.HandleFunc("/api/complexity", s.handleComplexity)
	s.mux.HandleFunc("/api/rounds", s.handleRounds)
	// Outermost first: even 405s and 429s are metered, and nothing past
	// the limiter runs for a dropped request.
	s.handler = s.withMetrics(methodGuard(s.withRateLimit(withDeadline(cfg.RequestTimeout, s.mux))))
	return s, nil
}

// Handler returns the server's HTTP handler: the endpoint mux behind the
// hardening middleware (metrics, method guard, rate limit, deadline).
func (s *Server) Handler() http.Handler { return s.handler }

// view returns the epoch view for the aggregate's current snapshot,
// building one when the epoch advanced. Concurrent builders race on the
// CAS; losers retry and converge on the winner's view.
func (s *Server) view() *epochView {
	snap := s.agg.Snapshot()
	for {
		cur := s.cur.Load()
		if cur != nil && cur.snap.Epoch() >= snap.Epoch() {
			return cur
		}
		nv := &epochView{snap: snap, res: s.study.AggregateResults(snap)}
		if s.cur.CompareAndSwap(cur, nv) {
			return nv
		}
	}
}

// Coordinator binds a distributed-survey coordinator whose merge target is
// the server's resident aggregate: every lease a worker commits merges —
// and publishes a fresh snapshot epoch — into the tables the HTTP side is
// serving, so readers watch the survey fill in live. The caller runs
// Serve on the returned coordinator. A non-empty checkpointPath journals
// committed leases durably; a server restarted over the same file starts
// with those leases already merged — and already visible to HTTP readers —
// re-issuing only the rest (replayed commits surface in /status like live
// ones).
func (s *Server) Coordinator(addr string, leaseSites int, heartbeat time.Duration, checkpointPath string) (*dist.Coordinator, error) {
	spec, err := s.study.Spec()
	if err != nil {
		return nil, err
	}
	c, err := dist.Listen(addr, dist.CoordinatorConfig{
		Spec:             spec,
		NumSites:         len(s.study.Web.Sites),
		NumFeatures:      len(s.study.Registry.Features),
		Standards:        stats.StandardsOf(s.study.Registry),
		Cases:            s.study.Cfg.Cases,
		LeaseSites:       leaseSites,
		HeartbeatTimeout: heartbeat,
		CheckpointPath:   checkpointPath,
		Agg:              s.agg,
		OnLeaseMerged: func(merged, total int) {
			s.coord.Store(&coordStatus{LeasesMerged: merged, LeasesTotal: total, Done: merged == total})
		},
		Logf: s.logf,
	})
	if err != nil {
		return nil, err
	}
	// Leases replayed from a checkpoint merged during Listen; the status
	// must not reset them to zero.
	merged := c.Completed()
	s.coord.Store(&coordStatus{LeasesMerged: merged, LeasesTotal: c.Leases(), Done: merged == c.Leases()})
	return c, nil
}

// LoadSpills folds spill files matching the glob into a published
// aggregate sized for the study — the server's cold-start path from a
// spill-only run.
func LoadSpills(study *core.Study, glob string) (*stats.Aggregate, error) {
	paths, err := core.SpillGlob(glob)
	if err != nil {
		return nil, err
	}
	agg, err := stats.FromSpills(stats.StandardsOf(study.Registry), study.Cfg.Cases, paths...)
	if err != nil {
		return nil, err
	}
	agg.Publish()
	return agg, nil
}

// LoadLog replays a saved measurement log (any logstore format) into a
// published aggregate — the server's cold-start path from a -out file.
func LoadLog(study *core.Study, path string) (*stats.Aggregate, error) {
	log, err := logstore.ReadFile(path)
	if err != nil {
		return nil, err
	}
	agg, err := stats.FromLog(log, stats.StandardsOf(study.Registry), study.Cfg.Cases)
	if err != nil {
		return nil, err
	}
	agg.Publish()
	return agg, nil
}

// EmptyAggregate builds the published zero-state aggregate a live
// coordinator-mode server starts from.
func EmptyAggregate(study *core.Study) (*stats.Aggregate, error) {
	agg, err := stats.New(stats.Config{
		NumFeatures: len(study.Registry.Features),
		NumSites:    len(study.Web.Sites),
		Standards:   stats.StandardsOf(study.Registry),
		Cases:       study.Cfg.Cases,
	})
	if err != nil {
		return nil, err
	}
	agg.Publish()
	return agg, nil
}

// serveQuery is the shared handler skeleton: normalize the query, answer
// conditional GETs straight off the epoch (no render), hit the (epoch,
// key) cache, coalesce misses through the render gate, reply. Every
// cacheable endpoint goes through it.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, endpoint string,
	render func(v *epochView, p queryParams) ([]byte, string, error)) {
	key, p, err := normalizeQuery(endpoint, r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	v := s.view()
	epoch := v.snap.Epoch()
	// The body of any URL is a pure function of (URL, epoch), so the
	// epoch is the entire ETag: a matching If-None-Match revalidates
	// without touching the cache or the render path.
	if inm := r.Header.Get("If-None-Match"); inm != "" && ifNoneMatchMatches(inm, epochTag(epoch)) {
		s.notModified(w, epoch)
		return
	}
	if e, ok := s.cache.get(epoch, key); ok {
		s.reply(w, r, epoch, e, "hit")
		return
	}
	fl := s.gate.do(flightKey(epoch, key), func() (cacheEntry, error) {
		if s.renderHook != nil {
			s.renderHook(endpoint)
		}
		v.mu.Lock()
		body, contentType, err := render(v, p)
		v.mu.Unlock()
		if err != nil {
			return cacheEntry{}, err
		}
		e := cacheEntry{body: body, contentType: contentType}
		if s.gzip && endpoint == "report" {
			e.gzipBody = gzipBytes(body)
		}
		s.metrics.renderDone(endpoint)
		s.cache.put(epoch, key, e)
		return e, nil
	})
	select {
	case <-fl.done:
		if fl.err != nil {
			http.Error(w, fl.err.Error(), http.StatusInternalServerError)
			return
		}
		s.reply(w, r, epoch, fl.entry, "miss")
	case <-r.Context().Done():
		// The render outlives this request and lands in the cache; the
		// retry this invites will be a hit.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "render deadline exceeded", http.StatusServiceUnavailable)
	}
}

func (s *Server) reply(w http.ResponseWriter, r *http.Request, epoch uint64, e cacheEntry, cache string) {
	h := w.Header()
	h.Set("Content-Type", e.contentType)
	h.Set("X-Epoch", fmt.Sprintf("%d", epoch))
	h.Set("X-Cache", cache)
	h.Set("ETag", etagHeader(epoch))
	if e.gzipBody != nil {
		h.Set("Vary", "Accept-Encoding")
		if acceptsGzip(r) {
			h.Set("Content-Encoding", "gzip")
			w.Write(e.gzipBody)
			return
		}
	}
	w.Write(e.body)
}

// notModified answers a successful revalidation: 304, no body, the
// current validator restated.
func (s *Server) notModified(w http.ResponseWriter, epoch uint64) {
	h := w.Header()
	h.Set("ETag", etagHeader(epoch))
	h.Set("X-Epoch", fmt.Sprintf("%d", epoch))
	w.WriteHeader(http.StatusNotModified)
}

// marshal renders a JSON response body.
func marshal(v any) ([]byte, string, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, "", err
	}
	return append(b, '\n'), "application/json", nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, `survey query server
endpoints:
  /api/top-features   ?case=default|blocking|adblock|ghostery &n=15
  /api/feature-deltas ?profile=abp|ghostery|blocking &n=15
  /api/standards      ?case=blocking|adblock|ghostery
  /api/headlines
  /api/complexity
  /api/rounds
  /report             full aggregate text report (byte-identical to cmd/report)
  /healthz            liveness
  /statusz            epoch, cache, and survey progress
  /metrics            Prometheus text exposition
`)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// statuszResponse is the operator view of the server.
type statuszResponse struct {
	Epoch         uint64         `json:"epoch"`
	Sites         int            `json:"sites"`
	Features      int            `json:"features"`
	Cases         []measure.Case `json:"cases"`
	MeasuredSites int            `json:"measured_sites"`
	OpenSites     int            `json:"open_sites"`
	Invocations   int64          `json:"invocations"`
	PagesVisited  int64          `json:"pages_visited"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Cache         cacheStats     `json:"cache"`
	// RateLimited and InflightRenders mirror /metrics for operators who
	// read JSON; the histograms live only on /metrics.
	RateLimited     int64        `json:"rate_limited"`
	InflightRenders int64        `json:"inflight_renders"`
	Coordinator     *coordStatus `json:"coordinator,omitempty"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	snap := s.agg.Snapshot()
	inv, pages := snap.Totals()
	resp := statuszResponse{
		Epoch:           snap.Epoch(),
		Sites:           snap.NumSites(),
		Features:        snap.NumFeatures(),
		Cases:           snap.Cases(),
		MeasuredSites:   snap.MeasuredCount(),
		OpenSites:       snap.OpenSites(),
		Invocations:     inv,
		PagesVisited:    pages,
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Cache:           s.cache.stats(),
		RateLimited:     s.metrics.rateLimited.Load(),
		InflightRenders: s.gate.inflight.Load(),
		Coordinator:     s.coord.Load(),
	}
	body, contentType, err := marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(body)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, "report", func(v *epochView, _ queryParams) ([]byte, string, error) {
		var buf bytes.Buffer
		if err := s.study.WriteAggregateReport(&buf, v.res); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), "text/plain; charset=utf-8", nil
	})
}

// featureRow is one row of /api/top-features.
type featureRow struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	Sites    int     `json:"sites"`
	Fraction float64 `json:"fraction"`
}

type topFeaturesResponse struct {
	Epoch         uint64       `json:"epoch"`
	Case          measure.Case `json:"case"`
	MeasuredSites int          `json:"measured_sites"`
	Rows          []featureRow `json:"rows"`
}

func (s *Server) handleTopFeatures(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, "top-features", func(v *epochView, p queryParams) ([]byte, string, error) {
		resp := topFeaturesResponse{
			Epoch:         v.snap.Epoch(),
			Case:          p.Case,
			MeasuredSites: v.snap.MeasuredCount(),
			Rows:          []featureRow{},
		}
		for _, row := range v.res.Analysis.TopFeatures(p.Case, p.N) {
			resp.Rows = append(resp.Rows, featureRow{ID: row.ID, Name: row.Name, Sites: row.Sites, Fraction: row.Fraction})
		}
		return marshal(resp)
	})
}

// deltaRow is one row of /api/feature-deltas.
type deltaRow struct {
	ID           int     `json:"id"`
	Name         string  `json:"name"`
	DefaultSites int     `json:"default_sites"`
	BlockedSites int     `json:"blocked_sites"`
	Drop         int     `json:"drop"`
	DropRate     float64 `json:"drop_rate"`
}

type featureDeltasResponse struct {
	Epoch       uint64       `json:"epoch"`
	BlockedCase measure.Case `json:"blocked_case"`
	Rows        []deltaRow   `json:"rows"`
}

func (s *Server) handleFeatureDeltas(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, "feature-deltas", func(v *epochView, p queryParams) ([]byte, string, error) {
		resp := featureDeltasResponse{
			Epoch:       v.snap.Epoch(),
			BlockedCase: p.Blocked,
			Rows:        []deltaRow{},
		}
		for _, row := range v.res.Analysis.FeatureDeltas(measure.CaseDefault, p.Blocked, p.N) {
			resp.Rows = append(resp.Rows, deltaRow{
				ID: row.ID, Name: row.Name,
				DefaultSites: row.BaseSites, BlockedSites: row.BlockedSites,
				Drop: row.Drop, DropRate: row.DropRate,
			})
		}
		return marshal(resp)
	})
}

// standardRow is one row of /api/standards.
type standardRow struct {
	Abbrev    standards.Abbrev `json:"abbrev"`
	Name      string           `json:"name"`
	Features  int              `json:"features"`
	Sites     int              `json:"sites"`
	BlockRate float64          `json:"block_rate"`
}

type standardsResponse struct {
	Epoch       uint64        `json:"epoch"`
	BlockedCase measure.Case  `json:"blocked_case"`
	Rows        []standardRow `json:"rows"`
}

func (s *Server) handleStandards(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, "standards", func(v *epochView, p queryParams) ([]byte, string, error) {
		a := v.res.Analysis
		sites := a.StandardSites(measure.CaseDefault)
		rates := a.BlockRates(p.Case)
		resp := standardsResponse{Epoch: v.snap.Epoch(), BlockedCase: p.Case, Rows: []standardRow{}}
		for _, std := range standards.Catalog() {
			if sites[std.Abbrev] == 0 {
				continue
			}
			resp.Rows = append(resp.Rows, standardRow{
				Abbrev:    std.Abbrev,
				Name:      std.Name,
				Features:  std.Features,
				Sites:     sites[std.Abbrev],
				BlockRate: rates[std.Abbrev].Rate,
			})
		}
		sortStandardRows(resp.Rows)
		return marshal(resp)
	})
}

// sortStandardRows orders by popularity, ties by abbrev for determinism.
func sortStandardRows(rows []standardRow) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0; j-- {
			a, b := rows[j-1], rows[j]
			if a.Sites > b.Sites || (a.Sites == b.Sites && a.Abbrev <= b.Abbrev) {
				break
			}
			rows[j-1], rows[j] = b, a
		}
	}
}

type headlinesResponse struct {
	Epoch                 uint64  `json:"epoch"`
	Features              int     `json:"features"`
	NeverUsedDefault      int     `json:"never_used_default"`
	UnderOnePctDefault    int     `json:"under_one_pct_default"`
	NeverUsedBlocking     int     `json:"never_used_blocking"`
	UnderOnePctBlocking   int     `json:"under_one_pct_blocking"`
	StandardsObserved     int     `json:"standards_observed_default"`
	StandardsObservedBlk  int     `json:"standards_observed_blocking"`
	StandardsTotal        int     `json:"standards_total"`
	MeasuredSites         int     `json:"measured_sites"`
	CVEsMappedToStandards int     `json:"cves_mapped_to_standards"`
	Invocations           int64   `json:"invocations"`
	PagesVisited          int64   `json:"pages_visited"`
	InteractionDays       float64 `json:"interaction_days"`
}

func (s *Server) handleHeadlines(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, "headlines", func(v *epochView, _ queryParams) ([]byte, string, error) {
		a := v.res.Analysis
		def := a.Bands(measure.CaseDefault)
		blk := a.Bands(measure.CaseBlocking)
		inv, pages := v.snap.Totals()
		return marshal(headlinesResponse{
			Epoch:                 v.snap.Epoch(),
			Features:              def.Total,
			NeverUsedDefault:      def.NeverUsed,
			UnderOnePctDefault:    def.UnderOnePct,
			NeverUsedBlocking:     blk.NeverUsed,
			UnderOnePctBlocking:   blk.UnderOnePct,
			StandardsObserved:     a.UsedStandards(measure.CaseDefault),
			StandardsObservedBlk:  a.UsedStandards(measure.CaseBlocking),
			StandardsTotal:        standards.Count(),
			MeasuredSites:         v.snap.MeasuredCount(),
			CVEsMappedToStandards: len(s.study.CVEs.Mapped()),
			Invocations:           inv,
			PagesVisited:          pages,
			InteractionDays:       v.res.Stats.InteractionSeconds / 86400,
		})
	})
}

type complexityResponse struct {
	Epoch uint64 `json:"epoch"`
	// Series is standards-per-measured-site, ascending.
	Series []int `json:"series"`
}

func (s *Server) handleComplexity(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, "complexity", func(v *epochView, _ queryParams) ([]byte, string, error) {
		series := v.res.Analysis.Complexity()
		if series == nil {
			series = []int{}
		}
		return marshal(complexityResponse{Epoch: v.snap.Epoch(), Series: series})
	})
}

type roundsResponse struct {
	Epoch uint64 `json:"epoch"`
	// AvgNewStandards[r] is Table 3's series: the average number of
	// standards first observed in round r across measured sites.
	AvgNewStandards []float64 `json:"avg_new_standards"`
}

func (s *Server) handleRounds(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, "rounds", func(v *epochView, _ queryParams) ([]byte, string, error) {
		series := v.res.Analysis.NewStandardsPerRound()
		if series == nil {
			series = []float64{}
		}
		return marshal(roundsResponse{Epoch: v.snap.Epoch(), AvgNewStandards: series})
	})
}
