package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the server's stdlib-only Prometheus registry: per-endpoint
// request counters (by status code) and latency histograms, render
// counts, and the rate-limit drop counter. Gauges that already live
// elsewhere — the epoch, cache hit/miss, in-flight renders — are read at
// scrape time rather than duplicated here.
type metrics struct {
	rateLimited atomic.Int64

	mu       sync.Mutex
	requests map[string]map[int]int64 // endpoint → status code → count
	hist     map[string]*histogram    // endpoint → latency histogram
	renders  map[string]int64         // endpoint → renders actually executed
}

// latencyBuckets are the histogram upper bounds in seconds, chosen around
// the measured read path: cached hits sit well under 1ms, uncached
// renders in the hundreds of microseconds to tens of milliseconds.
var latencyBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5}

type histogram struct {
	counts []int64 // len(latencyBuckets)+1; last bucket is +Inf
	sum    float64
	total  int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]int64),
		hist:     make(map[string]*histogram),
		renders:  make(map[string]int64),
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	h := m.hist[endpoint]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets)+1)}
		m.hist[endpoint] = h
	}
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.counts[i]++
	h.sum += secs
	h.total++
}

// renderDone records one executed (non-coalesced, non-cached) render.
func (m *metrics) renderDone(endpoint string) {
	m.mu.Lock()
	m.renders[endpoint]++
	m.mu.Unlock()
}

// handleMetrics serves the Prometheus text exposition. Families and label
// sets are emitted in sorted order so consecutive scrapes of an idle
// server are byte-identical.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	cs := s.cache.stats()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP serve_epoch Snapshot epoch currently served (0 until first publication).\n")
	fmt.Fprintf(w, "# TYPE serve_epoch gauge\n")
	fmt.Fprintf(w, "serve_epoch %d\n", s.agg.Epoch())

	fmt.Fprintf(w, "# HELP serve_inflight_renders Renders executing right now (bounded by max-renders).\n")
	fmt.Fprintf(w, "# TYPE serve_inflight_renders gauge\n")
	fmt.Fprintf(w, "serve_inflight_renders %d\n", s.gate.inflight.Load())

	fmt.Fprintf(w, "# HELP serve_cache_hits_total Query-cache hits.\n")
	fmt.Fprintf(w, "# TYPE serve_cache_hits_total counter\n")
	fmt.Fprintf(w, "serve_cache_hits_total %d\n", cs.Hits)

	fmt.Fprintf(w, "# HELP serve_cache_misses_total Query-cache misses.\n")
	fmt.Fprintf(w, "# TYPE serve_cache_misses_total counter\n")
	fmt.Fprintf(w, "serve_cache_misses_total %d\n", cs.Misses)

	fmt.Fprintf(w, "# HELP serve_cache_entries Cached responses for the current epoch.\n")
	fmt.Fprintf(w, "# TYPE serve_cache_entries gauge\n")
	fmt.Fprintf(w, "serve_cache_entries %d\n", cs.Entries)

	fmt.Fprintf(w, "# HELP serve_rate_limited_total Requests dropped with 429 by the per-client limiter.\n")
	fmt.Fprintf(w, "# TYPE serve_rate_limited_total counter\n")
	fmt.Fprintf(w, "serve_rate_limited_total %d\n", m.rateLimited.Load())

	if s.limiter != nil {
		fmt.Fprintf(w, "# HELP serve_rate_limiter_clients Client buckets currently tracked.\n")
		fmt.Fprintf(w, "# TYPE serve_rate_limiter_clients gauge\n")
		fmt.Fprintf(w, "serve_rate_limiter_clients %d\n", s.limiter.size())
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP serve_renders_total Responses rendered from a snapshot (cache misses that executed, coalesced waiters excluded).\n")
	fmt.Fprintf(w, "# TYPE serve_renders_total counter\n")
	for _, ep := range sortedKeys(m.renders) {
		fmt.Fprintf(w, "serve_renders_total{endpoint=%q} %d\n", ep, m.renders[ep])
	}

	fmt.Fprintf(w, "# HELP serve_requests_total HTTP requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE serve_requests_total counter\n")
	for _, ep := range sortedKeys(m.requests) {
		byCode := m.requests[ep]
		codes := make([]int, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "serve_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, byCode[c])
		}
	}

	fmt.Fprintf(w, "# HELP serve_request_duration_seconds Request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE serve_request_duration_seconds histogram\n")
	for _, ep := range sortedKeys(m.hist) {
		h := m.hist[ep]
		var cum int64
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "serve_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, strconv.FormatFloat(le, 'g', -1, 64), cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "serve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "serve_request_duration_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "serve_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.total)
	}
}

// sortedKeys returns a map's keys in sorted order, so every exposition
// walk is deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
