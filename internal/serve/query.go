package serve

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/measure"
)

// maxRows caps the n= parameter: requests above it are clamped, which also
// keeps cache keys canonical (n=501 and n=50000 are the same query).
const maxRows = 500

// queryParams is the canonical, normalized form of one API query. Two raw
// query strings that mean the same thing normalize to identical params —
// and therefore to identical cache keys.
type queryParams struct {
	// Case is the browser configuration a query reads (top-features) or
	// compares against (standards' block rates).
	Case measure.Case
	// Blocked is the blocking-side case of a feature-deltas comparison,
	// resolved from the profile= parameter.
	Blocked measure.Case
	// N is the row limit for table queries, in [1, maxRows].
	N int
}

// endpointSpec says which parameters an endpoint takes and their defaults.
type endpointSpec struct {
	hasCase     bool
	defaultCase measure.Case
	hasProfile  bool
	hasN        bool
}

// endpoints maps endpoint names (the path below /api/, plus "report") to
// their parameter specs. Unknown query parameters are ignored: they are
// not part of the canonical key.
var endpoints = map[string]endpointSpec{
	"top-features":   {hasCase: true, defaultCase: measure.CaseDefault, hasN: true},
	"feature-deltas": {hasProfile: true, hasN: true},
	"standards":      {hasCase: true, defaultCase: measure.CaseBlocking},
	"headlines":      {},
	"complexity":     {},
	"rounds":         {},
	"report":         {},
}

// parseCase resolves a case= value. Values are trimmed and lowercased, so
// "Default" and " default " are the same case.
func parseCase(v string) (measure.Case, error) {
	switch c := measure.Case(strings.ToLower(strings.TrimSpace(v))); c {
	case measure.CaseDefault, measure.CaseBlocking, measure.CaseAdBlock, measure.CaseGhostery:
		return c, nil
	default:
		return "", fmt.Errorf("unknown case %q (want default, blocking, adblock, or ghostery)", v)
	}
}

// parseProfile resolves a profile= value to its blocking-side case.
// Aliases collapse: abp means the AdBlock Plus case however it is spelled.
func parseProfile(v string) (measure.Case, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "", "blocking", "combined", "both":
		return measure.CaseBlocking, nil
	case "abp", "adblock", "adblockplus":
		return measure.CaseAdBlock, nil
	case "ghostery", "tracker":
		return measure.CaseGhostery, nil
	default:
		return "", fmt.Errorf("unknown profile %q (want abp, ghostery, or blocking)", v)
	}
}

// normalizeQuery validates and normalizes one endpoint query: defaults are
// filled in, aliases resolved, numbers clamped, unknown parameters
// dropped. It returns the canonical cache key — normalizing the key's own
// query string returns the same key, which is what makes (epoch, key)
// cache entries collide exactly when two queries are equivalent.
func normalizeQuery(endpoint string, raw url.Values) (key string, p queryParams, err error) {
	spec, ok := endpoints[endpoint]
	if !ok {
		return "", p, fmt.Errorf("unknown endpoint %q", endpoint)
	}
	var parts []string
	if spec.hasCase {
		p.Case = spec.defaultCase
		if v := raw.Get("case"); v != "" {
			if p.Case, err = parseCase(v); err != nil {
				return "", p, err
			}
		}
		parts = append(parts, "case="+string(p.Case))
	}
	if spec.hasProfile {
		if p.Blocked, err = parseProfile(raw.Get("profile")); err != nil {
			return "", p, err
		}
		parts = append(parts, "profile="+string(p.Blocked))
	}
	if spec.hasN {
		p.N = 15
		if v := strings.TrimSpace(raw.Get("n")); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return "", p, fmt.Errorf("bad n %q (want a positive integer)", v)
			}
			p.N = n
		}
		if p.N > maxRows {
			p.N = maxRows
		}
		parts = append(parts, "n="+strconv.Itoa(p.N))
	}
	sort.Strings(parts)
	key = endpoint
	if len(parts) > 0 {
		key += "?" + strings.Join(parts, "&")
	}
	return key, p, nil
}

// cacheEntry is one rendered response. gzipBody, when non-nil, is the
// same bytes gzip-compressed — built once at render time so the
// compressed representation is as cacheable as the plain one.
type cacheEntry struct {
	body        []byte
	gzipBody    []byte
	contentType string
}

// gzipBytes compresses a rendered body once, at cache-fill time.
func gzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(b) // (*bytes.Buffer).Write and gzip over it cannot fail
	if err := zw.Close(); err != nil {
		return nil
	}
	return buf.Bytes()
}

// queryCache memoizes rendered responses keyed by (epoch, canonical
// query). It only ever holds entries for a single epoch: the first store
// at a newer epoch drops everything older, which is the entire
// invalidation story — epochs advance exactly when new data merges into
// the aggregate.
type queryCache struct {
	mu      sync.RWMutex
	epoch   uint64
	entries map[string]cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

func newQueryCache() *queryCache {
	return &queryCache{entries: make(map[string]cacheEntry)}
}

func (c *queryCache) get(epoch uint64, key string) (cacheEntry, bool) {
	c.mu.RLock()
	e, ok := c.entries[key]
	if c.epoch != epoch {
		ok = false
	}
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *queryCache) put(epoch uint64, key string, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch < c.epoch {
		return // stale render raced a newer epoch; drop it
	}
	if epoch > c.epoch {
		c.epoch = epoch
		clear(c.entries)
	}
	c.entries[key] = e
}

// cacheStats is the /statusz view of the query cache.
type cacheStats struct {
	Hits    int64  `json:"hits"`
	Misses  int64  `json:"misses"`
	Entries int    `json:"entries"`
	Epoch   uint64 `json:"epoch"`
}

func (c *queryCache) stats() cacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return cacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: len(c.entries),
		Epoch:   c.epoch,
	}
}
