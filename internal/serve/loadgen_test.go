package serve_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// loadgen is the soak harness: K concurrent clients driving mixed traffic
// — cached hits, uncached renders (a publisher keeps advancing the
// epoch), conditional GETs, gzip negotiation, and enough volume to trip
// the rate limiter — against a fully hardened handler. Run it under
// -race: the point is that every hardening control is exercised
// concurrently against ingestion and nothing races, hangs, or answers
// outside the allowed status set.
type loadgen struct {
	clients  int
	duration time.Duration
	paths    []string
}

// tally is one soak run's outcome counts.
type tally struct {
	byStatus    map[int]int64
	revalidated int64 // 304s observed
	gzipped     int64 // gzip representations observed
}

// run drives the load and returns the tally. Any status outside
// {200, 304, 429} fails the test, as does a /report body that differs
// from the reference bytes (epoch advances must never change served
// content when the data hasn't changed).
func (lg *loadgen) run(t *testing.T, ts *httptest.Server) tally {
	t.Helper()

	// Reference /report bytes: every identity 200 during the soak must
	// match them — the survey data never changes, only the epoch does.
	refResp, ref := doReq(t, ts, http.MethodGet, "/report", map[string]string{"Accept-Encoding": "identity"})
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference /report: status %d", refResp.StatusCode)
	}

	var (
		mu       sync.Mutex
		counts   = make(map[int]int64)
		reval    atomic.Int64
		gzipped  atomic.Int64
		deadline = time.Now().Add(lg.duration)
		wg       sync.WaitGroup
	)
	for c := 0; c < lg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lastEpoch uint64
			var lastETag string
			for i := 0; time.Now().Before(deadline); i++ {
				path := lg.paths[(i+c)%len(lg.paths)]
				hdr := map[string]string{}
				switch {
				case i%7 == 3 && lastETag != "":
					hdr["If-None-Match"] = lastETag // conditional poll
				case i%5 == 2 && path == "/report":
					hdr["Accept-Encoding"] = "gzip"
				default:
					hdr["Accept-Encoding"] = "identity"
				}
				req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
				if err != nil {
					t.Error(err)
					return
				}
				for k, v := range hdr {
					req.Header.Set(k, v)
				}
				resp, err := ts.Client().Do(req)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("client %d: read: %v", c, err)
					return
				}

				mu.Lock()
				counts[resp.StatusCode]++
				mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					if e := resp.Header.Get("ETag"); e != "" {
						lastETag = e
					}
					if resp.Header.Get("Content-Encoding") == "gzip" {
						gzipped.Add(1)
						zr, err := gzip.NewReader(bytes.NewReader(body))
						if err != nil {
							t.Errorf("client %d: bad gzip body: %v", c, err)
							return
						}
						if body, err = io.ReadAll(zr); err != nil {
							t.Errorf("client %d: gzip decode: %v", c, err)
							return
						}
					}
					if path == "/report" && !bytes.Equal(body, ref) {
						t.Errorf("client %d: /report bytes drifted mid-soak", c)
						return
					}
				case http.StatusNotModified:
					reval.Add(1)
					if len(body) != 0 {
						t.Errorf("client %d: 304 with a %d-byte body", c, len(body))
						return
					}
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("client %d: 429 without Retry-After", c)
						return
					}
				default:
					t.Errorf("client %d: %s answered %d — outside the allowed {200, 304, 429}", c, path, resp.StatusCode)
					return
				}
				if e := resp.Header.Get("X-Epoch"); e != "" {
					epoch, err := strconv.ParseUint(e, 10, 64)
					if err != nil {
						t.Errorf("client %d: bad X-Epoch %q", c, e)
						return
					}
					if epoch < lastEpoch {
						t.Errorf("client %d: epoch went backwards (%d after %d)", c, epoch, lastEpoch)
						return
					}
					lastEpoch = epoch
				}
			}
		}(c)
	}
	wg.Wait()

	return tally{byStatus: counts, revalidated: reval.Load(), gzipped: gzipped.Load()}
}

// TestLoadgenSoak soaks the hardened handler: 8 clients of mixed traffic
// while a publisher advances the epoch every 20ms, with the limiter,
// gzip, deadline, and render cap all on. Short mode (the CI race job)
// runs a compressed soak; the full run triples the duration.
func TestLoadgenSoak(t *testing.T) {
	_, spillGlob := runBatch(t)
	study := newStudy(t, testStudyConfig())
	agg, err := serve.LoadSpills(study, spillGlob)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Study:          study,
		Agg:            agg,
		Logf:           t.Logf,
		RequestTimeout: 10 * time.Second,
		Rate:           2000, // generous: all clients share the loopback bucket
		Burst:          200,
		Gzip:           true,
		MaxRenders:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	duration := 2500 * time.Millisecond
	if testing.Short() {
		duration = 700 * time.Millisecond
	}

	// The publisher: same data, fresh epoch every 20ms — every cached
	// body goes stale and the uncached render path runs all soak long.
	stopPub := make(chan struct{})
	var pubWg sync.WaitGroup
	pubWg.Add(1)
	go func() {
		defer pubWg.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopPub:
				return
			case <-tick.C:
				agg.Publish()
			}
		}
	}()
	defer func() { close(stopPub); pubWg.Wait() }()
	lg := &loadgen{
		clients:  8,
		duration: duration,
		paths: []string{
			"/report",
			"/api/top-features?n=25",
			"/api/feature-deltas?profile=abp",
			"/api/standards",
			"/api/headlines",
			"/api/complexity",
			"/api/rounds",
			"/statusz",
		},
	}
	tl := lg.run(t, ts)

	if tl.byStatus[http.StatusOK] == 0 {
		t.Error("soak saw zero 200s")
	}
	if tl.revalidated == 0 {
		t.Error("soak saw zero 304 revalidations; conditional traffic never matched")
	}
	if tl.gzipped == 0 {
		t.Error("soak saw zero gzip responses")
	}
	var total int64
	for _, n := range tl.byStatus {
		total += n
	}
	t.Logf("soak: %d requests over %v: %d×200, %d×304, %d×429, %d gzipped",
		total, duration, tl.byStatus[200], tl.byStatus[304], tl.byStatus[429], tl.gzipped)

	// The limiter's client table must stay bounded (it is keyed by real
	// peers; the soak shares one) — read it off /metrics.
	_, metrics := doReq(t, ts, http.MethodGet, "/metrics", nil)
	for _, line := range strings.Split(string(metrics), "\n") {
		if v, ok := strings.CutPrefix(line, "serve_rate_limiter_clients "); ok {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > 8192 {
				t.Errorf("serve_rate_limiter_clients = %q, want within [1, 8192]", v)
			}
		}
	}
}

// TestLoadgenSoakLive is the soak against a live-fed server: distributed
// workers stream lease commits in (real epoch advances with real data)
// while the mixed read load runs. Only the read statuses are asserted —
// /report bytes legitimately change mid-survey here.
func TestLoadgenSoakLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak crawls a survey; skipped in short mode")
	}
	ts, done := liveServerAsync(t, 2, 3)

	paths := []string{"/report", "/api/headlines", "/api/standards", "/statusz"}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lastETag string
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				hdr := map[string]string{}
				if i%5 == 4 && lastETag != "" {
					hdr["If-None-Match"] = lastETag
				}
				req, _ := http.NewRequest(http.MethodGet, ts.URL+paths[(i+c)%len(paths)], nil)
				for k, v := range hdr {
					req.Header.Set(k, v)
				}
				resp, err := ts.Client().Do(req)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
					t.Errorf("client %d: status %d mid-survey", c, resp.StatusCode)
					return
				}
				if e := resp.Header.Get("ETag"); e != "" {
					lastETag = e
				}
			}
		}(c)
	}
	wg.Wait()
	<-done
}

// TestCachedPathAllocs is the stable-allocs gate the soak relies on: one
// cached query costs a bounded number of allocations, so request volume
// cannot leak memory. The bound is deliberately loose — it catches
// per-request recompression or copied bodies, not allocator drift.
func TestCachedPathAllocs(t *testing.T) {
	ts, _ := emptyServerCfg(t, func(cfg *serve.Config) { cfg.Gzip = true })
	// Use the handler directly: no sockets, so allocs are the handler's.
	doReq(t, ts, http.MethodGet, "/api/headlines", nil) // warm the cache

	client := ts.Client()
	url := ts.URL + "/api/headlines"
	allocs := testing.AllocsPerRun(200, func() {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	})
	const bound = 500 // loose: client+server combined, race-mode tolerant
	if allocs > bound {
		t.Errorf("cached query = %.0f allocs/op, want ≤ %d", allocs, bound)
	}
	t.Logf("cached query: %.0f allocs/op (client+server)", allocs)
}
