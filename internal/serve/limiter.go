package serve

import (
	"sync"
	"time"
)

// limiterMaxClients bounds the bucket map. RemoteAddr keys are real TCP
// peers, so the map tracks at most the distinct-client population — but a
// long-lived server behind churning NAT pools should not grow forever, so
// crossing the cap sweeps buckets that have refilled to full (an idle
// client's bucket holds no state worth keeping: a fresh one behaves
// identically).
const limiterMaxClients = 8192

// limiter is a per-client token-bucket rate limiter. Each client key owns
// a bucket of `burst` tokens refilling at `rate` tokens/second; a request
// spends one token. It is stdlib-only and clock-injectable so tests drive
// it deterministically.
type limiter struct {
	rate  float64 // tokens per second, > 0
	burst float64 // bucket capacity, >= 1
	now   func() time.Time

	mu      sync.Mutex
	clients map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter allowing `rate` requests/second with bursts
// of `burst` per client. rate must be > 0; burst < 1 is raised to 1.
func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &limiter{rate: rate, burst: b, now: now, clients: make(map[string]*bucket)}
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports ok=false and how long until the next token lands — the
// Retry-After the client should honor.
func (l *limiter) allow(key string) (retryAfter time.Duration, ok bool) {
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.clients[key]
	if !exists {
		if len(l.clients) >= limiterMaxClients {
			l.sweepLocked(t)
		}
		b = &bucket{tokens: l.burst, last: t}
		l.clients[key] = b
	} else {
		b.tokens += l.rate * t.Sub(b.last).Seconds()
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / l.rate
	return time.Duration(need * float64(time.Second)), false
}

// sweepLocked drops buckets that have refilled to capacity: clients idle
// long enough that forgetting them changes nothing. Must hold mu.
func (l *limiter) sweepLocked(t time.Time) {
	for key, b := range l.clients {
		if b.tokens+l.rate*t.Sub(b.last).Seconds() >= l.burst {
			delete(l.clients, key)
		}
	}
}

// size reports the tracked-client count (for tests and /metrics).
func (l *limiter) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}
