package serve_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/serve"
	"repro/internal/stats"
)

// benchClients is the concurrency the serve benchmarks drive: at least 100
// in-flight HTTP clients, the acceptance bar for BENCH_serve.json.
const benchClients = 128

// benchServer builds a warm server over a synthetic survey (no crawling:
// the benchmark measures the query path, not the browser).
func benchServer(b *testing.B) (*httptest.Server, *stats.Aggregate) {
	return benchServerCfg(b, nil)
}

// benchServerCfg is benchServer with a config hook so the hardening
// benchmarks can switch on gzip or other knobs over the same data.
func benchServerCfg(b *testing.B, mut func(*serve.Config)) (*httptest.Server, *stats.Aggregate) {
	b.Helper()
	study, err := core.NewStudy(core.Config{
		Sites: 100, Seed: 7, Rounds: 2,
		Cases: []measure.Case{measure.CaseDefault, measure.CaseBlocking},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { study.Close() })
	agg, err := serve.EmptyAggregate(study)
	if err != nil {
		b.Fatal(err)
	}
	features := agg.NumFeatures()
	for site := 0; site < agg.NumSites(); site++ {
		sf := measure.NewBitset(features)
		for f := site % features; f < features; f += 97 {
			sf.Set(f)
		}
		for _, c := range []measure.Case{measure.CaseDefault, measure.CaseBlocking} {
			if err := agg.AddVisit(stats.Visit{Case: c, Site: site, Features: sf, Invocations: 50, Pages: 8}); err != nil {
				b.Fatal(err)
			}
		}
		if err := agg.EndSite(site); err != nil {
			b.Fatal(err)
		}
	}
	agg.Publish()

	cfg := serve.Config{Study: study, Agg: agg}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	// Plenty of keep-alive connections so the 100+ clients aren't
	// benchmarking connection setup.
	ts.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = benchClients
	return ts, agg
}

func benchGet(b *testing.B, client *http.Client, url string) {
	resp, err := client.Get(url)
	if err != nil {
		b.Error(err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Errorf("status %d", resp.StatusCode)
	}
}

// BenchmarkServeQueryCached is the steady-state read path: every request
// after the first is an (epoch, key) cache hit, so an op is one HTTP round
// trip plus a map read — the qps number a resident dashboard sees.
func BenchmarkServeQueryCached(b *testing.B) {
	ts, _ := benchServer(b)
	url := ts.URL + "/api/top-features?n=25"
	benchGet(b, ts.Client(), url) // warm the entry
	b.SetParallelism((benchClients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchGet(b, ts.Client(), url)
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkServeQueryUncached forces every request to re-render: each op
// publishes a fresh epoch first, so the server rebuilds the epoch view
// (warm analysis included) and renders the response from scratch — the
// worst-case cost of an epoch advance under full concurrent load.
func BenchmarkServeQueryUncached(b *testing.B) {
	ts, agg := benchServer(b)
	url := ts.URL + "/api/top-features?n=25"
	b.SetParallelism((benchClients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			agg.Publish()
			benchGet(b, ts.Client(), url)
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkServe304 is the polling-dashboard path: a conditional GET that
// revalidates against the current epoch and is answered 304 before any
// render or cache lookup — the cheapest response the server produces.
func BenchmarkServe304(b *testing.B) {
	ts, _ := benchServer(b)
	url := ts.URL + "/api/top-features?n=25"
	resp, err := ts.Client().Get(url) // warm, and learn the ETag
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		b.Fatal("no ETag on warm response")
	}
	b.SetParallelism((benchClients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req, err := http.NewRequest(http.MethodGet, url, nil)
			if err != nil {
				b.Error(err)
				return
			}
			req.Header.Set("If-None-Match", etag)
			resp, err := ts.Client().Do(req)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotModified {
				b.Errorf("status %d, want 304", resp.StatusCode)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkServeReportGzip serves the full report's cached gzip
// representation: compression happened once at render, so an op is a round
// trip moving ~10× fewer bytes than the identity path.
func BenchmarkServeReportGzip(b *testing.B) {
	ts, _ := benchServerCfg(b, func(cfg *serve.Config) { cfg.Gzip = true })
	url := ts.URL + "/report"
	get := func() {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			b.Error(err)
			return
		}
		req.Header.Set("Accept-Encoding", "gzip")
		resp, err := ts.Client().Do(req)
		if err != nil {
			b.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Errorf("status %d", resp.StatusCode)
		} else if resp.Header.Get("Content-Encoding") != "gzip" {
			b.Error("response not gzip-encoded")
		}
	}
	get() // warm: render + compress once
	b.SetParallelism((benchClients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			get()
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

// BenchmarkServeReportCached measures the heavyweight artifact on the hit
// path: the full text report straight out of the cache.
func BenchmarkServeReportCached(b *testing.B) {
	ts, _ := benchServer(b)
	url := ts.URL + "/report"
	benchGet(b, ts.Client(), url)
	b.SetParallelism((benchClients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchGet(b, ts.Client(), url)
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}
