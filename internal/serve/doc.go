// Package serve is the survey-as-a-service layer: a resident HTTP server
// that holds a warm stats.Aggregate and answers every analysis/report
// product at production rates, without the batch binaries' load-scan-exit
// cycle.
//
// The read path is built on the aggregate's epoch snapshots
// (stats.Snapshot): ingestion — lease commits from a live distributed
// survey, or a one-time cold load from spill files or a saved log — keeps
// mutating the lock-striped write side, while every HTTP request reads an
// immutable snapshot reached by a single atomic load. Readers never take
// the aggregate's locks, so thousands of in-flight queries cannot contend
// with ingestion.
//
// On top of the snapshots sit two caches, both keyed by epoch so they
// invalidate themselves the moment new data merges:
//
//   - an epoch view: the warm *analysis.Analysis (and Table 1 stats) built
//     once per epoch and shared by every query of that epoch;
//   - a query-result cache keyed by (epoch, normalized query): the
//     rendered response bytes, so a repeated query is a map hit — query
//     strings are normalized first (defaults filled, aliases resolved,
//     params ordered), so /api/top-features?n=15&case=default and
//     /api/top-features hit the same entry.
//
// Endpoints: /api/top-features, /api/feature-deltas, /api/standards,
// /api/headlines, /api/complexity, /api/rounds (JSON), /report (the exact
// text report cmd/report renders — byte-identical to a batch run over the
// same data), and /healthz, /statusz, /metrics for operators. cmd/serve is
// the binary; docs/OPERATIONS.md the runbook.
//
// The request path is hardened for untrusted traffic by a middleware
// chain (metrics → method guard → rate limit → deadline) plus a
// single-flight render gate:
//
//   - every endpoint answers GET/HEAD only (405 otherwise), and a
//     per-request deadline turns a slow render into a bounded 503, never
//     a hung connection;
//   - a per-client token bucket (Config.Rate/Burst) drops excess traffic
//     with 429 + Retry-After; /healthz and /metrics are exempt;
//   - N concurrent requests for the same uncached (epoch, query) collapse
//     into one render (singleflight.go), and Config.MaxRenders caps
//     renders across distinct queries — a cold epoch under fan-in load
//     costs one render per query, not one per request;
//   - responses carry a weak ETag derived from the epoch (W/"e<N>"), so
//     pollers revalidate with If-None-Match and get bodiless 304s until
//     the data actually changes; /report optionally serves a cached gzip
//     representation (Config.Gzip);
//   - /metrics exposes Prometheus text (request counters, latency
//     histograms, cache and limiter gauges) with zero dependencies.
//
// The gate preserves the snapshots-are-prefixes invariant: a waiter only
// joins a flight keyed by the epoch it already resolved, so coalesced
// responses are still pure functions of (URL, epoch).
package serve
