// Package serve is the survey-as-a-service layer: a resident HTTP server
// that holds a warm stats.Aggregate and answers every analysis/report
// product at production rates, without the batch binaries' load-scan-exit
// cycle.
//
// The read path is built on the aggregate's epoch snapshots
// (stats.Snapshot): ingestion — lease commits from a live distributed
// survey, or a one-time cold load from spill files or a saved log — keeps
// mutating the lock-striped write side, while every HTTP request reads an
// immutable snapshot reached by a single atomic load. Readers never take
// the aggregate's locks, so thousands of in-flight queries cannot contend
// with ingestion.
//
// On top of the snapshots sit two caches, both keyed by epoch so they
// invalidate themselves the moment new data merges:
//
//   - an epoch view: the warm *analysis.Analysis (and Table 1 stats) built
//     once per epoch and shared by every query of that epoch;
//   - a query-result cache keyed by (epoch, normalized query): the
//     rendered response bytes, so a repeated query is a map hit — query
//     strings are normalized first (defaults filled, aliases resolved,
//     params ordered), so /api/top-features?n=15&case=default and
//     /api/top-features hit the same entry.
//
// Endpoints: /api/top-features, /api/feature-deltas, /api/standards,
// /api/headlines, /api/complexity, /api/rounds (JSON), /report (the exact
// text report cmd/report renders — byte-identical to a batch run over the
// same data), and /healthz, /statusz for operators. cmd/serve is the
// binary; docs/OPERATIONS.md the runbook.
package serve
