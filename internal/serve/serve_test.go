package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/measure"
	"repro/internal/serve"
	"repro/internal/stats"
)

// testStudyConfig matches the dist loopback suite: small enough to crawl in
// seconds, large enough for several leases.
func testStudyConfig() core.Config {
	return core.Config{
		Sites:  18,
		Seed:   7,
		Rounds: 2,
		Cases:  []measure.Case{measure.CaseDefault, measure.CaseBlocking},
	}
}

func newStudy(t *testing.T, cfg core.Config) *core.Study {
	t.Helper()
	study, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { study.Close() })
	return study
}

// runBatch runs the study spill-only, keeps the spill files, and renders
// the batch aggregate report — the ground truth byte-for-byte, plus the
// cold-start input for a server.
func runBatch(t *testing.T) (report []byte, spillGlob string) {
	t.Helper()
	dir := t.TempDir()
	cfg := testStudyConfig()
	cfg.Shards = 2
	cfg.ShardWorkers = 2
	cfg.SpillOnly = true
	cfg.SpillDir = dir
	study := newStudy(t, cfg)
	results, err := study.RunSurvey()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.WriteAggregateReport(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), filepath.Join(dir, "*")
}

// coldServer loads the spill files and serves them over a test listener.
func coldServer(t *testing.T, spillGlob string) *httptest.Server {
	return coldServerCfg(t, spillGlob, nil)
}

// coldServerCfg is coldServer with a config hook, so the hardening suite
// can switch on limiter/gzip/timeout knobs over the same spill data.
func coldServerCfg(t *testing.T, spillGlob string, mut func(*serve.Config)) *httptest.Server {
	t.Helper()
	study := newStudy(t, testStudyConfig())
	agg, err := serve.LoadSpills(study, spillGlob)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serve.Config{Study: study, Agg: agg, Logf: t.Logf}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// emptyServerCfg serves an empty published aggregate with a config hook —
// the cheap substrate for hardening tests that control the epoch by hand.
func emptyServerCfg(t *testing.T, mut func(*serve.Config)) (*httptest.Server, *stats.Aggregate) {
	t.Helper()
	study := newStudy(t, testStudyConfig())
	agg, err := serve.EmptyAggregate(study)
	if err != nil {
		t.Fatal(err)
	}
	cfg := serve.Config{Study: study, Agg: agg, Logf: t.Logf}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, agg
}

// liveServer starts an empty server in coordinator mode, runs workerCount
// loopback workers to completion, and returns the test listener — the
// mid-survey ingestion path, quiesced so /report is deterministic.
func liveServer(t *testing.T, workerCount, leaseSites int) *httptest.Server {
	t.Helper()
	ts, done := liveServerAsync(t, workerCount, leaseSites)
	<-done
	return ts
}

// liveServerAsync is liveServer without the barrier: done closes when every
// lease has merged and all workers exited.
func liveServerAsync(t *testing.T, workerCount, leaseSites int) (*httptest.Server, <-chan struct{}) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)

	study := newStudy(t, testStudyConfig())
	agg, err := serve.EmptyAggregate(study)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Study: study, Agg: agg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := srv.Coordinator("127.0.0.1:0", leaseSites, 5*time.Second, "")
	if err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, workerCount)
	for i := 0; i < workerCount; i++ {
		go func() {
			errs <- dist.Run(ctx, dist.WorkerConfig{
				Addr:              coord.Addr(),
				HeartbeatInterval: 50 * time.Millisecond,
				Build: func(spec []byte) (dist.CrawlFunc, error) {
					s, err := core.StudyFromSpec(spec, core.Config{Shards: 1, ShardWorkers: 2})
					if err != nil {
						return nil, err
					}
					return s.CrawlSites, nil
				},
			})
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := coord.Serve(ctx); err != nil {
			t.Errorf("coordinator: %v", err)
			return
		}
		for i := 0; i < workerCount; i++ {
			if err := <-errs; err != nil {
				t.Errorf("worker exit: %v", err)
			}
		}
	}()

	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, done
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestServeReportMatchesBatch is the tentpole equivalence proof: the
// resident server's /report is byte-identical to the batch report over the
// same measurements — whether the server cold-loaded spill files or was
// fed live by distributed workers, at more than one worker geometry.
func TestServeReportMatchesBatch(t *testing.T) {
	want, spillGlob := runBatch(t)

	t.Run("cold-spills", func(t *testing.T) {
		ts := coldServer(t, spillGlob)
		code, got, hdr := get(t, ts, "/report")
		if code != http.StatusOK {
			t.Fatalf("/report status %d", code)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("served report diverges from the batch report\n--- batch\n%s\n--- served\n%s", want, got)
		}
		if hdr.Get("X-Cache") != "miss" {
			t.Errorf("first /report X-Cache = %q, want miss", hdr.Get("X-Cache"))
		}
		_, again, hdr2 := get(t, ts, "/report")
		if hdr2.Get("X-Cache") != "hit" {
			t.Errorf("second /report X-Cache = %q, want hit", hdr2.Get("X-Cache"))
		}
		if !bytes.Equal(again, got) {
			t.Error("cached /report differs from the first render")
		}
	})

	for _, tc := range []struct {
		name       string
		workers    int
		leaseSites int
	}{
		{"live-1worker", 1, 5},
		{"live-2workers-tinyLeases", 2, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := liveServer(t, tc.workers, tc.leaseSites)
			code, got, _ := get(t, ts, "/report")
			if code != http.StatusOK {
				t.Fatalf("/report status %d", code)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("live-fed report diverges from the batch report\n--- batch\n%s\n--- served\n%s", want, got)
			}
		})
	}
}

// TestQueryEndpoints drives every API endpoint on a warm server: each
// answers 200 with well-formed JSON, equivalent spellings share a cache
// entry, and malformed parameters are 400s, not surprises.
func TestQueryEndpoints(t *testing.T) {
	_, spillGlob := runBatch(t)
	ts := coldServer(t, spillGlob)

	endpoints := []string{
		"/api/top-features",
		"/api/feature-deltas",
		"/api/standards",
		"/api/headlines",
		"/api/complexity",
		"/api/rounds",
	}
	for _, ep := range endpoints {
		t.Run(ep, func(t *testing.T) {
			code, body, hdr := get(t, ts, ep)
			if code != http.StatusOK {
				t.Fatalf("status %d: %s", code, body)
			}
			var v map[string]any
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatalf("response is not JSON: %v", err)
			}
			if _, ok := v["epoch"]; !ok {
				t.Error("response has no epoch field")
			}
			if hdr.Get("X-Epoch") == "" {
				t.Error("no X-Epoch header")
			}
		})
	}

	t.Run("normalization-shares-cache", func(t *testing.T) {
		_, first, _ := get(t, ts, "/api/top-features?case=default&n=15")
		code, second, hdr := get(t, ts, "/api/top-features?n=15&case=+Default+")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if hdr.Get("X-Cache") != "hit" {
			t.Errorf("equivalent query X-Cache = %q, want hit", hdr.Get("X-Cache"))
		}
		if !bytes.Equal(first, second) {
			t.Error("equivalent queries returned different bodies")
		}
	})

	t.Run("bad-params", func(t *testing.T) {
		for _, path := range []string{
			"/api/top-features?case=nope",
			"/api/top-features?n=0",
			"/api/top-features?n=-3",
			"/api/top-features?n=banana",
			"/api/feature-deltas?profile=nope",
			"/api/standards?case=nope",
		} {
			if code, _, _ := get(t, ts, path); code != http.StatusBadRequest {
				t.Errorf("%s status %d, want 400", path, code)
			}
		}
		// An empty case= falls back to the default, and n above the cap
		// clamps: both are valid queries, not errors.
		for _, path := range []string{"/api/top-features?case=", "/api/top-features?n=99999"} {
			if code, _, _ := get(t, ts, path); code != http.StatusOK {
				t.Errorf("%s rejected; want 200", path)
			}
		}
	})

	t.Run("method-not-allowed", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/api/headlines", "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST status %d, want 405", resp.StatusCode)
		}
	})

	t.Run("statusz", func(t *testing.T) {
		code, body, _ := get(t, ts, "/statusz")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var st struct {
			Epoch uint64 `json:"epoch"`
			Cache struct {
				Hits   int64 `json:"hits"`
				Misses int64 `json:"misses"`
			} `json:"cache"`
			MeasuredSites int `json:"measured_sites"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Epoch == 0 {
			t.Error("statusz epoch 0 on a warm server")
		}
		if st.Cache.Hits == 0 || st.Cache.Misses == 0 {
			t.Errorf("statusz cache counters (%d hits, %d misses) never moved", st.Cache.Hits, st.Cache.Misses)
		}
		if st.MeasuredSites == 0 {
			t.Error("statusz reports zero measured sites on a warm server")
		}
	})

	t.Run("healthz", func(t *testing.T) {
		if code, body, _ := get(t, ts, "/healthz"); code != http.StatusOK || string(body) != "ok\n" {
			t.Errorf("/healthz = %d %q", code, body)
		}
	})
}

// TestCacheInvalidatesOnEpochAdvance feeds new data into a served
// aggregate and requires the next query to re-render under the new epoch
// instead of serving the stale cached body.
func TestCacheInvalidatesOnEpochAdvance(t *testing.T) {
	study := newStudy(t, testStudyConfig())
	agg, err := serve.EmptyAggregate(study)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Study: study, Agg: agg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, first, hdr := get(t, ts, "/api/headlines")
	if hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first query X-Cache = %q, want miss", hdr.Get("X-Cache"))
	}
	epoch1 := hdr.Get("X-Epoch")
	if _, _, hdr := get(t, ts, "/api/headlines"); hdr.Get("X-Cache") != "hit" {
		t.Fatalf("repeat query X-Cache = %q, want hit", hdr.Get("X-Cache"))
	}

	// New data arrives: one measured site, then a publication.
	sf := measure.NewBitset(agg.NumFeatures())
	sf.Set(0)
	if err := agg.AddVisit(stats.Visit{Case: measure.CaseDefault, Site: 0, Features: sf, Invocations: 1, Pages: 1}); err != nil {
		t.Fatal(err)
	}
	if err := agg.EndSite(0); err != nil {
		t.Fatal(err)
	}
	agg.Publish()

	_, second, hdr := get(t, ts, "/api/headlines")
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("post-publish query X-Cache = %q, want miss (stale cache served)", hdr.Get("X-Cache"))
	}
	if hdr.Get("X-Epoch") == epoch1 {
		t.Error("epoch did not advance after Publish")
	}
	if bytes.Equal(first, second) {
		t.Error("post-publish headlines identical to the empty-survey body")
	}
}

// TestServeLiveConcurrentReaders is the HTTP half of the race sweep (run
// with -race): readers hammer every endpoint while distributed workers
// stream lease commits into the served aggregate. Every response must be a
// 200, and each reader's observed epoch must never go backwards.
func TestServeLiveConcurrentReaders(t *testing.T) {
	ts, done := liveServerAsync(t, 2, 3)

	paths := []string{
		"/api/top-features",
		"/api/feature-deltas?profile=blocking",
		"/api/standards",
		"/api/headlines",
		"/api/complexity",
		"/api/rounds",
		"/report",
		"/statusz",
	}
	const readers = 4
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				path := paths[(i+r)%len(paths)]
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: %s mid-survey status %d", r, path, resp.StatusCode)
					return
				}
				if e := resp.Header.Get("X-Epoch"); e != "" {
					var epoch uint64
					fmt.Sscanf(e, "%d", &epoch)
					if epoch < lastEpoch {
						t.Errorf("reader %d: epoch went backwards (%d after %d)", r, epoch, lastEpoch)
						return
					}
					lastEpoch = epoch
				}
			}
		}(r)
	}
	wg.Wait()
	<-done

	// Quiesced: the survey is complete and the served state is final.
	code, body, _ := get(t, ts, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var st struct {
		Coordinator struct {
			Done bool `json:"done"`
		} `json:"coordinator"`
		MeasuredSites int `json:"measured_sites"`
		OpenSites     int `json:"open_sites"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Coordinator.Done {
		t.Error("statusz coordinator not done after every lease merged")
	}
	if st.OpenSites != 0 {
		t.Errorf("statusz reports %d open sites after the survey", st.OpenSites)
	}
}

// TestLoadersReject pins the cold-start error paths: a zero-match spill
// glob and a missing log file fail loudly.
func TestLoadersReject(t *testing.T) {
	study := newStudy(t, testStudyConfig())
	if _, err := serve.LoadSpills(study, filepath.Join(t.TempDir(), "*.spill")); err == nil {
		t.Error("LoadSpills accepted a glob matching nothing")
	}
	if _, err := serve.LoadLog(study, filepath.Join(t.TempDir(), "missing.log")); err == nil {
		t.Error("LoadLog accepted a missing file")
	}
	if _, err := serve.New(serve.Config{}); err == nil {
		t.Error("New accepted an empty config")
	}
}
