package serve_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/measure"
	"repro/internal/serve"
	"repro/internal/stats"
)

// This file is the behavioral proof for the hardening controls: every
// knob cmd/serve exposes for untrusted traffic has a table here showing
// the exact HTTP behavior it buys — convoy collapse, 429/Retry-After,
// ETag revalidation, deadline 503s, gzip round-trips, and the
// GET/HEAD-only contract.

// fakeClock drives the rate limiter deterministically.
type fakeClock struct{ ns atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ns.Store(int64(time.Hour)) // arbitrary nonzero origin
	return c
}

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// advanceEpoch feeds one measured site into the aggregate and publishes,
// so the served epoch moves and every cached body goes stale.
func advanceEpoch(t *testing.T, agg *stats.Aggregate, site int) {
	t.Helper()
	sf := measure.NewBitset(agg.NumFeatures())
	sf.Set(site % agg.NumFeatures())
	if err := agg.AddVisit(stats.Visit{Case: measure.CaseDefault, Site: site, Features: sf, Invocations: 1, Pages: 1}); err != nil {
		t.Fatal(err)
	}
	if err := agg.EndSite(site); err != nil {
		t.Fatal(err)
	}
	agg.Publish()
}

// doReq issues one request with extra headers and returns the response
// (body fully read, connection released).
func doReq(t *testing.T, ts *httptest.Server, method, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestMethodGuard pins the read-only contract across every endpoint —
// including /healthz and /statusz, which historically accepted any
// method: non-GET/HEAD gets 405 with an Allow header, GET and HEAD pass.
func TestMethodGuard(t *testing.T) {
	ts, _ := emptyServerCfg(t, nil)
	endpoints := []string{
		"/", "/healthz", "/statusz", "/metrics", "/report",
		"/api/top-features", "/api/feature-deltas", "/api/standards",
		"/api/headlines", "/api/complexity", "/api/rounds",
	}
	for _, ep := range endpoints {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch} {
			resp, _ := doReq(t, ts, method, ep, nil)
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, ep, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s Allow = %q, want \"GET, HEAD\"", method, ep, allow)
			}
		}
		for _, method := range []string{http.MethodGet, http.MethodHead} {
			resp, _ := doReq(t, ts, method, ep, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s %s = %d, want 200", method, ep, resp.StatusCode)
			}
		}
	}
}

// TestConvoyCollapses is the single-flight proof: 8 concurrent identical
// uncached queries behind a deliberately slow render trigger exactly one
// render, and every reader gets the same complete body.
func TestConvoyCollapses(t *testing.T) {
	var renders atomic.Int64
	ts, _ := emptyServerCfg(t, func(cfg *serve.Config) {
		cfg.RenderHook = func(endpoint string) {
			renders.Add(1)
			time.Sleep(300 * time.Millisecond) // a slow render: the convoy window
		}
	})

	const readers = 8
	bodies := make([][]byte, readers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, body := doReq(t, ts, http.MethodGet, "/report", nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reader %d: status %d", i, resp.StatusCode)
			}
			bodies[i] = body
		}(i)
	}
	close(start)
	wg.Wait()

	if n := renders.Load(); n != 1 {
		t.Errorf("%d concurrent identical queries triggered %d renders, want exactly 1", readers, n)
	}
	for i := 1; i < readers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("reader %d saw a different body than reader 0", i)
		}
	}
}

// TestRateLimit drives the token bucket on a fake clock: burst spends
// down to a 429 with the exact Retry-After, refill restores service at
// the configured rate, and operator paths are exempt.
func TestRateLimit(t *testing.T) {
	clock := newFakeClock()
	ts, _ := emptyServerCfg(t, func(cfg *serve.Config) {
		cfg.Rate = 1 // 1 token/second
		cfg.Burst = 3
		cfg.Now = clock.now
	})

	for i := 0; i < 3; i++ {
		resp, _ := doReq(t, ts, http.MethodGet, "/api/headlines", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d inside burst: status %d", i+1, resp.StatusCode)
		}
	}
	resp, body := doReq(t, ts, http.MethodGet, "/api/headlines", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request past burst: status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\" (1 token at 1 token/s)", ra)
	}

	// Operator endpoints never rate-limit, even with the bucket dry.
	for _, ep := range []string{"/healthz", "/metrics"} {
		if resp, _ := doReq(t, ts, http.MethodGet, ep, nil); resp.StatusCode != http.StatusOK {
			t.Errorf("%s rate-limited (status %d); operator paths must be exempt", ep, resp.StatusCode)
		}
	}

	// Honoring the Retry-After restores exactly one token.
	clock.advance(time.Second)
	if resp, _ := doReq(t, ts, http.MethodGet, "/api/headlines", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("after Retry-After elapsed: status %d, want 200", resp.StatusCode)
	}
	if resp, _ := doReq(t, ts, http.MethodGet, "/api/headlines", nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("second request after 1s refill: status %d, want 429 (only one token landed)", resp.StatusCode)
	}

	// Half a token is not a token.
	clock.advance(500 * time.Millisecond)
	if resp, _ := doReq(t, ts, http.MethodGet, "/api/headlines", nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("at half a token: status %d, want 429", resp.StatusCode)
	}
}

// TestETagRevalidation pins the conditional-GET contract: the ETag is the
// epoch, matching If-None-Match revalidates with a bodyless 304 without
// rendering, and an epoch advance makes the old validator stale.
func TestETagRevalidation(t *testing.T) {
	var renders atomic.Int64
	ts, agg := emptyServerCfg(t, func(cfg *serve.Config) {
		cfg.RenderHook = func(string) { renders.Add(1) }
	})

	resp, body := doReq(t, ts, http.MethodGet, "/report", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("initial /report: status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `W/"e`) {
		t.Fatalf("ETag = %q, want a weak epoch tag", etag)
	}
	rendersAfterFirst := renders.Load()

	table := []struct {
		name string
		inm  string
		want int
	}{
		{"exact-weak", etag, http.StatusNotModified},
		{"strong-form", strings.TrimPrefix(etag, "W/"), http.StatusNotModified},
		{"star", "*", http.StatusNotModified},
		{"multi-value", `"zzz", ` + etag + `, "yyy"`, http.StatusNotModified},
		{"stale-tag", `W/"e999999"`, http.StatusOK},
		{"garbage", `not-even-quoted`, http.StatusOK},
		{"empty-quotes", `""`, http.StatusOK},
	}
	for _, tc := range table {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doReq(t, ts, http.MethodGet, "/report", map[string]string{"If-None-Match": tc.inm})
			if resp.StatusCode != tc.want {
				t.Fatalf("If-None-Match %q: status %d, want %d", tc.inm, resp.StatusCode, tc.want)
			}
			if tc.want == http.StatusNotModified {
				if len(body) != 0 {
					t.Errorf("304 carried a %d-byte body", len(body))
				}
				if got := resp.Header.Get("ETag"); got != etag {
					t.Errorf("304 ETag = %q, want %q", got, etag)
				}
			}
		})
	}
	if n := renders.Load(); n != rendersAfterFirst {
		t.Errorf("revalidations triggered %d extra renders; 304s must not render", n-rendersAfterFirst)
	}

	// New data: the old validator goes stale and the body is fresh.
	advanceEpoch(t, agg, 0)
	resp2, body2 := doReq(t, ts, http.MethodGet, "/report", map[string]string{"If-None-Match": etag})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-advance conditional GET: status %d, want 200", resp2.StatusCode)
	}
	if resp2.Header.Get("ETag") == etag {
		t.Error("ETag did not change across an epoch advance")
	}
	if bytes.Equal(body2, body) {
		t.Error("post-advance body identical to the pre-advance report")
	}
	// And the new validator revalidates.
	if resp, _ := doReq(t, ts, http.MethodGet, "/report", map[string]string{"If-None-Match": resp2.Header.Get("ETag")}); resp.StatusCode != http.StatusNotModified {
		t.Errorf("fresh validator: status %d, want 304", resp.StatusCode)
	}
}

// TestRequestTimeout pins the deadline contract: a render slower than the
// per-request timeout costs the client a bounded 503, not a hung
// connection — and the render still completes and lands in the cache, so
// the retry is a hit.
func TestRequestTimeout(t *testing.T) {
	var slowOnce sync.Once
	ts, _ := emptyServerCfg(t, func(cfg *serve.Config) {
		cfg.RequestTimeout = 100 * time.Millisecond
		cfg.RenderHook = func(string) {
			slowOnce.Do(func() { time.Sleep(400 * time.Millisecond) })
		}
	})

	start := time.Now()
	resp, _ := doReq(t, ts, http.MethodGet, "/report", nil)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow render: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if elapsed > 350*time.Millisecond {
		t.Errorf("503 took %v; the deadline is 100ms, the client must not wait out the render", elapsed)
	}

	// The orphaned render finishes and is cached: the retry succeeds.
	time.Sleep(400 * time.Millisecond)
	resp2, _ := doReq(t, ts, http.MethodGet, "/report", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after render completed: status %d, want 200", resp2.StatusCode)
	}
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("retry X-Cache = %q, want hit (the timed-out render must not be wasted)", resp2.Header.Get("X-Cache"))
	}
}

// TestGzipRoundTrip proves the compressed representation is the plain one
// byte for byte, negotiated per request, with correct Vary/Content-
// Encoding and a shared ETag across representations.
func TestGzipRoundTrip(t *testing.T) {
	_, spillGlob := runBatch(t)
	ts := coldServerCfg(t, spillGlob, func(cfg *serve.Config) { cfg.Gzip = true })

	plainResp, plain := doReq(t, ts, http.MethodGet, "/report", map[string]string{"Accept-Encoding": "identity"})
	if plainResp.StatusCode != http.StatusOK {
		t.Fatalf("identity /report: status %d", plainResp.StatusCode)
	}
	if plainResp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("identity request answered with Content-Encoding %q", plainResp.Header.Get("Content-Encoding"))
	}
	if plainResp.Header.Get("Vary") != "Accept-Encoding" {
		t.Errorf("Vary = %q, want Accept-Encoding (response is negotiated)", plainResp.Header.Get("Vary"))
	}

	// Setting Accept-Encoding by hand disables the transport's automatic
	// decompression: the bytes below are the wire representation.
	gzResp, gz := doReq(t, ts, http.MethodGet, "/report", map[string]string{"Accept-Encoding": "gzip"})
	if gzResp.StatusCode != http.StatusOK {
		t.Fatalf("gzip /report: status %d", gzResp.StatusCode)
	}
	if gzResp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", gzResp.Header.Get("Content-Encoding"))
	}
	if len(gz) >= len(plain) {
		t.Errorf("gzip body (%d bytes) not smaller than plain (%d bytes)", len(gz), len(plain))
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, plain) {
		t.Error("gzip /report does not decompress to the plain /report bytes")
	}
	if gzResp.Header.Get("ETag") != plainResp.Header.Get("ETag") {
		t.Errorf("representations disagree on ETag: %q vs %q (the weak epoch tag must be shared)",
			gzResp.Header.Get("ETag"), plainResp.Header.Get("ETag"))
	}

	// q=0 explicitly refuses gzip.
	refuseResp, _ := doReq(t, ts, http.MethodGet, "/report", map[string]string{"Accept-Encoding": "gzip;q=0"})
	if refuseResp.Header.Get("Content-Encoding") != "" {
		t.Errorf("gzip;q=0 answered with Content-Encoding %q", refuseResp.Header.Get("Content-Encoding"))
	}
}

// TestMetricsEndpoint drives traffic through every outcome class and
// checks the exposition reflects it: request counters by endpoint/code,
// render counts, cache counters, the epoch gauge, and rate-limit drops.
func TestMetricsEndpoint(t *testing.T) {
	clock := newFakeClock()
	ts, _ := emptyServerCfg(t, func(cfg *serve.Config) {
		cfg.Rate = 1000
		cfg.Burst = 3
		cfg.Now = clock.now
	})

	doReq(t, ts, http.MethodGet, "/api/headlines", nil) // miss
	doReq(t, ts, http.MethodGet, "/api/headlines", nil) // hit
	doReq(t, ts, http.MethodGet, "/api/headlines", nil) // hit; bucket now dry
	doReq(t, ts, http.MethodGet, "/api/headlines", nil) // 429
	doReq(t, ts, http.MethodPost, "/report", nil)       // 405

	resp, body := doReq(t, ts, http.MethodGet, "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		`serve_requests_total{endpoint="headlines",code="200"} 3`,
		`serve_requests_total{endpoint="headlines",code="429"} 1`,
		`serve_requests_total{endpoint="report",code="405"} 1`,
		`serve_renders_total{endpoint="headlines"} 1`,
		`serve_rate_limited_total 1`,
		`serve_cache_hits_total 2`,
		"serve_epoch 1",
		"serve_inflight_renders 0",
		`serve_request_duration_seconds_count{endpoint="headlines"} 4`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q\n--- exposition\n%s", want, body)
		}
	}
}

// TestHardenedMatchesBatch is the acceptance gate for the whole stack:
// with every control switched on at once — limiter, gzip, deadline,
// render cap — the served /report is still byte-identical to the batch
// report, in both representations.
func TestHardenedMatchesBatch(t *testing.T) {
	want, spillGlob := runBatch(t)
	ts := coldServerCfg(t, spillGlob, func(cfg *serve.Config) {
		cfg.RequestTimeout = 10 * time.Second
		cfg.Rate = 10000
		cfg.Burst = 10000
		cfg.Gzip = true
		cfg.MaxRenders = 2
	})

	resp, got := doReq(t, ts, http.MethodGet, "/report", map[string]string{"Accept-Encoding": "identity"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/report status %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("hardened /report diverges from the batch report\n--- batch\n%s\n--- served\n%s", want, got)
	}

	_, gz := doReq(t, ts, http.MethodGet, "/report", map[string]string{"Accept-Encoding": "gzip"})
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, want) {
		t.Error("hardened gzip /report does not decompress to the batch report")
	}
}
