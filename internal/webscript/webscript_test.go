package webscript

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

const sampleScript = `
// analytics bootstrap
invoke Document.createElement 3;
set Window.name;
invoke XMLHttpRequest.open;

on load {
  invoke Performance.now 2;
  invoke Navigator.sendBeacon;
}
on click "#menu" {
  invoke Element.getBoundingClientRect;
  navigate "/products";
}
on scroll {
  invoke Window.scrollTo;
}
on timer 5 {
  invoke Storage.setItem;
}
`

func TestParseSample(t *testing.T) {
	s, err := Parse(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Immediate) != 3 {
		t.Fatalf("immediate = %d statements, want 3", len(s.Immediate))
	}
	inv, ok := s.Immediate[0].(Invoke)
	if !ok || inv.Interface != "Document" || inv.Member != "createElement" || inv.Count != 3 {
		t.Errorf("statement 0 = %+v", s.Immediate[0])
	}
	set, ok := s.Immediate[1].(SetProp)
	if !ok || set.Interface != "Window" || set.Member != "name" {
		t.Errorf("statement 1 = %+v", s.Immediate[1])
	}
	if inv2 := s.Immediate[2].(Invoke); inv2.Count != 1 {
		t.Errorf("default count = %d, want 1", inv2.Count)
	}
	if len(s.Handlers) != 4 {
		t.Fatalf("handlers = %d, want 4", len(s.Handlers))
	}
	if s.Handlers[0].Event != EventLoad || len(s.Handlers[0].Body) != 2 {
		t.Errorf("handler 0 = %+v", s.Handlers[0])
	}
	click := s.Handlers[1]
	if click.Event != EventClick || click.Selector != "#menu" {
		t.Errorf("handler 1 = %+v", click)
	}
	if _, ok := click.Body[1].(Navigate); !ok {
		t.Errorf("click body missing navigate: %+v", click.Body)
	}
	timer := s.Handlers[3]
	if timer.Event != EventTimer || timer.Interval != 5 {
		t.Errorf("timer handler = %+v", timer)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"invoke Document.createElement", "expected \";\""},
		{"invoke Document;", "expected \".\""},
		{"frobnicate X.y;", "unknown statement"},
		{"on explode { }", "unknown event"},
		{"on click { invoke A.b; ", "unterminated handler"},
		{"on load { on click { } }", "nested handlers"},
		{`navigate /x;`, "unexpected character"},
		{`navigate "unterminated`, "unterminated string"},
		{"invoke A.b 0;", "bad invoke count"},
		{"on timer 0 { }", "bad timer interval"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.src, err, c.want)
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Parse("invoke A.b;\ninvoke C.d;\nbogus X.y;\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q lacks line number 3", err)
	}
}

// recordingHost captures executed effects for assertions.
type recordingHost struct {
	invokes []string
	sets    []string
	navs    []string
	failOn  string
}

func (h *recordingHost) Invoke(iface, member string, count int) error {
	name := fmt.Sprintf("%s.%s", iface, member)
	if name == h.failOn {
		return fmt.Errorf("ReferenceError: %s is not defined", name)
	}
	h.invokes = append(h.invokes, fmt.Sprintf("%s x%d", name, count))
	return nil
}

func (h *recordingHost) SetProperty(iface, member string) error {
	h.sets = append(h.sets, iface+"."+member)
	return nil
}

func (h *recordingHost) Navigate(path string) { h.navs = append(h.navs, path) }

func TestExecute(t *testing.T) {
	s, err := Parse(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	h := &recordingHost{}
	if err := Execute(s.Immediate, h); err != nil {
		t.Fatal(err)
	}
	if len(h.invokes) != 2 || h.invokes[0] != "Document.createElement x3" {
		t.Errorf("invokes = %v", h.invokes)
	}
	if len(h.sets) != 1 || h.sets[0] != "Window.name" {
		t.Errorf("sets = %v", h.sets)
	}
	// Execute a handler body containing a navigation.
	if err := Execute(s.Handlers[1].Body, h); err != nil {
		t.Fatal(err)
	}
	if len(h.navs) != 1 || h.navs[0] != "/products" {
		t.Errorf("navs = %v", h.navs)
	}
}

func TestExecuteStopsOnError(t *testing.T) {
	s, err := Parse("invoke A.good;\ninvoke A.bad;\ninvoke A.after;")
	if err != nil {
		t.Fatal(err)
	}
	h := &recordingHost{failOn: "A.bad"}
	if err := Execute(s.Immediate, h); err == nil {
		t.Fatal("expected execution error")
	}
	if len(h.invokes) != 1 {
		t.Errorf("execution continued past error: %v", h.invokes)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	s, err := Parse(sampleScript)
	if err != nil {
		t.Fatal(err)
	}
	src := Format(s)
	s2, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, src)
	}
	if len(s2.Immediate) != len(s.Immediate) || len(s2.Handlers) != len(s.Handlers) {
		t.Fatalf("round trip changed shape: %s", src)
	}
	if Format(s2) != src {
		t.Fatalf("format not idempotent:\n%s\nvs\n%s", src, Format(s2))
	}
}

func TestFormatRoundTripProperty(t *testing.T) {
	// Property: formatting any synthesized script re-parses to the same
	// statement counts.
	check := func(nInv, nSet uint8, count uint8) bool {
		s := &Script{}
		for i := 0; i < int(nInv%5)+1; i++ {
			s.Immediate = append(s.Immediate, Invoke{Interface: "I", Member: fmt.Sprintf("m%d", i), Count: int(count%9) + 1})
		}
		for i := 0; i < int(nSet%4); i++ {
			s.Immediate = append(s.Immediate, SetProp{Interface: "Window", Member: fmt.Sprintf("p%d", i)})
		}
		s.Handlers = append(s.Handlers, &Handler{Event: EventClick, Selector: "#x", Body: []Stmt{Navigate{Path: "/p"}}})
		out, err := Parse(Format(s))
		if err != nil {
			return false
		}
		return len(out.Immediate) == len(s.Immediate) && len(out.Handlers) == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEventTypeString(t *testing.T) {
	for name, ev := range map[string]EventType{"load": EventLoad, "click": EventClick, "timer": EventTimer} {
		if ev.String() != name {
			t.Errorf("EventType %d String = %q, want %q", ev, ev.String(), name)
		}
	}
	if got := EventType(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown event string = %q", got)
	}
}
