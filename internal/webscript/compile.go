package webscript

// Compilation: the crawl executes every cached script hundreds of times
// (immediate statements once per page load, handler bodies once per event or
// timer dispatch), so walking []Stmt interface values with a type switch per
// run is pure overhead. Compile lowers a parsed Script once — at script-cache
// insert — into flat op slices whose feature operands are interned to dense
// IDs by the host (the browser shares one string → ID table per Browser), so
// executing a statement is an index into a dispatch slice instead of a
// map-keyed string lookup. The AST interpreter in Execute stays behind the
// DisableScriptCompile ablation flag as the differential oracle.

// OpKind classifies one compiled statement.
type OpKind uint8

const (
	// OpInvoke calls a method feature Count times.
	OpInvoke OpKind = iota
	// OpSet writes a property feature once.
	OpSet
	// OpNavigate attempts a navigation to Path.
	OpNavigate
)

// Op is one compiled statement. Invoke and Set operands are interned: Ref is
// the dense ID the compiling RefInterner assigned to the statement's
// "Interface.member" reference, and what an ID dispatches to is entirely the
// host's business (the browser resolves each to a webapi feature plus
// precomputed errors).
type Op struct {
	Kind  OpKind
	Ref   int    // interned feature reference (OpInvoke, OpSet)
	Count int    // invocation multiplicity (OpInvoke)
	Path  string // navigation target (OpNavigate)
}

// RefInterner assigns dense IDs to "Interface.member" feature references at
// compile time. Interning the same reference twice must return the same ID.
type RefInterner interface {
	InternRef(iface, member string) int
}

// OpHost executes compiled ops. It is the compiled counterpart of Host: the
// same effects, addressed by interned ref instead of string pair.
type OpHost interface {
	// InvokeRef calls the method behind ref count times.
	InvokeRef(ref, count int) error
	// SetRef writes the property behind ref once.
	SetRef(ref int) error
	// Navigate attempts a navigation to path.
	Navigate(path string)
}

// Compiled is the compile-once form of a Script: the immediate statements
// plus one op block per handler, aligned index-for-index with
// Script.Handlers.
type Compiled struct {
	Immediate []Op
	Bodies    [][]Op
}

// Compile lowers a parsed script through the interner. The result is
// immutable and safe to share across every execution of the cached script.
// It returns nil for scripts containing statement types it does not know —
// impossible for parser output, possible for hand-built ASTs — and callers
// treat nil as "run the interpreter".
func Compile(s *Script, in RefInterner) *Compiled {
	imm, ok := CompileStmts(s.Immediate, in)
	if !ok {
		return nil
	}
	c := &Compiled{Immediate: imm}
	if len(s.Handlers) > 0 {
		c.Bodies = make([][]Op, len(s.Handlers))
		for i, h := range s.Handlers {
			body, ok := CompileStmts(h.Body, in)
			if !ok {
				return nil
			}
			c.Bodies[i] = body
		}
	}
	return c
}

// CompileStmts lowers one statement list, reporting ok=false on statement
// types it does not know.
func CompileStmts(stmts []Stmt, in RefInterner) ([]Op, bool) {
	if len(stmts) == 0 {
		return nil, true
	}
	ops := make([]Op, len(stmts))
	for i, st := range stmts {
		switch s := st.(type) {
		case Invoke:
			ops[i] = Op{Kind: OpInvoke, Ref: in.InternRef(s.Interface, s.Member), Count: s.Count}
		case SetProp:
			ops[i] = Op{Kind: OpSet, Ref: in.InternRef(s.Interface, s.Member)}
		case Navigate:
			ops[i] = Op{Kind: OpNavigate, Path: s.Path}
		default:
			return nil, false
		}
	}
	return ops, true
}

// ExecuteOps runs a compiled op block against a host, stopping at the first
// error exactly like the interpreter: a failing statement aborts the block,
// and statements before it keep their effects.
func ExecuteOps(ops []Op, h OpHost) error {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpInvoke:
			if err := h.InvokeRef(op.Ref, op.Count); err != nil {
				return err
			}
		case OpSet:
			if err := h.SetRef(op.Ref); err != nil {
				return err
			}
		case OpNavigate:
			h.Navigate(op.Path)
		}
	}
	return nil
}
