// Package webscript defines WebScript, the scripting DSL the synthetic web's
// pages are written in. WebScript is the reproduction's stand-in for
// JavaScript: its statements invoke Web API features through the browser's
// prototype dispatch layer, so the measuring extension's prototype shims and
// singleton property watchpoints observe WebScript programs exactly as the
// paper's extension observes JavaScript (§4.2).
//
// The language:
//
//	invoke Document.createElement 3;       // call a method 3 times
//	set Window.name;                       // write a property
//	navigate "/products";                  // attempt a navigation
//	on load { ... }                        // run when the page finishes loading
//	on click "#menu" { ... }               // run when #menu is clicked
//	on click { ... }                       // run on any click
//	on scroll { ... }                      // run when the page scrolls
//	on input "#search" { ... }             // run on text entry
//	on timer 5 { ... }                     // run every 5 virtual seconds
//
// Feature references use "Interface.member" shorthand for the corpus name
// "Interface.prototype.member".
//
// Scripts execute two ways. Execute walks the parsed AST, resolving each
// statement's interface and member strings at dispatch time. Compile
// translates a parsed Script once into flat op lists ([]Op) whose operands
// are integer references interned through a RefInterner, and ExecuteOps
// replays them against an OpHost — the browser's hot path, where the same
// script runs thousands of times per survey. The two forms are
// observationally identical, including error behavior (a failing statement
// aborts its block; earlier effects stand), which the browser pins with a
// differential test over the synthetic-web corpus. Compile returns nil for
// ASTs containing statement types it does not know, and callers fall back
// to the interpreter.
package webscript
