package webscript

import (
	"errors"
	"fmt"
	"testing"
)

// testInterner interns string pairs to dense IDs, recording the order.
type testInterner struct {
	ids  map[string]int
	keys []string
}

func newTestInterner() *testInterner { return &testInterner{ids: map[string]int{}} }

func (in *testInterner) InternRef(iface, member string) int {
	key := iface + "." + member
	if id, ok := in.ids[key]; ok {
		return id
	}
	id := len(in.keys)
	in.ids[key] = id
	in.keys = append(in.keys, key)
	return id
}

// testOpHost applies ops against the interner's key table, with optional
// per-ref failures, recording an effect trace.
type testOpHost struct {
	in    *testInterner
	fail  map[string]error
	trace []string
}

func (h *testOpHost) effect(kind, key string, err error) error {
	if err != nil {
		return err
	}
	h.trace = append(h.trace, kind+" "+key)
	return nil
}

func (h *testOpHost) InvokeRef(ref, count int) error {
	key := h.in.keys[ref]
	return h.effect(fmt.Sprintf("invoke×%d", count), key, h.fail[key])
}

func (h *testOpHost) SetRef(ref int) error {
	key := h.in.keys[ref]
	return h.effect("set", key, h.fail[key])
}

func (h *testOpHost) Navigate(path string) {
	h.trace = append(h.trace, "navigate "+path)
}

func TestCompileInternsAndExecutes(t *testing.T) {
	src := `
invoke Document.createElement 3;
set Window.name;
navigate "/next";
on click ".btn" {
  invoke Document.createElement;
  invoke Element.setAttribute 2;
}
on timer 5 {
  navigate "/tick";
}
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := newTestInterner()
	c := Compile(s, in)
	if c == nil {
		t.Fatal("Compile returned nil for parser output")
	}
	if len(c.Bodies) != len(s.Handlers) {
		t.Fatalf("Bodies = %d blocks, want %d", len(c.Bodies), len(s.Handlers))
	}
	// The same reference compiles to the same ID.
	if c.Immediate[0].Ref != c.Bodies[0][0].Ref {
		t.Fatalf("Document.createElement interned twice: refs %d and %d",
			c.Immediate[0].Ref, c.Bodies[0][0].Ref)
	}

	h := &testOpHost{in: in}
	if err := ExecuteOps(c.Immediate, h); err != nil {
		t.Fatal(err)
	}
	for _, body := range c.Bodies {
		if err := ExecuteOps(body, h); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{
		"invoke×3 Document.createElement",
		"set Window.name",
		"navigate /next",
		"invoke×1 Document.createElement",
		"invoke×2 Element.setAttribute",
		"navigate /tick",
	}
	if len(h.trace) != len(want) {
		t.Fatalf("trace %v, want %v", h.trace, want)
	}
	for i := range want {
		if h.trace[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q", i, h.trace[i], want[i])
		}
	}
}

// TestExecuteOpsStopsAtFirstError mirrors the interpreter contract: a
// failing statement aborts the block, earlier statements keep their effects,
// later ones never run.
func TestExecuteOpsStopsAtFirstError(t *testing.T) {
	src := `
invoke A.ok;
invoke B.bad;
invoke C.never;
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := newTestInterner()
	c := Compile(s, in)
	boom := errors.New("boom")
	h := &testOpHost{in: in, fail: map[string]error{"B.bad": boom}}
	if err := ExecuteOps(c.Immediate, h); !errors.Is(err, boom) {
		t.Fatalf("ExecuteOps error = %v, want %v", err, boom)
	}
	if len(h.trace) != 1 || h.trace[0] != "invoke×1 A.ok" {
		t.Fatalf("trace = %v, want just A.ok", h.trace)
	}
}

// TestCompileUnknownStmtFallsBack pins the nil return for hand-built ASTs
// containing statement types the compiler does not know.
func TestCompileUnknownStmtFallsBack(t *testing.T) {
	type weird struct{ Stmt }
	s := &Script{Immediate: []Stmt{Invoke{Interface: "A", Member: "b", Count: 1}, weird{}}}
	if c := Compile(s, newTestInterner()); c != nil {
		t.Fatalf("Compile of unknown statement = %+v, want nil", c)
	}
	s = &Script{Handlers: []*Handler{{Event: EventLoad, Body: []Stmt{weird{}}}}}
	if c := Compile(s, newTestInterner()); c != nil {
		t.Fatalf("Compile of unknown handler statement = %+v, want nil", c)
	}
}

// TestEventTypeStringTable pins the slice-backed String lookup over every
// event, including both out-of-range fallback directions.
func TestEventTypeStringTable(t *testing.T) {
	cases := map[EventType]string{
		EventLoad:                     "load",
		EventClick:                    "click",
		EventScroll:                   "scroll",
		EventInput:                    "input",
		EventMove:                     "move",
		EventTimer:                    "timer",
		EventType(99):                 "EventType(99)",
		EventType(-1):                 "EventType(-1)",
		EventType(len(eventNameList)): fmt.Sprintf("EventType(%d)", len(eventNameList)),
	}
	for ev, want := range cases {
		if got := ev.String(); got != want {
			t.Errorf("EventType(%d).String() = %q, want %q", int(ev), got, want)
		}
	}
	// Round trip with the parser's name table.
	for name, ev := range eventNames {
		if ev.String() != name {
			t.Errorf("eventNames[%q] = %v, String() = %q", name, ev, ev.String())
		}
	}
}
