package webscript

import (
	"fmt"
	"strconv"
	"strings"
)

// EventType enumerates the interaction events handlers can bind.
type EventType int

const (
	EventLoad EventType = iota
	EventClick
	EventScroll
	EventInput
	EventMove
	EventTimer
)

var eventNames = map[string]EventType{
	"load":   EventLoad,
	"click":  EventClick,
	"scroll": EventScroll,
	"input":  EventInput,
	"move":   EventMove,
	"timer":  EventTimer,
}

// eventNameList is the inverse of eventNames, indexed by EventType. String
// used to range over the map hunting for its value — nondeterministic
// iteration on every call plus a map walk per event registration.
var eventNameList = [...]string{
	EventLoad:   "load",
	EventClick:  "click",
	EventScroll: "scroll",
	EventInput:  "input",
	EventMove:   "move",
	EventTimer:  "timer",
}

// String returns the source-level event name.
func (e EventType) String() string {
	if int(e) >= 0 && int(e) < len(eventNameList) {
		return eventNameList[e]
	}
	return fmt.Sprintf("EventType(%d)", int(e))
}

// Stmt is one executable statement.
type Stmt interface{ isStmt() }

// Invoke calls a Web API method Count times.
type Invoke struct {
	Interface string
	Member    string
	Count     int
}

// SetProp writes a Web API property once.
type SetProp struct {
	Interface string
	Member    string
}

// Navigate attempts to navigate the page to Path.
type Navigate struct {
	Path string
}

func (Invoke) isStmt()   {}
func (SetProp) isStmt()  {}
func (Navigate) isStmt() {}

// Handler is an event-bound statement block.
type Handler struct {
	Event    EventType
	Selector string // optional element filter for click/input
	Interval int    // virtual seconds, for EventTimer
	Body     []Stmt
}

// Script is a parsed WebScript program.
type Script struct {
	// Immediate statements run when the script executes (page load
	// parse time, like top-level JavaScript).
	Immediate []Stmt
	// Handlers are registered against the page's event loop.
	Handlers []*Handler
}

// Error is a WebScript syntax error; the paper notes that sites with syntax
// errors in their JavaScript could not be measured, and the browser
// simulator surfaces this error type for the same purpose.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("webscript: line %d: %s", e.Line, e.Msg)
}

// Parse parses a WebScript program.
func Parse(src string) (*Script, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &wsParser{toks: toks}
	s := &Script{}
	for !p.eof() {
		if p.peekText() == "on" {
			h, err := p.parseHandler()
			if err != nil {
				return nil, err
			}
			s.Handlers = append(s.Handlers, h)
			continue
		}
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		s.Immediate = append(s.Immediate, st)
	}
	return s, nil
}

// --- lexer ---

type wsTokenKind int

const (
	wsEOF wsTokenKind = iota
	wsIdent
	wsInt
	wsString
	wsPunct
)

type wsToken struct {
	kind wsTokenKind
	text string
	line int
}

func lex(src string) ([]wsToken, error) {
	var toks []wsToken
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isWSIdentStart(c):
			start := i
			for i < len(src) && isWSIdentPart(src[i]) {
				i++
			}
			toks = append(toks, wsToken{wsIdent, src[start:i], line})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			toks = append(toks, wsToken{wsInt, src[start:i], line})
		case c == '"':
			i++
			start := i
			for i < len(src) && src[i] != '"' && src[i] != '\n' {
				i++
			}
			if i >= len(src) || src[i] != '"' {
				return nil, &Error{Line: line, Msg: "unterminated string"}
			}
			toks = append(toks, wsToken{wsString, src[start:i], line})
			i++
		case strings.IndexByte(".;{}", c) >= 0:
			toks = append(toks, wsToken{wsPunct, string(c), line})
			i++
		default:
			return nil, &Error{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, wsToken{kind: wsEOF, line: line})
	return toks, nil
}

func isWSIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isWSIdentPart(c byte) bool {
	return isWSIdentStart(c) || c >= '0' && c <= '9'
}

// --- parser ---

type wsParser struct {
	toks []wsToken
	pos  int
}

func (p *wsParser) cur() wsToken { return p.toks[p.pos] }
func (p *wsParser) eof() bool    { return p.cur().kind == wsEOF }

func (p *wsParser) peekText() string {
	t := p.cur()
	if t.kind == wsIdent {
		return t.text
	}
	return ""
}

func (p *wsParser) errorf(format string, args ...any) error {
	return &Error{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *wsParser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != wsPunct || t.text != s {
		return p.errorf("expected %q, got %q", s, t.text)
	}
	p.pos++
	return nil
}

func (p *wsParser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != wsIdent {
		return "", p.errorf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// parseFeatureRef parses "Interface.member".
func (p *wsParser) parseFeatureRef() (string, string, error) {
	iface, err := p.expectIdent()
	if err != nil {
		return "", "", err
	}
	if err := p.expectPunct("."); err != nil {
		return "", "", err
	}
	member, err := p.expectIdent()
	if err != nil {
		return "", "", err
	}
	return iface, member, nil
}

func (p *wsParser) parseSimpleStmt() (Stmt, error) {
	kw, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	switch kw {
	case "invoke":
		iface, member, err := p.parseFeatureRef()
		if err != nil {
			return nil, err
		}
		count := 1
		if p.cur().kind == wsInt {
			count, err = strconv.Atoi(p.cur().text)
			if err != nil || count < 1 {
				return nil, p.errorf("bad invoke count %q", p.cur().text)
			}
			p.pos++
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return Invoke{Interface: iface, Member: member, Count: count}, nil
	case "set":
		iface, member, err := p.parseFeatureRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return SetProp{Interface: iface, Member: member}, nil
	case "navigate":
		t := p.cur()
		if t.kind != wsString {
			return nil, p.errorf("navigate expects a quoted path")
		}
		p.pos++
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return Navigate{Path: t.text}, nil
	default:
		return nil, p.errorf("unknown statement %q", kw)
	}
}

func (p *wsParser) parseHandler() (*Handler, error) {
	if _, err := p.expectIdent(); err != nil { // "on"
		return nil, err
	}
	evName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ev, ok := eventNames[evName]
	if !ok {
		return nil, p.errorf("unknown event %q", evName)
	}
	h := &Handler{Event: ev, Interval: 1}
	switch {
	case ev == EventTimer && p.cur().kind == wsInt:
		h.Interval, _ = strconv.Atoi(p.cur().text)
		if h.Interval < 1 {
			return nil, p.errorf("bad timer interval %q", p.cur().text)
		}
		p.pos++
	case (ev == EventClick || ev == EventInput) && p.cur().kind == wsString:
		h.Selector = p.cur().text
		p.pos++
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind == wsPunct && t.text == "}" {
			p.pos++
			break
		}
		if t.kind == wsEOF {
			return nil, p.errorf("unterminated handler body")
		}
		if p.peekText() == "on" {
			return nil, p.errorf("nested handlers are not supported")
		}
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		h.Body = append(h.Body, st)
	}
	return h, nil
}

// --- execution ---

// Host receives the effects of executing WebScript statements. The browser
// implements it on top of the webapi dispatch layer.
type Host interface {
	// Invoke calls the method feature count times.
	Invoke(iface, member string, count int) error
	// SetProperty writes the property feature once.
	SetProperty(iface, member string) error
	// Navigate attempts a navigation to path.
	Navigate(path string)
}

// Execute runs a statement list against a host, stopping at the first
// error (an unknown feature is the analog of a JavaScript ReferenceError).
func Execute(stmts []Stmt, h Host) error {
	for _, st := range stmts {
		switch s := st.(type) {
		case Invoke:
			if err := h.Invoke(s.Interface, s.Member, s.Count); err != nil {
				return err
			}
		case SetProp:
			if err := h.SetProperty(s.Interface, s.Member); err != nil {
				return err
			}
		case Navigate:
			h.Navigate(s.Path)
		default:
			return fmt.Errorf("webscript: unknown statement type %T", st)
		}
	}
	return nil
}

// --- serialization (used by the synthetic-web generator) ---

// Format renders a script back to WebScript source.
func Format(s *Script) string {
	var b strings.Builder
	for _, st := range s.Immediate {
		formatStmt(&b, st, "")
	}
	for _, h := range s.Handlers {
		b.WriteString("on " + h.Event.String())
		switch {
		case h.Event == EventTimer:
			fmt.Fprintf(&b, " %d", h.Interval)
		case h.Selector != "":
			fmt.Fprintf(&b, " %q", h.Selector)
		}
		b.WriteString(" {\n")
		for _, st := range h.Body {
			formatStmt(&b, st, "  ")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func formatStmt(b *strings.Builder, st Stmt, indent string) {
	switch s := st.(type) {
	case Invoke:
		if s.Count == 1 {
			fmt.Fprintf(b, "%sinvoke %s.%s;\n", indent, s.Interface, s.Member)
		} else {
			fmt.Fprintf(b, "%sinvoke %s.%s %d;\n", indent, s.Interface, s.Member, s.Count)
		}
	case SetProp:
		fmt.Fprintf(b, "%sset %s.%s;\n", indent, s.Interface, s.Member)
	case Navigate:
		fmt.Fprintf(b, "%snavigate %q;\n", indent, s.Path)
	}
}
