package webscript

import "testing"

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(sampleScript)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sampleScript); err != nil {
			b.Fatal(err)
		}
	}
}

// nullHost discards all effects, isolating interpreter overhead.
type nullHost struct{}

func (nullHost) Invoke(string, string, int) error { return nil }
func (nullHost) SetProperty(string, string) error { return nil }
func (nullHost) Navigate(string)                  {}

func BenchmarkExecute(b *testing.B) {
	s, err := Parse(sampleScript)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Execute(s.Immediate, nullHost{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormat(b *testing.B) {
	s, err := Parse(sampleScript)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Format(s)
	}
}
