package crawler

import (
	"math"
	"testing"

	"repro/internal/browser"
	"repro/internal/extension"
	"repro/internal/measure"
	"repro/internal/standards"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
	"repro/internal/webserver"
)

// Shared small survey for the package's tests: 120 sites, full methodology.
var (
	sharedWeb   *synthweb.Web
	sharedLog   *measure.Log
	sharedStats *Stats
)

func runSurvey(t testing.TB) (*synthweb.Web, *measure.Log, *Stats) {
	t.Helper()
	if sharedLog != nil {
		return sharedWeb, sharedLog, sharedStats
	}
	reg, err := webidl.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bind := webapi.NewBindings(reg)
	c := New(web, bind, DefaultConfig(11))
	log, stats, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	sharedWeb, sharedLog, sharedStats = web, log, stats
	return web, log, stats
}

func TestSurveyMeasuresMostDomains(t *testing.T) {
	web, _, stats := runSurvey(t)
	wantFailed := 0
	for _, s := range web.Sites {
		if s.Failure != synthweb.FailNone {
			wantFailed++
		}
	}
	if stats.DomainsFailed != wantFailed {
		t.Errorf("failed domains = %d, want %d", stats.DomainsFailed, wantFailed)
	}
	if stats.DomainsMeasured != len(web.Sites)-wantFailed {
		t.Errorf("measured domains = %d, want %d", stats.DomainsMeasured, len(web.Sites)-wantFailed)
	}
	if stats.Invocations == 0 || stats.PagesVisited == 0 {
		t.Error("no invocations or pages recorded")
	}
}

func TestThirteenPagesPerVisit(t *testing.T) {
	web, log, _ := runSurvey(t)
	// Pages per (site, case, round) = 1 + 3 + 9 = 13 when the site has
	// enough reachable URLs, which the generated layout guarantees.
	cl := log.Cases[measure.CaseDefault]
	if cl == nil {
		t.Fatal("default case missing")
	}
	measured := 0
	for _, s := range web.Sites {
		if s.Failure == synthweb.FailNone {
			measured++
		}
	}
	budget := int64(measured) * int64(len(cl.Rounds)) * 13
	if cl.PagesVisited > budget {
		t.Errorf("default-case pages = %d exceeds the 13-page budget %d", cl.PagesVisited, budget)
	}
	// The paper's 13 pages is the design budget; a visit falls short only
	// when monkey testing surfaced too few distinct URLs. Require at
	// least 96% budget utilization.
	if float64(cl.PagesVisited) < 0.96*float64(budget) {
		t.Errorf("default-case pages = %d, want >= 96%% of budget %d", cl.PagesVisited, budget)
	}
}

// stdSites computes per-standard site counts from the log.
func stdSites(t testing.TB, web *synthweb.Web, log *measure.Log, cs measure.Case) map[standards.Abbrev]int {
	t.Helper()
	out := make(map[standards.Abbrev]int)
	for site := range web.Sites {
		u := log.SiteUnion(cs, site)
		if u == nil {
			continue
		}
		seen := map[standards.Abbrev]bool{}
		for _, f := range web.Registry.Features {
			if u.Get(f.ID) && !seen[f.Standard] {
				seen[f.Standard] = true
				out[f.Standard]++
			}
		}
	}
	return out
}

func TestMeasuredStandardPopularityMatchesGroundTruth(t *testing.T) {
	web, log, _ := runSurvey(t)
	got := stdSites(t, web, log, measure.CaseDefault)
	for _, std := range standards.Catalog() {
		want := web.GroundTruthSites(std.Abbrev)
		g := got[std.Abbrev]
		// Allow a small shortfall from gated placements the monkey
		// missed in all 5 rounds.
		tolerance := 2 + want/12
		if g > want || want-g > tolerance {
			t.Errorf("standard %s: measured on %d sites, ground truth %d (tolerance %d)",
				std.Abbrev, g, want, tolerance)
		}
	}
}

func TestBlockingReducesUsage(t *testing.T) {
	web, log, _ := runSurvey(t)
	def := stdSites(t, web, log, measure.CaseDefault)
	blk := stdSites(t, web, log, measure.CaseBlocking)
	for _, std := range standards.Catalog() {
		if blk[std.Abbrev] > def[std.Abbrev] {
			t.Errorf("standard %s: blocking increased usage %d -> %d",
				std.Abbrev, def[std.Abbrev], blk[std.Abbrev])
		}
	}
	// Heavily blocked standards must show a strong reduction.
	for _, abbrev := range []standards.Abbrev{"PT2", "BE", "SVG"} {
		std := standards.MustByAbbrev(abbrev)
		if def[abbrev] < 5 {
			continue
		}
		gotRate := 1 - float64(blk[abbrev])/float64(def[abbrev])
		if math.Abs(gotRate-std.BlockRate) > 0.2 {
			t.Errorf("standard %s: measured block rate %.2f, paper %.2f", abbrev, gotRate, std.BlockRate)
		}
	}
	// Core DOM standards stay essentially unblocked.
	for _, abbrev := range []standards.Abbrev{"DOM1", "DOM"} {
		if def[abbrev] == 0 {
			continue
		}
		gotRate := 1 - float64(blk[abbrev])/float64(def[abbrev])
		if gotRate > 0.1 {
			t.Errorf("standard %s: block rate %.2f, want near zero", abbrev, gotRate)
		}
	}
}

func TestAdVsTrackerBlocking(t *testing.T) {
	web, log, _ := runSurvey(t)
	def := stdSites(t, web, log, measure.CaseDefault)
	ad := stdSites(t, web, log, measure.CaseAdBlock)
	gh := stdSites(t, web, log, measure.CaseGhostery)
	// Tracker-affine standards (e.g. WCR) must be blocked more by
	// Ghostery than by AdBlock Plus; the single-extension cases must
	// never block more than the combined case unblocks.
	for _, abbrev := range []standards.Abbrev{"WCR", "PT2", "BA"} {
		if def[abbrev] < 10 {
			continue
		}
		adRate := 1 - float64(ad[abbrev])/float64(def[abbrev])
		ghRate := 1 - float64(gh[abbrev])/float64(def[abbrev])
		if ghRate <= adRate {
			t.Errorf("standard %s: tracker-affine but ghostery rate %.2f <= adblock rate %.2f",
				abbrev, ghRate, adRate)
		}
	}
	// UIE is ad-affine: AdBlock blocks it harder.
	if def["UIE"] >= 10 {
		adRate := 1 - float64(ad["UIE"])/float64(def["UIE"])
		ghRate := 1 - float64(gh["UIE"])/float64(def["UIE"])
		if adRate <= ghRate {
			t.Errorf("UIE: ad-affine but adblock rate %.2f <= ghostery rate %.2f", adRate, ghRate)
		}
	}
}

func TestRoundsDiscoverIncrementally(t *testing.T) {
	web, log, _ := runSurvey(t)
	cl := log.Cases[measure.CaseDefault]
	// Compute average newly-seen standards per round (Table 3): round 2
	// must discover more than round 5, and by round 5 discovery should
	// be near zero.
	perRound := make([]float64, len(cl.Rounds))
	measured := 0
	for site := range web.Sites {
		if !log.Measured[site] {
			continue
		}
		measured++
		seen := map[standards.Abbrev]bool{}
		for round, rl := range cl.Rounds {
			sf := rl.SiteFeatures[site]
			if sf == nil {
				continue
			}
			newStd := 0
			for _, f := range web.Registry.Features {
				if sf.Get(f.ID) && !seen[f.Standard] {
					seen[f.Standard] = true
					newStd++
				}
			}
			if round > 0 {
				perRound[round] += float64(newStd)
			}
		}
	}
	for r := 1; r < len(perRound); r++ {
		perRound[r] /= float64(measured)
	}
	if perRound[1] <= perRound[4] {
		t.Errorf("round discovery not decaying: %v", perRound)
	}
	if perRound[4] > 0.3 {
		t.Errorf("round-5 discovery %.2f, want near zero (paper: 0.00)", perRound[4])
	}
	if perRound[1] < 0.2 {
		t.Errorf("round-2 discovery %.2f suspiciously low (paper: 1.56)", perRound[1])
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	web, log, _ := runSurvey(t)
	c := New(web, webapi.NewBindings(web.Registry), DefaultConfig(11))
	c.Cfg.Cases = []measure.Case{measure.CaseDefault}
	c.Cfg.Parallelism = 2
	log2, _, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for site := range web.Sites {
		a := log.SiteUnion(measure.CaseDefault, site)
		b := log2.SiteUnion(measure.CaseDefault, site)
		if (a == nil) != (b == nil) {
			t.Fatalf("site %d measured in one run only", site)
		}
		if a == nil {
			continue
		}
		if a.Count() != b.Count() {
			t.Fatalf("site %d: feature sets differ across identical runs (%d vs %d)",
				site, a.Count(), b.Count())
		}
	}
}

func TestHumanVisitObservesFeatures(t *testing.T) {
	web, _, _ := runSurvey(t)
	c := New(web, webapi.NewBindings(web.Registry), DefaultConfig(11))
	var site *synthweb.Site
	for _, s := range web.Sites {
		if s.Failure == synthweb.FailNone {
			site = s
			break
		}
	}
	counts, err := c.HumanVisit(site, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) == 0 {
		t.Fatal("human visit observed nothing")
	}
}

func TestUnresponsiveSiteFails(t *testing.T) {
	web, log, _ := runSurvey(t)
	for _, s := range web.Sites {
		if s.Failure == synthweb.FailNone {
			continue
		}
		if log.Measured[s.Index] {
			t.Errorf("failing site %s (%v) was marked measured", s.Domain, s.Failure)
		}
		if u := log.SiteUnion(measure.CaseDefault, s.Index); u != nil && u.Any() {
			// A syntax-error site may have produced partial
			// observations before the error was detected; the
			// Measured flag must still exclude it.
			if log.Measured[s.Index] {
				t.Errorf("failing site %s contributed measurements", s.Domain)
			}
		}
	}
}

func TestPathNoveltyAblation(t *testing.T) {
	web, _, _ := runSurvey(t)
	cfg := DefaultConfig(11)
	cfg.Cases = []measure.Case{measure.CaseDefault}
	cfg.Rounds = 1
	cfg.PathNoveltyPreference = false
	c := New(web, webapi.NewBindings(web.Registry), cfg)
	log, stats, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesVisited == 0 {
		t.Fatal("ablated crawl visited nothing")
	}
	_ = log
}

func TestCredentialedCrawlSeesClosedWeb(t *testing.T) {
	web, _, _ := runSurvey(t)
	var members []*synthweb.Site
	for _, s := range web.Sites {
		if web.HasMembersArea(s) {
			members = append(members, s)
		}
		if len(members) == 4 {
			break
		}
	}
	if len(members) == 0 {
		t.Skip("no member site in sample")
	}

	closedFeatures := func(counts map[int]int64) int {
		n := 0
		pool := map[standards.Abbrev]bool{}
		for _, std := range synthweb.ClosedWebStandards() {
			pool[std] = true
		}
		for id := range counts {
			if pool[web.Registry.Features[id].Standard] {
				n++
			}
		}
		return n
	}

	run := func(withCreds bool) int {
		cfg := DefaultConfig(77)
		cfg.Cases = []measure.Case{measure.CaseDefault}
		cfg.Rounds = 5
		cfg.WithCredentials = withCreds
		c := New(web, webapi.NewBindings(web.Registry), cfg)
		m := extensionMeasurer()
		exts, err := c.extensionsFor(measure.CaseDefault, m)
		if err != nil {
			t.Fatal(err)
		}
		w := &Visitor{crawler: c, cfg: cfg, browser: newBrowser(c, exts), measurer: m}
		total := 0
		for _, member := range members {
			for round := 0; round < cfg.Rounds; round++ {
				counts, _, err := w.CrawlOnce(member, VisitSeed(cfg.Seed, member.Index, measure.CaseDefault, round))
				if err != nil {
					t.Fatal(err)
				}
				total += closedFeatures(counts)
			}
		}
		return total
	}

	open := run(false)
	if open != 0 {
		t.Errorf("open-web crawl observed %d closed-web features; the login wall leaks", open)
	}
	closed := run(true)
	if closed == 0 {
		t.Error("credentialed crawl observed no closed-web features (paper §7.3 mode)")
	}
}

func TestAuthenticateHelper(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://a.example/account", "http://a.example/account?auth=" + synthweb.SessionToken},
		{"http://a.example/account/p1", "http://a.example/account/p1?auth=" + synthweb.SessionToken},
		{"http://a.example/account?auth=member", "http://a.example/account?auth=member"},
		{"http://a.example/sec1", "http://a.example/sec1"},
	}
	for _, c := range cases {
		if got := authenticate(c.in); got != c.want {
			t.Errorf("authenticate(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// extensionMeasurer and newBrowser are tiny indirections so tests can build
// workers directly.
func extensionMeasurer() *extension.Measurer { return extension.NewMeasurer() }

func newBrowser(c *Crawler, exts []browser.Extension) *browser.Browser {
	return browser.New(c.Bindings, webserver.DirectFetcher{Web: c.Web}, exts...)
}
