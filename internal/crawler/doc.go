// Package crawler implements the paper's automated survey methodology
// (§4.3 of "Browser Feature Usage on the Modern Web", IMC 2016): for every
// site, repeated monkey-tested visits of a 13-page breadth-first sample of
// the site's hierarchy (1 home + 3 sections + 9 leaves), in a default
// browser profile and in profiles with content-blocking extensions
// installed, five rounds each, 30 virtual seconds of gremlins-style
// interaction per page. URL selection prefers unseen directory structure
// (§4.3.1), and the §7.3 closed-web mode authenticates members-area
// navigations.
//
// The package exposes two levels of API. Crawler.Run is the self-contained
// sequential survey loop. Visitor (via Crawler.NewVisitor) is the
// single-visit mechanics — browser stack construction, monkey testing, BFS
// page sampling — that external schedulers drive; internal/pipeline uses it
// to run the same survey sharded across worker pools. Both derive per-visit
// randomness from VisitSeed, which is what makes the two execution engines
// produce identical logs.
//
// Crawler.HumanVisit implements the paper's external-validation protocol
// (§6.2): 90 seconds of scripted casual browsing across three pages.
package crawler
