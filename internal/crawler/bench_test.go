package crawler

import (
	"testing"

	"repro/internal/extension"
	"repro/internal/measure"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
	"repro/internal/webserver"

	brws "repro/internal/browser"
)

func benchEnv(b *testing.B) (*Crawler, *synthweb.Site) {
	b.Helper()
	reg, err := webidl.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 30, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.Cases = []measure.Case{measure.CaseDefault}
	c := New(web, webapi.NewBindings(reg), cfg)
	for _, s := range web.Sites {
		if s.Failure == synthweb.FailNone {
			return c, s
		}
	}
	b.Fatal("no healthy site")
	return nil, nil
}

// BenchmarkCrawlSiteVisit measures one full 13-page monkey-tested visit.
func BenchmarkCrawlSiteVisit(b *testing.B) {
	c, site := benchEnv(b)
	m := extension.NewMeasurer()
	exts, err := c.extensionsFor(measure.CaseDefault, m)
	if err != nil {
		b.Fatal(err)
	}
	w := &Visitor{
		crawler:  c,
		cfg:      c.Cfg,
		browser:  brws.New(c.Bindings, webserver.DirectFetcher{Web: c.Web}, exts...),
		measurer: m,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pages int
	for i := 0; i < b.N; i++ {
		_, p, err := w.CrawlOnce(site, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		pages = p
	}
	b.ReportMetric(float64(pages), "pages/visit")
}

// BenchmarkCrawlSiteVisitBlocking measures the same visit with both
// blocking extensions installed.
func BenchmarkCrawlSiteVisitBlocking(b *testing.B) {
	c, site := benchEnv(b)
	m := extension.NewMeasurer()
	exts, err := c.extensionsFor(measure.CaseBlocking, m)
	if err != nil {
		b.Fatal(err)
	}
	w := &Visitor{
		crawler:  c,
		cfg:      c.Cfg,
		browser:  brws.New(c.Bindings, webserver.DirectFetcher{Web: c.Web}, exts...),
		measurer: m,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.CrawlOnce(site, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHumanVisit measures the §6.2 manual-browsing model.
func BenchmarkHumanVisit(b *testing.B) {
	c, site := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.HumanVisit(site, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
