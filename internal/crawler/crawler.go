package crawler

import (
	"fmt"
	"math/rand"
	"net/url"
	"strings"
	"sync"

	"repro/internal/blocking"
	"repro/internal/browser"
	"repro/internal/dom"
	"repro/internal/extension"
	"repro/internal/gremlins"
	"repro/internal/measure"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webserver"
)

// Config parameterizes the survey.
type Config struct {
	// Rounds is the number of visits per (site, case); the paper uses 5.
	Rounds int
	// Branch is the BFS fan-out per level; the paper uses 3 (1 home +
	// 3 sections + 9 leaves = 13 pages).
	Branch int
	// PageSeconds is the monkey-testing budget per page (paper: 30).
	PageSeconds float64
	// ActionsPerSecond is the gremlin action rate.
	ActionsPerSecond float64
	// Parallelism is the number of concurrent site workers.
	Parallelism int
	// Seed drives every random choice.
	Seed int64
	// Cases lists the browser configurations to run; defaults to the
	// paper's default + blocking pair plus the ad-only and tracker-only
	// profiles behind Figure 7.
	Cases []measure.Case
	// PathNoveltyPreference disables the paper's preference for URLs
	// with unseen directory structure when false (ablation).
	PathNoveltyPreference bool
	// WithCredentials enables the paper's §7.3 closed-web mode: the
	// crawler authenticates navigations into members areas by appending
	// the site's session token, so monkey testing covers logged-in
	// functionality too.
	WithCredentials bool
	// DisableBrowserReuse turns off the browser's revisit fast path (DOM
	// template cache, page/runtime pooling) so every load fetches and
	// allocates from scratch — an ablation/debugging knob; survey logs
	// are byte-identical either way (test-enforced).
	DisableBrowserReuse bool
	// DisableScriptCompile keeps page scripts on the webscript AST
	// interpreter instead of the compiled-op fast path — an
	// ablation/debugging knob; survey logs are byte-identical either way
	// (test-enforced).
	DisableScriptCompile bool
	// DisableMatcherIndex routes ABP ShouldBlock decisions through the
	// linear all-rules scan instead of the tokenized rule index — an
	// ablation/debugging knob; survey logs are byte-identical either way
	// (test-enforced).
	DisableMatcherIndex bool
}

// DefaultConfig mirrors the paper's methodology.
func DefaultConfig(seed int64) Config {
	return Config{
		Rounds:                5,
		Branch:                3,
		PageSeconds:           30,
		ActionsPerSecond:      2,
		Parallelism:           4,
		Seed:                  seed,
		Cases:                 measure.AllCases(),
		PathNoveltyPreference: true,
	}
}

// Crawler runs surveys against a synthetic web.
type Crawler struct {
	Web      *synthweb.Web
	Bindings *webapi.Bindings
	// NewFetcher builds a fetcher per worker; nil means direct
	// in-process fetching.
	NewFetcher func() webserver.Fetcher
	Cfg        Config

	// Parsed blocker state is shared across all visitors: the filter
	// list and tracker database are immutable once built, so one parse
	// serves every worker of every shard.
	blockersOnce sync.Once
	abpEngine    *blocking.Engine
	trackerDB    *blocking.TrackerDB
	blockersErr  error
}

// New builds a crawler with the direct fetcher.
func New(web *synthweb.Web, bindings *webapi.Bindings, cfg Config) *Crawler {
	return &Crawler{Web: web, Bindings: bindings, Cfg: cfg}
}

// Stats summarizes a survey (Table 1).
type Stats struct {
	// DomainsMeasured is the number of domains that produced data
	// (paper: 9,733 of 10,000).
	DomainsMeasured int
	// DomainsFailed is the number of unmeasurable domains (paper: 267).
	DomainsFailed int
	// PagesVisited is the number of page visits across all cases and
	// rounds (paper: 2,240,484).
	PagesVisited int64
	// Invocations is the number of feature invocations recorded
	// (paper: 21,511,926,733).
	Invocations int64
	// InteractionSeconds is the total simulated interaction time
	// (paper: ~480 days).
	InteractionSeconds float64
}

// blockers parses the synthetic web's filter list and tracker database
// exactly once per Crawler; both structures are read-only after construction
// and safe to share across concurrent browsers.
func (c *Crawler) blockers() (*blocking.Engine, *blocking.TrackerDB, error) {
	c.blockersOnce.Do(func() {
		list, err := blocking.ParseList("easylist-synthetic", c.Web.FilterListText)
		if err != nil {
			c.blockersErr = fmt.Errorf("crawler: parsing filter list: %w", err)
			return
		}
		c.abpEngine = blocking.NewEngine(list)
		c.abpEngine.DisableIndex = c.Cfg.DisableMatcherIndex
		db, err := blocking.ParseTrackerDB(c.Web.TrackerLibText)
		if err != nil {
			c.blockersErr = fmt.Errorf("crawler: parsing tracker library: %w", err)
			return
		}
		c.trackerDB = db
	})
	return c.abpEngine, c.trackerDB, c.blockersErr
}

// caseNeedsBlockers reports whether the configuration installs any blocking
// extension.
func caseNeedsBlockers(cs measure.Case) bool {
	return cs == measure.CaseBlocking || cs == measure.CaseAdBlock || cs == measure.CaseGhostery
}

// extensionsFor builds the extension stack for a case. The measurer always
// rides along; blockers depend on the case.
func (c *Crawler) extensionsFor(cs measure.Case, m *extension.Measurer) ([]browser.Extension, error) {
	exts := []browser.Extension{m}
	needABP := cs == measure.CaseBlocking || cs == measure.CaseAdBlock
	needGhostery := cs == measure.CaseBlocking || cs == measure.CaseGhostery
	if !needABP && !needGhostery {
		return exts, nil
	}
	abp, ghostery, err := c.blockers()
	if err != nil {
		return nil, err
	}
	if needABP {
		exts = append(exts, &browser.BlockingExtension{Label: "adblock-plus", Blocker: abp})
	}
	if needGhostery {
		exts = append(exts, &browser.BlockingExtension{Label: "ghostery", Blocker: ghostery})
	}
	return exts, nil
}

// Run executes the full survey and returns the measurement log and summary
// statistics.
func (c *Crawler) Run() (*measure.Log, *Stats, error) {
	cfg := c.Cfg
	if cfg.Rounds <= 0 || cfg.Branch <= 0 {
		return nil, nil, fmt.Errorf("crawler: invalid config %+v", cfg)
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if len(cfg.Cases) == 0 {
		cfg.Cases = measure.AllCases()
	}

	domains := make([]string, len(c.Web.Sites))
	for i, s := range c.Web.Sites {
		domains[i] = s.Domain
	}
	log := measure.NewLog(len(c.Web.Registry.Features), domains)

	// Surface blocker parse errors up front instead of inside workers:
	// they are deterministic, identical across workers, and fatal. A
	// default-only survey never touches the blocker texts, so it must
	// not fail on them either.
	for _, cs := range cfg.Cases {
		if caseNeedsBlockers(cs) {
			if _, _, err := c.blockers(); err != nil {
				return nil, nil, err
			}
			break
		}
	}

	var mu sync.Mutex
	stats := &Stats{}
	failedSites := make(map[int]bool)

	sites := make(chan *synthweb.Site)
	var wg sync.WaitGroup
	for workerID := 0; workerID < cfg.Parallelism; workerID++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one browser per case, sharing the
			// script cache across the sites it processes.
			workers := make(map[measure.Case]*Visitor)
			for _, cs := range cfg.Cases {
				v, err := c.newVisitor(cs, cfg)
				if err != nil {
					return
				}
				workers[cs] = v
			}
			for site := range sites {
				for _, cs := range cfg.Cases {
					w := workers[cs]
					for round := 0; round < cfg.Rounds; round++ {
						seed := VisitSeed(cfg.Seed, site.Index, cs, round)
						counts, pages, err := w.CrawlOnce(site, seed)
						mu.Lock()
						if err != nil {
							failedSites[site.Index] = true
							mu.Unlock()
							break
						}
						log.Record(cs, round, site.Index, counts, pages)
						stats.PagesVisited += int64(pages)
						stats.InteractionSeconds += float64(pages) * cfg.PageSeconds
						for _, n := range counts {
							stats.Invocations += n
						}
						mu.Unlock()
					}
				}
			}
		}()
	}
	for _, s := range c.Web.Sites {
		sites <- s
	}
	close(sites)
	wg.Wait()

	for i := range c.Web.Sites {
		if failedSites[i] {
			log.Measured[i] = false
		}
	}
	stats.DomainsMeasured = log.MeasuredCount()
	stats.DomainsFailed = len(c.Web.Sites) - stats.DomainsMeasured
	return log, stats, nil
}

// VisitSeed derives the deterministic seed of one visit. Every scheduler —
// the sequential Run loop here and the sharded engine in internal/pipeline —
// must use this derivation so a visit's randomness depends only on
// (base seed, site, case, round), never on which worker performs it.
func VisitSeed(base int64, site int, cs measure.Case, round int) int64 {
	var caseSalt int64
	for _, b := range []byte(cs) {
		caseSalt = caseSalt*131 + int64(b)
	}
	return base ^ (int64(site)+1)*1_000_003 ^ caseSalt*7_919 ^ int64(round+1)*104_729
}

// Visitor crawls sites under one browser configuration. A Visitor owns one
// browser (and its script cache) and must be used from a single goroutine;
// create one per worker via NewVisitor.
type Visitor struct {
	crawler  *Crawler
	cfg      Config
	browser  *browser.Browser
	measurer *extension.Measurer

	// Per-visit scratch state, interned across CrawlOnce calls: a 90-site
	// survey performs thousands of visits per worker, and rebuilding
	// these maps (and the gremlin horde) every visit dominated the
	// scheduler-side allocation profile (see internal/pipeline
	// benchmarks). Reuse is safe because a Visitor is single-goroutine.
	horde      *gremlins.Horde
	counts     map[int]int64
	visited    map[string]bool
	seenDirs   map[string]bool
	pool       []string
	navSeen    map[string]bool
	navRawSeen map[string]bool
	navOut     []string
	dirPat     map[string]string // memoized dirPattern per candidate URL
	dirUnseen  []string          // selectURLs partition scratch
	dirSeen    []string
}

// NewVisitor builds a single-goroutine visitor for one browser
// configuration, wiring the measurer and the case's blocking extensions.
func (c *Crawler) NewVisitor(cs measure.Case) (*Visitor, error) {
	return c.newVisitor(cs, c.Cfg)
}

func (c *Crawler) newVisitor(cs measure.Case, cfg Config) (*Visitor, error) {
	m := extension.NewMeasurer()
	exts, err := c.extensionsFor(cs, m)
	if err != nil {
		return nil, err
	}
	fetcher := webserver.Fetcher(webserver.DirectFetcher{Web: c.Web})
	if c.NewFetcher != nil {
		fetcher = c.NewFetcher()
	}
	b := browser.New(c.Bindings, fetcher, exts...)
	b.DisableReuse = cfg.DisableBrowserReuse
	b.DisableScriptCompile = cfg.DisableScriptCompile
	return &Visitor{
		crawler:  c,
		cfg:      cfg,
		browser:  b,
		measurer: m,
	}, nil
}

// ensureScratch builds the interned per-visit state on first use (lazily,
// so a Visitor assembled by hand in tests works too).
func (w *Visitor) ensureScratch() {
	if w.horde == nil {
		w.horde = &gremlins.Horde{
			Species: []gremlins.Weighted{
				{Species: gremlins.Clicker{}, Weight: 0.55},
				{Species: gremlins.Scroller{}, Weight: 0.25},
				{Species: gremlins.Typer{}, Weight: 0.20},
			},
			Seconds:          w.cfg.PageSeconds,
			ActionsPerSecond: w.cfg.ActionsPerSecond,
		}
		w.counts = make(map[int]int64)
		w.visited = make(map[string]bool)
		w.seenDirs = make(map[string]bool)
		w.navSeen = make(map[string]bool)
		w.navRawSeen = make(map[string]bool)
		w.dirPat = make(map[string]string)
	}
}

// CrawlOnce performs one round of the paper's per-site procedure: monkey
// testing on the home page, then a breadth-first expansion through Branch
// levels of intercepted navigation targets (1 + 3 + 9 = 13 pages for
// Branch=3), 30 virtual seconds each. It returns the feature counts
// observed. A dead home page or a script syntax error makes the site
// unmeasurable, matching the paper's 267 lost domains.
//
// The returned map is the Visitor's interned scratch: it stays valid only
// until the next CrawlOnce on the same Visitor, so callers that retain the
// counts past that point must copy them. Both survey engines consume the
// map (log record, bitset conversion) before the next visit.
func (w *Visitor) CrawlOnce(site *synthweb.Site, seed int64) (map[int]int64, int, error) {
	rng := rand.New(rand.NewSource(seed))
	w.ensureScratch()
	horde := w.horde

	sameSite := func(host string) bool {
		return w.crawler.Web.Ranking.SameSite(host, site.Domain)
	}

	clear(w.counts)
	counts := w.counts
	merge := func(m map[int]int64) {
		for id, n := range m {
			counts[id] += n
		}
	}

	clear(w.seenDirs)
	clear(w.visited)
	seenDirs := w.seenDirs
	visited := w.visited
	pages := 0

	// visit loads a URL, monkey-tests it, and returns candidate local
	// URLs for the next BFS level. The returned slice is the Visitor's
	// interned nav scratch — valid only until the next visit call; every
	// caller below consumes it (pool add + selection) before revisiting.
	// The page itself is recycled via Release once its counts are taken.
	visit := func(rawURL string, isHome bool) ([]string, error) {
		if w.cfg.WithCredentials {
			rawURL = authenticate(rawURL)
		}
		page, err := w.browser.Load(rawURL)
		if err != nil {
			if isHome {
				return nil, err
			}
			return nil, nil // dead subpage: skip, keep crawling
		}
		if isHome && page.HasParseErrors() {
			w.browser.Release(page)
			return nil, fmt.Errorf("crawler: %s has script syntax errors", site.Domain)
		}
		horde.Unleash(page, rng)
		merge(w.measurer.Take())
		pages++
		visited[rawURL] = true
		w.navOut = page.LocalNavAttemptsInto(sameSite, w.navSeen, w.navRawSeen, w.navOut[:0])
		w.browser.Release(page)
		return w.navOut, nil
	}

	home := "http://" + site.Domain + "/"
	candidates, err := visit(home, true)
	if err != nil {
		w.measurer.Take() // drop partial counts
		return nil, 0, err
	}

	// pool holds discovered-but-unvisited URLs. When a parent page
	// yields fewer than Branch fresh URLs (the monkey did not click
	// every link, or a leaf page links mostly to visited pages), the
	// level is backfilled from the pool, so the 13-page budget is spent
	// whenever the site has enough distinct pages.
	pool := w.pool[:0]
	defer func() { w.pool = pool[:0] }()
	addPool := func(cands []string) {
		for _, c := range cands {
			if !visited[c] {
				pool = append(pool, c)
			}
		}
	}
	backfill := func(level []string, want int) []string {
		for _, c := range pool {
			if len(level) >= want {
				break
			}
			if !visited[c] {
				visited[c] = true
				seenDirs[dirPattern(c)] = true
				level = append(level, c)
			}
		}
		return level
	}
	addPool(candidates)

	level := backfill(w.selectURLs(candidates, visited, seenDirs, rng), w.cfg.Branch)
	for depth := 0; depth < 2; depth++ {
		var next []string
		for _, u := range level {
			cands, _ := visit(u, false)
			addPool(cands)
			next = append(next, w.selectURLs(cands, visited, seenDirs, rng)...)
		}
		if depth == 0 {
			next = backfill(next, w.cfg.Branch*w.cfg.Branch)
		}
		level = next
	}
	return counts, pages, nil
}

// selectURLs picks up to Branch URLs from the candidates, preferring URLs
// whose directory structure has not been seen before (paper §4.3.1).
func (w *Visitor) selectURLs(candidates []string, visited, seenDirs map[string]bool, rng *rand.Rand) []string {
	var fresh []string
	for _, c := range candidates {
		if !visited[c] {
			fresh = append(fresh, c)
		}
	}
	rng.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
	if w.cfg.PathNoveltyPreference {
		// Stable partition, unseen directory patterns first — the same
		// order sort.SliceStable on the boolean key produced, at one
		// memoized pattern lookup per candidate instead of a URL parse
		// per comparison.
		unseen, seen := w.dirUnseen[:0], w.dirSeen[:0]
		for _, c := range fresh {
			if seenDirs[w.dirPattern(c)] {
				seen = append(seen, c)
			} else {
				unseen = append(unseen, c)
			}
		}
		fresh = append(unseen, seen...)
		w.dirUnseen, w.dirSeen = unseen[:0], seen[:0]
	}
	out := make([]string, 0, w.cfg.Branch)
	for _, c := range fresh {
		if len(out) >= w.cfg.Branch {
			break
		}
		out = append(out, c)
		seenDirs[w.dirPattern(c)] = true
		visited[c] = true
	}
	return out
}

// dirPattern memoizes the package-level dirPattern: the same candidate URLs
// recur across a site's cases × rounds revisits.
func (w *Visitor) dirPattern(rawURL string) string {
	if p, ok := w.dirPat[rawURL]; ok {
		return p
	}
	if w.dirPat == nil {
		w.dirPat = make(map[string]string)
	}
	if len(w.dirPat) > 8192 {
		// Entries belong to sites long finished; start over rather than
		// grow without bound across a multi-thousand-site survey.
		clear(w.dirPat)
	}
	p := dirPattern(rawURL)
	w.dirPat[rawURL] = p
	return p
}

// authenticate appends the members-area session token to closed-web URLs
// (crawler credentialed mode, paper §7.3). Other URLs pass through.
func authenticate(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil || !strings.HasPrefix(u.Path, "/account") {
		return rawURL
	}
	if strings.Contains(u.RawQuery, "auth=") {
		return rawURL
	}
	if u.RawQuery != "" {
		u.RawQuery += "&"
	}
	u.RawQuery += "auth=" + synthweb.SessionToken
	return u.String()
}

// dirPattern extracts a URL's directory structure: the path with the final
// segment dropped.
func dirPattern(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil {
		return rawURL
	}
	path := u.Path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[:i]
	}
	return u.Hostname() + path
}

// HumanVisit emulates the paper's external-validation protocol (§6.2): 90
// seconds of casual browsing across three pages — reading (scrolling and
// pointer movement), one search-box entry, and following one prominent
// link per page. It returns the features observed.
func (c *Crawler) HumanVisit(site *synthweb.Site, seed int64) (map[int]int64, error) {
	m := extension.NewMeasurer()
	fetcher := webserver.Fetcher(webserver.DirectFetcher{Web: c.Web})
	if c.NewFetcher != nil {
		fetcher = c.NewFetcher()
	}
	b := browser.New(c.Bindings, fetcher, m)
	_ = seed // the human protocol is deterministic; seed kept for symmetry

	counts := make(map[int]int64)
	merge := func(mm map[int]int64) {
		for id, n := range mm {
			counts[id] += n
		}
	}

	current := "http://" + site.Domain + "/"
	for pageNo := 0; pageNo < 3; pageNo++ {
		page, err := b.Load(current)
		if err != nil {
			if pageNo == 0 {
				return nil, err
			}
			break
		}
		// 30 seconds of reading: scrolling, pointer movement, a
		// little typing.
		for i := 0; i < 10; i++ {
			page.Scroll()
			page.MouseMove()
			page.AdvanceClock(2.5)
		}
		if input := page.DOM.QuerySelector("#q"); input != nil {
			page.Input(input, "holiday offers")
		}
		page.AdvanceClock(5)

		// Follow the most prominent link: the first visible local
		// anchor.
		next := ""
		for _, href := range page.DOM.Links() {
			resolved := page.URL.ResolveReference(mustParseURL(href)).String()
			u, err := url.Parse(resolved)
			if err != nil {
				continue
			}
			if c.Web.Ranking.SameSite(u.Hostname(), site.Domain) {
				page.Click(findAnchor(page, href))
				next = resolved
				break
			}
		}
		merge(m.Take())
		b.Release(page)
		if next == "" {
			break
		}
		current = next
	}
	return counts, nil
}

func mustParseURL(s string) *url.URL {
	u, err := url.Parse(s)
	if err != nil {
		return &url.URL{}
	}
	return u
}

// findAnchor locates the anchor element carrying the href.
func findAnchor(page *browser.Page, href string) *dom.Node {
	for _, a := range page.DOM.ElementsByTag("a") {
		if got, _ := a.Attr("href"); got == href {
			return a
		}
	}
	return nil
}
