package blocking

import (
	"testing"
)

func sampleDB(t *testing.T) *TrackerDB {
	t.Helper()
	db, err := ParseTrackerDB(`
# sample library
PixelMetrics|site-analytics|pixelmetrics.example,pm-cdn.example
AdSyncNet|advertising|adsync.example
GhostBeacon|beacon|beacon.example
PrintSniff|fingerprinting|sniff.example
`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestParseTrackerDB(t *testing.T) {
	db := sampleDB(t)
	if db.Size() != 4 {
		t.Fatalf("size = %d, want 4", db.Size())
	}
	cats := db.Categories()
	if len(cats) != 4 {
		t.Fatalf("categories = %v", cats)
	}
}

func TestParseTrackerDBErrors(t *testing.T) {
	for _, bad := range []string{
		"JustOneField",
		"Name|cat",
		"|cat|d.example",
		"Name|cat|",
	} {
		if _, err := ParseTrackerDB(bad); err == nil {
			t.Errorf("ParseTrackerDB(%q) should fail", bad)
		}
	}
}

func TestLookupWalksLabels(t *testing.T) {
	db := sampleDB(t)
	tr, ok := db.Lookup("px.cdn.pixelmetrics.example")
	if !ok || tr.Name != "PixelMetrics" {
		t.Fatalf("Lookup = %+v, %v", tr, ok)
	}
	if _, ok := db.Lookup("innocent.example"); ok {
		t.Fatal("unexpected tracker match")
	}
}

func TestTrackerBlocksOnlyThirdParty(t *testing.T) {
	db := sampleDB(t)
	third := Request{URL: "http://beacon.example/b.js", PageHost: "site.example"}
	if !db.ShouldBlock(third) {
		t.Error("third-party tracker request should block")
	}
	first := Request{URL: "http://beacon.example/b.js", PageHost: "beacon.example"}
	if db.ShouldBlock(first) {
		t.Error("first-party request should not block (Ghostery targets cross-domain tracking)")
	}
}

func TestTrackerDBRoundTrip(t *testing.T) {
	db := sampleDB(t)
	text := FormatTrackerDB(db)
	db2, err := ParseTrackerDB(text)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Size() != db.Size() {
		t.Fatalf("round trip changed size: %d -> %d", db.Size(), db2.Size())
	}
	if _, ok := db2.Lookup("adsync.example"); !ok {
		t.Fatal("round trip lost a tracker")
	}
}

func TestCombinedBlocker(t *testing.T) {
	list, err := ParseList("ads", "||adsonly.example^\n##.ad-frame")
	if err != nil {
		t.Fatal(err)
	}
	combined := NewCombined(NewEngine(list), sampleDB(t))

	adReq := Request{URL: "http://adsonly.example/a.js", PageHost: "p.example", Type: ResourceScript}
	if !combined.ShouldBlock(adReq) {
		t.Error("combined should block via ABP list")
	}
	trackReq := Request{URL: "http://sniff.example/fp.js", PageHost: "p.example", Type: ResourceScript}
	if !combined.ShouldBlock(trackReq) {
		t.Error("combined should block via tracker DB")
	}
	clean := Request{URL: "http://cdn.p.example/app.js", PageHost: "p.example", Type: ResourceScript}
	if combined.ShouldBlock(clean) {
		t.Error("combined blocked a clean first-party-ish request")
	}
	if sels := combined.HideSelectors("p.example"); len(sels) != 1 || sels[0] != ".ad-frame" {
		t.Errorf("combined hiding = %v", sels)
	}
}

func TestNoneBlocker(t *testing.T) {
	var n None
	if n.ShouldBlock(Request{URL: "http://adsync.example/x", PageHost: "p.example"}) {
		t.Error("None must not block")
	}
	if n.HideSelectors("p.example") != nil {
		t.Error("None must not hide")
	}
}
