package blocking

import (
	"fmt"
	"testing"
)

// benchList builds an EasyList-scale synthetic list: domain anchors, path
// rules, options, exceptions, and hiding rules.
func benchList(b *testing.B, rules int) *Engine {
	b.Helper()
	text := "[Adblock Plus 2.0]\n"
	for i := 0; i < rules; i++ {
		switch i % 4 {
		case 0:
			text += fmt.Sprintf("||ads%04d.example^$third-party\n", i)
		case 1:
			text += fmt.Sprintf("/banner%04d/*\n", i)
		case 2:
			text += fmt.Sprintf("||trk%04d.example^$script,domain=site.example\n", i)
		default:
			text += fmt.Sprintf("@@||good%04d.example^\n", i)
		}
	}
	text += "##.ad-banner\n"
	l, err := ParseList("bench", text)
	if err != nil {
		b.Fatal(err)
	}
	return NewEngine(l)
}

func BenchmarkParseList1k(b *testing.B) {
	text := ""
	for i := 0; i < 1000; i++ {
		text += fmt.Sprintf("||ads%04d.example^$third-party\n", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseList("bench", text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShouldBlockHit(b *testing.B) {
	e := benchList(b, 1000)
	req := Request{URL: "http://ads0500.example/x.js", PageHost: "site.example", Type: ResourceScript}
	if !e.ShouldBlock(req) {
		b.Fatal("expected block")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ShouldBlock(req)
	}
}

func BenchmarkShouldBlockMiss(b *testing.B) {
	e := benchList(b, 1000)
	req := Request{URL: "http://cdn.site.example/app.js", PageHost: "site.example", Type: ResourceScript}
	if e.ShouldBlock(req) {
		b.Fatal("unexpected block")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ShouldBlock(req)
	}
}

func BenchmarkTrackerLookup(b *testing.B) {
	var trackers []Tracker
	for i := 0; i < 500; i++ {
		trackers = append(trackers, Tracker{
			Name:     fmt.Sprintf("T%03d", i),
			Category: CategoryAnalytics,
			Domains:  []string{fmt.Sprintf("t%03d.example", i)},
		})
	}
	db := NewTrackerDB(trackers)
	req := Request{URL: "http://px.cdn.t250.example/p.js", PageHost: "site.example"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ShouldBlock(req)
	}
}
