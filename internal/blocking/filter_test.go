package blocking

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleList = `
! Synthetic EasyList excerpt
[Adblock Plus 2.0]
||adnet-1.example^
||banners.example^$script,third-party
|http://exact.example/pixel.gif|
/ads/banner*
@@||adnet-1.example/acceptable^
##.ad-banner
news.example##.sponsored
||tracker.example^$domain=victim.example|~safe.example
`

func mustParse(t *testing.T) *List {
	t.Helper()
	l, err := ParseList("sample", sampleList)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestParseListShape(t *testing.T) {
	l := mustParse(t)
	if len(l.Rules) != 6 {
		t.Fatalf("rules = %d, want 6", len(l.Rules))
	}
	if len(l.Hiding) != 2 {
		t.Fatalf("hiding rules = %d, want 2", len(l.Hiding))
	}
	if !l.Rules[4].Exception {
		t.Error("@@ rule not marked exception")
	}
	if !l.Rules[0].DomainAnchor {
		t.Error("|| rule not domain-anchored")
	}
	if !l.Rules[2].StartAnchor || !l.Rules[2].EndAnchor {
		t.Error("|...| rule anchors not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"||x.example^$bogus-option",
		"@@",
		"x.example##",
	}
	for _, c := range cases {
		if _, err := ParseList("bad", c); err == nil {
			t.Errorf("ParseList(%q) should fail", c)
		}
	}
}

func TestDomainAnchorMatching(t *testing.T) {
	e := NewEngine(mustParse(t))
	cases := []struct {
		url  string
		page string
		typ  ResourceType
		want bool
	}{
		{"http://adnet-1.example/ad.js", "site.example", ResourceScript, true},
		{"http://sub.adnet-1.example/ad.js", "site.example", ResourceScript, true},
		{"http://notadnet-1.example/ad.js", "site.example", ResourceScript, false},        // label boundary
		{"http://adnet-1.example/acceptable/x.js", "site.example", ResourceScript, false}, // exception
		{"http://other.example/x.js", "site.example", ResourceScript, false},
	}
	for _, c := range cases {
		req := Request{URL: c.url, PageHost: c.page, Type: c.typ}
		if got := e.ShouldBlock(req); got != c.want {
			t.Errorf("ShouldBlock(%s) = %v, want %v", c.url, got, c.want)
		}
	}
}

func TestTypeAndPartyOptions(t *testing.T) {
	e := NewEngine(mustParse(t))
	// ||banners.example^$script,third-party
	script3p := Request{URL: "http://banners.example/b.js", PageHost: "site.example", Type: ResourceScript}
	if !e.ShouldBlock(script3p) {
		t.Error("third-party script to banners.example should block")
	}
	image3p := Request{URL: "http://banners.example/b.gif", PageHost: "site.example", Type: ResourceImage}
	if e.ShouldBlock(image3p) {
		t.Error("$script rule should not block images")
	}
	script1p := Request{URL: "http://banners.example/b.js", PageHost: "banners.example", Type: ResourceScript}
	if e.ShouldBlock(script1p) {
		t.Error("$third-party rule should not block first-party request")
	}
	// Subdomain of the page host is first-party.
	script1pSub := Request{URL: "http://banners.example/b.js", PageHost: "www.banners.example", Type: ResourceScript}
	if e.ShouldBlock(script1pSub) {
		t.Error("subdomain requests are first-party")
	}
}

func TestStartAndEndAnchor(t *testing.T) {
	e := NewEngine(mustParse(t))
	exact := Request{URL: "http://exact.example/pixel.gif", PageHost: "x.example", Type: ResourceImage}
	if !e.ShouldBlock(exact) {
		t.Error("exact |...| rule should match")
	}
	longer := Request{URL: "http://exact.example/pixel.gif?x=1", PageHost: "x.example", Type: ResourceImage}
	if e.ShouldBlock(longer) {
		t.Error("end anchor should reject longer URL")
	}
	prefixed := Request{URL: "https://evil.example/http://exact.example/pixel.gif", PageHost: "x.example", Type: ResourceImage}
	if e.ShouldBlock(prefixed) {
		t.Error("start anchor should reject mid-URL match")
	}
}

func TestSubstringAndWildcard(t *testing.T) {
	e := NewEngine(mustParse(t))
	// "/ads/banner*"
	cases := []struct {
		url  string
		want bool
	}{
		{"http://anything.example/ads/banner_720.png", true},
		{"http://anything.example/ads/banner", true},
		{"http://anything.example/ads/sidebar.png", false},
	}
	for _, c := range cases {
		req := Request{URL: c.url, PageHost: "p.example", Type: ResourceImage}
		if got := e.ShouldBlock(req); got != c.want {
			t.Errorf("ShouldBlock(%s) = %v, want %v", c.url, got, c.want)
		}
	}
}

func TestDomainOption(t *testing.T) {
	e := NewEngine(mustParse(t))
	// ||tracker.example^$domain=victim.example|~safe.example
	onVictim := Request{URL: "http://tracker.example/t.js", PageHost: "victim.example", Type: ResourceScript}
	if !e.ShouldBlock(onVictim) {
		t.Error("rule should apply on victim.example")
	}
	onOther := Request{URL: "http://tracker.example/t.js", PageHost: "elsewhere.example", Type: ResourceScript}
	if e.ShouldBlock(onOther) {
		t.Error("$domain= rule should not apply off-domain")
	}
	onVictimSub := Request{URL: "http://tracker.example/t.js", PageHost: "shop.victim.example", Type: ResourceScript}
	if !e.ShouldBlock(onVictimSub) {
		t.Error("$domain= should cover subdomains")
	}
}

func TestSeparatorSemantics(t *testing.T) {
	l, err := ParseList("sep", "||ads.example^path^")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(l)
	if !e.ShouldBlock(Request{URL: "http://ads.example/path/", PageHost: "p.example"}) {
		t.Error("^ should match '/'")
	}
	if !e.ShouldBlock(Request{URL: "http://ads.example/path", PageHost: "p.example"}) {
		t.Error("^ should match end of URL")
	}
	if e.ShouldBlock(Request{URL: "http://ads.example/pathology", PageHost: "p.example"}) {
		t.Error("^ should not match a letter")
	}
}

func TestHideSelectors(t *testing.T) {
	e := NewEngine(mustParse(t))
	global := e.HideSelectors("random.example")
	if len(global) != 1 || global[0] != ".ad-banner" {
		t.Errorf("global hiding = %v", global)
	}
	news := e.HideSelectors("news.example")
	if len(news) != 2 {
		t.Errorf("news.example hiding = %v, want 2 selectors", news)
	}
	newsSub := e.HideSelectors("www.news.example")
	if len(newsSub) != 2 {
		t.Errorf("subdomain hiding = %v, want 2 selectors", newsSub)
	}
}

func TestThirdPartyComputation(t *testing.T) {
	cases := []struct {
		url, page string
		want      bool
	}{
		{"http://a.example/x", "a.example", false},
		{"http://www.a.example/x", "a.example", false},
		{"http://b.example/x", "a.example", true},
		{"http://a.example/x", "", true}, // unknown page host: conservative
	}
	for _, c := range cases {
		req := Request{URL: c.url, PageHost: c.page}
		if got := req.ThirdParty(); got != c.want {
			t.Errorf("ThirdParty(%s on %s) = %v, want %v", c.url, c.page, got, c.want)
		}
	}
}

func TestEngineMultipleLists(t *testing.T) {
	l1, _ := ParseList("a", "||one.example^")
	l2, _ := ParseList("b", "||two.example^")
	e := NewEngine(l1)
	e.AddList(l2)
	if e.RuleCount() != 2 {
		t.Fatalf("rule count = %d", e.RuleCount())
	}
	if !e.ShouldBlock(Request{URL: "http://two.example/x", PageHost: "p.example"}) {
		t.Error("second list not consulted")
	}
}

func TestMatcherNeverPanics(t *testing.T) {
	l := mustParse(t)
	e := NewEngine(l)
	check := func(rawURL, page string) bool {
		e.ShouldBlock(Request{URL: rawURL, PageHost: page, Type: ResourceScript})
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrailingStarWithEndAnchor(t *testing.T) {
	l, err := ParseList("star", "|http://x.example/a*|")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(l)
	if !e.ShouldBlock(Request{URL: "http://x.example/a/anything", PageHost: "p.example"}) {
		t.Error("trailing * should consume to end")
	}
}

func TestCommentsIgnored(t *testing.T) {
	l, err := ParseList("c", "! comment\n[header]\n\n||x.example^\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(l.Rules))
	}
	if !strings.Contains(l.Rules[0].Raw, "x.example") {
		t.Errorf("rule raw = %q", l.Rules[0].Raw)
	}
}
