package blocking

import (
	"fmt"
	"net/url"
	"strings"
)

// ResourceType classifies a request for $type filter options.
type ResourceType int

const (
	ResourceDocument ResourceType = iota
	ResourceScript
	ResourceImage
	ResourceStylesheet
	ResourceSubdocument
	ResourceOther
)

var resourceTypeNames = map[string]ResourceType{
	"document":    ResourceDocument,
	"script":      ResourceScript,
	"image":       ResourceImage,
	"stylesheet":  ResourceStylesheet,
	"subdocument": ResourceSubdocument,
	"other":       ResourceOther,
}

// Request describes one resource fetch for filter evaluation.
type Request struct {
	// URL is the full resource URL.
	URL string
	// PageHost is the host of the page initiating the request.
	PageHost string
	// Type is the resource class.
	Type ResourceType

	// host and thirdParty memoize Host and ThirdParty. Every blocker in an
	// extension stack re-derives both (URL parse plus registrable-domain
	// comparison), so MakeRequest computes them once per request instead
	// of once per blocker per rule. A zero-value Request still works —
	// the accessors fall back to deriving on the fly.
	host         string
	hostOK       bool
	thirdParty   bool
	thirdPartyOK bool
}

// MakeRequest builds a Request with its host and third-party derivations
// precomputed. The browser's webRequest layer uses this for every
// subresource so the whole blocking stack (ABP engine, tracker database,
// their combination) shares one derivation.
func MakeRequest(rawURL, pageHost string, t ResourceType) Request {
	r := Request{URL: rawURL, PageHost: pageHost, Type: t}
	r.host = r.hostSlow()
	r.hostOK = true
	r.thirdParty = !sameRegistrableDomain(r.host, strings.ToLower(pageHost))
	r.thirdPartyOK = true
	return r
}

// Host returns the request URL's host (lower-cased, without port).
func (r Request) Host() string {
	if r.hostOK {
		return r.host
	}
	return r.hostSlow()
}

func (r Request) hostSlow() string {
	u, err := url.Parse(r.URL)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Hostname())
}

// ThirdParty reports whether the request crosses registrable-domain
// boundaries relative to the initiating page.
func (r Request) ThirdParty() bool {
	if r.thirdPartyOK {
		return r.thirdParty
	}
	return !sameRegistrableDomain(r.Host(), strings.ToLower(r.PageHost))
}

// sameRegistrableDomain approximates eTLD+1 comparison: hosts are same-site
// when one is a suffix of the other at a label boundary, or when they share
// their last two labels.
func sameRegistrableDomain(a, b string) bool {
	if a == "" || b == "" {
		return false
	}
	if a == b {
		return true
	}
	ra, rb := lastLabels(a, 2), lastLabels(b, 2)
	return ra == rb
}

// lastLabels returns the suffix of host holding its final n labels (the
// whole host when it has n or fewer). It slices instead of splitting — this
// runs once per request per blocker, and Split/Join cost two allocations.
func lastLabels(host string, n int) string {
	i := len(host)
	for dots := 0; i > 0; i-- {
		if host[i-1] == '.' {
			dots++
			if dots == n {
				return host[i:]
			}
		}
	}
	return host
}

// Rule is one parsed ABP filter rule.
type Rule struct {
	// Raw is the original rule text.
	Raw string
	// Exception marks "@@" allow rules.
	Exception bool
	// DomainAnchor marks "||" rules (match at a domain-label boundary).
	DomainAnchor bool
	// StartAnchor marks "|" rules (match at URL start).
	StartAnchor bool
	// EndAnchor marks rules ending in "|".
	EndAnchor bool
	// Pattern is the body with wildcards (*) and separators (^).
	Pattern string
	// Types restricts matching to resource types; empty means all.
	Types map[ResourceType]bool
	// ThirdPartyOnly / FirstPartyOnly implement $third-party and
	// $~third-party.
	ThirdPartyOnly bool
	FirstPartyOnly bool
	// IncludeDomains/ExcludeDomains implement $domain=a|~b against the
	// initiating page host.
	IncludeDomains []string
	ExcludeDomains []string

	// patLower caches strings.ToLower(Pattern). Matching is case-blind, and
	// lowering the pattern on every candidate (rules × requests) dominated
	// the old scan's allocations; parseRule fills this once.
	patLower string
}

// patternLower returns the cached lower-cased pattern, lowering on the fly
// for hand-built rules that never went through parseRule.
func (r *Rule) patternLower() string {
	if r.patLower != "" || r.Pattern == "" {
		return r.patLower
	}
	return strings.ToLower(r.Pattern)
}

// HidingRule is one element-hiding ("##") rule.
type HidingRule struct {
	// Domains restricts the rule to pages on these registrable domains;
	// empty means all pages.
	Domains []string
	// Selector is the dom selector of elements to hide.
	Selector string
}

// List is a parsed filter list.
type List struct {
	// Name identifies the list (e.g. "easylist-synthetic").
	Name string
	// Rules are the URL-blocking and exception rules.
	Rules []Rule
	// Hiding are the element-hiding rules.
	Hiding []HidingRule
}

// ParseList parses ABP filter-list text. Unsupported option values make the
// individual rule fail with an error identifying its line.
func ParseList(name, text string) (*List, error) {
	l := &List{Name: name}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
			continue // comment or list header
		}
		if idx := strings.Index(line, "##"); idx >= 0 {
			h := HidingRule{Selector: strings.TrimSpace(line[idx+2:])}
			if h.Selector == "" {
				return nil, fmt.Errorf("%s:%d: empty hiding selector", name, i+1)
			}
			for _, d := range strings.Split(line[:idx], ",") {
				d = strings.TrimSpace(d)
				if d != "" {
					h.Domains = append(h.Domains, strings.ToLower(d))
				}
			}
			l.Hiding = append(l.Hiding, h)
			continue
		}
		r, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, i+1, err)
		}
		l.Rules = append(l.Rules, r)
	}
	return l, nil
}

func parseRule(line string) (Rule, error) {
	r := Rule{Raw: line}
	body := line
	if strings.HasPrefix(body, "@@") {
		r.Exception = true
		body = body[2:]
	}
	// $options suffix.
	if idx := strings.LastIndexByte(body, '$'); idx >= 0 {
		opts := strings.Split(body[idx+1:], ",")
		body = body[:idx]
		for _, opt := range opts {
			opt = strings.TrimSpace(opt)
			switch {
			case opt == "third-party":
				r.ThirdPartyOnly = true
			case opt == "~third-party":
				r.FirstPartyOnly = true
			case strings.HasPrefix(opt, "domain="):
				for _, d := range strings.Split(opt[len("domain="):], "|") {
					d = strings.ToLower(strings.TrimSpace(d))
					if strings.HasPrefix(d, "~") {
						r.ExcludeDomains = append(r.ExcludeDomains, d[1:])
					} else if d != "" {
						r.IncludeDomains = append(r.IncludeDomains, d)
					}
				}
			default:
				t, ok := resourceTypeNames[opt]
				if !ok {
					return r, fmt.Errorf("unsupported filter option %q", opt)
				}
				if r.Types == nil {
					r.Types = make(map[ResourceType]bool)
				}
				r.Types[t] = true
			}
		}
	}
	if strings.HasPrefix(body, "||") {
		r.DomainAnchor = true
		body = body[2:]
	} else if strings.HasPrefix(body, "|") {
		r.StartAnchor = true
		body = body[1:]
	}
	if strings.HasSuffix(body, "|") {
		r.EndAnchor = true
		body = body[:len(body)-1]
	}
	if body == "" {
		return r, fmt.Errorf("empty rule pattern")
	}
	r.Pattern = body
	r.patLower = strings.ToLower(body)
	return r, nil
}

// Matches reports whether the rule matches the request (ignoring
// exception-ness, which the engine layers on top).
func (r *Rule) Matches(req Request) bool {
	m := newMatchCtx(&req)
	return r.matches(&m)
}

// matchCtx carries the per-request derivations every candidate rule needs —
// the lowered URL and page host — so a scan computes them once instead of
// once per rule.
type matchCtx struct {
	req      *Request
	urlLower string
	pageHost string // lower-cased
}

func newMatchCtx(req *Request) matchCtx {
	return matchCtx{
		req:      req,
		urlLower: strings.ToLower(req.URL),
		pageHost: strings.ToLower(req.PageHost),
	}
}

func (r *Rule) matches(m *matchCtx) bool {
	if r.Types != nil && !r.Types[m.req.Type] {
		return false
	}
	if r.ThirdPartyOnly && !m.req.ThirdParty() {
		return false
	}
	if r.FirstPartyOnly && m.req.ThirdParty() {
		return false
	}
	if len(r.IncludeDomains) > 0 && !lowerHostInDomains(m.pageHost, r.IncludeDomains) {
		return false
	}
	if lowerHostInDomains(m.pageHost, r.ExcludeDomains) {
		return false
	}
	u := m.urlLower
	pat := r.patternLower()
	switch {
	case r.DomainAnchor:
		return domainAnchorMatch(u, pat, r.EndAnchor)
	case r.StartAnchor:
		return patternMatch(u, pat, true, r.EndAnchor)
	default:
		return patternMatch(u, pat, false, r.EndAnchor)
	}
}

func hostInDomains(host string, domains []string) bool {
	return lowerHostInDomains(strings.ToLower(host), domains)
}

// lowerHostInDomains is hostInDomains for a host the caller already lowered.
func lowerHostInDomains(host string, domains []string) bool {
	for _, d := range domains {
		if host == d || len(host) > len(d) && host[len(host)-len(d)-1] == '.' && strings.HasSuffix(host, d) {
			return true
		}
	}
	return false
}

// domainAnchorMatch implements "||": the pattern must match starting at the
// beginning of a host label within the URL's authority.
func domainAnchorMatch(u, pat string, endAnchor bool) bool {
	// Find the start of the host in the URL.
	rest := u
	if idx := strings.Index(rest, "://"); idx >= 0 {
		rest = rest[idx+3:]
	}
	// Candidate anchor positions: host start and after each dot within
	// the authority.
	authEnd := len(rest)
	if idx := strings.IndexAny(rest, "/?"); idx >= 0 {
		authEnd = idx
	}
	for pos := 0; pos <= authEnd; {
		if patternMatch(rest[pos:], pat, true, endAnchor) {
			return true
		}
		next := strings.IndexByte(rest[pos:authEnd], '.')
		if next < 0 {
			return false
		}
		pos += next + 1
	}
	return false
}

// patternMatch matches pat (with * wildcards and ^ separators) against s.
// anchored requires the match to start at s[0]; endAnchor requires it to end
// at len(s).
func patternMatch(s, pat string, anchored, endAnchor bool) bool {
	if anchored {
		return matchHere(s, pat, endAnchor)
	}
	for i := 0; i <= len(s); i++ {
		if matchHere(s[i:], pat, endAnchor) {
			return true
		}
	}
	return false
}

// matchHere matches pat at the start of s.
func matchHere(s, pat string, endAnchor bool) bool {
	for pat != "" {
		switch pat[0] {
		case '*':
			pat = pat[1:]
			if pat == "" {
				// A trailing star consumes the rest of the URL,
				// satisfying any end anchor.
				return true
			}
			for i := 0; i <= len(s); i++ {
				if matchHere(s[i:], pat, endAnchor) {
					return true
				}
			}
			return false
		case '^':
			// Separator: any char that is not letter, digit, or
			// one of _-.% — or the end of the URL.
			if s == "" {
				pat = pat[1:]
				continue
			}
			if isSeparator(s[0]) {
				s, pat = s[1:], pat[1:]
				continue
			}
			return false
		default:
			if s == "" || s[0] != pat[0] {
				return false
			}
			s, pat = s[1:], pat[1:]
		}
	}
	if endAnchor {
		return s == ""
	}
	return true
}

func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_' || c == '-' || c == '.' || c == '%':
		return false
	}
	return true
}

// Engine evaluates one or more filter lists, exceptions first, as AdBlock
// Plus does. Lists must not be mutated after they are handed to the engine:
// the token index built at AddList time points into their rule slices.
type Engine struct {
	lists []*List
	idx   ruleIndex

	// DisableIndex routes ShouldBlock through the pre-index all-lists ×
	// all-rules linear scan. The scan is the differential oracle the index
	// is tested against (FuzzShouldBlockIndexMatchesLinear, the pipeline
	// ablation tests); it is not a supported production path.
	DisableIndex bool
}

// NewEngine builds an engine over the given lists.
func NewEngine(lists ...*List) *Engine {
	e := &Engine{}
	e.idx.init()
	for _, l := range lists {
		e.AddList(l)
	}
	return e
}

// AddList appends another list to the engine and indexes its rules.
func (e *Engine) AddList(l *List) {
	if e.idx.exc.byDomain == nil {
		e.idx.init() // zero-value Engine
	}
	e.lists = append(e.lists, l)
	e.idx.addList(l)
}

// ShouldBlock reports whether the request is blocked: some block rule
// matches and no exception rule does. The result is scan-order independent —
// any matching exception wins outright — which is what lets the indexed path
// consult exception buckets first and block buckets second while agreeing
// with the linear scan on every request.
func (e *Engine) ShouldBlock(req Request) bool {
	m := newMatchCtx(&req)
	if e.DisableIndex {
		return e.shouldBlockLinear(&m)
	}
	return e.idx.shouldBlock(&m)
}

// shouldBlockLinear is the original full scan, kept as the oracle for
// DisableIndex differential runs.
func (e *Engine) shouldBlockLinear(m *matchCtx) bool {
	blocked := false
	for _, l := range e.lists {
		for i := range l.Rules {
			r := &l.Rules[i]
			if !r.matches(m) {
				continue
			}
			if r.Exception {
				return false
			}
			blocked = true
		}
	}
	return blocked
}

// HideSelectors returns the element-hiding selectors applicable to a page
// host, in list order.
func (e *Engine) HideSelectors(pageHost string) []string {
	return e.AppendHideSelectors(pageHost, nil)
}

// AppendHideSelectors appends the applicable selectors to out and returns the
// extended slice, letting per-page callers reuse one scratch buffer instead
// of allocating a fresh result for every page.
func (e *Engine) AppendHideSelectors(pageHost string, out []string) []string {
	host := strings.ToLower(pageHost)
	for _, l := range e.lists {
		for _, h := range l.Hiding {
			if len(h.Domains) == 0 || lowerHostInDomains(host, h.Domains) {
				out = append(out, h.Selector)
			}
		}
	}
	return out
}

// RuleCount returns the total number of URL rules across lists.
func (e *Engine) RuleCount() int {
	n := 0
	for _, l := range e.lists {
		n += len(l.Rules)
	}
	return n
}
