package blocking

import "strings"

// Rule index: the pre-PR engine answered ShouldBlock by scanning every rule
// of every list per request — fine for a toy list, quadratic pain for a
// survey that issues one ShouldBlock per subresource per blocker. The index
// buckets rules once, at AddList time, so a query consults only rules that
// could possibly match:
//
//   - byDomain: "||domain^"-style rules whose pattern provably pins the
//     matched host, keyed by the anchor domain's registrable domain (its
//     last two labels). A query derives the same keys from the raw URL's
//     authority — NOT from url.Parse, whose notion of "the host" diverges
//     from the raw-string matcher on authorities with userinfo — and probes.
//   - byToken: remaining rules containing a bounded literal token (a maximal
//     alphanumeric run any matching URL must contain as a whole token),
//     keyed by the rule's longest such token. A query tokenizes the lowered
//     URL the same way and probes each token.
//   - rest: everything unbucketable; always scanned.
//
// Exception rules and block rules get separate bucket sets, consulted in
// that order: ShouldBlock's result is scan-order independent (any matching
// exception wins), so exceptions-first agrees with the linear oracle.
type ruleIndex struct {
	exc bucketSet
	blk bucketSet
}

type bucketSet struct {
	byDomain map[string][]*Rule
	byToken  map[string][]*Rule
	rest     []*Rule
}

func (x *ruleIndex) init() {
	x.exc = bucketSet{byDomain: map[string][]*Rule{}, byToken: map[string][]*Rule{}}
	x.blk = bucketSet{byDomain: map[string][]*Rule{}, byToken: map[string][]*Rule{}}
}

func (x *ruleIndex) addList(l *List) {
	for i := range l.Rules {
		r := &l.Rules[i]
		if r.Exception {
			x.exc.add(r)
		} else {
			x.blk.add(r)
		}
	}
}

func (s *bucketSet) add(r *Rule) {
	if key, ok := domainKey(r); ok {
		s.byDomain[key] = append(s.byDomain[key], r)
		return
	}
	if tok, ok := patternToken(r); ok {
		s.byToken[tok] = append(s.byToken[tok], r)
		return
	}
	s.rest = append(s.rest, r)
}

func (x *ruleIndex) shouldBlock(m *matchCtx) bool {
	// Key scratch lives on the stack; authority keys and URL tokens are
	// shared by the exception pass and the block pass.
	var kbuf [8]string
	var tbuf [24]string
	keys := appendAuthorityKeys(m.urlLower, kbuf[:0])
	toks := appendURLTokens(m.urlLower, tbuf[:0])
	if x.exc.anyMatch(m, keys, toks) {
		return false
	}
	return x.blk.anyMatch(m, keys, toks)
}

func (s *bucketSet) anyMatch(m *matchCtx, keys, toks []string) bool {
	for _, r := range s.rest {
		if r.matches(m) {
			return true
		}
	}
	if len(s.byDomain) > 0 {
		for _, k := range keys {
			for _, r := range s.byDomain[k] {
				if r.matches(m) {
					return true
				}
			}
		}
	}
	if len(s.byToken) > 0 {
		for _, t := range toks {
			for _, r := range s.byToken[t] {
				if r.matches(m) {
					return true
				}
			}
		}
	}
	return false
}

// isLabelByte reports whether c can appear inside one lowered host label.
func isLabelByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-'
}

// isHostByte additionally admits the label separator.
func isHostByte(c byte) bool { return isLabelByte(c) || c == '.' }

// domainKey returns the byDomain bucket key for a "||" rule whose pattern
// provably pins the matched URL's host, and ok=false when the rule is not
// domain-bucketable. The proof obligation: whenever the rule matches a URL,
// appendAuthorityKeys on that URL must yield the key. That holds when the
// pattern opens with a hostname run of at least two well-formed labels and
// the run is terminated — by a '^' (which only ever consumes a separator or
// the URL end, both non-host), by a literal non-hostname byte, or by the
// pattern ending under an end anchor. Then any match places the anchor
// domain in the URL's authority starting at a label boundary and ending at a
// non-host byte, so the key (the run's last two labels) is one of the
// authority's terminated label pairs. A run followed by '*' or by a bare
// pattern end proves nothing about where the host ends, and a single-label
// or malformed run never equals a label pair; those rules fall through to
// the token bucket.
func domainKey(r *Rule) (string, bool) {
	if !r.DomainAnchor {
		return "", false
	}
	pat := r.patternLower()
	i := 0
	dots := 0
	for i < len(pat) && isHostByte(pat[i]) {
		if pat[i] == '.' {
			dots++
		}
		i++
	}
	if i == 0 || dots == 0 {
		return "", false
	}
	dom := pat[:i]
	if dom[0] == '.' || dom[i-1] == '.' || strings.Contains(dom, "..") {
		return "", false // empty labels never appear in authority key pairs
	}
	switch {
	case i == len(pat):
		if !r.EndAnchor {
			return "", false // host may continue past the pattern
		}
	case pat[i] == '*':
		return "", false // wildcard may extend the host
	}
	return lastLabels(dom, 2), true
}

// appendAuthorityKeys appends the terminated label pairs of u's authority:
// every "a.b" where a starts at a label boundary and b ends at a non-host
// byte or at the authority's end. It mirrors domainAnchorMatch's scan — same
// "://" skip, same "/?" authority cutoff — because these keys must cover
// every position that matcher can anchor at, even for authorities (userinfo,
// stray separators) where url.Parse would report a different host.
func appendAuthorityKeys(u string, keys []string) []string {
	rest := u
	if idx := strings.Index(rest, "://"); idx >= 0 {
		rest = rest[idx+3:]
	}
	end := strings.IndexAny(rest, "/?")
	if end < 0 {
		end = len(rest)
	}
	auth := rest[:end]
	for q := 0; q < len(auth); {
		if !isLabelByte(auth[q]) {
			q++
			continue
		}
		// q is a label start: auth[q-1] is absent or a non-label byte.
		e1 := q
		for e1 < len(auth) && isLabelByte(auth[e1]) {
			e1++
		}
		if e1 < len(auth) && auth[e1] == '.' {
			e2 := e1 + 1
			for e2 < len(auth) && isLabelByte(auth[e2]) {
				e2++
			}
			if e2 > e1+1 && (e2 == len(auth) || !isHostByte(auth[e2])) {
				keys = append(keys, auth[q:e2])
			}
		}
		q = e1 + 1 // auth[e1] is non-label, so e1+1 is the next candidate
	}
	return keys
}

// isTokenByte reports whether c is part of a literal URL token.
func isTokenByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}

// patternToken returns the longest literal token of the rule's pattern that
// any matching URL must contain as a whole URL token, and ok=false when no
// run qualifies. A maximal alphanumeric run of the pattern qualifies when
// both of its sides are pinned: by an adjacent literal non-alphanumeric
// pattern byte (including '^', which only matches non-alphanumerics or the
// URL end), or by an anchor at the pattern edge (start/domain anchor on the
// left, end anchor on the right). A run adjacent to '*', or sitting at an
// unanchored pattern edge, can be extended by URL bytes into a longer token
// and is unusable.
func patternToken(r *Rule) (string, bool) {
	pat := r.patternLower()
	best := ""
	for i := 0; i < len(pat); {
		if !isTokenByte(pat[i]) {
			i++
			continue
		}
		j := i
		for j < len(pat) && isTokenByte(pat[j]) {
			j++
		}
		leftOK := i == 0 && (r.StartAnchor || r.DomainAnchor) ||
			i > 0 && pat[i-1] != '*'
		rightOK := j == len(pat) && r.EndAnchor ||
			j < len(pat) && pat[j] != '*'
		if leftOK && rightOK && j-i > len(best) {
			best = pat[i:j]
		}
		i = j
	}
	return best, best != ""
}

// appendURLTokens appends u's maximal alphanumeric runs — the whole-token
// universe patternToken keys against.
func appendURLTokens(u string, toks []string) []string {
	for i := 0; i < len(u); {
		if !isTokenByte(u[i]) {
			i++
			continue
		}
		j := i
		for j < len(u) && isTokenByte(u[j]) {
			j++
		}
		toks = append(toks, u[i:j])
		i = j
	}
	return toks
}
