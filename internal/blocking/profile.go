package blocking

import (
	"fmt"

	"repro/internal/measure"
)

// Profile names a blocking setup of the survey, the unit a user selects on
// the command line. Each profile expands to the browser configurations the
// crawl must run: the unmodified baseline plus, when blockers are involved,
// the matching blocking case, so blocked-vs-unblocked deltas are always
// computable from one run.
type Profile string

const (
	// ProfileNone runs only the default, unmodified browser.
	ProfileNone Profile = "none"
	// ProfileAdBlock pairs the baseline with AdBlock Plus alone
	// (Figure 7's x-axis).
	ProfileAdBlock Profile = "adblock"
	// ProfileGhostery pairs the baseline with Ghostery alone
	// (Figure 7's y-axis).
	ProfileGhostery Profile = "ghostery"
	// ProfileBlocking pairs the baseline with the paper's combined
	// AdBlock Plus + Ghostery configuration (§4.1).
	ProfileBlocking Profile = "blocking"
	// ProfileAll runs every configuration of the survey.
	ProfileAll Profile = "all"
)

// ParseProfile validates a user-supplied profile name.
func ParseProfile(s string) (Profile, error) {
	switch p := Profile(s); p {
	case ProfileNone, ProfileAdBlock, ProfileGhostery, ProfileBlocking, ProfileAll:
		return p, nil
	}
	return "", fmt.Errorf("blocking: unknown profile %q (want none, adblock, ghostery, blocking, or all)", s)
}

// Cases expands the profile into the browser configurations to crawl, in
// canonical order.
func (p Profile) Cases() []measure.Case {
	switch p {
	case ProfileNone:
		return []measure.Case{measure.CaseDefault}
	case ProfileAdBlock:
		return []measure.Case{measure.CaseDefault, measure.CaseAdBlock}
	case ProfileGhostery:
		return []measure.Case{measure.CaseDefault, measure.CaseGhostery}
	case ProfileBlocking:
		return []measure.Case{measure.CaseDefault, measure.CaseBlocking}
	default:
		return measure.AllCases()
	}
}

// BlockingCase returns the profile's blocking-side configuration and
// whether the profile has one (ProfileNone does not). ProfileAll compares
// against the paper's combined configuration.
func (p Profile) BlockingCase() (measure.Case, bool) {
	switch p {
	case ProfileAdBlock:
		return measure.CaseAdBlock, true
	case ProfileGhostery:
		return measure.CaseGhostery, true
	case ProfileBlocking, ProfileAll:
		return measure.CaseBlocking, true
	}
	return "", false
}
