package blocking

import (
	"fmt"
	"sort"
	"strings"
)

// TrackerCategory classifies tracker database entries the way Ghostery's
// curated library does.
type TrackerCategory string

const (
	CategoryAdvertising TrackerCategory = "advertising"
	CategoryAnalytics   TrackerCategory = "site-analytics"
	CategoryBeacon      TrackerCategory = "beacon"
	CategoryWidget      TrackerCategory = "widget"
	CategoryFingerprint TrackerCategory = "fingerprinting"
)

// Tracker is one tracker-database entry: a named tracking service and the
// domains it serves resources from.
type Tracker struct {
	// Name is the service name, e.g. "PixelMetrics".
	Name string
	// Category is the Ghostery-style classification.
	Category TrackerCategory
	// Domains are the registrable domains the service uses.
	Domains []string
}

// TrackerDB is a Ghostery-style curated tracker library. Unlike the ABP
// engine's crowd-sourced URL patterns, the database blocks by resource
// host: any third-party request to a tracker domain is prevented, matching
// how Ghostery "modif[ies] the browser to not load resources or set cookies
// associated with cross-domain passive tracking" (§3.6).
type TrackerDB struct {
	trackers []Tracker
	byDomain map[string]*Tracker
}

// NewTrackerDB indexes a tracker library.
func NewTrackerDB(trackers []Tracker) *TrackerDB {
	db := &TrackerDB{
		trackers: append([]Tracker(nil), trackers...),
		byDomain: make(map[string]*Tracker),
	}
	for i := range db.trackers {
		for _, d := range db.trackers[i].Domains {
			db.byDomain[strings.ToLower(d)] = &db.trackers[i]
		}
	}
	return db
}

// Lookup resolves a host to its tracker entry, walking up the label chain
// so "cdn.px.tracker.example" matches a "tracker.example" entry.
func (db *TrackerDB) Lookup(host string) (*Tracker, bool) {
	host = strings.ToLower(host)
	for h := host; h != ""; {
		if t, ok := db.byDomain[h]; ok {
			return t, true
		}
		idx := strings.IndexByte(h, '.')
		if idx < 0 {
			break
		}
		h = h[idx+1:]
	}
	return nil, false
}

// ShouldBlock blocks third-party requests to known tracker domains.
// First-party requests are never blocked: Ghostery targets *cross-domain*
// tracking.
func (db *TrackerDB) ShouldBlock(req Request) bool {
	if !req.ThirdParty() {
		return false
	}
	_, tracked := db.Lookup(req.Host())
	return tracked
}

// HideSelectors implements the Blocker interface; the tracker database does
// no element hiding.
func (db *TrackerDB) HideSelectors(string) []string { return nil }

// AppendHideSelectors returns out unchanged: no element hiding.
func (db *TrackerDB) AppendHideSelectors(_ string, out []string) []string { return out }

// Size returns the number of tracker entries.
func (db *TrackerDB) Size() int { return len(db.trackers) }

// Categories returns the distinct categories present, sorted.
func (db *TrackerDB) Categories() []TrackerCategory {
	seen := map[TrackerCategory]bool{}
	for _, t := range db.trackers {
		seen[t.Category] = true
	}
	out := make([]TrackerCategory, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParseTrackerDB parses the textual tracker-library format:
//
//	# comment
//	TrackerName|category|domain1,domain2
func ParseTrackerDB(text string) (*TrackerDB, error) {
	var trackers []Tracker
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trackerdb:%d: want name|category|domains, got %q", i+1, line)
		}
		t := Tracker{Name: strings.TrimSpace(parts[0]), Category: TrackerCategory(strings.TrimSpace(parts[1]))}
		if t.Name == "" {
			return nil, fmt.Errorf("trackerdb:%d: empty tracker name", i+1)
		}
		for _, d := range strings.Split(parts[2], ",") {
			d = strings.ToLower(strings.TrimSpace(d))
			if d != "" {
				t.Domains = append(t.Domains, d)
			}
		}
		if len(t.Domains) == 0 {
			return nil, fmt.Errorf("trackerdb:%d: tracker %q lists no domains", i+1, t.Name)
		}
		trackers = append(trackers, t)
	}
	return NewTrackerDB(trackers), nil
}

// FormatTrackerDB serializes a tracker library back to text.
func FormatTrackerDB(db *TrackerDB) string {
	var b strings.Builder
	b.WriteString("# Synthetic tracker library (Ghostery-style)\n")
	for _, t := range db.trackers {
		fmt.Fprintf(&b, "%s|%s|%s\n", t.Name, t.Category, strings.Join(t.Domains, ","))
	}
	return b.String()
}

// Blocker is the interface the browser's webRequest layer consults before
// fetching a subresource. Both the ABP engine and the tracker database
// implement it, as does their combination.
type Blocker interface {
	// ShouldBlock reports whether the resource fetch must be prevented.
	ShouldBlock(req Request) bool
	// HideSelectors returns element-hiding selectors for a page host.
	HideSelectors(pageHost string) []string
	// AppendHideSelectors appends the selectors to out and returns the
	// extended slice; per-page callers pass a reused scratch buffer.
	AppendHideSelectors(pageHost string, out []string) []string
}

// Combined runs several blockers as one (the paper's "blocking" browser
// profile installs AdBlock Plus and Ghostery together).
type Combined struct {
	Blockers []Blocker
}

// NewCombined combines blockers.
func NewCombined(blockers ...Blocker) *Combined { return &Combined{Blockers: blockers} }

// ShouldBlock blocks when any constituent blocker blocks. Note the ABP
// engine's internal exception rules are resolved before this layer, so an
// @@ rule in one list does not unblock another extension's decision —
// matching how independent extensions compose in a real browser.
func (c *Combined) ShouldBlock(req Request) bool {
	for _, b := range c.Blockers {
		if b.ShouldBlock(req) {
			return true
		}
	}
	return false
}

// HideSelectors concatenates the constituents' hiding selectors.
func (c *Combined) HideSelectors(pageHost string) []string {
	return c.AppendHideSelectors(pageHost, nil)
}

// AppendHideSelectors appends each constituent's selectors in order.
func (c *Combined) AppendHideSelectors(pageHost string, out []string) []string {
	for _, b := range c.Blockers {
		out = b.AppendHideSelectors(pageHost, out)
	}
	return out
}

// None is a Blocker that blocks nothing (the default browser profile).
type None struct{}

// ShouldBlock always reports false.
func (None) ShouldBlock(Request) bool { return false }

// HideSelectors always returns nil.
func (None) HideSelectors(string) []string { return nil }

// AppendHideSelectors returns out unchanged.
func (None) AppendHideSelectors(_ string, out []string) []string { return out }
