package blocking

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// engines builds an indexed engine and its linear-scan twin over the same
// parsed lists.
func engines(t testing.TB, texts ...string) (indexed, linear *Engine) {
	t.Helper()
	indexed = NewEngine()
	linear = NewEngine()
	linear.DisableIndex = true
	for i, text := range texts {
		l, err := ParseList(fmt.Sprintf("list-%d", i), text)
		if err != nil {
			t.Fatalf("ParseList: %v", err)
		}
		indexed.AddList(l)
		linear.AddList(l)
	}
	return indexed, linear
}

// indexRuleFragments spans every bucket class: domain-anchored rules (safe
// and unsafe for domain bucketing), token-carrying rules, wildcard and
// anchor shapes, exceptions, and option-bearing rules.
var indexRuleFragments = []string{
	"||adnet-01.example^$third-party",
	"||adtrk-07.example^$third-party",
	"||ads.example^",
	"||ads.example^banner",
	"||ads.example/banner",
	"||ads", // single label: not domain-bucketable
	"||ads.example*track",
	"||ads.example",
	"||cdn.ads.example^|",
	"/ads/banner*",
	"/adserve/^$script",
	"banner",
	"banner*1",
	"|http://ads.example/",
	"|http://x.org/p|",
	"path|",
	"||x.org^path^",
	"@@||ads.example^allowed",
	"@@||adnet-01.example^$third-party",
	"@@/adserve/safe",
	"track^",
	"*",
	"^ads^",
	"||tra-cker.example^",
	"||a.b.c.example^$image",
	"x$domain=pub.example",
	"banner$domain=~pub.example",
}

var indexTestURLs = []string{
	"http://adnet-01.example/ads/banner.png",
	"http://adnet-02.example/x",
	"http://ads.example/banner/1",
	"http://cdn.ads.example/",
	"http://notads.example/pathology",
	"http://sub.x.org/p",
	"http://x.org/p",
	"http://site.example/adserve/track.js",
	"http://site.example/ads/banner",
	"http://site.example/",
	"https://a.b.c.example/img.png",
	"http://tra-cker.example/t",
	// Authorities where url.Parse's host differs from what the raw-string
	// matcher sees: userinfo, ports, stray separators.
	"http://ads.example@evil.com/",
	"http://user:pw@ads.example/x",
	"http://ads.example:8080/x",
	"http://ads.example",
	"//ads.example/x",
	"not a url at all",
	"",
}

var indexTestPageHosts = []string{"pub.example", "adnet-01.example", "x.org", ""}

// TestIndexMatchesLinear drives randomized multi-list engines through every
// URL × page-host combination and requires the tokenized index to agree
// with the linear scan decision for decision.
func TestIndexMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	types := []ResourceType{ResourceDocument, ResourceScript, ResourceImage, ResourceOther}
	for trial := 0; trial < 200; trial++ {
		// Sample a random subset of fragments into one or two lists.
		var texts []string
		for lists := 1 + rng.Intn(2); lists > 0; lists-- {
			var b strings.Builder
			for i := 0; i < 1+rng.Intn(10); i++ {
				b.WriteString(indexRuleFragments[rng.Intn(len(indexRuleFragments))])
				b.WriteByte('\n')
			}
			texts = append(texts, b.String())
		}
		indexed, linear := engines(t, texts...)
		for _, u := range indexTestURLs {
			for _, ph := range indexTestPageHosts {
				req := Request{URL: u, PageHost: ph, Type: types[rng.Intn(len(types))]}
				got, want := indexed.ShouldBlock(req), linear.ShouldBlock(req)
				if got != want {
					t.Fatalf("trial %d: url=%q pageHost=%q type=%d: indexed=%v linear=%v\nlists:\n%s",
						trial, u, ph, req.Type, got, want, strings.Join(texts, "---\n"))
				}
			}
		}
	}
}

// TestIndexMatchesLinearMakeRequest repeats a slice of the differential
// check through MakeRequest, so the precomputed host/third-party fields
// carry the same decisions as the on-the-fly ones.
func TestIndexMatchesLinearMakeRequest(t *testing.T) {
	indexed, linear := engines(t, strings.Join(indexRuleFragments, "\n"))
	for _, u := range indexTestURLs {
		for _, ph := range indexTestPageHosts {
			pre := MakeRequest(u, ph, ResourceScript)
			lazy := Request{URL: u, PageHost: ph, Type: ResourceScript}
			if pre.Host() != lazy.Host() || pre.ThirdParty() != lazy.ThirdParty() {
				t.Fatalf("MakeRequest(%q,%q) derivations diverge: host %q vs %q, tp %v vs %v",
					u, ph, pre.Host(), lazy.Host(), pre.ThirdParty(), lazy.ThirdParty())
			}
			if got, want := indexed.ShouldBlock(pre), linear.ShouldBlock(lazy); got != want {
				t.Fatalf("url=%q pageHost=%q: indexed(MakeRequest)=%v linear=%v", u, ph, got, want)
			}
		}
	}
}

// FuzzShouldBlockIndexMatchesLinear fuzzes arbitrary filter-list text and
// request fields against the index/linear equivalence.
func FuzzShouldBlockIndexMatchesLinear(f *testing.F) {
	f.Add("||ads.example^$third-party\n@@||ads.example^allowed\nbanner",
		"http://ads.example/banner", "pub.example", uint8(1))
	f.Add("||ads.example^", "http://ads.example@evil.com/", "p.example", uint8(0))
	f.Add("||a.b^|\n||a.b", "http://x.a.b", "a.b", uint8(2))
	f.Add("^tok^$script\n@@tok*", "scheme://u:p@h_t.a-b.c:1/tok?q", "", uint8(255))
	f.Fuzz(func(t *testing.T, listText, rawURL, pageHost string, rtype uint8) {
		l, err := ParseList("fuzz", listText)
		if err != nil {
			t.Skip()
		}
		indexed := NewEngine(l)
		linear := NewEngine(l)
		linear.DisableIndex = true
		req := Request{URL: rawURL, PageHost: pageHost, Type: ResourceType(rtype)}
		if got, want := indexed.ShouldBlock(req), linear.ShouldBlock(req); got != want {
			t.Fatalf("list %q url %q pageHost %q type %d: indexed=%v linear=%v",
				listText, rawURL, pageHost, rtype, got, want)
		}
		pre := MakeRequest(rawURL, pageHost, ResourceType(rtype))
		if got, want := indexed.ShouldBlock(pre), linear.ShouldBlock(pre); got != want {
			t.Fatalf("list %q url %q (MakeRequest): indexed=%v linear=%v", listText, rawURL, got, want)
		}
	})
}

// TestDomainKeyClassification pins which rules may enter the domain bucket
// and under which key.
func TestDomainKeyClassification(t *testing.T) {
	cases := []struct {
		rule string
		key  string
		ok   bool
	}{
		{"||ads.example^", "ads.example", true},
		{"||cdn.ads.example^x", "ads.example", true},
		{"||ads.example/banner", "ads.example", true},
		{"||ads.example^|", "ads.example", true},
		{"||ads.example|", "ads.example", true},   // end anchor terminates the host
		{"||ads.example", "", false},              // host may continue in the URL
		{"||ads^", "", false},                     // single label
		{"||ads.example*track", "", false},        // wildcard may extend the host
		{"||ads..example^", "", false},            // empty label
		{"||.ads.example^", "", false},            // leading dot
		{"||AdS.Example^", "ads.example", true},   // case-blind
		{"@@||ads.example^", "ads.example", true}, // exceptions bucket too
		{"banner", "", false},                     // not domain-anchored
	}
	for _, c := range cases {
		r, err := parseRule(c.rule)
		if err != nil {
			t.Fatalf("parseRule(%q): %v", c.rule, err)
		}
		key, ok := domainKey(&r)
		if ok != c.ok || key != c.key {
			t.Errorf("domainKey(%q) = %q,%v; want %q,%v", c.rule, key, ok, c.key, c.ok)
		}
	}
}

// TestPatternTokenClassification pins the bounded-token extraction.
func TestPatternTokenClassification(t *testing.T) {
	cases := []struct {
		rule string
		tok  string
		ok   bool
	}{
		{"/ads/banner*", "ads", true}, // "banner" is unbounded by '*'; "ads" is not
		{"/ads/banner/", "banner", true},
		{"/adserve/^", "adserve", true},
		{"banner", "", false},  // both edges unanchored
		{"banner|", "", false}, // left edge unanchored
		{"|banner", "", false}, // right edge unanchored
		{"|banner|", "banner", true},
		{"||banner^", "banner", true}, // domain anchor pins the left edge
		{"track^", "", false},         // left edge unanchored
		{"^track^", "track", true},
		{"*x/token^y*", "token", true},
		{"**", "", false},
	}
	for _, c := range cases {
		r, err := parseRule(c.rule)
		if err != nil {
			t.Fatalf("parseRule(%q): %v", c.rule, err)
		}
		tok, ok := patternToken(&r)
		if ok != c.ok || (ok && tok != c.tok) {
			t.Errorf("patternToken(%q) = %q,%v; want %q,%v", c.rule, tok, ok, c.tok, c.ok)
		}
	}
}

// TestAuthorityKeysUserinfo pins the soundness trap that rules out keying
// the domain bucket by url.Parse's Hostname: the raw-string matcher anchors
// "||ads.example^" inside the userinfo of http://ads.example@evil.com/
// (the '^' matches '@'), while Hostname() reports evil.com. The raw
// authority enumeration must produce both label pairs.
func TestAuthorityKeysUserinfo(t *testing.T) {
	keys := appendAuthorityKeys("http://ads.example@evil.com/", nil)
	want := map[string]bool{"ads.example": true, "evil.com": true}
	for _, k := range keys {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("appendAuthorityKeys missing %v (got %v)", want, keys)
	}

	r, err := parseRule("||ads.example^")
	if err != nil {
		t.Fatal(err)
	}
	req := Request{URL: "http://ads.example@evil.com/", PageHost: "p.example"}
	if !r.Matches(req) {
		t.Fatal("matcher no longer anchors into userinfo; update the index key derivation notes")
	}
	indexed, linear := engines(t, "||ads.example^")
	if got, want := indexed.ShouldBlock(req), linear.ShouldBlock(req); got != want {
		t.Fatalf("userinfo URL: indexed=%v linear=%v", got, want)
	}
}

// benchFilterList mirrors the synthetic web's generated list shape: mostly
// third-party domain-anchor rules plus a few path rules and exceptions.
func benchFilterList() string {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "||adnet-%02d.example^$third-party\n", i)
	}
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "||adtrk-%02d.example^$third-party\n", i)
	}
	b.WriteString("/ads/banner*\n/adserve/^$script\n@@||adnet-00.example^allowed\n")
	return b.String()
}

var benchRequests = []Request{
	MakeRequest("http://adnet-07.example/ads/banner.png", "pub-01.example", ResourceImage),
	MakeRequest("http://static-03.example/lib.js", "pub-01.example", ResourceScript),
	MakeRequest("http://pub-01.example/section/page", "pub-01.example", ResourceDocument),
	MakeRequest("http://adtrk-11.example/adserve/t.js", "pub-02.example", ResourceScript),
	MakeRequest("http://cdn-02.example/style.css", "pub-02.example", ResourceStylesheet),
}

// BenchmarkShouldBlock contrasts the tokenized index with the linear scan
// on a synthetic-shaped list (bench-smoke in CI).
func BenchmarkShouldBlock(b *testing.B) {
	l, err := ParseList("bench", benchFilterList())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"indexed", false}, {"linear", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e := NewEngine(l)
			e.DisableIndex = mode.disable
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.ShouldBlock(benchRequests[i%len(benchRequests)])
			}
		})
	}
}
