// Package blocking implements the content-blocking extensions of the
// paper's §3.6 ("Browser Feature Usage on the Modern Web", IMC 2016): an
// AdBlock Plus-style filter-list engine (crowd-sourced URL rules plus
// element-hiding rules) and a Ghostery-style tracker database (curated
// cross-domain tracking domains). The crawler installs these as browser
// extensions for the paper's blocking measurement configurations, and §5.4
// measures how site behavior differs under them.
//
// Profile names the user-facing blocking setups (none, adblock, ghostery,
// blocking, all) and expands each to the measure.Case set a survey run must
// crawl so blocked-vs-unblocked deltas are computable from one pass; the
// cmd/pipeline binary selects cases this way. Engine and TrackerDB are
// immutable once parsed and safe to share across concurrent browser
// workers, which is how the sharded pipeline amortizes one parse over every
// worker in every shard.
package blocking
