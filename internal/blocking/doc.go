// Package blocking implements the content-blocking extensions of the
// paper's §3.6 ("Browser Feature Usage on the Modern Web", IMC 2016): an
// AdBlock Plus-style filter-list engine (crowd-sourced URL rules plus
// element-hiding rules) and a Ghostery-style tracker database (curated
// cross-domain tracking domains). The crawler installs these as browser
// extensions for the paper's blocking measurement configurations, and §5.4
// measures how site behavior differs under them.
//
// Profile names the user-facing blocking setups (none, adblock, ghostery,
// blocking, all) and expands each to the measure.Case set a survey run must
// crawl so blocked-vs-unblocked deltas are computable from one pass; the
// cmd/pipeline binary selects cases this way. Engine and TrackerDB are
// immutable once parsed and safe to share across concurrent browser
// workers, which is how the sharded pipeline amortizes one parse over every
// worker in every shard.
//
// Engine.ShouldBlock answers through a tokenized rule index built once at
// construction instead of scanning every rule of every list: rules whose
// "||" anchor opens with a well-formed host run bucket by that run's last
// two labels, rules with a bounded literal token (a [a-z0-9] run pinned on
// both sides by literal pattern text) bucket by their longest such token,
// and the small unbucketable remainder scans linearly. Query keys derive
// from the request's raw URL — authority label pairs and alphanumeric runs
// — never from net/url's parse, because "||" anchoring can legitimately
// land inside userinfo that a structured parse would strip. Exception
// buckets are consulted before block buckets, mirroring ABP's
// scan-order-independent semantics. DisableIndex routes decisions through
// the retained linear scan — an ablation knob; index and scan agree on
// every request (fuzz- and oracle-test-enforced, byte-identical survey
// logs either way).
package blocking
