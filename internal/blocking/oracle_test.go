package blocking

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

// ruleToRegexp compiles an ABP pattern into the reference regexp AdBlock
// Plus documents: * → .*, ^ → separator class (or end), || → scheme +
// optional subdomains anchor, | → string anchors. The hand-rolled matcher
// must agree with this oracle on every generated case.
func ruleToRegexp(r *Rule) *regexp.Regexp {
	var b strings.Builder
	pat := strings.ToLower(r.Pattern)
	switch {
	case r.DomainAnchor:
		b.WriteString(`^[a-z]+://([^/?#]*\.)?`)
	case r.StartAnchor:
		b.WriteString(`^`)
	}
	for i := 0; i < len(pat); i++ {
		switch c := pat[i]; c {
		case '*':
			b.WriteString(`.*`)
		case '^':
			b.WriteString(`([^a-z0-9_\-.%]|$)`)
		default:
			b.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	if r.EndAnchor {
		b.WriteString(`$`)
	}
	return regexp.MustCompile(b.String())
}

// TestMatcherAgreesWithRegexpOracle cross-checks the matcher against the
// regexp reference on randomized rules and URLs.
func TestMatcherAgreesWithRegexpOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	hosts := []string{"ads.example", "cdn.ads.example", "notads.example", "x.org", "sub.x.org"}
	paths := []string{"/", "/banner/1", "/a/banner", "/pathology", "/path", "/p?q=1", "/p%20x"}
	patterns := []string{
		"||ads.example^",
		"||ads.example^banner",
		"|http://ads.example/",
		"banner",
		"/banner/*",
		"banner*1",
		"||x.org^path^",
		"path|",
		"|http://x.org/p|",
	}
	for trial := 0; trial < 2000; trial++ {
		patText := patterns[rng.Intn(len(patterns))]
		rule, err := parseRule(patText)
		if err != nil {
			t.Fatalf("parseRule(%q): %v", patText, err)
		}
		oracle := ruleToRegexp(&rule)
		u := "http://" + hosts[rng.Intn(len(hosts))] + paths[rng.Intn(len(paths))]
		req := Request{URL: u, PageHost: "page.example"}
		got := rule.Matches(req)
		want := oracle.MatchString(u)
		if got != want {
			t.Fatalf("rule %q vs url %q: matcher=%v oracle=%v (oracle regexp %s)",
				patText, u, got, want, oracle)
		}
		// Both engine paths — the tokenized index and the linear scan —
		// must agree with the oracle too: a one-rule engine blocks exactly
		// when the rule matches.
		list := &List{Name: "oracle", Rules: []Rule{rule}}
		indexed := NewEngine(list)
		linear := NewEngine(list)
		linear.DisableIndex = true
		if ib := indexed.ShouldBlock(req); ib != want {
			t.Fatalf("rule %q vs url %q: indexed engine=%v oracle=%v", patText, u, ib, want)
		}
		if lb := linear.ShouldBlock(req); lb != want {
			t.Fatalf("rule %q vs url %q: linear engine=%v oracle=%v", patText, u, lb, want)
		}
	}
}

// TestDomainAnchorOracleEdgeCases pins the subtle "||" boundary semantics.
func TestDomainAnchorOracleEdgeCases(t *testing.T) {
	rule, err := parseRule("||ads.example^")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		url  string
		want bool
	}{
		{"http://ads.example/x", true},
		{"https://a.b.ads.example/x", true},
		{"http://badads.example/x", false},       // not at a label boundary
		{"http://ads.example.evil.com/x", false}, // ^ must match after the domain
		{"http://ads.example", true},             // ^ matches end of URL
		{"http://ads.example:8080/x", true},      // ^ matches ':'
	}
	for _, c := range cases {
		req := Request{URL: c.url, PageHost: "p.example"}
		if got := rule.Matches(req); got != c.want {
			t.Errorf("||ads.example^ vs %q = %v, want %v", c.url, got, c.want)
		}
	}
}
