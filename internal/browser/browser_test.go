package browser

import (
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
	"repro/internal/webserver"
)

// testEnv is a tiny generated web plus bindings shared by the package tests.
type testEnv struct {
	web  *synthweb.Web
	bind *webapi.Bindings
	site *synthweb.Site
}

var sharedEnv *testEnv

func env(t testing.TB) *testEnv {
	t.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	reg, err := webidl.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := &testEnv{web: web, bind: webapi.NewBindings(reg)}
	for _, s := range web.Sites {
		if s.Failure == synthweb.FailNone {
			e.site = s
			break
		}
	}
	sharedEnv = e
	return e
}

func (e *testEnv) browser(exts ...Extension) *Browser {
	return New(e.bind, webserver.DirectFetcher{Web: e.web}, exts...)
}

func TestLoadExecutesOnLoadScripts(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Runtime.TotalNativeCalls() == 0 {
		t.Error("no native calls after load; immediate/load statements did not run")
	}
	if len(page.ScriptErrors) != 0 {
		t.Errorf("script errors on healthy site: %v", page.ScriptErrors)
	}
}

func TestLoadFailsOnUnresponsive(t *testing.T) {
	e := env(t)
	b := e.browser()
	for _, s := range e.web.Sites {
		if s.Failure != synthweb.FailUnresponsive {
			continue
		}
		if _, err := b.Load("http://" + s.Domain + "/"); err == nil {
			t.Error("unresponsive site loaded")
		}
		return
	}
	t.Skip("no unresponsive site in sample")
}

func TestSyntaxErrorDetected(t *testing.T) {
	e := env(t)
	b := e.browser()
	for _, s := range e.web.Sites {
		if s.Failure != synthweb.FailScriptError {
			continue
		}
		page, err := b.Load("http://" + s.Domain + "/")
		if err != nil {
			t.Fatal(err)
		}
		if !page.HasParseErrors() {
			t.Error("script-error site loaded without parse errors")
		}
		return
	}
	t.Skip("no script-error site in sample")
}

func TestClickAnchorRecordsNavigation(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	start := len(page.NavAttempts)
	anchors := page.DOM.ElementsByTag("a")
	if len(anchors) == 0 {
		t.Fatal("no anchors")
	}
	page.Click(anchors[0])
	if len(page.NavAttempts) != start+1 {
		t.Fatalf("nav attempts %d -> %d after anchor click", start, len(page.NavAttempts))
	}
	if !strings.HasPrefix(page.NavAttempts[start], "http://") {
		t.Errorf("nav attempt not absolute: %q", page.NavAttempts[start])
	}
}

func TestClickSelectorHandlers(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	// Clicking #act-0 fires the generated navigation handler.
	btn := page.DOM.GetElementByID("act-0")
	if btn == nil {
		t.Fatal("#act-0 missing")
	}
	before := len(page.NavAttempts)
	page.Click(btn)
	if len(page.NavAttempts) <= before {
		t.Error("#act-0 click handler did not navigate")
	}
}

func TestHiddenElementsNotClickable(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	btn := page.DOM.GetElementByID("act-0")
	btn.Hidden = true
	before := len(page.NavAttempts)
	page.Click(btn)
	if len(page.NavAttempts) != before {
		t.Error("hidden element click had effects")
	}
}

func TestTimerHandlersFire(t *testing.T) {
	e := env(t)
	b := e.browser()
	// Find a page whose scripts register a timer by scanning sites.
	for _, s := range e.web.Sites {
		if s.Failure != synthweb.FailNone {
			continue
		}
		page, err := b.Load("http://" + s.Domain + "/")
		if err != nil {
			continue
		}
		before := page.Runtime.TotalNativeCalls()
		page.AdvanceClock(30)
		if page.Runtime.TotalNativeCalls() > before {
			return // a timer fired: done
		}
	}
	t.Skip("no timer handlers on sampled home pages")
}

func TestBlockingExtensionVetoesAndHides(t *testing.T) {
	e := env(t)
	list, err := blocking.ParseList("easylist", e.web.FilterListText)
	if err != nil {
		t.Fatal(err)
	}
	abp := &BlockingExtension{Label: "adblock-plus", Blocker: blocking.NewEngine(list)}

	// Find a site whose home page carries an ad script.
	for _, s := range e.web.Sites {
		if s.Failure != synthweb.FailNone {
			continue
		}
		plain, err := e.browser().Load("http://" + s.Domain + "/")
		if err != nil {
			t.Fatal(err)
		}
		hasAd := false
		for _, sc := range plain.DOM.Scripts() {
			if strings.Contains(sc.Src, "adnet-") || strings.Contains(sc.Src, "adtrk-") {
				hasAd = true
			}
		}
		if !hasAd {
			continue
		}
		blocked, err := e.browser(abp).Load("http://" + s.Domain + "/")
		if err != nil {
			t.Fatal(err)
		}
		if len(blocked.BlockedRequests) == 0 {
			t.Error("ABP extension blocked nothing on an ad-carrying page")
		}
		if blocked.Runtime.TotalNativeCalls() > plain.Runtime.TotalNativeCalls() {
			t.Error("blocking increased native calls")
		}
		// Element hiding: the ad banner must be hidden.
		if banner := blocked.DOM.QuerySelector("div.ad-banner"); banner != nil && banner.Visible() {
			t.Error("ad banner visible despite ##.ad-banner rule")
		}
		return
	}
	t.Fatal("no ad-carrying site found")
}

func TestScriptCacheServesRepeatLoads(t *testing.T) {
	e := env(t)
	b := e.browser()
	url := "http://" + e.site.Domain + "/"
	p1, err := b.Load(url)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Load(url)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Runtime.TotalNativeCalls() != p2.Runtime.TotalNativeCalls() {
		t.Error("cached script load produced different execution")
	}
}

func TestLocalNavAttemptsFilterAndDedupe(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range page.DOM.ElementsByTag("a") {
		page.Click(a)
		page.Click(a) // duplicate clicks
	}
	local := page.LocalNavAttempts(func(host string) bool {
		return e.web.Ranking.SameSite(host, e.site.Domain)
	})
	seen := map[string]bool{}
	for _, u := range local {
		if seen[u] {
			t.Fatalf("duplicate local nav %q", u)
		}
		seen[u] = true
		if strings.Contains(u, "partner-offers") || strings.Contains(u, "adnet-") {
			t.Fatalf("external URL %q leaked into local navs", u)
		}
	}
	if len(local) == 0 {
		t.Fatal("no local navs after clicking all anchors")
	}
}

func TestNonDocumentLoadFails(t *testing.T) {
	e := env(t)
	b := e.browser()
	if _, err := b.Load("http://" + e.site.Domain + "/static/home.js"); err == nil {
		t.Fatal("loading a script as a document should fail")
	}
}
