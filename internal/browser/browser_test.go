package browser

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/dom"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
	"repro/internal/webserver"
)

// testEnv is a tiny generated web plus bindings shared by the package tests.
type testEnv struct {
	web  *synthweb.Web
	bind *webapi.Bindings
	site *synthweb.Site
}

var sharedEnv *testEnv

func env(t testing.TB) *testEnv {
	t.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	reg, err := webidl.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := &testEnv{web: web, bind: webapi.NewBindings(reg)}
	for _, s := range web.Sites {
		if s.Failure == synthweb.FailNone {
			e.site = s
			break
		}
	}
	sharedEnv = e
	return e
}

func (e *testEnv) browser(exts ...Extension) *Browser {
	return New(e.bind, webserver.DirectFetcher{Web: e.web}, exts...)
}

func TestLoadExecutesOnLoadScripts(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if page.Runtime.TotalNativeCalls() == 0 {
		t.Error("no native calls after load; immediate/load statements did not run")
	}
	if len(page.ScriptErrors) != 0 {
		t.Errorf("script errors on healthy site: %v", page.ScriptErrors)
	}
}

func TestLoadFailsOnUnresponsive(t *testing.T) {
	e := env(t)
	b := e.browser()
	for _, s := range e.web.Sites {
		if s.Failure != synthweb.FailUnresponsive {
			continue
		}
		if _, err := b.Load("http://" + s.Domain + "/"); err == nil {
			t.Error("unresponsive site loaded")
		}
		return
	}
	t.Skip("no unresponsive site in sample")
}

func TestSyntaxErrorDetected(t *testing.T) {
	e := env(t)
	b := e.browser()
	for _, s := range e.web.Sites {
		if s.Failure != synthweb.FailScriptError {
			continue
		}
		page, err := b.Load("http://" + s.Domain + "/")
		if err != nil {
			t.Fatal(err)
		}
		if !page.HasParseErrors() {
			t.Error("script-error site loaded without parse errors")
		}
		return
	}
	t.Skip("no script-error site in sample")
}

func TestClickAnchorRecordsNavigation(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	start := len(page.NavAttempts)
	anchors := page.DOM.ElementsByTag("a")
	if len(anchors) == 0 {
		t.Fatal("no anchors")
	}
	page.Click(anchors[0])
	if len(page.NavAttempts) != start+1 {
		t.Fatalf("nav attempts %d -> %d after anchor click", start, len(page.NavAttempts))
	}
	if !strings.HasPrefix(page.NavAttempts[start], "http://") {
		t.Errorf("nav attempt not absolute: %q", page.NavAttempts[start])
	}
}

func TestClickSelectorHandlers(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	// Clicking #act-0 fires the generated navigation handler.
	btn := page.DOM.GetElementByID("act-0")
	if btn == nil {
		t.Fatal("#act-0 missing")
	}
	before := len(page.NavAttempts)
	page.Click(btn)
	if len(page.NavAttempts) <= before {
		t.Error("#act-0 click handler did not navigate")
	}
}

func TestHiddenElementsNotClickable(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	btn := page.DOM.GetElementByID("act-0")
	btn.Hidden = true
	before := len(page.NavAttempts)
	page.Click(btn)
	if len(page.NavAttempts) != before {
		t.Error("hidden element click had effects")
	}
}

func TestTimerHandlersFire(t *testing.T) {
	e := env(t)
	b := e.browser()
	// Find a page whose scripts register a timer by scanning sites.
	for _, s := range e.web.Sites {
		if s.Failure != synthweb.FailNone {
			continue
		}
		page, err := b.Load("http://" + s.Domain + "/")
		if err != nil {
			continue
		}
		before := page.Runtime.TotalNativeCalls()
		page.AdvanceClock(30)
		if page.Runtime.TotalNativeCalls() > before {
			return // a timer fired: done
		}
	}
	t.Skip("no timer handlers on sampled home pages")
}

func TestBlockingExtensionVetoesAndHides(t *testing.T) {
	e := env(t)
	list, err := blocking.ParseList("easylist", e.web.FilterListText)
	if err != nil {
		t.Fatal(err)
	}
	abp := &BlockingExtension{Label: "adblock-plus", Blocker: blocking.NewEngine(list)}

	// Find a site whose home page carries an ad script.
	for _, s := range e.web.Sites {
		if s.Failure != synthweb.FailNone {
			continue
		}
		plain, err := e.browser().Load("http://" + s.Domain + "/")
		if err != nil {
			t.Fatal(err)
		}
		hasAd := false
		for _, sc := range plain.DOM.Scripts() {
			if strings.Contains(sc.Src, "adnet-") || strings.Contains(sc.Src, "adtrk-") {
				hasAd = true
			}
		}
		if !hasAd {
			continue
		}
		blocked, err := e.browser(abp).Load("http://" + s.Domain + "/")
		if err != nil {
			t.Fatal(err)
		}
		if len(blocked.BlockedRequests) == 0 {
			t.Error("ABP extension blocked nothing on an ad-carrying page")
		}
		if blocked.Runtime.TotalNativeCalls() > plain.Runtime.TotalNativeCalls() {
			t.Error("blocking increased native calls")
		}
		// Element hiding: the ad banner must be hidden.
		if banner := blocked.DOM.QuerySelector("div.ad-banner"); banner != nil && banner.Visible() {
			t.Error("ad banner visible despite ##.ad-banner rule")
		}
		return
	}
	t.Fatal("no ad-carrying site found")
}

func TestScriptCacheServesRepeatLoads(t *testing.T) {
	e := env(t)
	b := e.browser()
	url := "http://" + e.site.Domain + "/"
	p1, err := b.Load(url)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Load(url)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Runtime.TotalNativeCalls() != p2.Runtime.TotalNativeCalls() {
		t.Error("cached script load produced different execution")
	}
}

func TestLocalNavAttemptsFilterAndDedupe(t *testing.T) {
	e := env(t)
	b := e.browser()
	page, err := b.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range page.DOM.ElementsByTag("a") {
		page.Click(a)
		page.Click(a) // duplicate clicks
	}
	local := page.LocalNavAttempts(func(host string) bool {
		return e.web.Ranking.SameSite(host, e.site.Domain)
	})
	seen := map[string]bool{}
	for _, u := range local {
		if seen[u] {
			t.Fatalf("duplicate local nav %q", u)
		}
		seen[u] = true
		if strings.Contains(u, "partner-offers") || strings.Contains(u, "adnet-") {
			t.Fatalf("external URL %q leaked into local navs", u)
		}
	}
	if len(local) == 0 {
		t.Fatal("no local navs after clicking all anchors")
	}
}

func TestNonDocumentLoadFails(t *testing.T) {
	e := env(t)
	b := e.browser()
	if _, err := b.Load("http://" + e.site.Domain + "/static/home.js"); err == nil {
		t.Fatal("loading a script as a document should fail")
	}
}

// TestTemplateCloneIndependencePages pins clone independence at the page
// level: mutating one loaded page's DOM — structure, Hidden flags, and
// attributes — must not leak into the cached template or a page loaded
// before or after the mutation.
func TestTemplateCloneIndependencePages(t *testing.T) {
	e := env(t)
	b := e.browser()
	url := "http://" + e.site.Domain + "/"

	p1, err := b.Load(url)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Load(url)
	if err != nil {
		t.Fatal(err)
	}
	if p1.DOM == p2.DOM {
		t.Fatal("repeat loads share a DOM")
	}

	btn := p1.DOM.GetElementByID("act-0")
	if btn == nil {
		t.Fatal("#act-0 missing")
	}
	btn.SetHidden(true)
	btn.SetAttr("id", "mutated")
	body := p1.DOM.Body()
	body.AppendChild(dom.NewElement("span"))
	body.RemoveChild(body.Children[0])

	if el := p2.DOM.GetElementByID("act-0"); el == nil || !el.Visible() {
		t.Error("mutating page 1 leaked into concurrently live page 2")
	}
	p3, err := b.Load(url)
	if err != nil {
		t.Fatal(err)
	}
	if el := p3.DOM.GetElementByID("act-0"); el == nil || !el.Visible() {
		t.Error("mutating a clone leaked into the cached template")
	}
	if p3.DOM.GetElementByID("mutated") != nil {
		t.Error("attribute write leaked into the cached template")
	}
}

// TestReleaseRecyclesDeterministically drives many load/release cycles and
// checks every recycled page reproduces the first load exactly: same native
// call totals (runtime counters were reset), same handler count, no
// leftover navigation attempts or errors.
func TestReleaseRecyclesDeterministically(t *testing.T) {
	e := env(t)
	b := e.browser()
	url := "http://" + e.site.Domain + "/"

	first, err := b.Load(url)
	if err != nil {
		t.Fatal(err)
	}
	wantCalls := first.Runtime.TotalNativeCalls()
	wantNavs := len(first.NavAttempts)
	b.Release(first)

	for i := 0; i < 5; i++ {
		p, err := b.Load(url)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Runtime.TotalNativeCalls(); got != wantCalls {
			t.Fatalf("cycle %d: %d native calls, want %d (stale counters on recycled runtime?)", i, got, wantCalls)
		}
		if len(p.NavAttempts) != wantNavs {
			t.Fatalf("cycle %d: %d nav attempts, want %d", i, len(p.NavAttempts), wantNavs)
		}
		if len(p.ScriptErrors) != 0 {
			t.Fatalf("cycle %d: leftover script errors %v", i, p.ScriptErrors)
		}
		p.AdvanceClock(30) // dirty the timer state before recycling
		p.Scroll()
		b.Release(p)
	}
}

// TestReleaseEdgeCases: nil, double release, foreign pages, and DisableReuse
// are all no-ops.
func TestReleaseEdgeCases(t *testing.T) {
	e := env(t)
	b := e.browser()
	b.Release(nil)

	other := e.browser()
	p, err := other.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	b.Release(p) // foreign page: no-op
	if p.Runtime == nil || p.DOM == nil {
		t.Fatal("foreign release mutated the page")
	}
	other.Release(p)
	other.Release(p) // double release: no-op

	slow := e.browser()
	slow.DisableReuse = true
	sp, err := slow.Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	slow.Release(sp)
	if sp.DOM == nil {
		t.Fatal("Release under DisableReuse reset the page")
	}
}

// TestSlowPathMatchesFastPath compares a reuse-disabled browser against the
// default one page by page.
func TestSlowPathMatchesFastPath(t *testing.T) {
	e := env(t)
	fast := e.browser()
	slow := e.browser()
	slow.DisableReuse = true
	for _, s := range e.web.Sites[:10] {
		url := "http://" + s.Domain + "/"
		fp, ferr := fast.Load(url)
		sp, serr := slow.Load(url)
		if (ferr == nil) != (serr == nil) {
			t.Fatalf("%s: fast err=%v slow err=%v", url, ferr, serr)
		}
		if ferr != nil {
			continue
		}
		// Load again on the fast path so the template-cache hit path is
		// compared too, after releasing the first page.
		fast.Release(fp)
		fp, ferr = fast.Load(url)
		if ferr != nil {
			t.Fatal(ferr)
		}
		if got, want := fp.Runtime.TotalNativeCalls(), sp.Runtime.TotalNativeCalls(); got != want {
			t.Errorf("%s: fast path %d native calls, slow path %d", url, got, want)
		}
		if got, want := len(fp.NavAttempts), len(sp.NavAttempts); got != want {
			t.Errorf("%s: fast path %d nav attempts, slow path %d", url, got, want)
		}
		if got, want := len(fp.BlockedRequests), len(sp.BlockedRequests); got != want {
			t.Errorf("%s: fast path %d blocked, slow path %d", url, got, want)
		}
	}
}

// TestInteractiveCacheInvalidation: the page's cached interactive list must
// refresh when the DOM mutates via SetHidden or structural changes.
func TestInteractiveCacheInvalidation(t *testing.T) {
	e := env(t)
	page, err := e.browser().Load("http://" + e.site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	before := len(page.Interactive())
	if before == 0 {
		t.Fatal("no interactive elements")
	}
	if got := len(page.Interactive()); got != before {
		t.Fatalf("stable page changed interactive count %d -> %d", before, got)
	}
	el := page.Interactive()[0]
	el.SetHidden(true)
	after := len(page.Interactive())
	if after >= before {
		t.Errorf("hiding an interactive element left count %d -> %d", before, after)
	}
	el.SetHidden(false)
	if got := len(page.Interactive()); got != before {
		t.Errorf("unhiding did not restore count: %d != %d", got, before)
	}
	for _, f := range page.FormFields() {
		if f.Tag != "input" && f.Tag != "textarea" {
			t.Errorf("FormFields returned <%s>", f.Tag)
		}
	}
}

// TestScriptCacheLRUKeepsHotEntries: unlike the old wholesale eviction, a
// constantly re-used entry survives an overflow of one-shot entries.
func TestScriptCacheLRUKeepsHotEntries(t *testing.T) {
	c := newLRUCache[int](4)
	c.put("hot", 1)
	for i := 0; i < 40; i++ {
		if _, ok := c.get("hot"); !ok {
			t.Fatalf("hot entry evicted after %d inserts", i)
		}
		c.put(fmt.Sprintf("cold-%d", i), i)
	}
	if len(c.entries) != 4 {
		t.Errorf("cache holds %d entries, cap 4", len(c.entries))
	}
	if _, ok := c.get("cold-0"); ok {
		t.Error("oldest cold entry not evicted")
	}
	// Refreshing an existing key must not grow the cache.
	c.put("hot", 2)
	if v, _ := c.get("hot"); v != 2 {
		t.Error("refresh did not update value")
	}
}
