package browser

import (
	"container/list"
	"fmt"
	"net/url"

	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/webscript"
)

// scriptCacheCap bounds the parsed-script cache (external and inline
// entries); site visits are processed consecutively, so locality is high.
const scriptCacheCap = 4096

// templateCacheCap bounds the parsed-DOM template cache. Templates are only
// useful while a site's rounds are in flight (a site rarely has more than a
// few dozen distinct pages), so the cap mostly bounds memory across the
// site→site transition.
const templateCacheCap = 256

// resolveCacheCap bounds the URL-resolution memo caches (resolveURL results
// and navigation-attempt cleanups). Entries are small strings; the working
// set is the distinct references the current site's scripts mention.
const resolveCacheCap = 8192

// inlineKeyPrefix namespaces inline-script cache keys (keyed by source
// text) away from URL keys. The byte cannot appear in a fetched URL.
const inlineKeyPrefix = "\x00inline\x00"

// lruCache is a tiny entry-count-capped in-memory LRU — the same eviction
// discipline logstore.Cache applies to its on-disk entries, minus the
// persistence. It replaces the script cache's old wholesale map reset,
// which dropped hot cross-site entries (shared trackers, ad scripts)
// whenever the cache filled. Not goroutine-safe; callers lock.
type lruCache[V any] struct {
	cap     int
	entries map[string]*list.Element
	order   list.List // front = most recently used
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRUCache[V any](cap int) *lruCache[V] {
	c := &lruCache[V]{cap: cap, entries: make(map[string]*list.Element)}
	c.order.Init()
	return c
}

// get returns the cached value and marks it most recently used.
func (c *lruCache[V]) get(key string) (V, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes a value, evicting the least-recently-used
// entries beyond the cap.
func (c *lruCache[V]) put(key string, val V) {
	if el, ok := c.entries[key]; ok {
		el.Value = lruEntry[V]{key, val}
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(lruEntry[V]{key, val})
	for len(c.entries) > c.cap {
		back := c.order.Back()
		delete(c.entries, back.Value.(lruEntry[V]).key)
		c.order.Remove(back)
	}
}

// compiledSel is a handler selector parsed once at script-cache (or
// install) time instead of once per event dispatch.
type compiledSel struct {
	sel dom.Selector
	ok  bool
}

// cachedScript is one parse outcome in the script cache, with every handler
// selector precompiled (aligned with script.Handlers) and — unless the
// browser has DisableScriptCompile set — the script lowered once to compiled
// ops whose feature references are interned in the browser's dispatch table.
type cachedScript struct {
	script   *webscript.Script
	compiled *webscript.Compiled // nil = execute via the interpreter
	sels     []compiledSel
	err      error
}

// newCachedScript parses source text, precompiles handler selectors, and
// compiles the script against the browser's dispatch table. Everything
// per-execution code needs is derived here, once per cache insert.
func (b *Browser) newCachedScript(src string) *cachedScript {
	cs := &cachedScript{}
	cs.script, cs.err = webscript.Parse(src)
	if cs.err != nil {
		return cs
	}
	cs.sels = compileSelectors(cs.script)
	if !b.DisableScriptCompile {
		cs.compiled = webscript.Compile(cs.script, b.dispatch)
	}
	return cs
}

// compileSelectors parses each handler's selector once.
func compileSelectors(s *webscript.Script) []compiledSel {
	if len(s.Handlers) == 0 {
		return nil
	}
	sels := make([]compiledSel, len(s.Handlers))
	for i, h := range s.Handlers {
		if h.Selector == "" {
			continue
		}
		sel, err := dom.ParseSelector(h.Selector)
		sels[i] = compiledSel{sel: sel, ok: err == nil}
	}
	return sels
}

// templateScript is one script reference of a cached page template with its
// src pre-resolved against the page URL (identical for every clone).
type templateScript struct {
	url    string // resolved absolute URL; empty for inline scripts
	inline string // inline source when url is empty
}

// domTemplate is one parsed page in the template cache: the frozen DOM plus
// everything about the page that is identical across visits.
type domTemplate struct {
	tpl     *dom.Template
	url     *url.URL // parsed page URL, shared read-only by all clones
	scripts []templateScript
}

// template returns the cached template for a URL, fetching and parsing on
// the first visit. Fetch and parse errors are not cached: a failed document
// load is fatal to the visit and the retry cost is irrelevant.
func (b *Browser) template(rawURL string) (*domTemplate, error) {
	b.cacheMu.Lock()
	t, ok := b.templates.get(rawURL)
	b.cacheMu.Unlock()
	if ok {
		return t, nil
	}

	doc, u, err := b.fetchDocument(rawURL)
	if err != nil {
		return nil, err
	}
	t = &domTemplate{url: u, scripts: collectScripts(doc, u)}
	t.tpl = dom.NewTemplate(doc) // freezes doc; must be the last use of it

	b.cacheMu.Lock()
	b.templates.put(rawURL, t)
	b.cacheMu.Unlock()
	return t, nil
}

// fetchDocument fetches and parses a page document.
func (b *Browser) fetchDocument(rawURL string) (*dom.Node, *url.URL, error) {
	res, err := b.Fetcher.Fetch(rawURL)
	if err != nil {
		return nil, nil, fmt.Errorf("browser: loading %s: %w", rawURL, err)
	}
	if res.ContentType != "text/html" {
		return nil, nil, fmt.Errorf("browser: %s is %s, not a document", rawURL, res.ContentType)
	}
	doc, err := html.Parse(res.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("browser: parsing %s: %w", rawURL, err)
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, nil, err
	}
	return doc, u, nil
}

// collectScripts extracts a document's script references with src URLs
// resolved, in document order.
func collectScripts(doc *dom.Node, base *url.URL) []templateScript {
	refs := doc.Scripts()
	if len(refs) == 0 {
		return nil
	}
	out := make([]templateScript, len(refs))
	for i, ref := range refs {
		if ref.Src == "" {
			out[i].inline = ref.Inline
			continue
		}
		out[i].url = resolveAgainst(base, ref.Src)
	}
	return out
}

// resolveAgainst resolves a possibly relative reference against base.
// Absolute-path references made of unambiguous bytes — the overwhelming
// majority of the synthetic web's hrefs and script sources — concatenate
// onto base's origin directly; everything else takes net/url's full parse,
// resolve, and re-serialize. TestResolveAgainstFastPath pins the two paths
// to identical output.
func resolveAgainst(base *url.URL, ref string) string {
	if s, ok := fastResolve(base, ref); ok {
		return s
	}
	return slowResolveAgainst(base, ref)
}

// fastResolve is resolveAgainst's concatenating path, exposed separately so
// resolveURL can skip the memo LRU entirely when it applies: the concat is
// cheaper than an LRU hit, let alone the insert churn of a miss.
func fastResolve(base *url.URL, ref string) (string, bool) {
	if fastRefPath(ref) && base.Scheme != "" && base.Host != "" && base.Opaque == "" && base.User == nil {
		return base.Scheme + "://" + base.Host + ref, true
	}
	return "", false
}

func slowResolveAgainst(base *url.URL, ref string) string {
	u, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return base.ResolveReference(u).String()
}

// fastRefPath reports whether ref is an absolute-path reference that
// resolves to base's "scheme://host" + ref verbatim: not protocol-relative,
// no dot segments (resolution rewrites those), and only bytes net/url
// neither percent-escapes in a path or query nor reinterprets (no '%',
// '#', '+', ';', ':', '@', no spaces or controls).
func fastRefPath(ref string) bool {
	if len(ref) == 0 || ref[0] != '/' || len(ref) > 1 && ref[1] == '/' {
		return false
	}
	for i := 1; i < len(ref); i++ {
		switch c := ref[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '/', c == '-', c == '_', c == '~', c == '=', c == '&', c == '?':
		case c == '.':
			// Conservatively reject any '.' touching a segment boundary —
			// that covers "." and ".." segments, which resolve away.
			if ref[i-1] == '/' || i+1 == len(ref) || ref[i+1] == '/' {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// cachedScriptFor returns the script-cache entry for key, building and
// inserting it on a miss. Building happens outside the lock; concurrent
// misses may build twice and last-put wins, which is harmless (entries for
// one key are interchangeable).
func (b *Browser) cachedScriptFor(key string, build func() *cachedScript) *cachedScript {
	b.cacheMu.Lock()
	cs, ok := b.scripts.get(key)
	b.cacheMu.Unlock()
	if ok {
		return cs
	}
	cs = build()
	b.cacheMu.Lock()
	b.scripts.put(key, cs)
	b.cacheMu.Unlock()
	return cs
}

// fetchScript fetches and parses an external script with LRU caching.
func (b *Browser) fetchScript(scriptURL string) *cachedScript {
	return b.cachedScriptFor(scriptURL, func() *cachedScript {
		res, err := b.Fetcher.Fetch(scriptURL)
		if err != nil {
			return &cachedScript{err: err}
		}
		return b.newCachedScript(res.Body)
	})
}

// inlineScript parses inline script text with LRU caching keyed by the
// source text itself: the same inline script used to be re-parsed on every
// visit of its page.
func (b *Browser) inlineScript(src string) *cachedScript {
	return b.cachedScriptFor(inlineKeyPrefix+src, func() *cachedScript {
		return b.newCachedScript(src)
	})
}
