package browser

import (
	"fmt"
	"testing"
)

// TestCompiledScriptMatchesInterpreter drives two browsers over the same
// synthetic sites — one executing compiled op lists, one with the compiler
// ablated — through loads, repeat visits, and every event source, and
// requires identical observable behavior: native-call totals, instrumented
// feature counts, nav attempts in order, script errors, and blocked
// requests. This is the differential oracle that lets the compiled path
// replace the interpreter in the survey hot loop.
func TestCompiledScriptMatchesInterpreter(t *testing.T) {
	e := env(t)
	cm := &benchMeasurer{counts: make(map[int]int64)}
	im := &benchMeasurer{counts: make(map[int]int64)}
	compiled := e.browser(cm)
	interp := e.browser(im)
	interp.DisableScriptCompile = true

	drive := func(b *Browser, url string) (*Page, error) {
		p, err := b.Load(url)
		if err != nil {
			return nil, err
		}
		// Exercise every handler source: timers via the clock, plus each
		// user-style event. Interactive() is derived from the DOM, which
		// must itself be identical, so clicking by index is deterministic.
		p.AdvanceClock(30)
		p.Scroll()
		p.MouseMove()
		for i, el := range p.Interactive() {
			if i >= 3 {
				break
			}
			p.Click(el)
		}
		if fields := p.FormFields(); len(fields) > 0 {
			p.Input(fields[0], "abc")
		}
		p.AdvanceClock(45)
		return p, nil
	}

	for _, s := range e.web.Sites[:12] {
		url := "http://" + s.Domain + "/"
		cp, cerr := drive(compiled, url)
		ip, ierr := drive(interp, url)
		if (cerr == nil) != (ierr == nil) {
			t.Fatalf("%s: compiled err=%v interpreted err=%v", url, cerr, ierr)
		}
		if cerr != nil {
			continue
		}
		// Repeat visit: the compiled body is bound from the template cache
		// the second time around, so compare that path too.
		compiled.Release(cp)
		interp.Release(ip)
		cp, cerr = drive(compiled, url)
		ip, ierr = drive(interp, url)
		if cerr != nil || ierr != nil {
			t.Fatalf("%s: repeat visit compiled err=%v interpreted err=%v", url, cerr, ierr)
		}
		comparePages(t, url, cp, ip)
		compiled.Release(cp)
		interp.Release(ip)
	}

	if len(cm.counts) != len(im.counts) {
		t.Fatalf("measurer saw %d features compiled, %d interpreted", len(cm.counts), len(im.counts))
	}
	for id, n := range cm.counts {
		if im.counts[id] != n {
			t.Errorf("feature %d: compiled count %d, interpreted count %d", id, n, im.counts[id])
		}
	}
}

func comparePages(t *testing.T, url string, cp, ip *Page) {
	t.Helper()
	if got, want := cp.Runtime.TotalNativeCalls(), ip.Runtime.TotalNativeCalls(); got != want {
		t.Errorf("%s: compiled %d native calls, interpreted %d", url, got, want)
	}
	if got, want := fmt.Sprint(cp.NavAttempts), fmt.Sprint(ip.NavAttempts); got != want {
		t.Errorf("%s: nav attempts diverge\ncompiled:    %s\ninterpreted: %s", url, got, want)
	}
	if got, want := len(cp.ScriptErrors), len(ip.ScriptErrors); got != want {
		t.Errorf("%s: compiled %d script errors, interpreted %d", url, got, want)
	} else {
		for i := range cp.ScriptErrors {
			ce, ie := cp.ScriptErrors[i], ip.ScriptErrors[i]
			if ce.URL != ie.URL || fmt.Sprint(ce.Err) != fmt.Sprint(ie.Err) {
				t.Errorf("%s: script error %d diverges: compiled %v / interpreted %v", url, i, ce, ie)
			}
		}
	}
	if got, want := fmt.Sprint(cp.BlockedRequests), fmt.Sprint(ip.BlockedRequests); got != want {
		t.Errorf("%s: blocked requests diverge\ncompiled:    %s\ninterpreted: %s", url, got, want)
	}
}

// BenchmarkScriptDispatch isolates the script-execution cost of a warm
// repeat visit plus an event storm: the compiled variant dispatches through
// interned op lists, the interpreted variant walks the AST and resolves
// interface/member strings through the runtime maps on every statement.
func BenchmarkScriptDispatch(b *testing.B) {
	e := env(b)
	url := "http://" + e.site.Domain + "/"
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"compiled", false}, {"interpreted", true}} {
		b.Run(mode.name, func(b *testing.B) {
			br := e.browser(&benchMeasurer{counts: make(map[int]int64)})
			br.DisableScriptCompile = mode.disable
			p, err := br.Load(url)
			if err != nil {
				b.Fatal(err)
			}
			br.Release(p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := br.Load(url)
				if err != nil {
					b.Fatal(err)
				}
				p.Scroll()
				p.MouseMove()
				p.AdvanceClock(60)
				br.Release(p)
			}
		})
	}
}
