// Package browser implements the instrumented browser of the paper's §4:
// a page-load pipeline (fetch → parse → extension injection → script
// execution → event loop) over the simulated DOM, Web API dispatch layer,
// and WebScript engine.
//
// Extensions hook two points, mirroring the WebExtension surface the paper
// relies on: OnBeforeRequest may veto subresource fetches (how AdBlock Plus
// and Ghostery block), and OnDOMReady runs after the DOM exists but before
// any page script — the injection point "at the beginning of the <head>
// element" the measuring extension uses (§4.2).
//
// # The revisit fast path
//
// The survey loads every page of every site once per case per round, so the
// same URL is loaded dozens of times per browser. Load is built around that
// revisit pattern; three mechanisms (all per-Browser, all bypassed when
// DisableReuse is set) make a repeat load allocate almost nothing:
//
//   - DOM template cache. The first load of a URL parses the document once
//     into a frozen dom.Template; every load — including the first — then
//     arena-clones the template (two slab allocations per page, attribute
//     maps shared copy-on-write) instead of re-fetching and re-parsing.
//     Clones are fully independent: mutating one page's tree, Hidden flags,
//     or attributes never leaks into the template or another page.
//     Templates and parsed scripts live in LRU caches, so a hot cross-site
//     script is never dropped mid-survey.
//
//   - Page/Runtime pooling. Browser.Release(page) returns a finished page
//     and its webapi.Runtime to per-Browser sync.Pools. The page is reset
//     field by field (slices keep their capacity); the runtime keeps its
//     patches and watchpoints but zeroes its per-page counters
//     (webapi.Runtime.ResetCounts), so the next load skips re-shimming the
//     whole corpus. Release is safe once the caller has drained everything
//     it needs from the page (measurer counts taken, navigation attempts
//     copied out); after Release the page must not be touched or Released
//     again — like any pooled object, a stale second Release is only
//     harmless while the page has not been reissued by a Load. Releasing
//     nil or a page of another browser is a no-op.
//
//   - Precompiled selectors. Handler selectors compile once per bound
//     handler at install time (never per event dispatch), blocking
//     extensions compile each hide rule once per profile, and the page
//     caches its Interactive/FormFields lists, invalidated by the DOM's
//     mutation generation (dom.Node.Gen).
//
//   - Compiled script dispatch. Script-cache entries carry the compiled
//     form of the parsed script (webscript.Compile): every statement's
//     "Interface.member" reference is interned once into the browser's
//     webapi.DispatchTable, so executing a statement indexes a published
//     []webapi.Dispatch — with the feature pointer and any error outcome
//     precomputed — instead of resolving two map-keyed strings per call.
//     Immediate code and handler bodies run through webscript.ExecuteOps.
//     DisableScriptCompile keeps execution on the AST interpreter, the
//     differential oracle (TestCompiledScriptMatchesInterpreter).
//
//   - URL-resolution memos. resolveURL is memoized visit-locally on the
//     page and across revisits in a browser LRU, and unambiguous
//     absolute-path references concatenate onto the page origin without
//     touching net/url at all (TestResolveAgainstFastPath pins the fast
//     and slow paths byte for byte).
//
// Correctness contract for the fast path: extensions must not structurally
// add or remove script elements at DOMReady (hiding is fine — script
// execution ignores visibility), and an extension that instruments
// Page.Runtime must mark it via webapi.Runtime.MarkInstrumented and skip
// re-instrumenting a runtime it already owns, because pooled runtimes
// return with shims intact. Both in-tree measurers comply. Survey logs are
// byte-identical with the fast path on or off (test-enforced).
package browser
