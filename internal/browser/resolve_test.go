package browser

import (
	"net/url"
	"testing"
)

// slowResolve is the reference resolution resolveAgainst's fast path must
// reproduce byte for byte.
func slowResolve(base *url.URL, ref string) string {
	u, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return base.ResolveReference(u).String()
}

var resolveBases = []string{
	"http://site-04.example/",
	"http://site-04.example/deep/page?x=1",
	"https://sub.tracker.example:8080/a/b",
	"http://user:pw@host.example/p", // userinfo forces the slow path
}

var resolveRefs = []string{
	"/", "/ads/banner", "/path/to/page", "/p?q=1&r=2", "/UPPER/Case_~x",
	"/trailing/", "/a?b?c", "/a=b&c",
	// Slow-path shapes: relative, dot segments, protocol-relative,
	// absolute, escapes, fragments, spaces, empties.
	"page", "../up", "/a/../b", "/a/./b", "/a/.", "/..", "//cdn.example/x",
	"http://other.example/y", "/%41", "/a#frag", "/a b", "", "/a+b", "/a;b",
	"/a:b", "/eñe", "?:", "https://x@y/z",
}

// TestResolveAgainstFastPath pins the concatenating fast path to net/url's
// full resolution across bases and references spanning both paths.
func TestResolveAgainstFastPath(t *testing.T) {
	for _, b := range resolveBases {
		base, err := url.Parse(b)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range resolveRefs {
			got := resolveAgainst(base, ref)
			want := slowResolve(base, ref)
			if got != want {
				t.Errorf("resolveAgainst(%q, %q) = %q, want %q (fastRefPath=%v)",
					b, ref, got, want, fastRefPath(ref))
			}
		}
	}
}

// FuzzResolveAgainstFastPath hammers the same agreement with arbitrary
// reference strings.
func FuzzResolveAgainstFastPath(f *testing.F) {
	for _, ref := range resolveRefs {
		f.Add(ref)
	}
	bases := make([]*url.URL, len(resolveBases))
	for i, b := range resolveBases {
		u, err := url.Parse(b)
		if err != nil {
			f.Fatal(err)
		}
		bases[i] = u
	}
	f.Fuzz(func(t *testing.T, ref string) {
		for i, base := range bases {
			if got, want := resolveAgainst(base, ref), slowResolve(base, ref); got != want {
				t.Errorf("base %q ref %q: fast %q, slow %q", resolveBases[i], ref, got, want)
			}
		}
	})
}
