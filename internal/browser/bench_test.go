package browser

import (
	"testing"

	"repro/internal/blocking"
	"repro/internal/webapi"
	"repro/internal/webidl"
)

// benchMeasurer replicates the measuring extension's instrumentation
// (extension.Measurer lives downstream of this package and cannot be
// imported from its tests): patch every method, watch every singleton
// property, and skip re-instrumenting a recycled runtime.
type benchMeasurer struct {
	counts map[int]int64
}

func (m *benchMeasurer) Name() string                          { return "bench-measurer" }
func (m *benchMeasurer) OnBeforeRequest(blocking.Request) bool { return false }

func (m *benchMeasurer) OnDOMReady(p *Page) {
	rt := p.Runtime
	if rt.InstrumentedBy(m) {
		return
	}
	rt.PatchAllMethods(func(f *webidl.Feature, original webapi.MethodFunc) webapi.MethodFunc {
		return func(ctx *webapi.CallContext) {
			m.counts[ctx.Feature.ID] += int64(ctx.Count)
			original(ctx)
		}
	})
	rt.WatchAllSingletons(func(f *webidl.Feature, count int) {
		m.counts[f.ID] += int64(count)
	})
	rt.MarkInstrumented(m)
}

// BenchmarkLoadRepeatVisit measures the survey's dominant operation: loading
// a URL the browser has already visited, with measuring instrumentation
// installed — the shape of every visit after the first in an 11-case ×
// 10-round methodology. The fastpath variant exercises the template cache,
// arena cloning, and page/runtime recycling; the slowpath variant re-fetches,
// re-parses, and re-instruments per load (the DisableReuse ablation — it
// still benefits from script-parse caching and precompiled selectors, so
// it is a conservative baseline, slightly faster than the true seed
// behavior). The acceptance criterion for the fast path is a ≥40%
// allocs/op reduction over slowpath.
func BenchmarkLoadRepeatVisit(b *testing.B) {
	e := env(b)
	url := "http://" + e.site.Domain + "/"
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fastpath", false}, {"slowpath", true}} {
		b.Run(mode.name, func(b *testing.B) {
			br := e.browser(&benchMeasurer{counts: make(map[int]int64)})
			br.DisableReuse = mode.disable
			// Warm the caches: the steady state under measurement is the
			// repeat visit, not the first.
			p, err := br.Load(url)
			if err != nil {
				b.Fatal(err)
			}
			br.Release(p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := br.Load(url)
				if err != nil {
					b.Fatal(err)
				}
				p.AdvanceClock(30)
				br.Release(p)
			}
		})
	}
}
