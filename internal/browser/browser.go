package browser

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"

	"repro/internal/blocking"
	"repro/internal/dom"
	"repro/internal/webapi"
	"repro/internal/webscript"
	"repro/internal/webserver"
)

// Extension is a browser extension.
type Extension interface {
	// Name identifies the extension in diagnostics.
	Name() string
	// OnBeforeRequest may veto a subresource fetch (true = block).
	OnBeforeRequest(req blocking.Request) bool
	// OnDOMReady runs after DOM construction, before any page script.
	OnDOMReady(p *Page)
}

// Browser is a reusable browser profile: bindings, fetcher, extensions, and
// the revisit fast path's caches and pools (see the package documentation).
// The crawl revisits every URL dozens of times, so the browser caches
// compiled scripts and parsed page templates across loads and recycles page
// and runtime structures via Release.
type Browser struct {
	Bindings   *webapi.Bindings
	Fetcher    webserver.Fetcher
	Extensions []Extension

	// DisableReuse turns off the revisit fast path — template cloning and
	// page/runtime pooling — so every load fetches, parses, and allocates
	// from scratch. An ablation/debugging knob; survey results are
	// identical either way (test-enforced).
	DisableReuse bool

	// DisableScriptCompile keeps scripts on the AST interpreter: parse-cache
	// entries skip compilation and every execution walks []Stmt through
	// webscript.Execute. Like DisableReuse it is an ablation/differential
	// knob — set it before the first Load and leave it — and survey results
	// are identical either way (test-enforced).
	DisableScriptCompile bool

	// dispatch interns the feature references of every script this browser
	// compiles; executionHost indexes its published slice per op.
	dispatch *webapi.DispatchTable

	cacheMu   sync.Mutex
	scripts   *lruCache[*cachedScript]
	templates *lruCache[*domTemplate]
	// resolved memoizes resolveURL outcomes (key: page URL + ref) and
	// navClean the parse+clean of recorded navigation attempts — the two
	// url.Parse hot spots the revisit workload repeats endlessly.
	resolved *lruCache[string]
	navClean *lruCache[navResolved]

	pagePool    sync.Pool // *Page
	runtimePool sync.Pool // *webapi.Runtime, instrumented by this browser's extensions
}

// New creates a browser profile.
func New(b *webapi.Bindings, f webserver.Fetcher, exts ...Extension) *Browser {
	return &Browser{
		Bindings:   b,
		Fetcher:    f,
		Extensions: exts,
		dispatch:   b.NewDispatchTable(),
		scripts:    newLRUCache[*cachedScript](scriptCacheCap),
		templates:  newLRUCache[*domTemplate](templateCacheCap),
		resolved:   newLRUCache[string](resolveCacheCap),
		navClean:   newLRUCache[navResolved](resolveCacheCap),
	}
}

// ScriptError records a script that failed to parse or execute, with its
// origin URL ("inline:" prefix for inline scripts).
type ScriptError struct {
	URL string
	Err error
}

func (e ScriptError) Error() string { return fmt.Sprintf("script %s: %v", e.URL, e.Err) }

// boundHandler is a registered event handler with its origin and its
// selector compiled exactly once at bind time.
type boundHandler struct {
	h       *webscript.Handler
	ops     []webscript.Op // compiled body; nil runs the interpreter
	sel     dom.Selector   // compiled h.Selector; meaningful when selOK
	selOK   bool           // h.Selector parsed successfully
	origin  string         // script URL, diagnostics only
	lastRun float64
}

// Page is one loaded page.
type Page struct {
	// URL is the page's resolved location. On the fast path it is shared
	// read-only with every other load of the same URL; do not mutate.
	URL *url.URL
	// DOM is the parsed document.
	DOM *dom.Node
	// Runtime is the page's Web API dispatch state.
	Runtime *webapi.Runtime
	// Clock is the page's virtual time in seconds since load.
	Clock float64
	// NavAttempts lists navigation attempts (absolute URLs) in order;
	// the crawler intercepts and records them (§4.3.1).
	NavAttempts []string
	// OnHandlerRegistered, when non-nil, observes every event-handler
	// registration (event type and selector). The paper's extension
	// could have captured a subset of event registrations this way but
	// omitted them (§4.2.3); the optional event measurer uses this hook
	// to implement that variant.
	OnHandlerRegistered func(ev webscript.EventType, selector string)
	// ScriptErrors lists scripts that failed to fetch, parse or run.
	ScriptErrors []ScriptError
	// BlockedRequests lists subresource URLs vetoed by extensions.
	BlockedRequests []string

	browser  *Browser
	urlStr   string            // the raw URL Load received; memo key for resolveURL
	resolved map[string]string // visit-local resolveURL memo; cleared on reset
	host     executionHost     // reusable script host; avoids boxing per block
	handlers []boundHandler

	// interactive caches the DOM's visible interactive elements (and the
	// form-field subset), rebuilt when the DOM's mutation generation
	// moves — the gremlin horde enumerates them per action.
	interactive    []*dom.Node
	formFields     []*dom.Node
	interactiveGen uint64
	interactiveOK  bool
	formFieldsOK   bool
}

// executionHost adapts a page (and the executing script's origin) to the
// webscript.Host and webscript.OpHost interfaces. For the compiled path,
// refs is the browser dispatch table's published slice, loaded once per
// statement block.
type executionHost struct {
	page   *Page
	origin string
	refs   []webapi.Dispatch
}

func (h executionHost) Invoke(iface, member string, count int) error {
	return h.page.Runtime.Call(iface, member, count)
}

func (h executionHost) SetProperty(iface, member string) error {
	return h.page.Runtime.SetProperty(iface, member)
}

func (h executionHost) InvokeRef(ref, count int) error {
	return h.page.Runtime.CallDispatch(&h.refs[ref], count)
}

func (h executionHost) SetRef(ref int) error {
	return h.page.Runtime.SetDispatch(&h.refs[ref])
}

func (h executionHost) Navigate(path string) {
	h.page.NavAttempts = append(h.page.NavAttempts, h.page.resolveURL(path))
}

// runBody executes one statement block — compiled when ops is non-nil,
// interpreted otherwise — recording any error against origin.
func (p *Page) runBody(ops []webscript.Op, stmts []webscript.Stmt, origin string, refs []webapi.Dispatch) {
	// Execution is strictly sequential (handlers never nest), so the page's
	// embedded host is reused across blocks instead of boxing a fresh value
	// into the interface per call.
	p.host = executionHost{page: p, origin: origin, refs: refs}
	var err error
	if ops != nil {
		err = webscript.ExecuteOps(ops, &p.host)
	} else {
		err = webscript.Execute(stmts, &p.host)
	}
	if err != nil {
		p.ScriptErrors = append(p.ScriptErrors, ScriptError{URL: origin, Err: err})
	}
}

// resolveURL resolves a possibly relative reference against the page URL,
// memoized at two levels: a visit-local map on the page (gremlin hordes and
// timer handlers resolve the same few references thousands of times per
// visit, lock-free after the first) and the browser's LRU keyed by
// (page URL, ref), which survives page recycling across the cases × rounds
// revisits of the same URL.
func (p *Page) resolveURL(ref string) string {
	if s, ok := p.resolved[ref]; ok {
		return s
	}
	s := p.resolveURLSlow(ref)
	if p.resolved == nil {
		p.resolved = make(map[string]string, 8)
	}
	p.resolved[ref] = s
	return s
}

func (p *Page) resolveURLSlow(ref string) string {
	b := p.browser
	if b == nil {
		return resolveAgainst(p.URL, ref)
	}
	if s, ok := fastResolve(p.URL, ref); ok {
		// Cheaper than the LRU would be; don't spend entries on it.
		return s
	}
	key := p.urlStr + "\x00" + ref
	b.cacheMu.Lock()
	s, ok := b.resolved.get(key)
	b.cacheMu.Unlock()
	if ok {
		return s
	}
	s = slowResolveAgainst(p.URL, ref)
	b.cacheMu.Lock()
	b.resolved.put(key, s)
	b.cacheMu.Unlock()
	return s
}

// Host returns the page's hostname.
func (p *Page) Host() string { return p.URL.Hostname() }

// Load fetches, parses, instruments, and executes a page. A fetch or HTML
// parse failure of the document itself fails the load; failures of
// individual scripts are recorded on the page (real browsers keep going).
//
// Repeat loads of a URL take the fast path: the document comes from the
// template cache as an arena clone (no fetch, no parse) and the page and
// runtime structures are recycled from the pools Release feeds. Pass the
// finished page to Release to keep the cycle going.
func (b *Browser) Load(rawURL string) (*Page, error) {
	if b.DisableReuse {
		return b.loadSlow(rawURL)
	}
	t, err := b.template(rawURL)
	if err != nil {
		return nil, err
	}
	page := b.newPage()
	page.URL = t.url
	page.DOM = t.tpl.Instantiate()
	page.Runtime = b.newRuntime()
	page.browser = b
	page.urlStr = rawURL
	b.finishLoad(page, t.scripts)
	return page, nil
}

// loadSlow is the fast path's ablation twin: fetch, parse, and allocate
// the document, page, and runtime per load, bypassing the template cache
// and the pools. It is not the pre-fast-path seed byte for byte: script
// parses (external and, unlike the seed, inline too) stay LRU-cached and
// selectors still compile once per bound handler — the knob isolates
// template cloning and pooling, the mechanisms that share state across
// loads.
func (b *Browser) loadSlow(rawURL string) (*Page, error) {
	doc, u, err := b.fetchDocument(rawURL)
	if err != nil {
		return nil, err
	}
	page := &Page{
		URL:     u,
		DOM:     doc,
		Runtime: b.Bindings.NewRuntime(),
		browser: b,
		urlStr:  rawURL,
	}
	b.finishLoad(page, collectScripts(doc, u))
	return page, nil
}

// finishLoad runs the load pipeline past DOM construction: extension
// injection, script execution in document order, and load-event dispatch.
func (b *Browser) finishLoad(page *Page, scripts []templateScript) {
	// Extension injection point: after DOM construction, before any page
	// script executes (paper §4.2).
	for _, ext := range b.Extensions {
		ext.OnDOMReady(page)
	}

	pageHost := page.Host()
	for _, ref := range scripts {
		if ref.url == "" {
			cs := b.inlineScript(ref.inline)
			if cs.err != nil {
				page.ScriptErrors = append(page.ScriptErrors, ScriptError{URL: "inline:" + page.URL.String(), Err: cs.err})
				continue
			}
			page.installScript("inline:"+page.URL.String(), cs)
			continue
		}
		// MakeRequest precomputes the host/third-party derivations every
		// blocker in the extension stack needs, once per request.
		req := blocking.MakeRequest(ref.url, pageHost, blocking.ResourceScript)
		vetoed := false
		for _, ext := range b.Extensions {
			if ext.OnBeforeRequest(req) {
				vetoed = true
				break
			}
		}
		if vetoed {
			page.BlockedRequests = append(page.BlockedRequests, ref.url)
			continue
		}
		cs := b.fetchScript(ref.url)
		if cs.err != nil {
			page.ScriptErrors = append(page.ScriptErrors, ScriptError{URL: ref.url, Err: cs.err})
			continue
		}
		page.installScript(ref.url, cs)
	}

	// Fire load handlers.
	page.fire(webscript.EventLoad, nil)
}

// newPage takes a recycled page from the pool, or allocates one.
func (b *Browser) newPage() *Page {
	if p, _ := b.pagePool.Get().(*Page); p != nil {
		return p
	}
	return &Page{}
}

// newRuntime takes a recycled runtime from the pool (arriving with this
// browser's instrumentation intact and counters zeroed), or builds a fresh
// one from the bindings.
func (b *Browser) newRuntime() *webapi.Runtime {
	if rt, _ := b.runtimePool.Get().(*webapi.Runtime); rt != nil {
		return rt
	}
	return b.Bindings.NewRuntime()
}

// Release returns a finished page and its runtime to the browser's pools.
// Call it once everything needed from the page has been drained (measurer
// counts taken, navigation attempts copied); the page must not be used —
// or Released again — afterwards, exactly like any pooled object after
// Put (a second Release is only harmless while the page has not been
// reissued by a Load). Releasing nil, a page belonging to another browser,
// or a page under DisableReuse is a no-op.
func (b *Browser) Release(p *Page) {
	if p == nil || p.browser != b || b.DisableReuse {
		return
	}
	rt := p.Runtime
	p.reset()
	b.pagePool.Put(p)
	if rt != nil {
		// The runtime keeps this browser's shims (extensions mark what
		// they instrument and skip re-instrumenting); only the per-page
		// counters reset.
		rt.ResetCounts()
		b.runtimePool.Put(rt)
	}
}

// reset clears a page for pooling, keeping slice capacity.
func (p *Page) reset() {
	p.URL = nil
	p.DOM = nil
	p.Runtime = nil
	p.Clock = 0
	p.NavAttempts = p.NavAttempts[:0]
	p.OnHandlerRegistered = nil
	p.ScriptErrors = p.ScriptErrors[:0]
	p.BlockedRequests = p.BlockedRequests[:0]
	p.browser = nil
	p.urlStr = ""
	clear(p.resolved)
	p.host = executionHost{}
	for i := range p.handlers {
		p.handlers[i] = boundHandler{}
	}
	p.handlers = p.handlers[:0]
	// Zero the element pointers over the full capacity, not just the
	// lengths: a pooled page must not pin the released page's DOM slab,
	// and a post-mutation rebuild may have left the lists shorter than
	// the backing arrays.
	clear(p.interactive[:cap(p.interactive)])
	p.interactive = p.interactive[:0]
	clear(p.formFields[:cap(p.formFields)])
	p.formFields = p.formFields[:0]
	p.interactiveGen = 0
	p.interactiveOK = false
	p.formFieldsOK = false
}

// installScript executes a script's immediate statements and registers its
// handlers, reusing the cache's precompiled selectors and — when the script
// was compiled at cache-insert time — its compiled op blocks.
func (p *Page) installScript(origin string, cs *cachedScript) {
	var refs []webapi.Dispatch
	if cs.compiled != nil {
		refs = p.browser.dispatch.Refs()
		p.runBody(cs.compiled.Immediate, nil, origin, refs)
	} else {
		p.runBody(nil, cs.script.Immediate, origin, nil)
	}
	for i, h := range cs.script.Handlers {
		bh := boundHandler{h: h, origin: origin}
		if cs.compiled != nil {
			bh.ops = cs.compiled.Bodies[i]
		}
		if h.Selector != "" {
			bh.sel, bh.selOK = cs.sels[i].sel, cs.sels[i].ok
		}
		p.handlers = append(p.handlers, bh)
		if p.OnHandlerRegistered != nil {
			p.OnHandlerRegistered(h.Event, h.Selector)
		}
	}
}

// fire executes handlers for an event. target filters selector-bearing
// handlers: nil means "no specific element" (load/scroll/move), in which
// case only selector-less handlers fire.
func (p *Page) fire(ev webscript.EventType, target *dom.Node) {
	var refs []webapi.Dispatch
	for i := range p.handlers {
		bh := &p.handlers[i]
		if bh.h.Event != ev {
			continue
		}
		if bh.h.Selector != "" {
			if target == nil || !bh.selOK || !bh.sel.Matches(target) {
				continue
			}
		}
		if bh.ops != nil && refs == nil {
			refs = p.browser.dispatch.Refs()
		}
		p.runBody(bh.ops, bh.h.Body, bh.origin, refs)
	}
}

// Click dispatches a click on an element. Clicking an anchor with a local
// or remote href records a navigation attempt, as the crawler intercepts
// all navigation (§4.3.1).
func (p *Page) Click(el *dom.Node) {
	if el == nil || !el.Visible() {
		return
	}
	if el.Tag == "a" {
		if href, ok := el.Attr("href"); ok && href != "" {
			p.NavAttempts = append(p.NavAttempts, p.resolveURL(href))
		}
	}
	p.fire(webscript.EventClick, el)
}

// Scroll dispatches a page scroll.
func (p *Page) Scroll() { p.fire(webscript.EventScroll, nil) }

// Input dispatches text entry on a form element.
func (p *Page) Input(el *dom.Node, text string) {
	if el == nil || !el.Visible() {
		return
	}
	_ = text
	p.fire(webscript.EventInput, el)
}

// MouseMove dispatches a pointer movement.
func (p *Page) MouseMove() { p.fire(webscript.EventMove, nil) }

// AdvanceClock moves virtual time forward, firing timer handlers that come
// due (each timer fires once per elapsed interval).
func (p *Page) AdvanceClock(dt float64) {
	target := p.Clock + dt
	var refs []webapi.Dispatch
	for i := range p.handlers {
		bh := &p.handlers[i]
		if bh.h.Event != webscript.EventTimer || bh.h.Interval <= 0 {
			continue
		}
		if bh.ops != nil && refs == nil {
			refs = p.browser.dispatch.Refs()
		}
		interval := float64(bh.h.Interval)
		for next := bh.lastRun + interval; next <= target; next += interval {
			p.runBody(bh.ops, bh.h.Body, bh.origin, refs)
			bh.lastRun = next
		}
	}
	p.Clock = target
}

// refreshInteractive revalidates the cached element lists against the DOM's
// mutation generation.
func (p *Page) refreshInteractive() {
	gen := p.DOM.Gen()
	if p.interactiveOK && gen == p.interactiveGen {
		return
	}
	p.interactive = p.DOM.AppendInteractive(p.interactive[:0])
	p.interactiveGen = gen
	p.interactiveOK = true
	p.formFieldsOK = false
}

// Interactive returns the page's currently visible interactive elements.
// The list is cached and invalidated by DOM mutation (structure changes or
// SetHidden); callers must not modify or retain it across mutations.
func (p *Page) Interactive() []*dom.Node {
	p.refreshInteractive()
	return p.interactive
}

// FormFields returns the visible text-entry elements (input, textarea), the
// targets the typing gremlin picks from, cached like Interactive.
func (p *Page) FormFields() []*dom.Node {
	p.refreshInteractive()
	if !p.formFieldsOK {
		p.formFields = p.formFields[:0]
		for _, el := range p.interactive {
			if el.Tag == "input" || el.Tag == "textarea" {
				p.formFields = append(p.formFields, el)
			}
		}
		p.formFieldsOK = true
	}
	return p.formFields
}

// LocalNavAttempts filters the recorded navigation attempts to those
// sameSite judges local, deduplicated in first-seen order.
func (p *Page) LocalNavAttempts(sameSite func(host string) bool) []string {
	return p.LocalNavAttemptsInto(sameSite, make(map[string]bool), make(map[string]bool), nil)
}

// navResolved caches what LocalNavAttemptsInto derives from one raw
// navigation attempt. clean is empty when the raw string does not parse.
type navResolved struct {
	clean string
	host  string
}

// LocalNavAttemptsInto is LocalNavAttempts with caller-owned scratch: seen
// and rawSeen are cleared and reused for deduplication, and the result is
// appended to out (pass out[:0] to reuse its backing array). The crawler
// calls this once per page with per-Visitor scratch instead of allocating
// fresh maps and a slice every page. Raw attempts repeat heavily (timer
// handlers re-navigate the same path every tick), so identical raws are
// dropped before parsing and parse results are memoized in the browser.
func (p *Page) LocalNavAttemptsInto(sameSite func(host string) bool, seen, rawSeen map[string]bool, out []string) []string {
	clear(seen)
	clear(rawSeen)
	b := p.browser
	for _, raw := range p.NavAttempts {
		if rawSeen[raw] {
			continue
		}
		rawSeen[raw] = true
		var nr navResolved
		ok := false
		if b != nil {
			b.cacheMu.Lock()
			nr, ok = b.navClean.get(raw)
			b.cacheMu.Unlock()
		}
		if !ok {
			if u, err := url.Parse(raw); err == nil {
				nr = navResolved{clean: u.Scheme + "://" + u.Host + u.Path, host: u.Hostname()}
			}
			if b != nil {
				b.cacheMu.Lock()
				b.navClean.put(raw, nr)
				b.cacheMu.Unlock()
			}
		}
		if nr.clean == "" || !sameSite(nr.host) {
			continue
		}
		if seen[nr.clean] {
			continue
		}
		seen[nr.clean] = true
		out = append(out, nr.clean)
	}
	return out
}

// HasParseErrors reports whether any script failed to parse (the paper's
// "syntax errors in their JavaScript code that prevented execution").
func (p *Page) HasParseErrors() bool {
	for _, se := range p.ScriptErrors {
		var werr *webscript.Error
		if errors.As(se.Err, &werr) {
			return true
		}
	}
	return false
}

// BlockingExtension adapts a blocking.Blocker (ABP engine, tracker DB, or
// their combination) to the Extension interface, applying element-hiding
// rules at DOM-ready. Hide-rule selectors compile once per profile, not
// once per page.
type BlockingExtension struct {
	// Label names the extension ("adblock-plus", "ghostery").
	Label string
	// Blocker decides request vetoes and hiding selectors.
	Blocker blocking.Blocker

	selMu      sync.Mutex
	selCache   map[string]compiledSel
	selScratch []string
	matches    []*dom.Node
}

// Name implements Extension.
func (b *BlockingExtension) Name() string { return b.Label }

// OnBeforeRequest implements Extension.
func (b *BlockingExtension) OnBeforeRequest(req blocking.Request) bool {
	return b.Blocker.ShouldBlock(req)
}

// OnDOMReady applies element-hiding rules. The selector list is gathered
// into a per-extension scratch slice (the same selectors apply to page after
// page) rather than freshly allocated each load.
func (b *BlockingExtension) OnDOMReady(p *Page) {
	b.selMu.Lock()
	defer b.selMu.Unlock()
	b.selScratch = b.Blocker.AppendHideSelectors(p.Host(), b.selScratch[:0])
	for _, raw := range b.selScratch {
		cs, ok := b.selCache[raw]
		if !ok {
			sel, err := dom.ParseSelector(raw)
			cs = compiledSel{sel: sel, ok: err == nil}
			if b.selCache == nil {
				b.selCache = make(map[string]compiledSel)
			}
			b.selCache[raw] = cs
		}
		if !cs.ok {
			continue
		}
		b.matches = p.DOM.MatchAll(cs.sel, b.matches[:0])
		for _, el := range b.matches {
			el.SetHidden(true)
		}
	}
	// Zero the scratch over its full capacity (earlier selectors may have
	// matched more nodes than the last) so it never pins a released
	// page's DOM slab.
	clear(b.matches[:cap(b.matches)])
	b.matches = b.matches[:0]
}

// String renders a page summary for diagnostics.
func (p *Page) String() string {
	return fmt.Sprintf("Page(%s, %d handlers, %d nav attempts, clock=%.1fs)",
		strings.TrimSuffix(p.URL.String(), "/"), len(p.handlers), len(p.NavAttempts), p.Clock)
}
