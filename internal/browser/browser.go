// Package browser implements the instrumented browser of the paper's §4:
// a page-load pipeline (fetch → parse → extension injection → script
// execution → event loop) over the simulated DOM, Web API dispatch layer,
// and WebScript engine.
//
// Extensions hook two points, mirroring the WebExtension surface the paper
// relies on: OnBeforeRequest may veto subresource fetches (how AdBlock Plus
// and Ghostery block), and OnDOMReady runs after the DOM exists but before
// any page script — the injection point "at the beginning of the <head>
// element" the measuring extension uses (§4.2).
package browser

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"

	"repro/internal/blocking"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/webapi"
	"repro/internal/webscript"
	"repro/internal/webserver"
)

// Extension is a browser extension.
type Extension interface {
	// Name identifies the extension in diagnostics.
	Name() string
	// OnBeforeRequest may veto a subresource fetch (true = block).
	OnBeforeRequest(req blocking.Request) bool
	// OnDOMReady runs after DOM construction, before any page script.
	OnDOMReady(p *Page)
}

// Browser is a reusable browser profile: bindings, fetcher, extensions, and
// a parsed-script cache (browsers cache compiled scripts across page loads;
// the crawl revisits every URL ten times).
type Browser struct {
	Bindings   *webapi.Bindings
	Fetcher    webserver.Fetcher
	Extensions []Extension

	cacheMu     sync.Mutex
	scriptCache map[string]*cachedScript
}

type cachedScript struct {
	body   string
	script *webscript.Script
	err    error
}

// scriptCacheCap bounds the parsed-script cache; site visits are processed
// consecutively, so locality is high.
const scriptCacheCap = 4096

// New creates a browser profile.
func New(b *webapi.Bindings, f webserver.Fetcher, exts ...Extension) *Browser {
	return &Browser{
		Bindings:    b,
		Fetcher:     f,
		Extensions:  exts,
		scriptCache: make(map[string]*cachedScript),
	}
}

// ScriptError records a script that failed to parse or execute, with its
// origin URL ("inline:" prefix for inline scripts).
type ScriptError struct {
	URL string
	Err error
}

func (e ScriptError) Error() string { return fmt.Sprintf("script %s: %v", e.URL, e.Err) }

// boundHandler is a registered event handler with its origin.
type boundHandler struct {
	h       *webscript.Handler
	origin  string // script URL, diagnostics only
	lastRun float64
}

// Page is one loaded page.
type Page struct {
	// URL is the page's resolved location.
	URL *url.URL
	// DOM is the parsed document.
	DOM *dom.Node
	// Runtime is the page's Web API dispatch state.
	Runtime *webapi.Runtime
	// Clock is the page's virtual time in seconds since load.
	Clock float64
	// NavAttempts lists navigation attempts (absolute URLs) in order;
	// the crawler intercepts and records them (§4.3.1).
	NavAttempts []string
	// OnHandlerRegistered, when non-nil, observes every event-handler
	// registration (event type and selector). The paper's extension
	// could have captured a subset of event registrations this way but
	// omitted them (§4.2.3); the optional event measurer uses this hook
	// to implement that variant.
	OnHandlerRegistered func(ev webscript.EventType, selector string)
	// ScriptErrors lists scripts that failed to fetch, parse or run.
	ScriptErrors []ScriptError
	// BlockedRequests lists subresource URLs vetoed by extensions.
	BlockedRequests []string

	browser  *Browser
	handlers []*boundHandler
}

// executionHost adapts a page (and the executing script's origin) to the
// webscript.Host interface.
type executionHost struct {
	page   *Page
	origin string
}

func (h executionHost) Invoke(iface, member string, count int) error {
	return h.page.Runtime.Call(iface, member, count)
}

func (h executionHost) SetProperty(iface, member string) error {
	return h.page.Runtime.SetProperty(iface, member)
}

func (h executionHost) Navigate(path string) {
	h.page.NavAttempts = append(h.page.NavAttempts, h.page.resolveURL(path))
}

// resolveURL resolves a possibly relative reference against the page URL.
func (p *Page) resolveURL(ref string) string {
	u, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return p.URL.ResolveReference(u).String()
}

// Host returns the page's hostname.
func (p *Page) Host() string { return p.URL.Hostname() }

// Load fetches, parses, instruments, and executes a page. A fetch or HTML
// parse failure of the document itself fails the load; failures of
// individual scripts are recorded on the page (real browsers keep going).
func (b *Browser) Load(rawURL string) (*Page, error) {
	res, err := b.Fetcher.Fetch(rawURL)
	if err != nil {
		return nil, fmt.Errorf("browser: loading %s: %w", rawURL, err)
	}
	if res.ContentType != "text/html" {
		return nil, fmt.Errorf("browser: %s is %s, not a document", rawURL, res.ContentType)
	}
	doc, err := html.Parse(res.Body)
	if err != nil {
		return nil, fmt.Errorf("browser: parsing %s: %w", rawURL, err)
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, err
	}

	page := &Page{
		URL:     u,
		DOM:     doc,
		Runtime: b.Bindings.NewRuntime(),
		browser: b,
	}

	// Extension injection point: after DOM construction, before any page
	// script executes (paper §4.2).
	for _, ext := range b.Extensions {
		ext.OnDOMReady(page)
	}

	// Execute scripts in document order.
	for _, ref := range doc.Scripts() {
		if ref.Src == "" {
			page.runScriptSource("inline:"+u.String(), ref.Inline)
			continue
		}
		scriptURL := page.resolveURL(ref.Src)
		req := blocking.Request{URL: scriptURL, PageHost: page.Host(), Type: blocking.ResourceScript}
		vetoed := false
		for _, ext := range b.Extensions {
			if ext.OnBeforeRequest(req) {
				vetoed = true
				break
			}
		}
		if vetoed {
			page.BlockedRequests = append(page.BlockedRequests, scriptURL)
			continue
		}
		cs := b.fetchScript(scriptURL)
		if cs.err != nil {
			page.ScriptErrors = append(page.ScriptErrors, ScriptError{URL: scriptURL, Err: cs.err})
			continue
		}
		page.installScript(scriptURL, cs.script)
	}

	// Fire load handlers.
	page.fire(webscript.EventLoad, nil)
	return page, nil
}

// fetchScript fetches and parses an external script with caching.
func (b *Browser) fetchScript(scriptURL string) *cachedScript {
	b.cacheMu.Lock()
	if cs, ok := b.scriptCache[scriptURL]; ok {
		b.cacheMu.Unlock()
		return cs
	}
	b.cacheMu.Unlock()

	cs := &cachedScript{}
	res, err := b.Fetcher.Fetch(scriptURL)
	if err != nil {
		cs.err = err
	} else {
		cs.body = res.Body
		cs.script, cs.err = webscript.Parse(res.Body)
	}

	b.cacheMu.Lock()
	if len(b.scriptCache) >= scriptCacheCap {
		// Simple wholesale eviction: visits are site-local, so a cold
		// cache refills quickly.
		b.scriptCache = make(map[string]*cachedScript)
	}
	b.scriptCache[scriptURL] = cs
	b.cacheMu.Unlock()
	return cs
}

// runScriptSource parses and executes script text (inline scripts).
func (p *Page) runScriptSource(origin, src string) {
	s, err := webscript.Parse(src)
	if err != nil {
		p.ScriptErrors = append(p.ScriptErrors, ScriptError{URL: origin, Err: err})
		return
	}
	p.installScript(origin, s)
}

// installScript executes a script's immediate statements and registers its
// handlers.
func (p *Page) installScript(origin string, s *webscript.Script) {
	if err := webscript.Execute(s.Immediate, executionHost{page: p, origin: origin}); err != nil {
		p.ScriptErrors = append(p.ScriptErrors, ScriptError{URL: origin, Err: err})
	}
	for _, h := range s.Handlers {
		p.handlers = append(p.handlers, &boundHandler{h: h, origin: origin})
		if p.OnHandlerRegistered != nil {
			p.OnHandlerRegistered(h.Event, h.Selector)
		}
	}
}

// fire executes handlers for an event. target filters selector-bearing
// handlers: nil means "no specific element" (load/scroll/move), in which
// case only selector-less handlers fire.
func (p *Page) fire(ev webscript.EventType, target *dom.Node) {
	for _, bh := range p.handlers {
		if bh.h.Event != ev {
			continue
		}
		if bh.h.Selector != "" {
			if target == nil {
				continue
			}
			sel, err := dom.ParseSelector(bh.h.Selector)
			if err != nil || !sel.Matches(target) {
				continue
			}
		}
		if err := webscript.Execute(bh.h.Body, executionHost{page: p, origin: bh.origin}); err != nil {
			p.ScriptErrors = append(p.ScriptErrors, ScriptError{URL: bh.origin, Err: err})
		}
	}
}

// Click dispatches a click on an element. Clicking an anchor with a local
// or remote href records a navigation attempt, as the crawler intercepts
// all navigation (§4.3.1).
func (p *Page) Click(el *dom.Node) {
	if el == nil || !el.Visible() {
		return
	}
	if el.Tag == "a" {
		if href, ok := el.Attr("href"); ok && href != "" {
			p.NavAttempts = append(p.NavAttempts, p.resolveURL(href))
		}
	}
	p.fire(webscript.EventClick, el)
}

// Scroll dispatches a page scroll.
func (p *Page) Scroll() { p.fire(webscript.EventScroll, nil) }

// Input dispatches text entry on a form element.
func (p *Page) Input(el *dom.Node, text string) {
	if el == nil || !el.Visible() {
		return
	}
	_ = text
	p.fire(webscript.EventInput, el)
}

// MouseMove dispatches a pointer movement.
func (p *Page) MouseMove() { p.fire(webscript.EventMove, nil) }

// AdvanceClock moves virtual time forward, firing timer handlers that come
// due (each timer fires once per elapsed interval).
func (p *Page) AdvanceClock(dt float64) {
	target := p.Clock + dt
	for _, bh := range p.handlers {
		if bh.h.Event != webscript.EventTimer || bh.h.Interval <= 0 {
			continue
		}
		interval := float64(bh.h.Interval)
		for next := bh.lastRun + interval; next <= target; next += interval {
			if err := webscript.Execute(bh.h.Body, executionHost{page: p, origin: bh.origin}); err != nil {
				p.ScriptErrors = append(p.ScriptErrors, ScriptError{URL: bh.origin, Err: err})
			}
			bh.lastRun = next
		}
	}
	p.Clock = target
}

// Interactive returns the page's currently visible interactive elements.
func (p *Page) Interactive() []*dom.Node { return p.DOM.Interactive() }

// LocalNavAttempts filters the recorded navigation attempts to those
// sameSite judges local, deduplicated in first-seen order.
func (p *Page) LocalNavAttempts(sameSite func(host string) bool) []string {
	seen := map[string]bool{}
	var out []string
	for _, raw := range p.NavAttempts {
		u, err := url.Parse(raw)
		if err != nil {
			continue
		}
		if !sameSite(u.Hostname()) {
			continue
		}
		clean := u.Scheme + "://" + u.Host + u.Path
		if seen[clean] {
			continue
		}
		seen[clean] = true
		out = append(out, clean)
	}
	return out
}

// HasParseErrors reports whether any script failed to parse (the paper's
// "syntax errors in their JavaScript code that prevented execution").
func (p *Page) HasParseErrors() bool {
	for _, se := range p.ScriptErrors {
		var werr *webscript.Error
		if errors.As(se.Err, &werr) {
			return true
		}
	}
	return false
}

// BlockingExtension adapts a blocking.Blocker (ABP engine, tracker DB, or
// their combination) to the Extension interface, applying element-hiding
// rules at DOM-ready.
type BlockingExtension struct {
	// Label names the extension ("adblock-plus", "ghostery").
	Label string
	// Blocker decides request vetoes and hiding selectors.
	Blocker blocking.Blocker
}

// Name implements Extension.
func (b *BlockingExtension) Name() string { return b.Label }

// OnBeforeRequest implements Extension.
func (b *BlockingExtension) OnBeforeRequest(req blocking.Request) bool {
	return b.Blocker.ShouldBlock(req)
}

// OnDOMReady applies element-hiding rules.
func (b *BlockingExtension) OnDOMReady(p *Page) {
	for _, sel := range b.Blocker.HideSelectors(p.Host()) {
		for _, el := range p.DOM.QuerySelectorAll(sel) {
			el.Hidden = true
		}
	}
}

// String renders a page summary for diagnostics.
func (p *Page) String() string {
	return fmt.Sprintf("Page(%s, %d handlers, %d nav attempts, clock=%.1fs)",
		strings.TrimSuffix(p.URL.String(), "/"), len(p.handlers), len(p.NavAttempts), p.Clock)
}
