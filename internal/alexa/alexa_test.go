package alexa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateBasics(t *testing.T) {
	r := Generate(1000, 1)
	if len(r.Sites) != 1000 {
		t.Fatalf("got %d sites, want 1000", len(r.Sites))
	}
	for i, s := range r.Sites {
		if s.Rank != i+1 {
			t.Fatalf("site %d has rank %d", i, s.Rank)
		}
		if s.Domain == "" || s.MonthlyVisits <= 0 || s.MonthlyPageLoads <= 0 {
			t.Fatalf("site %d malformed: %+v", i, s)
		}
	}
}

func TestVisitsDecreaseWithRank(t *testing.T) {
	r := Generate(500, 2)
	for i := 1; i < len(r.Sites); i++ {
		if r.Sites[i].MonthlyVisits > r.Sites[i-1].MonthlyVisits {
			t.Fatalf("visits increase with rank at %d", i)
		}
	}
}

func TestDomainsUnique(t *testing.T) {
	r := Generate(2000, 3)
	seen := map[string]bool{}
	for _, s := range r.Sites {
		if seen[s.Domain] {
			t.Fatalf("duplicate domain %s", s.Domain)
		}
		seen[s.Domain] = true
	}
}

func TestTop10kShare(t *testing.T) {
	r := Generate(10000, 1)
	ranks := make([]int, len(r.Sites))
	for i := range ranks {
		ranks[i] = i + 1
	}
	share := r.VisitShare(ranks)
	if math.Abs(share-Top10kVisitShare) > 0.01 {
		t.Errorf("top-10k visit share = %.3f, want ~%.3f (paper §3.1)", share, Top10kVisitShare)
	}
}

func TestSameSite(t *testing.T) {
	r := Generate(100, 4)
	d := r.Sites[0].Domain
	cases := []struct {
		a, b string
		want bool
	}{
		{d, d, true},
		{"www." + d, d, true},
		{"news." + d, "shop." + d, true},
		{"cdn." + d, d, true}, // related domain
		{d, r.Sites[1].Domain, false},
		{"unknown.example", d, false},
		{"unknown.example", "unknown.example", false}, // unranked
	}
	for _, c := range cases {
		if got := r.SameSite(c.a, c.b); got != c.want {
			t.Errorf("SameSite(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestByDomain(t *testing.T) {
	r := Generate(50, 5)
	s, ok := r.ByDomain(r.Sites[10].Domain)
	if !ok || s.Rank != 11 {
		t.Fatalf("ByDomain lookup failed: %+v %v", s, ok)
	}
	if _, ok := r.ByDomain("missing.example"); ok {
		t.Fatal("found a domain that should not exist")
	}
}

func TestWeightedSampleDistinctAndBiased(t *testing.T) {
	r := Generate(1000, 6)
	sample := r.WeightedSample(100, 7)
	if len(sample) != 100 {
		t.Fatalf("sample size %d, want 100", len(sample))
	}
	seen := map[int]bool{}
	var rankSum int
	for _, s := range sample {
		if seen[s.Rank] {
			t.Fatalf("duplicate rank %d in sample", s.Rank)
		}
		seen[s.Rank] = true
		rankSum += s.Rank
	}
	// A uniform sample of 100 from 1000 has mean rank ~500; the
	// visit-weighted sample must skew strongly toward the head.
	if mean := float64(rankSum) / 100; mean > 450 {
		t.Errorf("weighted sample mean rank %.1f; want head-skewed (<450)", mean)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(300, 9)
	b := Generate(300, 9)
	for i := range a.Sites {
		if a.Sites[i].Domain != b.Sites[i].Domain || a.Sites[i].MonthlyVisits != b.Sites[i].MonthlyVisits {
			t.Fatalf("site %d differs between identical seeds", i)
		}
	}
}

func TestSubsiteSharesSane(t *testing.T) {
	check := func(seed int64) bool {
		r := Generate(50, seed%1000)
		for _, s := range r.Sites {
			var total float64
			for _, sub := range s.Subsites {
				if sub.Share < 0 || sub.Share > 1 {
					return false
				}
				total += sub.Share
			}
			if total > 1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
