package alexa

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Top10kVisitShare is the fraction of all web visits the Alexa 10k receives
// (paper §3.1: "approximately one third").
const Top10kVisitShare = 1.0 / 3.0

// zipfExponent shapes the visit distribution across ranks. Web traffic is
// classically close to Zipfian with exponent just under 1.
const zipfExponent = 0.85

// Site is one ranked website.
type Site struct {
	// Rank is the global Alexa rank, starting at 1.
	Rank int
	// Domain is the registrable domain, e.g. "kexivo.example.com".
	// All generated domains sit under distinct registrable names.
	Domain string
	// MonthlyVisits is the estimated unique monthly visitor count.
	MonthlyVisits int64
	// MonthlyPageLoads is the estimated monthly page-load count.
	MonthlyPageLoads int64
	// CountryRanks gives the site's rank within sampled countries.
	CountryRanks map[string]int
	// Subsites lists popular fully-qualified subsites by share of the
	// site's traffic, most popular first.
	Subsites []Subsite
	// RelatedDomains lists domains Alexa groups with this site (CDNs,
	// alternate TLDs); the crawler treats them as same-site when
	// following links, per the paper's §4.3.1.
	RelatedDomains []string
}

// Subsite is one popular fully-qualified subsite of a ranked site.
type Subsite struct {
	Host  string
	Share float64
}

// Ranking is a generated Alexa-style list.
type Ranking struct {
	Sites []Site
	// TotalWebVisits is the modeled monthly visit count of the entire
	// web, normalized so the listed sites carry Top10kVisitShare of it
	// when the list has 10,000 entries.
	TotalWebVisits int64

	byDomain map[string]*Site
	related  map[string]string // related domain → primary domain
}

var domainSyllables = []string{
	"ka", "ve", "lo", "mi", "ta", "ren", "so", "ba", "du", "fi",
	"ne", "go", "pra", "zu", "hex", "li", "mo", "sa", "te", "vo",
	"qui", "ran", "pel", "dor", "nas", "ki", "ju", "wa", "xe", "cy",
}

var tlds = []string{".com", ".com", ".com", ".net", ".org", ".io", ".co", ".info"}

var countries = []string{"US", "DE", "JP", "BR", "IN", "GB", "FR", "RU"}

// Generate produces a deterministic ranking of n sites for the seed.
func Generate(n int, seed int64) *Ranking {
	rng := rand.New(rand.NewSource(seed))
	r := &Ranking{
		Sites:    make([]Site, n),
		byDomain: make(map[string]*Site, n),
		related:  make(map[string]string),
	}

	used := map[string]bool{}
	makeDomain := func() string {
		for {
			var b strings.Builder
			for i, k := 0, 2+rng.Intn(2); i < k; i++ {
				b.WriteString(domainSyllables[rng.Intn(len(domainSyllables))])
			}
			b.WriteString(tlds[rng.Intn(len(tlds))])
			d := b.String()
			if !used[d] {
				used[d] = true
				return d
			}
		}
	}

	// Zipf visit weights, normalized to a fixed head count.
	const headVisits = 2.0e8 // rank-1 monthly visitors
	var listTotal float64
	for i := range r.Sites {
		rank := i + 1
		visits := headVisits / math.Pow(float64(rank), zipfExponent)
		domain := makeDomain()
		site := Site{
			Rank:             rank,
			Domain:           domain,
			MonthlyVisits:    int64(visits),
			MonthlyPageLoads: int64(visits * (2.5 + 3*rng.Float64())),
			CountryRanks:     map[string]int{},
		}
		listTotal += visits

		// Country ranks: a site is popular in 1-4 countries with rank
		// jittered around its global rank.
		for _, c := range countries {
			if rng.Float64() < 0.3 {
				jitter := 1 + int(float64(rank)*(0.5+rng.Float64()))
				site.CountryRanks[c] = jitter
			}
		}

		// Subsites: www dominates, plus a few popular FQDN subsites.
		site.Subsites = append(site.Subsites, Subsite{Host: "www." + domain, Share: 0.6 + 0.3*rng.Float64()})
		rest := 1 - site.Subsites[0].Share
		for _, sub := range []string{"m", "news", "shop", "blog"} {
			if rng.Float64() < 0.4 {
				share := rest * (0.2 + 0.5*rng.Float64())
				rest -= share
				site.Subsites = append(site.Subsites, Subsite{Host: sub + "." + domain, Share: share})
			}
		}

		// Related domains: a CDN host and occasionally an alternate TLD.
		cdn := "cdn." + domain
		site.RelatedDomains = append(site.RelatedDomains, cdn)
		r.related[cdn] = domain
		if rng.Float64() < 0.25 {
			alt := strings.TrimSuffix(domain, domainTLD(domain)) + ".net"
			if !used[alt] {
				used[alt] = true
				site.RelatedDomains = append(site.RelatedDomains, alt)
				r.related[alt] = domain
			}
		}
		r.Sites[i] = site
	}
	for i := range r.Sites {
		r.byDomain[r.Sites[i].Domain] = &r.Sites[i]
	}
	r.TotalWebVisits = int64(listTotal / Top10kVisitShare)
	return r
}

func domainTLD(d string) string {
	if i := strings.LastIndexByte(d, '.'); i >= 0 {
		return d[i:]
	}
	return ""
}

// ByDomain returns the ranked site for a domain.
func (r *Ranking) ByDomain(domain string) (*Site, bool) {
	s, ok := r.byDomain[domain]
	return s, ok
}

// SameSite reports whether two hosts belong to the same ranked site,
// considering subdomains and Alexa related-domain data. The paper's crawler
// uses this to decide which monkey-testing navigations stay "local".
func (r *Ranking) SameSite(a, b string) bool {
	return r.primaryOf(a) != "" && r.primaryOf(a) == r.primaryOf(b)
}

// primaryOf resolves a host to the primary ranked domain it belongs to,
// or "" if the host is not part of any ranked site.
func (r *Ranking) primaryOf(host string) string {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	// Direct or subdomain match against ranked domains.
	for h := host; h != ""; {
		if _, ok := r.byDomain[h]; ok {
			return h
		}
		if p, ok := r.related[h]; ok {
			return p
		}
		i := strings.IndexByte(h, '.')
		if i < 0 {
			break
		}
		h = h[i+1:]
	}
	return ""
}

// VisitShare returns the fraction of all modeled web visits going to the
// given set of sites (identified by rank, 1-based).
func (r *Ranking) VisitShare(ranks []int) float64 {
	var sum float64
	for _, rank := range ranks {
		if rank >= 1 && rank <= len(r.Sites) {
			sum += float64(r.Sites[rank-1].MonthlyVisits)
		}
	}
	return sum / float64(r.TotalWebVisits)
}

// WeightedSample draws k distinct sites, each chosen with probability
// proportional to its visit count, matching the paper's §6.2 protocol for
// choosing external-validation sites ("chose 100 sites to visit randomly,
// but weighted each choice according to the proportion of visits").
func (r *Ranking) WeightedSample(k int, seed int64) []*Site {
	rng := rand.New(rand.NewSource(seed))
	if k > len(r.Sites) {
		k = len(r.Sites)
	}
	weights := make([]float64, len(r.Sites))
	var total float64
	for i := range r.Sites {
		weights[i] = float64(r.Sites[i].MonthlyVisits)
		total += weights[i]
	}
	picked := make(map[int]bool, k)
	out := make([]*Site, 0, k)
	for len(out) < k {
		x := rng.Float64() * total
		idx := 0
		for ; idx < len(weights); idx++ {
			if x < weights[idx] {
				break
			}
			x -= weights[idx]
		}
		if idx >= len(weights) {
			idx = len(weights) - 1
		}
		if picked[idx] {
			continue
		}
		picked[idx] = true
		out = append(out, &r.Sites[idx])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// String summarizes the ranking.
func (r *Ranking) String() string {
	return fmt.Sprintf("alexa.Ranking{%d sites, %d total web visits/mo}", len(r.Sites), r.TotalWebVisits)
}
