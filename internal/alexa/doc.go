// Package alexa models the Alexa traffic rankings the paper draws on (§3.1).
//
// The paper uses the Alexa API's view of the ten thousand most popular
// websites — global rank, per-site monthly visitor and page-load counts, and
// related-domain data — and notes that the top 10k collectively receive
// about one third of all web visits. This package synthesizes a ranking
// with those properties: deterministic domain names, a Zipf-like visit
// distribution normalized so the top 10k carry one third of total web
// traffic, per-country ranks, and popular-subsite breakdowns.
package alexa
