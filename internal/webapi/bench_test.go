package webapi

import (
	"testing"

	"repro/internal/webidl"
)

func benchBindings(b *testing.B) *Bindings {
	b.Helper()
	if sharedBindings == nil {
		reg, err := webidl.Generate(1)
		if err != nil {
			b.Fatal(err)
		}
		sharedBindings = NewBindings(reg)
	}
	return sharedBindings
}

func BenchmarkNewRuntime(b *testing.B) {
	bind := benchBindings(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bind.NewRuntime()
	}
}

func BenchmarkCallUnpatched(b *testing.B) {
	rt := benchBindings(b).NewRuntime()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Call("Document", "createElement", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallPatched(b *testing.B) {
	rt := benchBindings(b).NewRuntime()
	var observed int64
	rt.PatchAllMethods(func(f *webidl.Feature, original MethodFunc) MethodFunc {
		return func(ctx *CallContext) {
			observed += int64(ctx.Count)
			original(ctx)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Call("Document", "createElement", 1); err != nil {
			b.Fatal(err)
		}
	}
	_ = observed
}

func BenchmarkPatchAllMethods(b *testing.B) {
	bind := benchBindings(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := bind.NewRuntime()
		rt.PatchAllMethods(func(f *webidl.Feature, original MethodFunc) MethodFunc {
			return original
		})
	}
}

func BenchmarkResolveInherited(b *testing.B) {
	bind := benchBindings(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := bind.Resolve("HTMLInputElement", "appendChild"); !ok {
			b.Fatal("resolve failed")
		}
	}
}
