package webapi

import (
	"errors"
	"testing"

	"repro/internal/standards"
	"repro/internal/webidl"
)

var sharedBindings *Bindings

func bindings(t testing.TB) *Bindings {
	t.Helper()
	if sharedBindings == nil {
		reg, err := webidl.Generate(1)
		if err != nil {
			t.Fatal(err)
		}
		sharedBindings = NewBindings(reg)
	}
	return sharedBindings
}

func TestResolveDirect(t *testing.T) {
	b := bindings(t)
	f, ok := b.Resolve("Document", "createElement")
	if !ok || f.Standard != "DOM1" {
		t.Fatalf("Resolve(Document.createElement) = %+v, %v", f, ok)
	}
}

func TestResolveInherited(t *testing.T) {
	b := bindings(t)
	// HTMLInputElement inherits click from HTMLElement (HTML standard).
	f, ok := b.Resolve("HTMLInputElement", "click")
	if !ok {
		t.Fatal("inherited member not resolved")
	}
	if f.Interface != "HTMLElement" || f.Member != "click" {
		t.Fatalf("resolved to %s, want HTMLElement.click", f.Name())
	}
	// Deep chain: HTMLInputElement → ... → Node.
	f, ok = b.Resolve("HTMLInputElement", "appendChild")
	if !ok || f.Interface != "Node" {
		t.Fatalf("deep inherited member = %+v, %v", f, ok)
	}
}

func TestResolveShadowing(t *testing.T) {
	b := bindings(t)
	// Document defines querySelector itself (SLC); Element does too. A
	// Document reference must resolve to Document's own member.
	f, ok := b.Resolve("Document", "querySelector")
	if !ok || f.Interface != "Document" {
		t.Fatalf("shadowed member resolved to %+v", f)
	}
}

func TestCallCountsNative(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	if err := rt.Call("Document", "createElement", 3); err != nil {
		t.Fatal(err)
	}
	f, _ := b.Resolve("Document", "createElement")
	if got := rt.NativeCalls(f); got != 3 {
		t.Errorf("native calls = %d, want 3", got)
	}
	if got := rt.TotalNativeCalls(); got != 3 {
		t.Errorf("total native calls = %d, want 3", got)
	}
}

func TestCallUnknownIsReferenceError(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	err := rt.Call("Document", "definitelyNotAMethod", 1)
	var re *ReferenceError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v, want ReferenceError", err)
	}
}

func TestCallAttributeIsError(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	// Window.name is an attribute; calling it is a type error.
	if err := rt.Call("Window", "name", 1); err == nil {
		t.Fatal("calling an attribute should fail")
	}
}

func TestPatchMethodWrapsOriginal(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	f, _ := b.Resolve("Node", "cloneNode")
	var observed int64
	err := rt.PatchMethod(f, func(original MethodFunc) MethodFunc {
		return func(ctx *CallContext) {
			observed += int64(ctx.Count)
			original(ctx) // preserve functionality, like the paper's shims
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Call("Node", "cloneNode", 10); err != nil {
		t.Fatal(err)
	}
	if observed != 10 {
		t.Errorf("shim observed %d, want 10", observed)
	}
	if got := rt.NativeCalls(f); got != 10 {
		t.Errorf("native still ran %d times, want 10 (shim must forward)", got)
	}
}

func TestPatchStacksLikeClosures(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	f, _ := b.Resolve("Document", "createElement")
	order := []string{}
	for _, tag := range []string{"inner", "outer"} {
		tag := tag
		if err := rt.PatchMethod(f, func(original MethodFunc) MethodFunc {
			return func(ctx *CallContext) {
				order = append(order, tag)
				original(ctx)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Call("Document", "createElement", 1); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Errorf("patch nesting order = %v, want [outer inner]", order)
	}
	if rt.NativeCalls(f) != 1 {
		t.Error("native implementation lost through double patch")
	}
}

func TestPatchNonMethodFails(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	f, _ := b.Resolve("Window", "name")
	if err := rt.PatchMethod(f, func(o MethodFunc) MethodFunc { return o }); err == nil {
		t.Fatal("patching an attribute should fail")
	}
}

func TestSetPropertyAndWatch(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	f, ok := b.Resolve("Window", "name")
	if !ok || f.Kind != webidl.Attribute {
		t.Fatalf("Window.name = %+v", f)
	}
	var writes int
	if err := rt.Watch(f, func(wf *webidl.Feature, count int) {
		if wf.ID != f.ID {
			t.Errorf("watcher got feature %s", wf.Name())
		}
		writes += count
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetProperty("Window", "name"); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetProperty("Window", "name"); err != nil {
		t.Fatal(err)
	}
	if writes != 2 {
		t.Errorf("watcher saw %d writes, want 2", writes)
	}
	if rt.NativeCalls(f) != 2 {
		t.Errorf("native write count = %d, want 2", rt.NativeCalls(f))
	}
}

func TestSetPropertyReadOnlyFails(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	if err := rt.SetProperty("Window", "localStorage"); err == nil {
		t.Fatal("writing a readonly attribute should fail")
	}
}

func TestWatchLimits(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	noop := func(*webidl.Feature, int) {}

	// Methods cannot be watched.
	f, _ := b.Resolve("Document", "createElement")
	if err := rt.Watch(f, noop); err == nil {
		t.Error("watching a method should fail")
	}
	// Read-only attributes cannot be watched.
	f, _ = b.Resolve("Window", "localStorage")
	if err := rt.Watch(f, noop); err == nil {
		t.Error("watching a readonly attribute should fail")
	}
	// Non-singleton attributes cannot be watched (paper §4.2.2).
	f, _ = b.Resolve("Element", "innerHTML")
	var we *WatchError
	if err := rt.Watch(f, noop); !errors.As(err, &we) {
		t.Errorf("watching a non-singleton attribute = %v, want WatchError", err)
	}
}

func TestMeasurable(t *testing.T) {
	b := bindings(t)
	cases := []struct {
		iface, member string
		want          bool
	}{
		{"Document", "createElement", true}, // method
		{"Window", "name", true},            // writable singleton attr
		{"Window", "localStorage", false},   // readonly attr
		{"Element", "innerHTML", false},     // non-singleton attr
	}
	for _, c := range cases {
		f, ok := b.Resolve(c.iface, c.member)
		if !ok {
			t.Fatalf("%s.%s missing", c.iface, c.member)
		}
		if got := Measurable(f); got != c.want {
			t.Errorf("Measurable(%s.%s) = %v, want %v", c.iface, c.member, got, c.want)
		}
	}
}

func TestEveryStandardTopFeatureMeasurable(t *testing.T) {
	// The synthetic-web calibrator places a standard's usage on its
	// rank-0 feature; for every standard the paper observed in use, that
	// feature must be observable. (Never-used standards — e.g. TPE,
	// whose only members are readonly doNotTrack attributes — may have
	// unmeasurable top features; that is part of why they are never
	// observed.)
	b := bindings(t)
	reg := b.Registry()
	for _, f := range reg.Features {
		if f.Rank != 0 || Measurable(f) {
			continue
		}
		if std := standards.MustByAbbrev(f.Standard); std.Sites > 0 {
			t.Errorf("standard %s (used on %d sites) rank-0 feature %s is unmeasurable",
				f.Standard, std.Sites, f.Name())
		}
	}
}

func TestWatchAllSingletons(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	var writes int
	n := rt.WatchAllSingletons(func(*webidl.Feature, int) { writes++ })
	if n == 0 {
		t.Fatal("no watchpoints installed")
	}
	if err := rt.SetProperty("Window", "name"); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetProperty("Document", "title"); err != nil {
		t.Fatal(err)
	}
	if writes != 2 {
		t.Errorf("watchers saw %d writes, want 2", writes)
	}
}

func TestPatchAllMethods(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	var calls int64
	rt.PatchAllMethods(func(f *webidl.Feature, original MethodFunc) MethodFunc {
		return func(ctx *CallContext) {
			calls += int64(ctx.Count)
			original(ctx)
		}
	})
	if err := rt.Call("Document", "createElement", 4); err != nil {
		t.Fatal(err)
	}
	if err := rt.Call("Crypto", "getRandomValues", 1); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("patched shims saw %d calls, want 5", calls)
	}
}

func TestRuntimesAreIsolated(t *testing.T) {
	b := bindings(t)
	rt1 := b.NewRuntime()
	rt2 := b.NewRuntime()
	f, _ := b.Resolve("Document", "createElement")
	var shimmed bool
	if err := rt1.PatchMethod(f, func(o MethodFunc) MethodFunc {
		return func(ctx *CallContext) { shimmed = true; o(ctx) }
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt2.Call("Document", "createElement", 1); err != nil {
		t.Fatal(err)
	}
	if shimmed {
		t.Fatal("patch on one runtime leaked into another")
	}
	if rt1.NativeCalls(f) != 0 || rt2.NativeCalls(f) != 1 {
		t.Fatal("native counters shared across runtimes")
	}
}

// TestResetCountsPreservesInstrumentation is the runtime-recycling
// contract: after ResetCounts a runtime reports zero counts everywhere, but
// its patches, watchpoints, and instrumentation marks survive and keep
// observing — the state Browser.Release hands back to the page pool.
func TestResetCountsPreservesInstrumentation(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	var patched int64
	rt.PatchAllMethods(func(f *webidl.Feature, original MethodFunc) MethodFunc {
		return func(ctx *CallContext) {
			patched += int64(ctx.Count)
			original(ctx)
		}
	})
	var watched int64
	rt.WatchAllSingletons(func(f *webidl.Feature, count int) { watched += int64(count) })
	owner := &struct{ int }{}
	rt.MarkInstrumented(owner)

	if err := rt.Call("Document", "createElement", 3); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetProperty("Window", "name"); err != nil {
		t.Fatal(err)
	}
	if rt.TotalNativeCalls() == 0 || patched != 3 || watched != 1 {
		t.Fatalf("pre-reset counts: native=%d patched=%d watched=%d", rt.TotalNativeCalls(), patched, watched)
	}

	rt.ResetCounts()
	if got := rt.TotalNativeCalls(); got != 0 {
		t.Fatalf("recycled runtime reports %d native calls, want 0", got)
	}
	if !rt.InstrumentedBy(owner) {
		t.Error("ResetCounts dropped the instrumentation mark")
	}
	if err := rt.Call("Document", "createElement", 2); err != nil {
		t.Fatal(err)
	}
	if patched != 5 {
		t.Errorf("patch stopped observing after ResetCounts: %d, want 5", patched)
	}
	if got := rt.TotalNativeCalls(); got != 2 {
		t.Errorf("post-recycle native calls = %d, want 2", got)
	}
}

// TestResetRestoresPristineState: the full Reset drops patches, watchers,
// counters, and marks, so the runtime behaves like a fresh NewRuntime.
func TestResetRestoresPristineState(t *testing.T) {
	b := bindings(t)
	rt := b.NewRuntime()
	var patched int64
	rt.PatchAllMethods(func(f *webidl.Feature, original MethodFunc) MethodFunc {
		return func(ctx *CallContext) { patched++; original(ctx) }
	})
	var watched int64
	rt.WatchAllSingletons(func(f *webidl.Feature, count int) { watched++ })
	owner := "owner"
	rt.MarkInstrumented(owner)
	if err := rt.Call("Document", "createElement", 1); err != nil {
		t.Fatal(err)
	}

	rt.Reset()
	if rt.TotalNativeCalls() != 0 {
		t.Error("Reset left native counts")
	}
	if rt.InstrumentedBy(owner) {
		t.Error("Reset left instrumentation marks")
	}
	patched, watched = 0, 0
	if err := rt.Call("Document", "createElement", 1); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetProperty("Window", "name"); err != nil {
		t.Fatal(err)
	}
	if patched != 0 || watched != 0 {
		t.Errorf("reset runtime still instrumented: patched=%d watched=%d", patched, watched)
	}
	if rt.TotalNativeCalls() != 2 {
		t.Errorf("reset runtime native calls = %d, want 2", rt.TotalNativeCalls())
	}
}
