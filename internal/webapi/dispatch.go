package webapi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/webidl"
)

// Dispatch is one interned feature reference, fully resolved at intern time:
// either a valid target feature or the exact error the string-keyed slow
// path would produce, precomputed once. Compiled scripts address these by
// dense ID, so executing `invoke Interface.member` costs an index into a
// slice instead of a "Interface.member" string concatenation plus map
// lookup per dispatch.
type Dispatch struct {
	// Feature is the resolved target; nil when the reference is invalid
	// for both invoke and set.
	Feature *webidl.Feature
	// CallErr, when non-nil, is what invoking this reference returns
	// (unknown member, or an attribute invoked as a function).
	CallErr error
	// SetErr, when non-nil, is what writing this reference returns
	// (unknown member, a method written as a property, or a read-only
	// attribute).
	SetErr error
}

// DispatchTable interns "Interface.member" references to dense IDs against
// one Bindings. A browser owns one table and shares it across every script
// it compiles, so hot cross-site scripts intern each reference exactly once
// per browser. Interning is mutex-guarded; Refs is a lock-free atomic
// snapshot for the execution hot path.
type DispatchTable struct {
	b  *Bindings
	mu sync.Mutex
	// ids maps "Interface.member" to the dense ref ID.
	ids map[string]int
	// refs is the published dispatch slice; entries are immutable once
	// published, and every publication is a fresh, grown copy.
	refs atomic.Pointer[[]Dispatch]
}

// NewDispatchTable creates an empty interning table over the bindings.
func (b *Bindings) NewDispatchTable() *DispatchTable {
	t := &DispatchTable{b: b, ids: make(map[string]int)}
	empty := []Dispatch{}
	t.refs.Store(&empty)
	return t
}

// InternRef implements webscript.RefInterner: it returns the dense ID for a
// feature reference, resolving it through the bindings (inheritance chain
// included) and precomputing the invoke/set outcomes on first intern.
func (t *DispatchTable) InternRef(iface, member string) int {
	key := iface + "." + member
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[key]; ok {
		return id
	}
	d := Dispatch{}
	f, ok := t.b.Resolve(iface, member)
	if ok {
		d.Feature = f
	}
	if !ok || f.Kind != webidl.Method {
		d.CallErr = &ReferenceError{Interface: iface, Member: member}
	}
	switch {
	case !ok || f.Kind != webidl.Attribute:
		d.SetErr = &ReferenceError{Interface: iface, Member: member}
	case f.ReadOnly:
		// Byte-for-byte the slow path's error: SetProperty formats the
		// same message per write, this one is built once per table.
		d.SetErr = fmt.Errorf("webapi: cannot assign to read only property %s", f.Name())
	}

	old := *t.refs.Load()
	grown := make([]Dispatch, len(old)+1)
	copy(grown, old)
	grown[len(old)] = d
	id := len(old)
	t.ids[key] = id
	t.refs.Store(&grown)
	return id
}

// Refs returns the current dispatch slice: one atomic load, safe to index by
// any ID interned before the call and valid forever (publication copies,
// never mutates).
func (t *DispatchTable) Refs() []Dispatch {
	return *t.refs.Load()
}

// CallDispatch is the compiled-script fast path of Call: the reference was
// resolved and validated at intern time, so dispatch is an error check, a
// slot load, and the invocation — no string concatenation, no map lookup,
// no CallContext allocation.
func (rt *Runtime) CallDispatch(d *Dispatch, count int) error {
	if d.CallErr != nil {
		return d.CallErr
	}
	rt.dispatch(d.Feature, count)
	return nil
}

// SetDispatch is the compiled-script fast path of SetProperty.
func (rt *Runtime) SetDispatch(d *Dispatch) error {
	if d.SetErr != nil {
		return d.SetErr
	}
	f := d.Feature
	rt.native[f.ID]++
	for _, w := range rt.watchers[f.ID] {
		w(f, 1)
	}
	return nil
}
