package webapi

import (
	"fmt"

	"repro/internal/webidl"
)

// CallContext carries one logical method invocation (or batch thereof)
// through the dispatch chain. The context passed to a MethodFunc is only
// valid for the duration of the call: the runtime reuses one context across
// dispatches (pages invoke features millions of times per survey), so
// implementations must not retain it or call back into the same runtime's
// dispatch while holding it.
type CallContext struct {
	// Feature is the resolved corpus feature being invoked.
	Feature *webidl.Feature
	// Count is the number of logical invocations this dispatch
	// represents; tight script loops batch their calls, and
	// instrumentation must account for each.
	Count int
}

// MethodFunc is a method slot implementation.
type MethodFunc func(*CallContext)

// WatchFunc observes property writes, receiving the written feature and the
// write multiplicity.
type WatchFunc func(f *webidl.Feature, count int)

// Bindings is the immutable, corpus-derived dispatch structure shared by
// all pages: feature resolution tables and the inheritance chain. Build it
// once per process with NewBindings.
type Bindings struct {
	reg *webidl.Registry
	// resolve maps "Interface.member" (including inherited members) to
	// the defining feature.
	resolve map[string]*webidl.Feature
}

// NewBindings precomputes dispatch tables from the corpus.
func NewBindings(reg *webidl.Registry) *Bindings {
	b := &Bindings{reg: reg, resolve: make(map[string]*webidl.Feature, len(reg.Features)*2)}
	// Direct members.
	for _, f := range reg.Features {
		b.resolve[f.Interface+"."+f.Member] = f
	}
	// Inherited members: for each interface, walk up the parent chain
	// and expose ancestors' members under the derived interface name,
	// unless shadowed.
	for name := range reg.Interfaces {
		chain := b.chainOf(name)
		for _, anc := range chain {
			ancIface, ok := reg.InterfaceOf(anc)
			if !ok {
				continue
			}
			for _, f := range ancIface.Members {
				key := name + "." + f.Member
				if _, shadowed := b.resolve[key]; !shadowed {
					b.resolve[key] = f
				}
			}
		}
	}
	return b
}

// chainOf returns the ancestor interface names of name, nearest first.
func (b *Bindings) chainOf(name string) []string {
	var chain []string
	seen := map[string]bool{name: true}
	cur, ok := b.reg.InterfaceOf(name)
	for ok && cur.Parent != "" && !seen[cur.Parent] {
		seen[cur.Parent] = true
		chain = append(chain, cur.Parent)
		cur, ok = b.reg.InterfaceOf(cur.Parent)
	}
	return chain
}

// Registry returns the corpus the bindings were built from.
func (b *Bindings) Registry() *webidl.Registry { return b.reg }

// Resolve finds the feature for an "Interface.member" reference, following
// the inheritance chain.
func (b *Bindings) Resolve(iface, member string) (*webidl.Feature, bool) {
	f, ok := b.resolve[iface+"."+member]
	return f, ok
}

// Measurable reports whether the paper's instrumentation can observe use of
// the feature: methods are observable via prototype shims; properties are
// observable only as writes to non-readonly attributes of singleton objects
// (§4.2.2).
func Measurable(f *webidl.Feature) bool {
	if f.Kind == webidl.Method {
		return true
	}
	return !f.ReadOnly && webidl.IsSingletonInterface(f.Interface)
}

// ReferenceError is returned when a script references a member no interface
// provides — the analog of a JavaScript ReferenceError/TypeError, which
// aborts the referencing script.
type ReferenceError struct {
	Interface string
	Member    string
}

func (e *ReferenceError) Error() string {
	return fmt.Sprintf("webapi: %s.%s is not a function", e.Interface, e.Member)
}

// WatchError is returned for invalid Watch registrations.
type WatchError struct {
	Feature *webidl.Feature
	Reason  string
}

func (e *WatchError) Error() string {
	return fmt.Sprintf("webapi: cannot watch %s: %s", e.Feature.Name(), e.Reason)
}

// Runtime is the per-page dispatch state: one fresh set of prototype slots
// per page, plus singleton watchpoints. The zero value is not useful; use
// Bindings.NewRuntime.
type Runtime struct {
	b *Bindings
	// methods[featureID] is the current slot implementation; patching
	// swaps entries, page scripts dispatch through them.
	methods []MethodFunc
	// native[featureID] counts logical invocations reaching the native
	// (original) implementation, whether or not the slot is patched —
	// the simulator's ground truth that shims preserve functionality.
	native []int64
	// watchers[featureID] holds property watchpoints.
	watchers map[int][]WatchFunc
	// instrumented lists the owners (extensions) that have installed
	// their shims on this runtime; see MarkInstrumented.
	instrumented []any
	// scratch is the reusable CallContext handed to method slots; see the
	// CallContext docs for the non-retention contract that makes one
	// context per runtime safe.
	scratch CallContext
}

// NewRuntime creates a fresh page runtime with pristine (unpatched) slots.
func (b *Bindings) NewRuntime() *Runtime {
	rt := &Runtime{
		b:        b,
		methods:  make([]MethodFunc, len(b.reg.Features)),
		native:   make([]int64, len(b.reg.Features)),
		watchers: nil, // lazily allocated
	}
	return rt
}

// Reset returns the runtime to its pristine post-NewRuntime state: every
// patch is removed, every watchpoint dropped, every counter zeroed, and all
// instrumentation marks cleared. Backing storage is retained, so a reset
// runtime costs no allocations to reuse. The browser's same-profile recycle
// path deliberately uses only ResetCounts (shims survive); Reset is the
// full wipe a pool shared across extension stacks — e.g. a future
// Bindings-level pool serving browsers of different cases — must use
// before handing a runtime to a different profile.
func (rt *Runtime) Reset() {
	clear(rt.methods)
	clear(rt.native)
	clear(rt.watchers)
	rt.instrumented = rt.instrumented[:0]
}

// ResetCounts zeroes the per-page native counters while preserving patches,
// watchpoints, and instrumentation marks. This is the recycle path for a
// runtime returning to its browser's pool between pages of one profile:
// the extension stack is identical on every page, so its shims — which are
// pure forwarding closures — can survive the round trip, and only the
// counts (the per-page ground truth) must start fresh.
func (rt *Runtime) ResetCounts() { clear(rt.native) }

// MarkInstrumented records that owner has installed its instrumentation on
// this runtime. Extensions that patch methods or register watchpoints must
// mark the runtime and check InstrumentedBy before instrumenting, so a
// runtime recycled by the browser's page pool is never shimmed twice
// (double-wrapping would double every count). Reset clears the marks;
// ResetCounts preserves them.
func (rt *Runtime) MarkInstrumented(owner any) {
	rt.instrumented = append(rt.instrumented, owner)
}

// InstrumentedBy reports whether owner has marked this runtime.
func (rt *Runtime) InstrumentedBy(owner any) bool {
	for _, o := range rt.instrumented {
		if o == owner {
			return true
		}
	}
	return false
}

// nativeImpl is the default implementation for every method slot: it
// performs the feature's (simulated) effect, which for measurement purposes
// is recording that the native code ran.
func (rt *Runtime) nativeImpl(ctx *CallContext) {
	rt.native[ctx.Feature.ID] += int64(ctx.Count)
}

// Call dispatches count logical invocations of Interface.member. Unknown
// references return a ReferenceError; invoking an attribute as a function
// is likewise an error, as in JavaScript.
func (rt *Runtime) Call(iface, member string, count int) error {
	f, ok := rt.b.Resolve(iface, member)
	if !ok || f.Kind != webidl.Method {
		return &ReferenceError{Interface: iface, Member: member}
	}
	rt.dispatch(f, count)
	return nil
}

// dispatch invokes a resolved method feature through its current slot using
// the runtime's scratch context.
func (rt *Runtime) dispatch(f *webidl.Feature, count int) {
	ctx := &rt.scratch
	ctx.Feature, ctx.Count = f, count
	if fn := rt.methods[f.ID]; fn != nil {
		fn(ctx)
		return
	}
	rt.nativeImpl(ctx)
}

// SetProperty dispatches one write to Interface.member. Writes to readonly
// attributes and unknown members fail; writes to watched singleton
// properties notify the watchers (the Object.watch analog). Writes to
// non-singleton properties succeed silently and unobservably.
func (rt *Runtime) SetProperty(iface, member string) error {
	f, ok := rt.b.Resolve(iface, member)
	if !ok || f.Kind != webidl.Attribute {
		return &ReferenceError{Interface: iface, Member: member}
	}
	if f.ReadOnly {
		return fmt.Errorf("webapi: cannot assign to read only property %s", f.Name())
	}
	rt.native[f.ID]++
	for _, w := range rt.watchers[f.ID] {
		w(f, 1)
	}
	return nil
}

// PatchMethod replaces a method slot with wrap(original), giving the
// wrapper closure-private access to the original implementation, exactly
// like the paper's extension shims (§4.2.1). It returns the feature's
// pre-patch implementation indirectly: pages have no way to recover it.
func (rt *Runtime) PatchMethod(f *webidl.Feature, wrap func(original MethodFunc) MethodFunc) error {
	if f.Kind != webidl.Method {
		return fmt.Errorf("webapi: cannot patch non-method %s", f.Name())
	}
	original := rt.methods[f.ID]
	if original == nil {
		original = rt.nativeImpl
	}
	rt.methods[f.ID] = wrap(original)
	return nil
}

// PatchAllMethods applies wrap to every method in the corpus.
func (rt *Runtime) PatchAllMethods(wrap func(f *webidl.Feature, original MethodFunc) MethodFunc) {
	for _, f := range rt.b.reg.Features {
		if f.Kind != webidl.Method {
			continue
		}
		original := rt.methods[f.ID]
		if original == nil {
			original = rt.nativeImpl
		}
		rt.methods[f.ID] = wrap(f, original)
	}
}

// Watch registers a write observer on a property feature. Only writable
// attributes of singleton interfaces are watchable; everything else returns
// a WatchError, reproducing the instrumentation limits of §4.2.2.
func (rt *Runtime) Watch(f *webidl.Feature, w WatchFunc) error {
	if f.Kind != webidl.Attribute {
		return &WatchError{Feature: f, Reason: "not a property"}
	}
	if f.ReadOnly {
		return &WatchError{Feature: f, Reason: "read-only property writes never occur"}
	}
	if !webidl.IsSingletonInterface(f.Interface) {
		return &WatchError{Feature: f, Reason: "Object.watch is only available on singleton objects"}
	}
	if rt.watchers == nil {
		rt.watchers = make(map[int][]WatchFunc)
	}
	rt.watchers[f.ID] = append(rt.watchers[f.ID], w)
	return nil
}

// WatchAllSingletons registers w on every watchable property in the corpus
// and returns how many watchpoints were installed.
func (rt *Runtime) WatchAllSingletons(w WatchFunc) int {
	n := 0
	for _, f := range rt.b.reg.Features {
		if f.Kind == webidl.Attribute && Measurable(f) {
			if err := rt.Watch(f, w); err == nil {
				n++
			}
		}
	}
	return n
}

// NativeCalls reports how many logical invocations (or writes) reached the
// feature's native implementation on this page.
func (rt *Runtime) NativeCalls(f *webidl.Feature) int64 { return rt.native[f.ID] }

// TotalNativeCalls sums native invocations across all features.
func (rt *Runtime) TotalNativeCalls() int64 {
	var sum int64
	for _, n := range rt.native {
		sum += n
	}
	return sum
}

// Bindings returns the shared bindings backing this runtime.
func (rt *Runtime) Bindings() *Bindings { return rt.b }
