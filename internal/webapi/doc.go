// Package webapi implements the browser simulator's Web API dispatch layer:
// the analog of the JavaScript engine's prototype objects that Firefox
// generates from its WebIDL files.
//
// Every corpus feature gets a slot on its interface's prototype. Script
// execution calls methods and writes properties through Runtime, which
// resolves the member along the inheritance chain and invokes the slot's
// current implementation. The measuring extension instruments a page the
// way the paper's extension does (§4.2):
//
//   - PatchMethod replaces a method slot with a wrapper that receives the
//     original implementation as a closure, so pages cannot reach the
//     unwrapped function (§4.2.1);
//   - Watch registers a write observer on a property of a singleton object
//     (window, document, navigator, ...), the analog of Firefox's
//     non-standard Object.watch (§4.2.2). Properties of non-singleton
//     objects cannot be watched, reproducing the measurement blind spot the
//     paper documents.
package webapi
