package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
)

// ErrInjected is the sentinel returned by every wrapper when an armed
// fault fires. Callers distinguish induced crashes from real I/O errors
// with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultinject: injected fault")

// Injector counts how often each named point is hit and fires a fault
// when a point reaches its armed hit number. A nil *Injector is valid
// and never fires, so production code can thread one through
// unconditionally.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	seed  int64
	armed map[string]int
	count map[string]int
}

// New returns an injector whose torn-write prefixes are drawn from a
// generator seeded with seed. The same seed and the same sequence of
// Fire calls reproduce the same faults byte for byte.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		armed: make(map[string]int),
		count: make(map[string]int),
	}
}

// Seed reports the seed the injector was built with, for logging in
// failure messages.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Arm schedules point to fire on its hit-th pass (1-based). Arming a
// point replaces any previous schedule and resets its counter.
func (in *Injector) Arm(point string, hit int) {
	if hit < 1 {
		panic(fmt.Sprintf("faultinject: Arm(%q, %d): hit must be >= 1", point, hit))
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed[point] = hit
	in.count[point] = 0
}

// Disarm removes any schedule for point. Its counter keeps advancing.
func (in *Injector) Disarm(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.armed, point)
}

// Fire records one pass through point and reports whether the armed
// fault triggers on this pass. Call it at every kill-point; the
// counter advances whether or not the point is armed, so hit numbers
// are stable across runs.
func (in *Injector) Fire(point string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.count[point]++
	hit, ok := in.armed[point]
	return ok && in.count[point] == hit
}

// Count reports how many times point has fired so far. A disarmed dry
// run exposes the total number of kill-point passes, which crash-matrix
// tests use to size their sweep.
func (in *Injector) Count(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.count[point]
}

// prefixLen draws a deterministic torn-write length in [0, n).
func (in *Injector) prefixLen(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return in.rng.Intn(n)
}

// TornWriter wraps w so the armed hit of point writes only a seeded
// random prefix of its payload and returns ErrInjected; every write
// after the tear also fails, modelling a process that died mid-write.
// With a nil injector it returns w unchanged.
func (in *Injector) TornWriter(point string, w io.Writer) io.Writer {
	if in == nil {
		return w
	}
	return &tornWriter{in: in, point: point, w: w}
}

type tornWriter struct {
	in    *Injector
	point string
	w     io.Writer
	dead  bool
}

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.dead {
		return 0, ErrInjected
	}
	if !t.in.Fire(t.point) {
		return t.w.Write(p)
	}
	t.dead = true
	n := t.in.prefixLen(len(p))
	if n > 0 {
		if _, err := t.w.Write(p[:n]); err != nil {
			return 0, err
		}
	}
	return n, ErrInjected
}

// FlakyConn wraps c so the armed hit of readPoint kills a Read and the
// armed hit of writePoint tears a Write (a seeded prefix reaches the
// peer, then the connection closes), modelling a network partition or a
// peer that died mid-frame. With a nil injector it returns c unchanged.
func (in *Injector) FlakyConn(readPoint, writePoint string, c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	return &flakyConn{Conn: c, in: in, readPoint: readPoint, writePoint: writePoint}
}

type flakyConn struct {
	net.Conn
	in         *Injector
	readPoint  string
	writePoint string

	mu   sync.Mutex
	dead bool
}

func (f *flakyConn) kill() error {
	f.mu.Lock()
	already := f.dead
	f.dead = true
	f.mu.Unlock()
	if !already {
		f.Conn.Close()
	}
	return ErrInjected
}

func (f *flakyConn) alive() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.dead
}

func (f *flakyConn) Read(p []byte) (int, error) {
	if !f.alive() {
		return 0, ErrInjected
	}
	if f.in.Fire(f.readPoint) {
		return 0, f.kill()
	}
	return f.Conn.Read(p)
}

func (f *flakyConn) Write(p []byte) (int, error) {
	if !f.alive() {
		return 0, ErrInjected
	}
	if !f.in.Fire(f.writePoint) {
		return f.Conn.Write(p)
	}
	n := f.in.prefixLen(len(p))
	if n > 0 {
		f.Conn.Write(p[:n])
	}
	return n, f.kill()
}
