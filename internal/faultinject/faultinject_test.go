package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

func TestFireCountsAndArming(t *testing.T) {
	in := New(1)
	if in.Fire("p") {
		t.Fatal("unarmed point fired")
	}
	in.Arm("p", 2)
	if in.Fire("p") {
		t.Fatal("fired on hit 1 when armed for hit 2")
	}
	if !in.Fire("p") {
		t.Fatal("did not fire on hit 2")
	}
	if in.Fire("p") {
		t.Fatal("fired again after the armed hit")
	}
	if got := in.Count("p"); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Fire("p") {
		t.Fatal("nil injector fired")
	}
	var buf bytes.Buffer
	w := in.TornWriter("p", &buf)
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatalf("nil TornWriter write: %v", err)
	}
	if buf.String() != "ok" {
		t.Fatalf("payload = %q", buf.String())
	}
}

func TestTornWriterTearsOnceThenStaysDead(t *testing.T) {
	in := New(7)
	var buf bytes.Buffer
	w := in.TornWriter("spill", &buf)
	in.Arm("spill", 2)

	if _, err := w.Write([]byte("first-")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	payload := []byte("second-record")
	n, err := w.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 err = %v, want ErrInjected", err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write reported %d of %d bytes", n, len(payload))
	}
	want := append([]byte("first-"), payload[:n]...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("on-disk bytes = %q, want %q", buf.Bytes(), want)
	}
	if _, err := w.Write([]byte("after")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-tear write err = %v, want ErrInjected", err)
	}
	if buf.Len() != len(want) {
		t.Fatal("bytes written after the tear")
	}
}

func TestTornWriterDeterministicPerSeed(t *testing.T) {
	tear := func(seed int64) []byte {
		in := New(seed)
		var buf bytes.Buffer
		w := in.TornWriter("p", &buf)
		in.Arm("p", 1)
		w.Write(bytes.Repeat([]byte("abcdefgh"), 16))
		return buf.Bytes()
	}
	if !bytes.Equal(tear(42), tear(42)) {
		t.Fatal("same seed produced different torn prefixes")
	}
}

func TestFlakyConnReadAndWrite(t *testing.T) {
	in := New(3)
	a, b := net.Pipe()
	defer b.Close()
	fc := in.FlakyConn("r", "w", a)
	in.Arm("w", 2)

	go io.Copy(io.Discard, b)
	if _, err := fc.Write([]byte("frame-one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := fc.Write([]byte("frame-two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 err = %v, want ErrInjected", err)
	}
	// The tear closed the conn: everything after fails fast.
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-kill write err = %v, want ErrInjected", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-kill read err = %v, want ErrInjected", err)
	}

	in2 := New(3)
	c, d := net.Pipe()
	defer d.Close()
	fc2 := in2.FlakyConn("r", "w", c)
	in2.Arm("r", 1)
	if _, err := fc2.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed read err = %v, want ErrInjected", err)
	}
}

func TestArmResetsCounter(t *testing.T) {
	in := New(9)
	in.Arm("p", 1)
	if !in.Fire("p") {
		t.Fatal("first arm did not fire")
	}
	in.Arm("p", 1)
	if !in.Fire("p") {
		t.Fatal("re-arm did not reset the counter")
	}
}
