// Package faultinject provides deterministic fault injection for
// crash-safety tests: named kill-points counted per process, torn-write
// wrappers around spill writers, and flaky wrappers around network
// connections. Every fault is driven by an explicit seed and an armed
// hit count, so a failing crash-matrix run reproduces exactly from its
// logged (seed, point, hit) triple.
package faultinject
