package pipeline

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/crawler"
	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webserver"
)

// Config parameterizes the sharded engine. The zero value of every field
// picks a sensible default, so Config{Crawl: crawler.DefaultConfig(seed)}
// is a complete configuration.
type Config struct {
	// Shards is the number of independent site partitions; sites are
	// assigned round-robin by index. Default 1.
	Shards int
	// WorkersPerShard is the number of browser workers draining each
	// shard's queue. Default 4.
	WorkersPerShard int
	// BatchSize is the number of completed visits a worker accumulates
	// before handing them to the merge stage. Default 16.
	BatchSize int
	// QueueDepth bounds each shard's site queue; the shared merge
	// channel is sized QueueDepth×Shards. Bounded queues make a stalled
	// stage exert back-pressure instead of buffering the whole web.
	// Default 2×WorkersPerShard.
	QueueDepth int
	// Mergers is the number of goroutines applying batches to the
	// lock-striped aggregate. Default 2.
	Mergers int
	// Stripes is the lock-stripe count of the aggregate. Default 16.
	Stripes int
	// Cache, when non-nil, memoizes visit outcomes on disk keyed by the
	// deterministic VisitSeed. Visits already in the cache are skipped
	// entirely (no browser work) and replayed from disk; the resulting
	// log is identical either way. Cache.Stats() reports the traffic.
	Cache *logstore.Cache
	// SpillDir, when non-empty, streams every shard's completed visits
	// to a spill file (shard-NNN.spill) in this directory as they merge,
	// so partial results survive on disk instead of living only in the
	// in-memory aggregate. logstore.ReadSpillFiles reassembles them.
	SpillDir string
	// Crawl carries the survey methodology (rounds, branch factor, page
	// budget, cases, seed). Its Parallelism field is ignored; the
	// pipeline's Shards × WorkersPerShard replaces it.
	Crawl crawler.Config
}

// DefaultConfig mirrors the paper's methodology with a modest level of
// parallelism: 2 shards × 4 workers.
func DefaultConfig(seed int64) Config {
	return Config{
		Shards:          2,
		WorkersPerShard: 4,
		Crawl:           crawler.DefaultConfig(seed),
	}
}

// normalized fills defaults in place of zero fields.
func (cfg Config) normalized() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.WorkersPerShard
	}
	if cfg.Mergers <= 0 {
		cfg.Mergers = 2
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 16
	}
	if len(cfg.Crawl.Cases) == 0 {
		cfg.Crawl.Cases = measure.AllCases()
	}
	return cfg
}

// Engine is the sharded crawl→measure→aggregate pipeline. It reproduces the
// sequential crawler.Run survey bit-for-bit (same seed, same log) while
// spreading the visits over Shards×WorkersPerShard browser workers.
type Engine struct {
	Web      *synthweb.Web
	Bindings *webapi.Bindings
	// NewFetcher builds a fetcher per worker; nil means direct
	// in-process fetching.
	NewFetcher func() webserver.Fetcher
	Cfg        Config
}

// New builds an engine with the direct fetcher.
func New(web *synthweb.Web, bindings *webapi.Bindings, cfg Config) *Engine {
	return &Engine{Web: web, Bindings: bindings, Cfg: cfg}
}

// Result bundles a completed pipeline survey.
type Result struct {
	Log   *measure.Log
	Stats *crawler.Stats
}

// Run executes the survey. The context cancels gracefully: in-flight visits
// finish, queued sites are dropped, and Run returns ctx.Err() without
// leaking goroutines. On success the returned log is identical to the
// sequential crawler's for the same crawl config and seed.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	cfg := e.Cfg.normalized()
	if cfg.Crawl.Rounds <= 0 || cfg.Crawl.Branch <= 0 {
		return nil, fmt.Errorf("pipeline: invalid crawl config %+v", cfg.Crawl)
	}

	// The crawler supplies the per-visit mechanics (browser stacks,
	// monkey testing, BFS sampling); the engine owns all scheduling.
	cr := crawler.New(e.Web, e.Bindings, cfg.Crawl)
	cr.NewFetcher = e.NewFetcher

	domains := make([]string, len(e.Web.Sites))
	for i, s := range e.Web.Sites {
		domains[i] = s.Domain
	}
	numFeatures := len(e.Web.Registry.Features)
	agg := newAggregate(numFeatures, domains, cfg.Crawl.Cases, cfg.Crawl.Rounds, cfg.Stripes)

	// Optional spill: one streaming writer per shard, shared by the
	// shard's workers, so partial results land on disk as visits
	// complete instead of existing only in the aggregate.
	spills := make([]*logstore.Writer, cfg.Shards)
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("pipeline: creating spill dir: %w", err)
		}
		for s := range spills {
			w, err := logstore.Create(filepath.Join(cfg.SpillDir, fmt.Sprintf("shard-%03d.spill", s)), numFeatures, domains)
			if err != nil {
				for _, open := range spills[:s] {
					open.Close()
				}
				return nil, fmt.Errorf("pipeline: creating spill: %w", err)
			}
			spills[s] = w
		}
	}

	// Stage 3: mergers drain completed batches into the striped
	// aggregate.
	batches := make(chan batch, cfg.QueueDepth*cfg.Shards)
	var mergeWG sync.WaitGroup
	for i := 0; i < cfg.Mergers; i++ {
		mergeWG.Add(1)
		go func() {
			defer mergeWG.Done()
			for b := range batches {
				agg.merge(b)
			}
		}()
	}

	// Stage 2: each shard runs an independent worker pool. Workers
	// surface visitor-construction errors (deterministic config
	// problems) through errOnce.
	var errOnce sync.Once
	var runErr error
	shardQueues := make([]chan *synthweb.Site, cfg.Shards)
	var crawlWG sync.WaitGroup
	for s := 0; s < cfg.Shards; s++ {
		shardQueues[s] = make(chan *synthweb.Site, cfg.QueueDepth)
		for w := 0; w < cfg.WorkersPerShard; w++ {
			crawlWG.Add(1)
			go func(queue <-chan *synthweb.Site, spill *logstore.Writer) {
				defer crawlWG.Done()
				if err := e.crawlWorker(ctx, cr, cfg, numFeatures, queue, batches, spill); err != nil {
					errOnce.Do(func() { runErr = err })
				}
			}(shardQueues[s], spills[s])
		}
	}

	// Stage 1: the sharder partitions sites round-robin by index. Bounded
	// queues provide back-pressure; cancellation stops feeding.
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		defer func() {
			for _, q := range shardQueues {
				close(q)
			}
		}()
		for _, site := range e.Web.Sites {
			select {
			case shardQueues[site.Index%cfg.Shards] <- site:
			case <-ctx.Done():
				return
			}
		}
	}()

	feedWG.Wait()
	crawlWG.Wait()
	close(batches)
	mergeWG.Wait()

	for _, w := range spills {
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil {
			errOnce.Do(func() { runErr = fmt.Errorf("pipeline: closing spill: %w", err) })
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return &Result{Log: agg.Log(), Stats: agg.Stats(cfg.Crawl.PageSeconds)}, nil
}

// crawlWorker drains one shard queue. For each site it runs every
// configured case for every round, exactly as the sequential loop does: a
// failed visit marks the site unmeasurable and skips the case's remaining
// rounds, but other cases still run. Completed visits accumulate into a
// batch that is flushed to the merge stage — and, when the shard spills, to
// its spill writer — every BatchSize observations.
func (e *Engine) crawlWorker(ctx context.Context, cr *crawler.Crawler, cfg Config, numFeatures int, queue <-chan *synthweb.Site, batches chan<- batch, spill *logstore.Writer) error {
	visitors := make(map[measure.Case]*crawler.Visitor, len(cfg.Crawl.Cases))
	for _, cs := range cfg.Crawl.Cases {
		v, err := cr.NewVisitor(cs)
		if err != nil {
			// Drain the queue so the sharder never blocks on a
			// dead worker pool, then report the config error.
			for range queue {
			}
			return err
		}
		visitors[cs] = v
	}

	var pending batch
	var spillErr error
	flush := func() {
		if len(pending.obs) == 0 && len(pending.fails) == 0 {
			return
		}
		if spill != nil && spillErr == nil {
			spillErr = spillBatch(spill, cfg.Crawl.Cases, pending)
		}
		batches <- pending
		pending = batch{}
	}
	defer flush()

	for site := range queue {
		for ci, cs := range cfg.Crawl.Cases {
			v := visitors[cs]
			for round := 0; round < cfg.Crawl.Rounds; round++ {
				if ctx.Err() != nil {
					// Graceful cancellation: stop issuing
					// visits, drain the queue so upstream
					// can close it.
					flush()
					for range queue {
					}
					return spillErr
				}
				seed := crawler.VisitSeed(cfg.Crawl.Seed, site.Index, cs, round)
				out := e.visit(v, cfg.Cache, numFeatures, site, cs, seed)
				if out.Failed {
					pending.fails = append(pending.fails, failure{site: site.Index})
					break
				}
				pending.obs = append(pending.obs, observation{
					caseIdx:     ci,
					round:       round,
					site:        site.Index,
					features:    out.Features,
					invocations: out.Invocations,
					pages:       out.Pages,
				})
				if len(pending.obs) >= cfg.BatchSize {
					flush()
				}
			}
		}
	}
	flush()
	return spillErr
}

// visit performs (or replays) one crawl. With a cache configured, the
// outcome keyed by the visit's deterministic seed is served from disk when
// present; otherwise the crawl runs and its outcome — success or failure —
// is stored for the next overlapping run. Cache write errors are swallowed:
// the cache accelerates, it never fails a survey.
func (e *Engine) visit(v *crawler.Visitor, cache *logstore.Cache, numFeatures int, site *synthweb.Site, cs measure.Case, seed int64) logstore.VisitOutcome {
	if cache != nil {
		if out, ok := cache.Get(seed, cs); ok {
			return out
		}
	}
	var out logstore.VisitOutcome
	counts, pages, err := v.CrawlOnce(site, seed)
	if err != nil {
		out.Failed = true
	} else {
		out.Features = measure.NewBitset(numFeatures)
		for id, n := range counts {
			out.Features.Set(id)
			out.Invocations += n
		}
		out.Pages = pages
	}
	if cache != nil {
		_ = cache.Put(seed, cs, out)
	}
	return out
}

// spillBatch streams a flushed batch to the shard's spill writer.
func spillBatch(w *logstore.Writer, cases []measure.Case, b batch) error {
	for _, obs := range b.obs {
		if err := w.Append(logstore.Observation{
			Case:        cases[obs.caseIdx],
			Round:       obs.round,
			Site:        obs.site,
			Features:    obs.features,
			Invocations: obs.invocations,
			Pages:       obs.pages,
		}); err != nil {
			return err
		}
	}
	for _, f := range b.fails {
		if err := w.Fail(f.site); err != nil {
			return err
		}
	}
	return w.Flush()
}
