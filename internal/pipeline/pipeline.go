package pipeline

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/crawler"
	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/stats"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webserver"
)

// Config parameterizes the sharded engine. The zero value of every field
// picks a sensible default, so Config{Crawl: crawler.DefaultConfig(seed)}
// is a complete configuration.
type Config struct {
	// Shards is the number of independent site partitions; sites are
	// assigned round-robin by index. Default 1.
	Shards int
	// WorkersPerShard is the number of browser workers draining each
	// shard's queue. Default 4.
	WorkersPerShard int
	// BatchSize is the number of completed visits a worker accumulates
	// before folding them into the aggregate (one stripe-lock acquisition
	// per stripe per batch) and, when spilling, flushing them to disk.
	// Default 16.
	BatchSize int
	// QueueDepth bounds each shard's site queue. Bounded queues make a
	// stalled stage exert back-pressure instead of buffering the whole
	// web. Default 2×WorkersPerShard.
	QueueDepth int
	// Mergers is retained for configuration compatibility and ignored:
	// the dedicated merge stage is gone. Workers apply their own batches
	// to the lock-striped stats aggregate, which both preserves per-site
	// event ordering (a site's visits and its end-of-site fold come from
	// one worker) and removes a channel hop.
	Mergers int
	// Stripes is the lock-stripe count of the aggregate. Default 16.
	Stripes int
	// Cache, when non-nil, memoizes visit outcomes on disk keyed by the
	// deterministic VisitSeed. Visits already in the cache are skipped
	// entirely (no browser work) and replayed from disk; the resulting
	// log is identical either way. Cache.Stats() reports the traffic.
	Cache *logstore.Cache
	// SpillDir, when non-empty, streams every shard's completed visits
	// to a spill file (shard-NNN.spill) in this directory as they merge,
	// so partial results survive on disk instead of living only in the
	// in-memory aggregate. logstore.ReadSpillFiles reassembles them into
	// a full log; stats.FromSpills folds them into a warm aggregate.
	SpillDir string
	// Spill, when non-nil, is an externally owned spill writer shared by
	// every shard in place of SpillDir's per-shard files. The engine
	// flushes it but never closes it; the caller owns its lifecycle. This
	// is how a distributed worker streams a lease's visits straight onto
	// the wire (internal/dist) instead of into local files.
	Spill *logstore.Writer
	// SpillOnly drops the in-memory log: each shard folds its visits
	// into a local mergeable stats.Aggregate (plus its spill file when
	// SpillDir is set), the shard aggregates merge after the run, and
	// Result.Log is nil. Memory stays bounded regardless of site count;
	// every aggregate statistic (and therefore every headline table) is
	// identical to the in-memory run's.
	SpillOnly bool
	// Sites, when non-nil, restricts the survey to these site indices of
	// the web (a distributed lease); nil crawls every site. The stats
	// aggregate is still sized for the full site list, so subset
	// aggregates from disjoint leases merge into exactly the full-run
	// aggregate.
	Sites []int
	// ResumeSpills names spill streams from a previous, crashed life of
	// this run whose records are replayed into the aggregate before any
	// crawling. The streams must describe the engine's exact study, and
	// the sites they commit must be excluded from Sites — replay plus
	// crawl of the remainder then reproduces the uninterrupted run's
	// aggregate byte for byte, because every fold is commutative.
	ResumeSpills []string
	// SpillTap, when non-nil, wraps each owned shard spill file's writer
	// (SpillDir mode only). It exists for fault injection: crash tests
	// tear spill writes at deterministic points and prove resume
	// reconstructs the run. Production runs leave it nil.
	SpillTap func(shard int, w io.Writer) io.Writer
	// Crawl carries the survey methodology (rounds, branch factor, page
	// budget, cases, seed). Its Parallelism field is ignored; the
	// pipeline's Shards × WorkersPerShard replaces it.
	Crawl crawler.Config
}

// DefaultConfig mirrors the paper's methodology with a modest level of
// parallelism: 2 shards × 4 workers.
func DefaultConfig(seed int64) Config {
	return Config{
		Shards:          2,
		WorkersPerShard: 4,
		Crawl:           crawler.DefaultConfig(seed),
	}
}

// normalized fills defaults in place of zero fields.
func (cfg Config) normalized() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.WorkersPerShard
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = 16
	}
	if len(cfg.Crawl.Cases) == 0 {
		cfg.Crawl.Cases = measure.AllCases()
	}
	return cfg
}

// Engine is the sharded crawl→measure→aggregate pipeline. It reproduces the
// sequential crawler.Run survey bit-for-bit (same seed, same log) while
// spreading the visits over Shards×WorkersPerShard browser workers.
type Engine struct {
	Web      *synthweb.Web
	Bindings *webapi.Bindings
	// NewFetcher builds a fetcher per worker; nil means direct
	// in-process fetching.
	NewFetcher func() webserver.Fetcher
	Cfg        Config
}

// New builds an engine with the direct fetcher.
func New(web *synthweb.Web, bindings *webapi.Bindings, cfg Config) *Engine {
	return &Engine{Web: web, Bindings: bindings, Cfg: cfg}
}

// Result bundles a completed pipeline survey.
type Result struct {
	// Log is the full in-memory measurement log; nil in spill-only mode,
	// where the log exists only as spill files (if SpillDir was set).
	Log *measure.Log
	// Agg is the mergeable statistics aggregate the run maintained
	// incrementally; analysis built from it starts warm, with no log
	// rescan.
	Agg   *stats.Aggregate
	Stats *crawler.Stats
}

// SurveyStats summarizes a completed aggregate in the sequential crawler's
// Stats shape (Table 1 of the paper). pageSeconds is the per-page
// interaction budget.
func SurveyStats(a stats.Source, pageSeconds float64) *crawler.Stats {
	inv, pages := a.Totals()
	measured := a.MeasuredCount()
	return &crawler.Stats{
		DomainsMeasured:    measured,
		DomainsFailed:      a.NumSites() - measured,
		PagesVisited:       pages,
		Invocations:        inv,
		InteractionSeconds: float64(pages) * pageSeconds,
	}
}

// Run executes the survey. The context cancels gracefully: in-flight visits
// finish, queued sites are dropped, and Run returns ctx.Err() without
// leaking goroutines. On success the returned log (when not spill-only) is
// identical to the sequential crawler's for the same crawl config and seed.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	cfg := e.Cfg.normalized()
	if cfg.Crawl.Rounds <= 0 || cfg.Crawl.Branch <= 0 {
		return nil, fmt.Errorf("pipeline: invalid crawl config %+v", cfg.Crawl)
	}

	// The crawler supplies the per-visit mechanics (browser stacks,
	// monkey testing, BFS sampling); the engine owns all scheduling.
	cr := crawler.New(e.Web, e.Bindings, cfg.Crawl)
	cr.NewFetcher = e.NewFetcher

	domains := make([]string, len(e.Web.Sites))
	for i, s := range e.Web.Sites {
		domains[i] = s.Domain
	}
	numFeatures := len(e.Web.Registry.Features)
	stdOf := stats.StandardsOf(e.Web.Registry)

	// In-memory mode shares one keep-log aggregate across all shards; in
	// spill-only mode each shard owns a local aggregate — the same unit a
	// remote shard would ship home — and the shards merge after the run.
	statsCfg := stats.Config{
		NumFeatures: numFeatures,
		NumSites:    len(domains),
		Standards:   stdOf,
		Cases:       cfg.Crawl.Cases,
		Rounds:      cfg.Crawl.Rounds,
		Stripes:     cfg.Stripes,
	}
	aggs := make([]*stats.Aggregate, cfg.Shards)
	if cfg.SpillOnly {
		for s := range aggs {
			agg, err := stats.New(statsCfg)
			if err != nil {
				return nil, fmt.Errorf("pipeline: %w", err)
			}
			aggs[s] = agg
		}
	} else {
		statsCfg.KeepLog = true
		statsCfg.Domains = domains
		shared, err := stats.New(statsCfg)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		for s := range aggs {
			aggs[s] = shared
		}
	}

	// Replay the committed records of a previous crashed life before any
	// worker starts: the aggregate opens warm, and the crawl below only
	// covers the sites the caller left in cfg.Sites.
	if len(cfg.ResumeSpills) > 0 {
		s, err := logstore.OpenSpillFiles(cfg.ResumeSpills...)
		if err != nil {
			return nil, fmt.Errorf("pipeline: opening resume spills: %w", err)
		}
		got := s.Domains()
		same := s.NumFeatures() == numFeatures && len(got) == len(domains)
		for i := 0; same && i < len(domains); i++ {
			same = got[i] == domains[i]
		}
		if !same {
			s.Close()
			return nil, fmt.Errorf("pipeline: resume spills describe a different study")
		}
		err = stats.Replay(aggs[0], s)
		if cerr := s.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("pipeline: replaying resume spills: %w", err)
		}
	}

	// Resolve the optional site subset (a distributed lease) up front so
	// an out-of-range index fails the run before any crawling happens.
	sites := e.Web.Sites
	if cfg.Sites != nil {
		sites = make([]*synthweb.Site, len(cfg.Sites))
		for i, idx := range cfg.Sites {
			if idx < 0 || idx >= len(e.Web.Sites) {
				return nil, fmt.Errorf("pipeline: site index %d outside [0,%d)", idx, len(e.Web.Sites))
			}
			sites[i] = e.Web.Sites[idx]
		}
	}

	// Optional spill: one streaming writer per shard, shared by the
	// shard's workers, so partial results land on disk as visits
	// complete instead of existing only in the aggregate. An external
	// cfg.Spill writer is shared by every shard and never closed here.
	spills := make([]*logstore.Writer, cfg.Shards)
	ownSpills := false
	if cfg.Spill != nil {
		for s := range spills {
			spills[s] = cfg.Spill
		}
	} else if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("pipeline: creating spill dir: %w", err)
		}
		for s := range spills {
			var tap func(io.Writer) io.Writer
			if cfg.SpillTap != nil {
				shard := s
				tap = func(w io.Writer) io.Writer { return cfg.SpillTap(shard, w) }
			}
			w, err := logstore.CreateAtomicTapped(filepath.Join(cfg.SpillDir, fmt.Sprintf("shard-%03d.spill", s)), numFeatures, domains, tap)
			if err != nil {
				for _, open := range spills[:s] {
					open.Discard()
				}
				return nil, fmt.Errorf("pipeline: creating spill: %w", err)
			}
			spills[s] = w
		}
		ownSpills = true
	}

	// Each shard runs an independent worker pool. Workers surface
	// visitor-construction errors (deterministic config problems)
	// through errOnce.
	var errOnce sync.Once
	var runErr error
	shardQueues := make([]chan *synthweb.Site, cfg.Shards)
	var crawlWG sync.WaitGroup
	for s := 0; s < cfg.Shards; s++ {
		shardQueues[s] = make(chan *synthweb.Site, cfg.QueueDepth)
		for w := 0; w < cfg.WorkersPerShard; w++ {
			crawlWG.Add(1)
			go func(queue <-chan *synthweb.Site, agg *stats.Aggregate, spill *logstore.Writer) {
				defer crawlWG.Done()
				if err := e.crawlWorker(ctx, cr, cfg, numFeatures, queue, agg, spill); err != nil {
					errOnce.Do(func() { runErr = err })
				}
			}(shardQueues[s], aggs[s], spills[s])
		}
	}

	// The sharder partitions sites round-robin by index. Bounded queues
	// provide back-pressure; cancellation stops feeding.
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		defer func() {
			for _, q := range shardQueues {
				close(q)
			}
		}()
		for _, site := range sites {
			select {
			case shardQueues[site.Index%cfg.Shards] <- site:
			case <-ctx.Done():
				return
			}
		}
	}()

	feedWG.Wait()
	crawlWG.Wait()

	if ownSpills {
		// Publish shard spills (tmp → final rename) only after a clean
		// run; a failed or canceled run discards, leaving .partial files
		// whose committed sites the next life's resume scan salvages.
		failed := ctx.Err() != nil || runErr != nil
		for _, w := range spills {
			if w == nil {
				continue
			}
			if failed {
				w.Discard()
				continue
			}
			if err := w.Close(); err != nil {
				errOnce.Do(func() { runErr = fmt.Errorf("pipeline: closing spill: %w", err) })
			}
		}
	} else if cfg.Spill != nil {
		if err := cfg.Spill.Flush(); err != nil {
			errOnce.Do(func() { runErr = fmt.Errorf("pipeline: flushing spill: %w", err) })
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}

	final := aggs[0]
	if cfg.SpillOnly {
		for _, shard := range aggs[1:] {
			if err := final.Merge(shard); err != nil {
				return nil, fmt.Errorf("pipeline: merging shard aggregates: %w", err)
			}
		}
	}
	res := &Result{Agg: final, Stats: SurveyStats(final, cfg.Crawl.PageSeconds)}
	if !cfg.SpillOnly {
		res.Log = final.Log()
	}
	return res, nil
}

// crawlWorker drains one shard queue. For each site it runs every
// configured case for every round, exactly as the sequential loop does: a
// failed visit marks the site unmeasurable and skips the case's remaining
// rounds, but other cases still run. Completed visits accumulate into a
// batch that is folded into the shard's aggregate — and, when the shard
// spills, flushed to its spill writer — every BatchSize observations. When
// a site's last case finishes, a site-end event rides the same batch, so
// the aggregate retires the site's accumulator and spill readers can do
// the same.
func (e *Engine) crawlWorker(ctx context.Context, cr *crawler.Crawler, cfg Config, numFeatures int, queue <-chan *synthweb.Site, agg *stats.Aggregate, spill *logstore.Writer) error {
	visitors := make(map[measure.Case]*crawler.Visitor, len(cfg.Crawl.Cases))
	for _, cs := range cfg.Crawl.Cases {
		v, err := cr.NewVisitor(cs)
		if err != nil {
			// Drain the queue so the sharder never blocks on a
			// dead worker pool, then report the config error.
			for range queue {
			}
			return err
		}
		visitors[cs] = v
	}

	var pending stats.Batch
	var workerErr error
	flush := func() {
		if len(pending.Visits) == 0 && len(pending.Fails) == 0 && len(pending.Ends) == 0 {
			return
		}
		if spill != nil && workerErr == nil {
			workerErr = spillBatch(spill, pending)
		}
		if err := agg.Apply(pending); err != nil && workerErr == nil {
			workerErr = err
		}
		pending = stats.Batch{}
	}
	defer flush()

	for site := range queue {
		for _, cs := range cfg.Crawl.Cases {
			v := visitors[cs]
			for round := 0; round < cfg.Crawl.Rounds; round++ {
				if ctx.Err() != nil {
					// Graceful cancellation: stop issuing
					// visits, drain the queue so upstream
					// can close it.
					flush()
					for range queue {
					}
					return workerErr
				}
				seed := crawler.VisitSeed(cfg.Crawl.Seed, site.Index, cs, round)
				out := e.visit(v, cfg.Cache, numFeatures, site, cs, seed)
				if out.Failed {
					pending.Fails = append(pending.Fails, site.Index)
					break
				}
				pending.Visits = append(pending.Visits, stats.Visit{
					Case:        cs,
					Round:       round,
					Site:        site.Index,
					Features:    out.Features,
					Invocations: out.Invocations,
					Pages:       out.Pages,
				})
				if len(pending.Visits) >= cfg.BatchSize {
					flush()
				}
			}
		}
		pending.Ends = append(pending.Ends, site.Index)
	}
	flush()
	return workerErr
}

// visit performs (or replays) one crawl. With a cache configured, the
// outcome keyed by the visit's deterministic seed is served from disk when
// present; otherwise the crawl runs and its outcome — success or failure —
// is stored for the next overlapping run. Cache write errors are swallowed:
// the cache accelerates, it never fails a survey.
func (e *Engine) visit(v *crawler.Visitor, cache *logstore.Cache, numFeatures int, site *synthweb.Site, cs measure.Case, seed int64) logstore.VisitOutcome {
	if cache != nil {
		if out, ok := cache.Get(seed, cs); ok {
			return out
		}
	}
	var out logstore.VisitOutcome
	counts, pages, err := v.CrawlOnce(site, seed)
	if err != nil {
		out.Failed = true
	} else {
		out.Features = measure.NewBitset(numFeatures)
		for id, n := range counts {
			out.Features.Set(id)
			out.Invocations += n
		}
		out.Pages = pages
	}
	if cache != nil {
		_ = cache.Put(seed, cs, out)
	}
	return out
}

// spillBatch streams a flushed batch to the shard's spill writer: visits,
// then failures, then site-end markers — the same order the aggregate
// applies them, so a site's end marker always follows its last visit.
func spillBatch(w *logstore.Writer, b stats.Batch) error {
	for _, v := range b.Visits {
		if err := w.Append(logstore.Observation{
			Case:        v.Case,
			Round:       v.Round,
			Site:        v.Site,
			Features:    v.Features,
			Invocations: v.Invocations,
			Pages:       v.Pages,
		}); err != nil {
			return err
		}
	}
	for _, site := range b.Fails {
		if err := w.Fail(site); err != nil {
			return err
		}
	}
	for _, site := range b.Ends {
		if err := w.EndSite(site); err != nil {
			return err
		}
	}
	return w.Flush()
}
