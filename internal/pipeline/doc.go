// Package pipeline is the sharded, concurrent execution engine for the
// paper's automated survey (§4.3 of "Browser Feature Usage on the Modern
// Web", Snyder, Ansari, Taylor, Kanich — IMC 2016).
//
// The survey is embarrassingly parallel: every (site, browser
// configuration, round) visit is independent, seeded only by
// crawler.VisitSeed. The engine exploits that in two bounded stages:
//
//	sharder ──► shard queues ──► crawl workers ──► stats.Aggregate
//
// The sharder partitions sites round-robin into Shards bounded queues.
// Each shard runs WorkersPerShard browser workers; a worker owns one
// instrumented browser per configuration (reusing its script cache across
// sites) and folds completed visits into the lock-striped mergeable
// aggregate of internal/stats in batches of BatchSize — one stripe-lock
// acquisition per stripe per batch. Because a site is crawled end to end
// by one worker, the site's visits, failures, and end-of-site fold are
// naturally ordered; different sites synchronize only on stripe locks.
// All queues are bounded, giving natural back-pressure, and a
// context.Context cancels the whole pipeline gracefully.
//
// The engine has two memory modes. The default keeps the full per-visit
// grid, so Result.Log is the complete measure.Log — and the aggregate's
// incrementally maintained statistics make analysis start warm, with no
// log rescan. SpillOnly drops the grid entirely: each shard folds its
// visits into a local stats.Aggregate (plus a streaming spill file when
// SpillDir is set), the shard aggregates merge after the run, and memory
// stays bounded regardless of site count; stats.FromSpills rebuilds the
// identical aggregate from the spill files alone.
//
// Determinism is the engine's contract: because visit randomness depends
// only on (seed, site, case, round) and every aggregate cell is written by
// at most one visit — all cross-visit state being commutative bit-set
// unions and integer sums — the final measure.Log is byte-identical to the
// sequential crawler.Run loop for the same seed, at every shard/worker
// geometry, and a spill-only run renders byte-identical reports.
// TestPipelineMatchesSequential and TestSpillOnlyMatchesInMemory enforce
// this.
//
// Two Config fields exist for the distributed protocol (internal/dist):
// Sites restricts a run to a subset of site indices (a worker's lease) while
// keeping the aggregate sized for the full site list, so disjoint subset
// aggregates merge into exactly the full-run aggregate; Spill points every
// shard at one externally owned spill writer — a worker's network stream —
// instead of per-shard files.
package pipeline
