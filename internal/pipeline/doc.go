// Package pipeline is the sharded, concurrent execution engine for the
// paper's automated survey (§4.3 of "Browser Feature Usage on the Modern
// Web", Snyder, Ansari, Taylor, Kanich — IMC 2016).
//
// The survey is embarrassingly parallel: every (site, browser
// configuration, round) visit is independent, seeded only by
// crawler.VisitSeed. The engine exploits that in three bounded stages:
//
//	sharder ──► shard queues ──► crawl workers ──► batch channel ──► mergers ──► Aggregate
//
// Stage 1, the sharder, partitions sites round-robin into Shards bounded
// queues. Stage 2 runs WorkersPerShard browser workers per shard; each
// worker owns one instrumented browser per configuration (reusing its
// script cache across sites) and emits completed visits in batches of
// BatchSize. Stage 3 merges batches into a lock-striped Aggregate whose
// stripes partition sites, so mergers for different site ranges never
// contend. All queues are bounded, giving natural back-pressure, and a
// context.Context cancels the whole pipeline gracefully.
//
// Determinism is the engine's contract: because visit randomness depends
// only on (seed, site, case, round) and every aggregate cell is written by
// at most one visit — all cross-visit state being commutative bit-set
// unions and integer sums — the final measure.Log is byte-identical to the
// sequential crawler.Run loop for the same seed, at every shard/worker
// geometry. TestPipelineMatchesSequential enforces this.
package pipeline
