package pipeline

import (
	"bytes"
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/crawler"
	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
)

// Shared small study: 90 sites, full methodology, fixed seed. The sequential
// baseline is computed once and every pipeline variant is compared to it.
var (
	setupOnce sync.Once
	setupErr  error

	testWeb   *synthweb.Web
	testBind  *webapi.Bindings
	baseLog   *measure.Log
	baseStats *crawler.Stats
)

const (
	testSites = 90
	testSeed  = 11
)

func setup(t testing.TB) {
	t.Helper()
	setupOnce.Do(func() {
		reg, err := webidl.Generate(1)
		if err != nil {
			setupErr = err
			return
		}
		testWeb, err = synthweb.Generate(reg, synthweb.Config{Sites: testSites, Seed: 7})
		if err != nil {
			setupErr = err
			return
		}
		testBind = webapi.NewBindings(reg)
		seq := crawler.New(testWeb, testBind, sequentialConfig())
		baseLog, baseStats, err = seq.Run()
		if err != nil {
			setupErr = err
			return
		}
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
}

// sequentialConfig is the paper methodology with one worker: the reference
// execution order.
func sequentialConfig() crawler.Config {
	cfg := crawler.DefaultConfig(testSeed)
	cfg.Parallelism = 1
	return cfg
}

func csvBytes(t testing.TB, l *measure.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := (logstore.CSV{}).Encode(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPipelineMatchesSequential is the determinism guarantee: the sharded
// engine's aggregate, serialized, is byte-identical to the sequential
// crawler's log for the same seed, across several shard/worker geometries.
func TestPipelineMatchesSequential(t *testing.T) {
	setup(t)
	want := csvBytes(t, baseLog)

	geometries := []struct {
		name    string
		shards  int
		workers int
		batch   int
		stripes int
	}{
		{"1shard-1worker", 1, 1, 1, 1},
		{"1shard-4workers", 1, 4, 4, 8},
		{"4shards-2workers", 4, 2, 16, 16},
		{"8shards-1worker", 8, 1, 3, 4},
	}
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			eng := New(testWeb, testBind, Config{
				Shards:          g.shards,
				WorkersPerShard: g.workers,
				BatchSize:       g.batch,
				Stripes:         g.stripes,
				Crawl:           sequentialConfig(),
			})
			res, err := eng.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := csvBytes(t, res.Log); !bytes.Equal(got, want) {
				t.Errorf("pipeline log differs from sequential baseline (%d vs %d bytes)", len(got), len(want))
			}
			if *res.Stats != *baseStats {
				t.Errorf("pipeline stats = %+v, want %+v", *res.Stats, *baseStats)
			}
		})
	}
}

// TestFastPathMatchesSlowPath pins the browser's revisit fast path (DOM
// template cloning, page/runtime pooling, precompiled selectors) to the
// from-scratch load path: the same survey run with reuse disabled must
// produce the byte-identical log and stats. The spill-only and sharded
// determinism tests compare against the same baseline, so transitively every
// engine mode is pinned to the slow path too.
func TestFastPathMatchesSlowPath(t *testing.T) {
	setup(t)
	cfg := sequentialConfig()
	cfg.DisableBrowserReuse = true
	slowLog, slowStats, err := crawler.New(testWeb, testBind, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := csvBytes(t, slowLog), csvBytes(t, baseLog); !bytes.Equal(got, want) {
		t.Errorf("slow-path log differs from fast-path baseline (%d vs %d bytes)", len(got), len(want))
	}
	if *slowStats != *baseStats {
		t.Errorf("slow-path stats = %+v, want %+v", *slowStats, *baseStats)
	}
}

// TestExecutionAblationsMatchBaseline pins the two execution-engine
// rewrites — compiled WebScript dispatch and the tokenized ABP matcher
// index — to the interpreted/linear reference: disabling either (or both)
// must reproduce the byte-identical log and stats, sequentially and under a
// sharded geometry. Together with TestFastPathMatchesSlowPath this keeps
// every perf path a pure rearrangement of the same computation.
func TestExecutionAblationsMatchBaseline(t *testing.T) {
	setup(t)
	want := csvBytes(t, baseLog)
	modes := []struct {
		name               string
		noCompile, noIndex bool
	}{
		{"no-script-compile", true, false},
		{"no-matcher-index", false, true},
		{"both-disabled", true, true},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			cfg := sequentialConfig()
			cfg.DisableScriptCompile = m.noCompile
			cfg.DisableMatcherIndex = m.noIndex
			log, stats, err := crawler.New(testWeb, testBind, cfg).Run()
			if err != nil {
				t.Fatal(err)
			}
			if got := csvBytes(t, log); !bytes.Equal(got, want) {
				t.Errorf("ablated log differs from baseline (%d vs %d bytes)", len(got), len(want))
			}
			if *stats != *baseStats {
				t.Errorf("ablated stats = %+v, want %+v", *stats, *baseStats)
			}
		})
	}
	t.Run("both-disabled-sharded", func(t *testing.T) {
		cfg := sequentialConfig()
		cfg.DisableScriptCompile = true
		cfg.DisableMatcherIndex = true
		eng := New(testWeb, testBind, Config{
			Shards:          4,
			WorkersPerShard: 2,
			BatchSize:       8,
			Stripes:         8,
			Crawl:           cfg,
		})
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := csvBytes(t, res.Log); !bytes.Equal(got, want) {
			t.Errorf("sharded ablated log differs from baseline (%d vs %d bytes)", len(got), len(want))
		}
		if *res.Stats != *baseStats {
			t.Errorf("sharded ablated stats = %+v, want %+v", *res.Stats, *baseStats)
		}
	})
}

// TestPipelineConcurrent exercises the multi-shard engine under the race
// detector: many shards, many workers, tiny batches, few stripes — the
// maximum-contention geometry.
func TestPipelineConcurrent(t *testing.T) {
	setup(t)
	cfg := Config{
		Shards:          4,
		WorkersPerShard: 3,
		BatchSize:       1,
		Stripes:         2,
		Crawl:           sequentialConfig(),
	}
	eng := New(testWeb, testBind, cfg)
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DomainsMeasured != baseStats.DomainsMeasured {
		t.Errorf("measured = %d, want %d", res.Stats.DomainsMeasured, baseStats.DomainsMeasured)
	}
	if !bytes.Equal(csvBytes(t, res.Log), csvBytes(t, baseLog)) {
		t.Error("concurrent pipeline log differs from sequential baseline")
	}
}

// TestPipelineCancellation cancels mid-run and requires a prompt, clean
// ctx.Err() return with no goroutine leak (the -race build would flag
// post-return sends).
func TestPipelineCancellation(t *testing.T) {
	setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	eng := New(testWeb, testBind, Config{
		Shards:          2,
		WorkersPerShard: 2,
		Crawl:           sequentialConfig(),
	})
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestPipelineSpill runs the engine with a spill directory and requires the
// reassembled spill files to be byte-identical to both the engine's own log
// and the sequential baseline: the spilled partial aggregates carry the
// entire survey.
func TestPipelineSpill(t *testing.T) {
	setup(t)
	dir := t.TempDir()
	eng := New(testWeb, testBind, Config{
		Shards:          3,
		WorkersPerShard: 2,
		SpillDir:        dir,
		Crawl:           sequentialConfig(),
	})
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*.spill"))
	if err != nil || len(paths) != 3 {
		t.Fatalf("expected 3 spill files, got %v (%v)", paths, err)
	}
	merged, err := logstore.ReadSpillFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvBytes(t, merged), csvBytes(t, res.Log)) {
		t.Error("merged spill differs from the engine's log")
	}
	if !bytes.Equal(csvBytes(t, merged), csvBytes(t, baseLog)) {
		t.Error("merged spill differs from the sequential baseline")
	}
}

// TestPipelineCache is the caching guarantee: a second run over the same
// config is served from the cache (hit counters prove no visit re-ran) and
// produces a byte-identical log; a run over a superset config reuses the
// overlapping visits and crawls only the new ones.
func TestPipelineCache(t *testing.T) {
	setup(t)
	numFeatures := len(testWeb.Registry.Features)
	dir := t.TempDir()

	runWith := func(cache *logstore.Cache, cfg crawler.Config) *Result {
		t.Helper()
		eng := New(testWeb, testBind, Config{
			Shards:          2,
			WorkersPerShard: 2,
			Cache:           cache,
			Crawl:           cfg,
		})
		res, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cache, err := logstore.OpenCache(dir, numFeatures, "pipeline-test")
	if err != nil {
		t.Fatal(err)
	}
	cold := runWith(cache, sequentialConfig())
	coldStats := cache.Stats()
	if coldStats.Hits != 0 || coldStats.Puts == 0 {
		t.Fatalf("cold run should only populate: %+v", coldStats)
	}
	if !bytes.Equal(csvBytes(t, cold.Log), csvBytes(t, baseLog)) {
		t.Error("cold cached run differs from the sequential baseline")
	}

	warm := runWith(cache, sequentialConfig())
	warmStats := cache.Stats()
	if hits := warmStats.Hits - coldStats.Hits; hits != coldStats.Puts {
		t.Errorf("warm run hit %d of %d cached visits", hits, coldStats.Puts)
	}
	if warmStats.Misses != coldStats.Misses {
		t.Errorf("warm run missed %d times", warmStats.Misses-coldStats.Misses)
	}
	if !bytes.Equal(csvBytes(t, warm.Log), csvBytes(t, baseLog)) {
		t.Error("warm cached run not byte-identical to the uncached log")
	}

	// Overlapping (superset) config: one extra round. Every visit of the
	// original rounds must come from the cache.
	wider := sequentialConfig()
	wider.Rounds++
	res := runWith(cache, wider)
	widerStats := cache.Stats()
	if hits := widerStats.Hits - warmStats.Hits; hits != coldStats.Puts {
		t.Errorf("superset run re-crawled cached visits: %d hits, want %d", hits, coldStats.Puts)
	}
	if got := len(res.Log.Cases[measure.CaseDefault].Rounds); got != wider.Rounds {
		t.Errorf("superset run produced %d rounds, want %d", got, wider.Rounds)
	}
}

// TestPipelineRejectsInvalidConfig mirrors the crawler's validation.
func TestPipelineRejectsInvalidConfig(t *testing.T) {
	setup(t)
	eng := New(testWeb, testBind, Config{})
	if _, err := eng.Run(context.Background()); err == nil {
		t.Fatal("Run accepted a zero crawl config")
	}
}
