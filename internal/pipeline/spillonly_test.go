package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/crawler"
	"repro/internal/cve"
	"repro/internal/firefoxhist"
	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/stats"
)

// renderHeadlines renders every aggregate-statistics artifact the engines
// must agree on, byte for byte: Table 1, the feature popularity and
// blocked-vs-unblocked headline tables, and the standard-level figures and
// tables. (Figure 5 and Figure 9 are per-site artifacts; they need the full
// log and are exercised by the cold path only.)
func renderHeadlines(a *analysis.Analysis, st *crawler.Stats, db *cve.Database, hist *firefoxhist.History) string {
	var buf bytes.Buffer
	report.Table1(&buf, st)
	for i, row := range a.TopFeatures(measure.CaseDefault, 15) {
		fmt.Fprintf(&buf, "%-8d %-44s %8d %8.1f%%\n", i+1, row.Name, row.Sites, 100*row.Fraction)
	}
	for _, row := range a.FeatureDeltas(measure.CaseDefault, measure.CaseBlocking, 15) {
		fmt.Fprintf(&buf, "%-44s %8d %8d %6d %7.1f%%\n", row.Name, row.BaseSites, row.BlockedSites, row.Drop, 100*row.DropRate)
	}
	report.Headlines(&buf, a, db)
	report.Figure3(&buf, a)
	report.Figure4(&buf, a)
	report.Figure6(&buf, a.AgeSeries(hist))
	report.Figure7(&buf, a.AdVsTrackerRates())
	report.Table2(&buf, a.Table2(db))
	report.Table3(&buf, a.NewStandardsPerRound())
	report.Figure8(&buf, a.Complexity())
	return buf.String()
}

// TestSpillOnlyMatchesInMemory is the spill-only acceptance test: at every
// tested geometry, a spill-only run must render reports byte-identical to
// the in-memory pipeline's (cold analysis of the baseline log), whether the
// warm analysis is built from the live merged shard aggregates or from the
// spill files via stats.FromSpills — and the spill files must still
// reassemble into the byte-identical full log.
func TestSpillOnlyMatchesInMemory(t *testing.T) {
	setup(t)
	db := cve.Generate(1)
	hist := firefoxhist.New(testWeb.Registry)
	cold := renderHeadlines(
		analysis.New(baseLog, testWeb.Registry),
		baseStats, db, hist,
	)

	geometries := []struct {
		name    string
		shards  int
		workers int
		batch   int
	}{
		{"1shard-1worker", 1, 1, 1},
		{"2shards-2workers", 2, 2, 4},
		{"4shards-2workers", 4, 2, 16},
	}
	for _, g := range geometries {
		t.Run(g.name, func(t *testing.T) {
			dir := t.TempDir()
			eng := New(testWeb, testBind, Config{
				Shards:          g.shards,
				WorkersPerShard: g.workers,
				BatchSize:       g.batch,
				SpillDir:        dir,
				SpillOnly:       true,
				Crawl:           sequentialConfig(),
			})
			res, err := eng.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.Log != nil {
				t.Fatal("spill-only run returned an in-memory log")
			}
			if *res.Stats != *baseStats {
				t.Errorf("spill-only stats = %+v, want %+v", *res.Stats, *baseStats)
			}

			warm := renderHeadlines(analysis.FromStats(res.Agg, testWeb.Registry), res.Stats, db, hist)
			if warm != cold {
				t.Error("live spill-only aggregate renders different reports than the in-memory pipeline")
			}

			paths, err := filepath.Glob(filepath.Join(dir, "shard-*.spill"))
			if err != nil || len(paths) != g.shards {
				t.Fatalf("expected %d spill files, got %v (%v)", g.shards, paths, err)
			}
			merged, err := stats.FromSpills(stats.StandardsOf(testWeb.Registry), sequentialConfig().Cases, paths...)
			if err != nil {
				t.Fatal(err)
			}
			spillStats := SurveyStats(merged, sequentialConfig().PageSeconds)
			if *spillStats != *baseStats {
				t.Errorf("spill-merged stats = %+v, want %+v", *spillStats, *baseStats)
			}
			replayed := renderHeadlines(analysis.FromStats(merged, testWeb.Registry), spillStats, db, hist)
			if replayed != cold {
				t.Error("spill-merged aggregate renders different reports than the in-memory pipeline")
			}

			// The spill files still carry the complete log.
			logFromSpills, err := logstore.ReadSpillFiles(paths...)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(csvBytes(t, logFromSpills), csvBytes(t, baseLog)) {
				t.Error("reassembled spill log differs from the sequential baseline")
			}
		})
	}
}

// TestSpillOnlyConcurrent exercises spill-only mode under the race
// detector: many shards and workers, tiny batches, few stripes, plus the
// post-run shard-aggregate merge.
func TestSpillOnlyConcurrent(t *testing.T) {
	setup(t)
	eng := New(testWeb, testBind, Config{
		Shards:          4,
		WorkersPerShard: 3,
		BatchSize:       1,
		Stripes:         2,
		SpillOnly:       true,
		Crawl:           sequentialConfig(),
	})
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if *res.Stats != *baseStats {
		t.Errorf("concurrent spill-only stats = %+v, want %+v", *res.Stats, *baseStats)
	}
	cold := analysis.New(baseLog, testWeb.Registry)
	warm := analysis.FromStats(res.Agg, testWeb.Registry)
	if !reflect.DeepEqual(warm.FeatureSites(measure.CaseDefault), cold.FeatureSites(measure.CaseDefault)) {
		t.Error("concurrent spill-only feature-site counts diverge from the baseline")
	}
}

// TestWarmAnalysisMatchesCold is the warm-start acceptance test: an
// analysis built purely from the pipeline's stats aggregate must return
// identical results to a cold analysis scanning the baseline log, across
// every aggregate method — and an analysis holding both sources must agree
// on the per-site methods too.
func TestWarmAnalysisMatchesCold(t *testing.T) {
	setup(t)
	eng := New(testWeb, testBind, Config{
		Shards:          2,
		WorkersPerShard: 2,
		Crawl:           sequentialConfig(),
	})
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Log == nil || res.Agg == nil {
		t.Fatal("keep-log run should return both a log and an aggregate")
	}

	reg := testWeb.Registry
	cold := analysis.New(baseLog, reg)
	warm := analysis.FromStats(res.Agg, reg)
	db := cve.Generate(1)
	hist := firefoxhist.New(reg)

	for _, cs := range measure.AllCases() {
		if !reflect.DeepEqual(warm.FeatureSites(cs), cold.FeatureSites(cs)) {
			t.Errorf("FeatureSites(%s) diverges warm vs cold", cs)
		}
		if !reflect.DeepEqual(warm.StandardSites(cs), cold.StandardSites(cs)) {
			t.Errorf("StandardSites(%s) diverges warm vs cold", cs)
		}
		if warm.Bands(cs) != cold.Bands(cs) {
			t.Errorf("Bands(%s) diverges warm vs cold", cs)
		}
		if !reflect.DeepEqual(warm.BlockRates(cs), cold.BlockRates(cs)) {
			t.Errorf("BlockRates(%s) diverges warm vs cold", cs)
		}
		if warm.UsedStandards(cs) != cold.UsedStandards(cs) {
			t.Errorf("UsedStandards(%s) diverges warm vs cold", cs)
		}
	}
	// BlockRates against a case the survey never ran: everything blocked,
	// both paths.
	if !reflect.DeepEqual(warm.BlockRates("never-ran"), cold.BlockRates("never-ran")) {
		t.Error("BlockRates(untracked) diverges warm vs cold")
	}

	coldComplexity := append([]int(nil), cold.Complexity()...)
	sort.Ints(coldComplexity)
	if !reflect.DeepEqual(warm.Complexity(), coldComplexity) {
		t.Error("Complexity multiset diverges warm vs cold")
	}
	if !reflect.DeepEqual(warm.StandardPopularityCDF(), cold.StandardPopularityCDF()) {
		t.Error("StandardPopularityCDF diverges warm vs cold")
	}
	if !reflect.DeepEqual(warm.NewStandardsPerRound(), cold.NewStandardsPerRound()) {
		t.Error("NewStandardsPerRound diverges warm vs cold")
	}
	if !reflect.DeepEqual(warm.Table2(db), cold.Table2(db)) {
		t.Error("Table2 diverges warm vs cold")
	}
	if !reflect.DeepEqual(warm.AgeSeries(hist), cold.AgeSeries(hist)) {
		t.Error("AgeSeries diverges warm vs cold")
	}
	if !reflect.DeepEqual(warm.AdVsTrackerRates(), cold.AdVsTrackerRates()) {
		t.Error("AdVsTrackerRates diverges warm vs cold")
	}
	if !reflect.DeepEqual(warm.TopFeatures(measure.CaseDefault, 0), cold.TopFeatures(measure.CaseDefault, 0)) {
		t.Error("TopFeatures diverges warm vs cold")
	}
	if !reflect.DeepEqual(
		warm.FeatureDeltas(measure.CaseDefault, measure.CaseBlocking, 0),
		cold.FeatureDeltas(measure.CaseDefault, measure.CaseBlocking, 0),
	) {
		t.Error("FeatureDeltas diverges warm vs cold")
	}

	// Per-site methods degrade to nil without a log...
	if warm.SiteStandards(measure.CaseDefault) != nil {
		t.Error("warm-only SiteStandards should be nil")
	}
	if warm.VisitWeightedPopularity(testWeb.Ranking) != nil {
		t.Error("warm-only VisitWeightedPopularity should be nil")
	}
	// ...and an analysis holding both sources matches cold on them.
	both := analysis.NewWarm(res.Log, res.Agg, reg)
	if !reflect.DeepEqual(both.VisitWeightedPopularity(testWeb.Ranking), cold.VisitWeightedPopularity(testWeb.Ranking)) {
		t.Error("VisitWeightedPopularity diverges warm-with-log vs cold")
	}
	if !reflect.DeepEqual(both.Complexity(), cold.Complexity()) {
		t.Error("Complexity diverges warm-with-log vs cold (site order should match)")
	}
}
