package pipeline

import (
	"sync"

	"repro/internal/crawler"
	"repro/internal/measure"
)

// observation is one completed visit: the feature set, invocation total,
// and page count of a single (site, case, round) crawl. Workers batch
// observations before handing them to the merge stage; the same shape
// streams to spill files and round-trips through the visit cache.
type observation struct {
	caseIdx     int
	round       int
	site        int
	features    measure.Bitset
	invocations int64
	pages       int
}

// failure marks a site unmeasurable; it rides the same merge channel as
// observations so the aggregate never needs a second synchronization path.
type failure struct {
	site int
}

// batch is the unit of work flowing from crawl workers to the merge stage.
type batch struct {
	obs   []observation
	fails []failure
}

// stripe is one lock-striped partition of the aggregate. Sites are assigned
// to stripes by index, so concurrent merges for different site ranges never
// contend. The padding keeps neighboring stripe locks off one cache line.
type stripe struct {
	mu sync.Mutex
	// invocations and pages are per-case partial sums for the stripe's
	// sites; maxRound is the per-case highest round the stripe saw (-1
	// when none). All are combined only once, when the log is built.
	invocations []int64
	pages       []int64
	maxRound    []int
	_           [64]byte
}

// Aggregate is the lock-striped, concurrently mergeable form of
// measure.Log. Crawl workers merge observation batches into it from many
// goroutines; Log() then freezes it into the exact structure the sequential
// crawler would have produced, because every cell (case, round, site) is
// written by at most one visit and all cross-visit state is commutative
// (bit-set unions and integer sums).
type Aggregate struct {
	numFeatures int
	domains     []string
	cases       []measure.Case
	rounds      int

	stripes []stripe

	// features[caseIdx][round][site] is the visit's feature set; nil for
	// unvisited or failed cells. Guarded by the site's stripe lock.
	features [][][]measure.Bitset
	// recorded[site] and failed[site] reproduce the sequential crawler's
	// Measured bookkeeping: measured = recorded && !failed.
	recorded []bool
	failed   []bool
}

// newAggregate sizes an aggregate for the study: the feature corpus, the
// site list, the configured cases and the maximum round count.
func newAggregate(numFeatures int, domains []string, cases []measure.Case, rounds, stripes int) *Aggregate {
	if stripes < 1 {
		stripes = 1
	}
	a := &Aggregate{
		numFeatures: numFeatures,
		domains:     domains,
		cases:       cases,
		rounds:      rounds,
		stripes:     make([]stripe, stripes),
		features:    make([][][]measure.Bitset, len(cases)),
		recorded:    make([]bool, len(domains)),
		failed:      make([]bool, len(domains)),
	}
	for ci := range a.features {
		a.features[ci] = make([][]measure.Bitset, rounds)
		for r := range a.features[ci] {
			a.features[ci][r] = make([]measure.Bitset, len(domains))
		}
	}
	for si := range a.stripes {
		a.stripes[si].invocations = make([]int64, len(cases))
		a.stripes[si].pages = make([]int64, len(cases))
		a.stripes[si].maxRound = make([]int, len(cases))
		for ci := range cases {
			a.stripes[si].maxRound[ci] = -1
		}
	}
	return a
}

// stripeOf maps a site index to its stripe.
func (a *Aggregate) stripeOf(site int) int { return site % len(a.stripes) }

// merge applies one batch. Observations are grouped by stripe first so each
// stripe lock is taken at most once per batch regardless of batch size.
func (a *Aggregate) merge(b batch) {
	groups := make(map[int][]int, len(a.stripes))
	for i, obs := range b.obs {
		s := a.stripeOf(obs.site)
		groups[s] = append(groups[s], i)
	}
	for s, idxs := range groups {
		st := &a.stripes[s]
		st.mu.Lock()
		for _, i := range idxs {
			a.applyLocked(st, b.obs[i])
		}
		st.mu.Unlock()
	}
	for _, f := range b.fails {
		st := &a.stripes[a.stripeOf(f.site)]
		st.mu.Lock()
		a.failed[f.site] = true
		st.mu.Unlock()
	}
}

// applyLocked records one observation under its stripe lock. The feature
// bitset was built outside the lock (by the worker or the visit cache), so
// the critical section is just pointer and counter writes.
func (a *Aggregate) applyLocked(st *stripe, obs observation) {
	st.invocations[obs.caseIdx] += obs.invocations
	a.features[obs.caseIdx][obs.round][obs.site] = obs.features
	if obs.round > st.maxRound[obs.caseIdx] {
		st.maxRound[obs.caseIdx] = obs.round
	}
	st.pages[obs.caseIdx] += int64(obs.pages)
	a.recorded[obs.site] = true
}

// Log freezes the aggregate into a measure.Log identical to the one the
// sequential crawler produces for the same seed: per-case round counts grow
// only as far as data was recorded, and a site is Measured exactly when it
// produced at least one observation and never failed a visit.
//
// Log must only be called after all merges have completed.
func (a *Aggregate) Log() *measure.Log {
	l := measure.NewLog(a.numFeatures, a.domains)
	for ci, cs := range a.cases {
		maxRound := -1
		for si := range a.stripes {
			if mr := a.stripes[si].maxRound[ci]; mr > maxRound {
				maxRound = mr
			}
		}
		if maxRound < 0 {
			continue
		}
		l.EnsureRound(cs, maxRound)
		cl := l.Cases[cs]
		for r := 0; r <= maxRound; r++ {
			copy(cl.Rounds[r].SiteFeatures, a.features[ci][r])
		}
		for si := range a.stripes {
			cl.Invocations += a.stripes[si].invocations[ci]
			cl.PagesVisited += a.stripes[si].pages[ci]
		}
	}
	for site := range a.domains {
		l.Measured[site] = a.recorded[site] && !a.failed[site]
	}
	return l
}

// Stats summarizes the aggregate in the sequential crawler's Stats shape
// (Table 1 of the paper). pageSeconds is the per-page interaction budget.
func (a *Aggregate) Stats(pageSeconds float64) *crawler.Stats {
	st := &crawler.Stats{}
	var pages, inv int64
	for si := range a.stripes {
		for ci := range a.cases {
			pages += a.stripes[si].pages[ci]
			inv += a.stripes[si].invocations[ci]
		}
	}
	st.PagesVisited = pages
	st.Invocations = inv
	st.InteractionSeconds = float64(pages) * pageSeconds
	for site := range a.domains {
		if a.recorded[site] && !a.failed[site] {
			st.DomainsMeasured++
		}
	}
	st.DomainsFailed = len(a.domains) - st.DomainsMeasured
	return st
}
