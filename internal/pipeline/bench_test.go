package pipeline

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/crawler"
	"repro/internal/measure"
	"repro/internal/standards"
	"repro/internal/stats"
)

// benchCrawlConfig shrinks the methodology (2 rounds, default+blocking) so a
// benchmark iteration stays under a second per worker; the scheduling and
// merging costs under measurement are unchanged.
func benchCrawlConfig() crawler.Config {
	cfg := crawler.DefaultConfig(testSeed)
	cfg.Rounds = 2
	return cfg
}

// BenchmarkSequentialCrawl is the baseline: the crawler's own loop with one
// worker, the execution the paper's single-machine survey models.
//
// Alloc note (90 sites × 4 cases × 2 rounds = 720 visits, linux/amd64):
// interning the per-visit scratch — the feature-count, visited-URL, and
// seen-dirs maps plus the gremlin horde, reused per Visitor instead of
// rebuilt per visit — cut this benchmark from 23,779,309 to 23,765,726
// allocs/op (13.6k fewer, ~19 per visit) and ~3.1 MB/op. The honest
// conclusion at the time: ~99.9% of allocations were page/DOM construction
// inside the browser. The browser's revisit fast path (DOM template cache +
// arena clones, pooled pages/runtimes with preserved instrumentation,
// precompiled selectors) then took that on and cut the benchmark from
// 23,765,722 to 3,526,542 allocs/op (−85%), 1,019.7 MB to 318.6 MB/op
// (−69%), and 3.00 s to 1.27 s/op (2.4×); BenchmarkLoadRepeatVisit in
// internal/browser isolates the per-load delta (2,157 → 11 allocs/op).
// Current numbers are tracked in BENCH_baseline.json at the repo root.
func BenchmarkSequentialCrawl(b *testing.B) {
	setup(b)
	cfg := benchCrawlConfig()
	cfg.Parallelism = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := crawler.New(testWeb, testBind, cfg)
		if _, _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(testSites)*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
}

// BenchmarkPipeline sweeps worker counts at fixed methodology. The
// acceptance target is the 8-worker geometry (2 shards × 4 workers) beating
// BenchmarkSequentialCrawl by ≥2× on multi-core hardware; on a single-core
// host the sweep instead shows the pipeline's overhead staying in the noise.
func BenchmarkPipeline(b *testing.B) {
	setup(b)
	geometries := []struct {
		name      string
		shards    int
		workers   int
		spillOnly bool
	}{
		{"1x1", 1, 1, false},
		{"1x2", 1, 2, false},
		{"2x2", 2, 2, false},
		{"2x4-8workers", 2, 4, false},
		{"2x2-spillonly", 2, 2, true},
	}
	for _, g := range geometries {
		b.Run(g.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := New(testWeb, testBind, Config{
					Shards:          g.shards,
					WorkersPerShard: g.workers,
					SpillOnly:       g.spillOnly,
					Crawl:           benchCrawlConfig(),
				})
				if _, err := eng.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(testSites)*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
		})
	}
}

// benchVisit synthesizes the visit of one (site, case, round) cell: a
// sparse ~4-feature bitset, the dominant shape of real visits.
func benchVisit(numFeatures int, cs measure.Case, round, site int) stats.Visit {
	features := measure.NewBitset(numFeatures)
	for _, id := range []int{1, 40, 200, 512} {
		features.Set((id + site) % numFeatures)
	}
	return stats.Visit{
		Case: cs, Round: round, Site: site,
		Features: features, Invocations: 13, Pages: 13,
	}
}

// feedAggregate streams a full synthetic survey (every cell of every site)
// through an aggregate the way a pipeline worker does: batched visits with
// an end-of-site fold after each site's last case.
func feedAggregate(b *testing.B, agg *stats.Aggregate, numFeatures, sites, rounds int, cases []measure.Case) {
	b.Helper()
	var bt stats.Batch
	for site := 0; site < sites; site++ {
		for _, cs := range cases {
			for round := 0; round < rounds; round++ {
				bt.Visits = append(bt.Visits, benchVisit(numFeatures, cs, round, site))
				if len(bt.Visits) == 16 {
					if err := agg.Apply(bt); err != nil {
						b.Fatal(err)
					}
					bt = stats.Batch{}
				}
			}
		}
		bt.Ends = append(bt.Ends, site)
	}
	if err := agg.Apply(bt); err != nil {
		b.Fatal(err)
	}
}

// benchStandards fabricates a per-feature standard mapping from the real
// catalog, round-robin.
func benchStandards(numFeatures int) []standards.Abbrev {
	catalog := standards.Catalog()
	out := make([]standards.Abbrev, numFeatures)
	for i := range out {
		out[i] = catalog[i%len(catalog)].Abbrev
	}
	return out
}

// BenchmarkAggregateMerge isolates the aggregate feed: pure fold and
// synchronization cost, no browsing, for both the keep-log grid and the
// spill-only bounded mode.
func BenchmarkAggregateMerge(b *testing.B) {
	cases := benchCrawlConfig().Cases
	const numFeatures = 1024
	for _, mode := range []struct {
		name    string
		keepLog bool
	}{{"keeplog", true}, {"spillonly", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := stats.Config{
				NumFeatures: numFeatures,
				NumSites:    testSites,
				Standards:   benchStandards(numFeatures),
				Cases:       cases,
				Rounds:      2,
				Stripes:     16,
				KeepLog:     mode.keepLog,
			}
			if mode.keepLog {
				cfg.Domains = make([]string, testSites)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg, err := stats.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				feedAggregate(b, agg, numFeatures, testSites, 2, cases)
				if mode.keepLog {
					agg.Log()
				} else {
					agg.FeatureSites(measure.CaseDefault)
				}
			}
		})
	}
}

// BenchmarkAggregateMemoryScaling is the spill-only acceptance benchmark:
// live aggregate memory must stay flat as the site count scales, because a
// retired site leaves only counter increments behind. Keep-log aggregates
// are measured alongside for contrast — their grids grow linearly. The
// live-MB metric is the heap growth attributable to the one aggregate held
// at measurement time.
func BenchmarkAggregateMemoryScaling(b *testing.B) {
	cases := []measure.Case{measure.CaseDefault, measure.CaseBlocking}
	const numFeatures = 1024
	stdOf := benchStandards(numFeatures)
	for _, mode := range []struct {
		name    string
		keepLog bool
	}{{"spillonly", false}, {"keeplog", true}} {
		for _, sites := range []int{1_000, 4_000, 16_000} {
			b.Run(mode.name+"/"+itoa(sites), func(b *testing.B) {
				cfg := stats.Config{
					NumFeatures: numFeatures,
					NumSites:    sites,
					Standards:   stdOf,
					Cases:       cases,
					Rounds:      2,
					Stripes:     16,
					KeepLog:     mode.keepLog,
				}
				if mode.keepLog {
					cfg.Domains = make([]string, sites)
				}
				b.ReportAllocs()
				var live float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var before, after runtime.MemStats
					runtime.GC()
					runtime.ReadMemStats(&before)
					agg, err := stats.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					feedAggregate(b, agg, numFeatures, sites, 2, cases)
					runtime.GC()
					runtime.ReadMemStats(&after)
					live += float64(after.HeapAlloc) - float64(before.HeapAlloc)
					runtime.KeepAlive(agg)
				}
				b.ReportMetric(live/float64(b.N)/(1<<20), "live-MB")
			})
		}
	}
}

func itoa(n int) string {
	switch n {
	case 1_000:
		return "1k-sites"
	case 4_000:
		return "4k-sites"
	case 16_000:
		return "16k-sites"
	}
	return "sites"
}
