package pipeline

import (
	"context"
	"testing"

	"repro/internal/crawler"
	"repro/internal/measure"
)

// benchCrawlConfig shrinks the methodology (2 rounds, default+blocking) so a
// benchmark iteration stays under a second per worker; the scheduling and
// merging costs under measurement are unchanged.
func benchCrawlConfig() crawler.Config {
	cfg := crawler.DefaultConfig(testSeed)
	cfg.Rounds = 2
	return cfg
}

// BenchmarkSequentialCrawl is the baseline: the crawler's own loop with one
// worker, the execution the paper's single-machine survey models.
func BenchmarkSequentialCrawl(b *testing.B) {
	setup(b)
	cfg := benchCrawlConfig()
	cfg.Parallelism = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := crawler.New(testWeb, testBind, cfg)
		if _, _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(testSites)*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
}

// BenchmarkPipeline sweeps worker counts at fixed methodology. The
// acceptance target is the 8-worker geometry (2 shards × 4 workers) beating
// BenchmarkSequentialCrawl by ≥2× on multi-core hardware; on a single-core
// host the sweep instead shows the pipeline's overhead staying in the noise.
func BenchmarkPipeline(b *testing.B) {
	setup(b)
	geometries := []struct {
		name    string
		shards  int
		workers int
	}{
		{"1x1", 1, 1},
		{"1x2", 1, 2},
		{"2x2", 2, 2},
		{"2x4-8workers", 2, 4},
	}
	for _, g := range geometries {
		b.Run(g.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := New(testWeb, testBind, Config{
					Shards:          g.shards,
					WorkersPerShard: g.workers,
					Crawl:           benchCrawlConfig(),
				})
				if _, err := eng.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(testSites)*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
		})
	}
}

// BenchmarkAggregateMerge isolates the lock-striped merge stage: pure
// synchronization cost, no browsing.
func BenchmarkAggregateMerge(b *testing.B) {
	setup(b)
	cases := benchCrawlConfig().Cases
	features := measure.NewBitset(1024)
	for _, id := range []int{1, 40, 200, 512} {
		features.Set(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := newAggregate(1024, make([]string, testSites), cases, 2, 16)
		var bt batch
		for site := 0; site < testSites; site++ {
			for ci := range cases {
				for round := 0; round < 2; round++ {
					bt.obs = append(bt.obs, observation{caseIdx: ci, round: round, site: site, features: features.Clone(), invocations: 13, pages: 13})
					if len(bt.obs) == 16 {
						agg.merge(bt)
						bt = batch{}
					}
				}
			}
		}
		agg.merge(bt)
		agg.Log()
	}
}
