package html

import (
	"fmt"
	"strings"

	"repro/internal/dom"
)

// voidElements never have closing tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements swallow their content verbatim until the matching close
// tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// ParseError reports a malformed document.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("html: parse error at offset %d: %s", e.Offset, e.Msg)
}

// Parse parses an HTML document into a dom tree rooted at a DocumentNode.
// The parser is forgiving in the ways real HTML parsers are: unknown close
// tags are dropped, unclosed elements are closed implicitly at EOF, and
// text outside html/body is kept in place.
func Parse(src string) (*dom.Node, error) {
	p := &parser{src: src}
	doc := p.arena.NewDocument()
	p.stack = []*dom.Node{doc}
	for p.pos < len(p.src) {
		if err := p.step(); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

type parser struct {
	src   string
	pos   int
	stack []*dom.Node

	// arena batches this document's node allocations; the parser is the
	// only writer and dies with the parse, so lifetimes match exactly.
	arena dom.Arena
}

func (p *parser) top() *dom.Node { return p.stack[len(p.stack)-1] }

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) step() error {
	if p.src[p.pos] != '<' {
		return p.parseText()
	}
	switch {
	case strings.HasPrefix(p.src[p.pos:], "<!--"):
		return p.parseComment()
	case strings.HasPrefix(p.src[p.pos:], "<!"):
		return p.parseDoctype()
	case strings.HasPrefix(p.src[p.pos:], "</"):
		return p.parseCloseTag()
	default:
		return p.parseOpenTag()
	}
}

func (p *parser) parseText() error {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '<' {
		p.pos++
	}
	text := Unescape(p.src[start:p.pos])
	if strings.TrimSpace(text) != "" {
		p.top().AppendChild(p.arena.NewText(text))
	}
	return nil
}

func (p *parser) parseComment() error {
	end := strings.Index(p.src[p.pos+4:], "-->")
	if end < 0 {
		return p.errorf("unterminated comment")
	}
	p.top().AppendChild(p.arena.NewComment(p.src[p.pos+4 : p.pos+4+end]))
	p.pos += 4 + end + 3
	return nil
}

func (p *parser) parseDoctype() error {
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return p.errorf("unterminated doctype")
	}
	p.pos += end + 1
	return nil
}

func (p *parser) parseCloseTag() error {
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return p.errorf("unterminated close tag")
	}
	name := strings.ToLower(strings.TrimSpace(p.src[p.pos+2 : p.pos+end]))
	p.pos += end + 1
	// Pop to the matching open element; ignore stray close tags.
	for i := len(p.stack) - 1; i >= 1; i-- {
		if p.stack[i].Tag == name {
			p.stack = p.stack[:i]
			return nil
		}
	}
	return nil
}

func (p *parser) parseOpenTag() error {
	start := p.pos
	p.pos++ // '<'
	nameStart := p.pos
	for p.pos < len(p.src) && isTagNameChar(p.src[p.pos]) {
		p.pos++
	}
	name := strings.ToLower(p.src[nameStart:p.pos])
	if name == "" {
		// A bare '<' in text; treat literally.
		p.top().AppendChild(p.arena.NewText("<"))
		p.pos = start + 1
		return nil
	}
	el := p.arena.NewElement(name)

	// Attributes.
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return p.errorf("unterminated tag <%s>", name)
		}
		if p.src[p.pos] == '>' {
			p.pos++
			break
		}
		if strings.HasPrefix(p.src[p.pos:], "/>") {
			p.pos += 2
			p.top().AppendChild(el)
			return nil
		}
		attrStart := p.pos
		for p.pos < len(p.src) && isAttrNameChar(p.src[p.pos]) {
			p.pos++
		}
		attrName := p.src[attrStart:p.pos]
		if attrName == "" {
			return p.errorf("malformed attribute in <%s>", name)
		}
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '=' {
			p.pos++
			p.skipSpace()
			val, err := p.parseAttrValue(name)
			if err != nil {
				return err
			}
			el.SetAttr(attrName, val)
		} else {
			el.SetAttr(attrName, "") // boolean attribute
		}
	}

	p.top().AppendChild(el)
	if voidElements[name] {
		return nil
	}
	if rawTextElements[name] {
		closer := "</" + name
		end := strings.Index(strings.ToLower(p.src[p.pos:]), closer)
		if end < 0 {
			return p.errorf("unterminated <%s> element", name)
		}
		raw := p.src[p.pos : p.pos+end]
		if raw != "" {
			el.AppendChild(p.arena.NewText(raw))
		}
		p.pos += end
		return p.parseCloseTag()
	}
	p.stack = append(p.stack, el)
	return nil
}

func (p *parser) parseAttrValue(tag string) (string, error) {
	if p.pos >= len(p.src) {
		return "", p.errorf("unterminated attribute in <%s>", tag)
	}
	q := p.src[p.pos]
	if q == '"' || q == '\'' {
		p.pos++
		end := strings.IndexByte(p.src[p.pos:], q)
		if end < 0 {
			return "", p.errorf("unterminated attribute value in <%s>", tag)
		}
		val := Unescape(p.src[p.pos : p.pos+end])
		p.pos += end + 1
		return val, nil
	}
	start := p.pos
	for p.pos < len(p.src) && !isSpace(p.src[p.pos]) && p.src[p.pos] != '>' {
		p.pos++
	}
	return Unescape(p.src[start:p.pos]), nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isTagNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isAttrNameChar(c byte) bool {
	return isTagNameChar(c) || c == '-' || c == '_' || c == ':'
}

// escaper handles the character references the synthetic web uses.
var escaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&#39;",
)

var unescaper = strings.NewReplacer(
	"&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`, "&#39;", "'",
)

// Escape escapes text for safe embedding in HTML content or attributes.
func Escape(s string) string {
	if !strings.ContainsAny(s, `&<>"'`) {
		return s // nothing to escape; skip the replacer's output buffer
	}
	return escaper.Replace(s)
}

// Unescape resolves the supported character references.
func Unescape(s string) string {
	if strings.IndexByte(s, '&') < 0 {
		return s // no references; skip the replacer's output buffer
	}
	return unescaper.Replace(s)
}

// Render serializes a dom tree back to HTML. Raw-text element content is
// emitted verbatim; other text is escaped.
func Render(n *dom.Node) string {
	var b strings.Builder
	render(&b, n, false)
	return b.String()
}

func render(b *strings.Builder, n *dom.Node, raw bool) {
	switch n.Type {
	case dom.DocumentNode:
		b.WriteString("<!DOCTYPE html>\n")
		for _, c := range n.Children {
			render(b, c, false)
		}
	case dom.TextNode:
		if raw {
			b.WriteString(n.Text)
		} else {
			b.WriteString(Escape(n.Text))
		}
	case dom.CommentNode:
		b.WriteString("<!--" + n.Text + "-->")
	case dom.ElementNode:
		b.WriteString("<" + n.Tag)
		for _, name := range n.AttrNames() {
			v, _ := n.Attr(name)
			if v == "" {
				b.WriteString(" " + name)
				continue
			}
			fmt.Fprintf(b, ` %s="%s"`, name, Escape(v))
		}
		b.WriteString(">")
		if voidElements[n.Tag] {
			return
		}
		childRaw := rawTextElements[n.Tag]
		for _, c := range n.Children {
			render(b, c, childRaw)
		}
		b.WriteString("</" + n.Tag + ">")
	}
}
