// Package html parses the HTML subset the synthetic web emits into dom
// trees, and serializes dom trees back to HTML. It is the browser
// simulator's analog of the rendering engine's parser: the measuring
// extension's injection point ("the beginning of the <head> element", paper
// §4.2) is defined in terms of the tree this package produces.
//
// Supported syntax: doctype, elements with quoted/unquoted attributes,
// boolean attributes, void elements, raw-text elements (script, style),
// comments, and character references for & < > " '.
package html
