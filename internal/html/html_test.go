package html

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

const samplePage = `<!DOCTYPE html>
<html>
<head>
  <meta charset="utf-8">
  <title>Example &amp; Co</title>
  <script src="/static/app.js"></script>
</head>
<body>
  <!-- header -->
  <div id="main" class="wrap">
    <a href="/products">Products</a>
    <a href='/about'>About</a>
    <button id="cta" disabled>Buy now</button>
    <img src="/logo.png">
    <input type="text" name=q>
  </div>
  <script>
invoke Document.createElement 2;
on click "#cta" { invoke Window.alert 1; }
  </script>
</body>
</html>`

func TestParseSamplePage(t *testing.T) {
	doc, err := Parse(samplePage)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Type != dom.DocumentNode {
		t.Fatal("root is not a document")
	}
	title := doc.ElementsByTag("title")
	if len(title) != 1 || title[0].TextContent() != "Example & Co" {
		t.Fatalf("title = %+v", title)
	}
	if got := len(doc.ElementsByTag("a")); got != 2 {
		t.Errorf("anchors = %d, want 2", got)
	}
	btn := doc.GetElementByID("cta")
	if btn == nil {
		t.Fatal("button missing")
	}
	if _, ok := btn.Attr("disabled"); !ok {
		t.Error("boolean attribute lost")
	}
	img := doc.ElementsByTag("img")
	if len(img) != 1 || img[0].AttrOr("src", "") != "/logo.png" {
		t.Error("void element img mishandled")
	}
	input := doc.ElementsByTag("input")
	if len(input) != 1 || input[0].AttrOr("name", "") != "q" {
		t.Error("unquoted attribute mishandled")
	}
}

func TestScriptExtraction(t *testing.T) {
	doc, err := Parse(samplePage)
	if err != nil {
		t.Fatal(err)
	}
	scripts := doc.Scripts()
	if len(scripts) != 2 {
		t.Fatalf("scripts = %d, want 2", len(scripts))
	}
	if scripts[0].Src != "/static/app.js" {
		t.Errorf("script 0 src = %q", scripts[0].Src)
	}
	if !strings.Contains(scripts[1].Inline, `on click "#cta"`) {
		t.Errorf("inline script content mangled: %q", scripts[1].Inline)
	}
}

func TestRawTextSwallowsMarkup(t *testing.T) {
	doc, err := Parse(`<html><body><script>if (a < b) { x = "<div>"; }</script></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	scripts := doc.Scripts()
	if len(scripts) != 1 {
		t.Fatalf("scripts = %d", len(scripts))
	}
	if !strings.Contains(scripts[1-1].Inline, `x = "<div>"`) {
		t.Errorf("raw text content mangled: %q", scripts[0].Inline)
	}
	if len(doc.ElementsByTag("div")) != 0 {
		t.Error("markup inside script leaked into the tree")
	}
}

func TestCommentsPreserved(t *testing.T) {
	doc, err := Parse(`<html><body><!-- hello --><p>x</p></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.CommentNode && strings.Contains(n.Text, "hello") {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("comment lost")
	}
}

func TestStrayCloseTagIgnored(t *testing.T) {
	doc, err := Parse(`<html><body></span><p>ok</p></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.ElementsByTag("p")) != 1 {
		t.Fatal("tree corrupted by stray close tag")
	}
}

func TestImplicitCloseAtEOF(t *testing.T) {
	doc, err := Parse(`<html><body><div><p>unclosed`)
	if err != nil {
		t.Fatal(err)
	}
	p := doc.ElementsByTag("p")
	if len(p) != 1 || p[0].TextContent() != "unclosed" {
		t.Fatalf("unclosed elements mishandled: %+v", p)
	}
}

func TestSelfClosingSyntax(t *testing.T) {
	doc, err := Parse(`<html><body><custom-thing a="1"/><p>after</p></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	p := doc.ElementsByTag("p")
	if len(p) != 1 || p[0].Parent.Tag != "body" {
		t.Fatal("self-closing element swallowed following content")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"<html><!-- unterminated", "unterminated comment"},
		{"<html><script>never closed", "unterminated <script>"},
		{"<div a=", "unterminated"},
		{`<div a="x`, "unterminated attribute value"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.src, err, c.want)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	check := func(s string) bool {
		return Unescape(Escape(s)) == s
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	doc, err := Parse(samplePage)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(doc)
	doc2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if doc.CountElements() != doc2.CountElements() {
		t.Fatalf("round trip changed element count: %d -> %d", doc.CountElements(), doc2.CountElements())
	}
	if len(doc.Scripts()) != len(doc2.Scripts()) {
		t.Fatal("round trip changed script count")
	}
	if doc.GetElementByID("cta") == nil || doc2.GetElementByID("cta") == nil {
		t.Fatal("round trip lost ids")
	}
}

func TestTextEscaping(t *testing.T) {
	doc := dom.NewDocument()
	p := dom.NewElement("p")
	p.AppendChild(dom.NewText(`a < b & c > "d"`))
	doc.AppendChild(p)
	out := Render(doc)
	if !strings.Contains(out, "a &lt; b &amp; c &gt;") {
		t.Errorf("text not escaped: %s", out)
	}
	doc2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc2.ElementsByTag("p")[0].TextContent(); got != `a < b & c > "d"` {
		t.Errorf("unescape round trip = %q", got)
	}
}

func TestBareLessThanInText(t *testing.T) {
	doc, err := Parse(`<html><body><p>1 < 2 always</p></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	got := doc.ElementsByTag("p")[0].TextContent()
	if !strings.Contains(got, "<") {
		t.Errorf("bare < lost: %q", got)
	}
}
