package html

import "testing"

func BenchmarkParseSamplePage(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(samplePage)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(samplePage); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRender(b *testing.B) {
	doc, err := Parse(samplePage)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(doc)
	}
}
