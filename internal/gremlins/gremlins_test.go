package gremlins

import (
	"math/rand"
	"testing"

	"repro/internal/browser"
	"repro/internal/synthweb"
	"repro/internal/webapi"
	"repro/internal/webidl"
	"repro/internal/webserver"
)

func loadPage(t testing.TB) *browser.Page {
	t.Helper()
	reg, err := webidl.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b := browser.New(webapi.NewBindings(reg), webserver.DirectFetcher{Web: web})
	for _, s := range web.Sites {
		if s.Failure != synthweb.FailNone {
			continue
		}
		page, err := b.Load("http://" + s.Domain + "/")
		if err != nil {
			t.Fatal(err)
		}
		return page
	}
	t.Fatal("no loadable site")
	return nil
}

func TestDefaultHordeShape(t *testing.T) {
	h := Default()
	if h.Seconds != 30 {
		t.Errorf("default budget = %v, want 30 (paper §4.3.1)", h.Seconds)
	}
	var total float64
	for _, w := range h.Species {
		total += w.Weight
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("species weights sum to %v", total)
	}
}

func TestUnleashActsAndAdvancesClock(t *testing.T) {
	page := loadPage(t)
	rng := rand.New(rand.NewSource(1))
	stats := Default().Unleash(page, rng)
	if stats.Actions == 0 {
		t.Fatal("horde performed no actions")
	}
	if page.Clock < 29.9 {
		t.Errorf("page clock = %v, want ~30", page.Clock)
	}
	if stats.VirtualSeconds != 30 {
		t.Errorf("virtual seconds = %v", stats.VirtualSeconds)
	}
	if len(stats.PerSpecies) == 0 {
		t.Error("no per-species stats")
	}
}

func TestHordeTriggersNavigations(t *testing.T) {
	page := loadPage(t)
	rng := rand.New(rand.NewSource(2))
	Default().Unleash(page, rng)
	if len(page.NavAttempts) == 0 {
		t.Error("30s of monkey testing produced no navigation attempts")
	}
}

func TestHordeDeterministic(t *testing.T) {
	p1 := loadPage(t)
	p2 := loadPage(t)
	s1 := Default().Unleash(p1, rand.New(rand.NewSource(7)))
	s2 := Default().Unleash(p2, rand.New(rand.NewSource(7)))
	if s1.Actions != s2.Actions {
		t.Fatalf("same seed, different actions: %d vs %d", s1.Actions, s2.Actions)
	}
	if p1.Runtime.TotalNativeCalls() != p2.Runtime.TotalNativeCalls() {
		t.Fatal("same seed, different feature activity")
	}
}

func TestSpeciesMixRoughlyMatchesWeights(t *testing.T) {
	page := loadPage(t)
	h := &Horde{
		Species: []Weighted{
			{Clicker{}, 0.5},
			{Scroller{}, 0.5},
		},
		Seconds:          200,
		ActionsPerSecond: 2,
	}
	stats := h.Unleash(page, rand.New(rand.NewSource(3)))
	clicks := stats.PerSpecies["clicker"]
	scrolls := stats.PerSpecies["scroller"]
	if clicks == 0 || scrolls == 0 {
		t.Fatalf("species starved: clicks=%d scrolls=%d", clicks, scrolls)
	}
	ratio := float64(clicks) / float64(clicks+scrolls)
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("click share %.2f, want ~0.5", ratio)
	}
}

func TestEmptyHordeDoesNothing(t *testing.T) {
	page := loadPage(t)
	h := &Horde{}
	stats := h.Unleash(page, rand.New(rand.NewSource(4)))
	if stats.Actions != 0 {
		t.Fatal("empty horde acted")
	}
}

func TestTyperFindsFields(t *testing.T) {
	page := loadPage(t)
	rng := rand.New(rand.NewSource(5))
	if !(Typer{}).Act(page, rng) {
		t.Fatal("typer found no fields on a generated page (pages carry #q)")
	}
}
