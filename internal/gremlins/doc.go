// Package gremlins implements monkey testing over simulated pages, after
// the gremlins.js library the paper uses (§4.3.1): a horde of species that
// click, scroll, and enter text on random elements for a fixed interaction
// budget (30 virtual seconds per page in the paper's methodology).
package gremlins
