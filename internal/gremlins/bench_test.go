package gremlins

import (
	"math/rand"
	"testing"
)

func BenchmarkUnleash30s(b *testing.B) {
	page := loadPage(b)
	rng := rand.New(rand.NewSource(1))
	h := Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Unleash(page, rng)
	}
}
