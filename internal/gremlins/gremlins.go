package gremlins

import (
	"math/rand"

	"repro/internal/browser"
)

// Species is one kind of gremlin.
type Species interface {
	// Name identifies the species.
	Name() string
	// Act performs one interaction; it reports whether it found
	// something to do.
	Act(p *browser.Page, rng *rand.Rand) bool
}

// Clicker clicks a random visible interactive element.
type Clicker struct{}

// Name implements Species.
func (Clicker) Name() string { return "clicker" }

// Act implements Species.
func (Clicker) Act(p *browser.Page, rng *rand.Rand) bool {
	els := p.Interactive()
	if len(els) == 0 {
		return false
	}
	p.Click(els[rng.Intn(len(els))])
	return true
}

// Scroller scrolls the page.
type Scroller struct{}

// Name implements Species.
func (Scroller) Name() string { return "scroller" }

// Act implements Species.
func (Scroller) Act(p *browser.Page, rng *rand.Rand) bool {
	p.Scroll()
	return true
}

// Typer enters random text into a random form field.
type Typer struct{}

// Name implements Species.
func (Typer) Name() string { return "typer" }

var typerWords = []string{"hello", "test", "gremlin", "query", "42", "zzz"}

// Act implements Species. The candidate list comes from the page's cached
// form-field enumeration instead of a per-action filtered copy.
func (Typer) Act(p *browser.Page, rng *rand.Rand) bool {
	fields := p.FormFields()
	if len(fields) == 0 {
		return false
	}
	p.Input(fields[rng.Intn(len(fields))], typerWords[rng.Intn(len(typerWords))])
	return true
}

// Weighted pairs a species with its selection weight.
type Weighted struct {
	Species Species
	Weight  float64
}

// Stats summarizes one horde run.
type Stats struct {
	// Actions is the total number of gremlin actions performed.
	Actions int
	// PerSpecies counts actions by species name.
	PerSpecies map[string]int
	// VirtualSeconds is the interaction time simulated.
	VirtualSeconds float64
}

// Horde drives a weighted mix of species against a page for a fixed
// virtual-time budget.
type Horde struct {
	// Species is the weighted species mix.
	Species []Weighted
	// Seconds is the interaction budget per page (paper: 30).
	Seconds float64
	// ActionsPerSecond is the gremlin action rate.
	ActionsPerSecond float64
}

// Default returns the paper-shaped horde: clicking dominates, with
// scrolling and text entry mixed in, 30 seconds at 2 actions per second.
func Default() *Horde {
	return &Horde{
		Species: []Weighted{
			{Clicker{}, 0.55},
			{Scroller{}, 0.25},
			{Typer{}, 0.20},
		},
		Seconds:          30,
		ActionsPerSecond: 2,
	}
}

// Unleash runs the horde against a page, advancing the page's virtual
// clock as it goes (so timer handlers fire on schedule).
func (h *Horde) Unleash(p *browser.Page, rng *rand.Rand) Stats {
	stats := Stats{PerSpecies: make(map[string]int)}
	if h.ActionsPerSecond <= 0 || h.Seconds <= 0 || len(h.Species) == 0 {
		return stats
	}
	step := 1.0 / h.ActionsPerSecond
	var totalWeight float64
	for _, w := range h.Species {
		totalWeight += w.Weight
	}
	for t := 0.0; t < h.Seconds; t += step {
		x := rng.Float64() * totalWeight
		var chosen Species
		for _, w := range h.Species {
			if x < w.Weight {
				chosen = w.Species
				break
			}
			x -= w.Weight
		}
		if chosen == nil {
			chosen = h.Species[len(h.Species)-1].Species
		}
		if chosen.Act(p, rng) {
			stats.Actions++
			stats.PerSpecies[chosen.Name()]++
		}
		p.AdvanceClock(step)
	}
	stats.VirtualSeconds = h.Seconds
	return stats
}
