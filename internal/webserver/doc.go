// Package webserver exposes the synthetic web to the browser simulator.
//
// Two fetch paths are provided. DirectFetcher resolves resources in-process
// — the fast path the large-scale survey uses. Server + HTTPFetcher serve
// the same web over a real net/http listener with host-based virtual
// hosting, reproducing the paper's proxy architecture (every browser
// request traverses an HTTP hop); the integration tests and one benchmark
// exercise this path to keep the network stack honest.
package webserver
