package webserver

import (
	"strings"
	"testing"

	"repro/internal/synthweb"
	"repro/internal/webidl"
)

func testWeb(t testing.TB) *synthweb.Web {
	t.Helper()
	reg, err := webidl.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	web, err := synthweb.Generate(reg, synthweb.Config{Sites: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return web
}

func healthySite(t testing.TB, web *synthweb.Web) *synthweb.Site {
	t.Helper()
	for _, s := range web.Sites {
		if s.Failure == synthweb.FailNone {
			return s
		}
	}
	t.Fatal("no healthy site")
	return nil
}

func TestDirectFetcher(t *testing.T) {
	web := testWeb(t)
	site := healthySite(t, web)
	f := DirectFetcher{Web: web}
	res, err := f.Fetch("http://" + site.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentType != "text/html" || !strings.Contains(res.Body, "<html>") {
		t.Fatalf("unexpected resource: %s", res.ContentType)
	}
}

func TestHTTPServerRoundTrip(t *testing.T) {
	web := testWeb(t)
	site := healthySite(t, web)
	srv, err := NewServer(web)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f := NewHTTPFetcher(srv)

	// Page and script must match the direct fetcher byte for byte:
	// the HTTP hop is transparent.
	direct := DirectFetcher{Web: web}
	for _, u := range []string{
		"http://" + site.Domain + "/",
		"http://" + site.Domain + "/static/home.js",
		"http://" + site.Domain + "/sec1",
	} {
		want, err := direct.Fetch(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Fetch(u)
		if err != nil {
			t.Fatalf("HTTP fetch %s: %v", u, err)
		}
		if got.Body != want.Body {
			t.Errorf("HTTP and direct bodies differ for %s", u)
		}
		if got.ContentType != want.ContentType {
			t.Errorf("content types differ for %s: %s vs %s", u, got.ContentType, want.ContentType)
		}
	}
}

func TestHTTPServerVirtualHosting(t *testing.T) {
	web := testWeb(t)
	srv, err := NewServer(web)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f := NewHTTPFetcher(srv)

	// Two different sites must serve different content from the same
	// listener, keyed by Host header.
	var a, b *synthweb.Site
	for _, s := range web.Sites {
		if s.Failure != synthweb.FailNone {
			continue
		}
		if a == nil {
			a = s
		} else {
			b = s
			break
		}
	}
	ra, err := f.Fetch("http://" + a.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := f.Fetch("http://" + b.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Body == rb.Body {
		t.Error("virtual hosting failed: two sites served identical pages")
	}
	if !strings.Contains(ra.Body, a.Domain) {
		t.Error("page does not mention its own domain")
	}
}

func TestHTTPErrors(t *testing.T) {
	web := testWeb(t)
	srv, err := NewServer(web)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f := NewHTTPFetcher(srv)

	site := healthySite(t, web)
	if _, err := f.Fetch("http://" + site.Domain + "/no-such-page"); err == nil {
		t.Error("404 path did not error")
	} else if _, ok := err.(*synthweb.ErrNotFound); !ok {
		t.Errorf("404 mapped to %T, want ErrNotFound", err)
	}

	for _, s := range web.Sites {
		if s.Failure != synthweb.FailUnresponsive {
			continue
		}
		_, err := f.Fetch("http://" + s.Domain + "/")
		if _, ok := err.(*synthweb.ErrUnresponsive); !ok {
			t.Errorf("unresponsive mapped to %v, want ErrUnresponsive", err)
		}
		break
	}
}

func TestHTTPThirdPartyScripts(t *testing.T) {
	web := testWeb(t)
	srv, err := NewServer(web)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f := NewHTTPFetcher(srv)

	// Find an ad script URL via a page, then fetch it over HTTP.
	for _, s := range web.Sites {
		if s.Failure != synthweb.FailNone {
			continue
		}
		res, err := f.Fetch("http://" + s.Domain + "/")
		if err != nil {
			t.Fatal(err)
		}
		// Ad pages carry both a script tag (/tags/... path) and a
		// landing-page link; we want the script.
		idx := strings.Index(res.Body, "http://adnet-")
		for idx >= 0 && !strings.Contains(res.Body[idx:min(idx+80, len(res.Body))], "/tags/") {
			next := strings.Index(res.Body[idx+1:], "http://adnet-")
			if next < 0 {
				idx = -1
				break
			}
			idx += 1 + next
		}
		if idx < 0 {
			continue
		}
		end := strings.Index(res.Body[idx:], `"`)
		u := res.Body[idx : idx+end]
		script, err := f.Fetch(u)
		if err != nil {
			t.Fatalf("ad script fetch: %v", err)
		}
		if script.ContentType != "application/javascript" {
			t.Errorf("ad script content type %s", script.ContentType)
		}
		return
	}
	t.Skip("no ad script in sample")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
