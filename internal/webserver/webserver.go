package webserver

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/synthweb"
)

// Fetcher retrieves a resource by absolute URL.
type Fetcher interface {
	Fetch(rawURL string) (synthweb.Resource, error)
}

// DirectFetcher resolves resources straight from the generated web.
type DirectFetcher struct {
	Web *synthweb.Web
}

// Fetch implements Fetcher.
func (d DirectFetcher) Fetch(rawURL string) (synthweb.Resource, error) {
	return d.Web.Resource(rawURL)
}

// Server serves a synthetic web over HTTP with host-based routing: the
// request's Host header selects the virtual site (or third-party service),
// and the path selects the resource.
type Server struct {
	web      *synthweb.Web
	listener net.Listener
	httpSrv  *http.Server
}

// NewServer starts a server on a random loopback port.
func NewServer(web *synthweb.Web) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("webserver: listen: %w", err)
	}
	s := &Server{web: web, listener: ln}
	s.httpSrv = &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		// Serve exits with ErrServerClosed on Close; other errors are
		// surfaced through failed fetches.
		_ = s.httpSrv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the server's listen address ("127.0.0.1:port").
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.httpSrv.Shutdown(ctx)
}

// ServeHTTP implements http.Handler with virtual hosting on the Host
// header.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := r.Host
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	virtual := "http://" + host + r.URL.Path
	res, err := s.web.Resource(virtual)
	if err != nil {
		switch err.(type) {
		case *synthweb.ErrUnresponsive:
			// A real unresponsive host would hang; answering 504
			// keeps the HTTP path testable while still failing
			// the fetch.
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
		case *synthweb.ErrNotFound:
			http.Error(w, err.Error(), http.StatusNotFound)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", res.ContentType)
	_, _ = io.WriteString(w, res.Body)
}

// HTTPFetcher fetches through a Server, directing every virtual host to the
// server's loopback address while preserving the Host header — the same
// trick the paper's measurement proxy plays.
type HTTPFetcher struct {
	// Addr is the server's loopback address.
	Addr string
	// Client is the HTTP client; a zero value uses a dedicated client
	// with sane timeouts.
	Client *http.Client
}

// NewHTTPFetcher builds a fetcher for a server.
func NewHTTPFetcher(s *Server) *HTTPFetcher {
	return &HTTPFetcher{
		Addr: s.Addr(),
		Client: &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 16,
			},
		},
	}
}

// Fetch implements Fetcher over HTTP.
func (f *HTTPFetcher) Fetch(rawURL string) (synthweb.Resource, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return synthweb.Resource{}, fmt.Errorf("webserver: bad url %q: %w", rawURL, err)
	}
	proxied := *u
	proxied.Scheme = "http"
	virtualHost := u.Host
	proxied.Host = f.Addr

	req, err := http.NewRequest(http.MethodGet, proxied.String(), nil)
	if err != nil {
		return synthweb.Resource{}, err
	}
	req.Host = virtualHost

	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return synthweb.Resource{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return synthweb.Resource{}, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		ct := resp.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		return synthweb.Resource{ContentType: ct, Body: string(body)}, nil
	case http.StatusGatewayTimeout:
		return synthweb.Resource{}, &synthweb.ErrUnresponsive{Domain: virtualHost}
	case http.StatusNotFound:
		return synthweb.Resource{}, &synthweb.ErrNotFound{URL: rawURL}
	default:
		return synthweb.Resource{}, fmt.Errorf("webserver: %s returned %s", rawURL, resp.Status)
	}
}
