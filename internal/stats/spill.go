package stats

import (
	"fmt"
	"io"

	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/standards"
)

// FromSpills folds one or more spill files into a fresh spill-only
// Aggregate by streaming records through the same AddVisit/AddFailure/
// EndSite path a live pipeline shard uses — the full log is never
// materialized, so memory stays bounded by in-flight sites (streams
// written by the pipeline carry site-end markers; sites a stream never
// closes are retired at EOF).
//
// stdOf is the per-feature standard mapping (see StandardsOf) and must
// match the spill files' corpus size. cases must cover every case the
// spills record; a superset (measure.AllCases when the run's profile is
// unknown) is always safe — untracked-in-practice cases simply stay empty,
// exactly as in a log the case never reached.
func FromSpills(stdOf []standards.Abbrev, cases []measure.Case, paths ...string) (*Aggregate, error) {
	s, err := logstore.OpenSpillFiles(paths...)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return FromSpillStream(stdOf, cases, s)
}

// FromSpillStream is FromSpills over an already opened stream: the form the
// distributed coordinator uses to fold a completed lease's spill bytes —
// streamed home by a remote worker — into a per-lease aggregate it then
// merges into the survey total. The caller retains ownership of the stream
// (and closes it).
func FromSpillStream(stdOf []standards.Abbrev, cases []measure.Case, s *logstore.SpillStream) (*Aggregate, error) {
	if len(stdOf) != s.NumFeatures() {
		return nil, fmt.Errorf("stats: %d standards mappings for a %d-feature spill", len(stdOf), s.NumFeatures())
	}
	agg, err := New(Config{
		NumFeatures: s.NumFeatures(),
		NumSites:    len(s.Domains()),
		Standards:   stdOf,
		Cases:       cases,
		Stripes:     1,
	})
	if err != nil {
		return nil, err
	}
	if err := Replay(agg, s); err != nil {
		return nil, err
	}
	agg.EndOpenSites()
	return agg, nil
}

// Replay folds a spill stream's records into an existing aggregate
// through the same AddVisit/AddFailure/EndSite path a live crawl uses.
// It is the resume primitive: a restarted run replays the committed
// records of its previous life into the fresh aggregate before
// crawling the remainder, and because every fold is commutative the
// result is byte-identical to a run that never crashed. Unlike
// FromSpillStream it does not retire open sites at EOF — the caller's
// crawl is still going to finish them.
func Replay(agg *Aggregate, s *logstore.SpillStream) error {
	if agg.cfg.NumFeatures != s.NumFeatures() || agg.cfg.NumSites != len(s.Domains()) {
		return fmt.Errorf("stats: replaying a %d-feature × %d-site spill into a %d × %d aggregate",
			s.NumFeatures(), len(s.Domains()), agg.cfg.NumFeatures, agg.cfg.NumSites)
	}
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch rec.Kind {
		case logstore.SpillObservation:
			err = agg.AddVisit(Visit{
				Case:        rec.Obs.Case,
				Round:       rec.Obs.Round,
				Site:        rec.Obs.Site,
				Features:    rec.Obs.Features,
				Invocations: rec.Obs.Invocations,
				Pages:       rec.Obs.Pages,
			})
		case logstore.SpillFailure:
			err = agg.AddFailure(rec.Site)
		case logstore.SpillSiteEnd:
			err = agg.EndSite(rec.Site)
		}
		if err != nil {
			return err
		}
	}
}
