package stats

import (
	"path/filepath"
	"testing"

	"repro/internal/logstore"
	"repro/internal/measure"
)

// benchFeed streams one synthetic survey through an aggregate: every site
// visited for both cases and all rounds, ended after its last visit — the
// exact event sequence a pipeline worker produces.
func benchFeed(b *testing.B, agg *Aggregate) {
	b.Helper()
	features := measure.NewBitset(tNumFeatures)
	for _, id := range []int{3, 40, 77, 200} {
		features.Set(id)
	}
	for site := 0; site < tNumSites; site++ {
		for _, cs := range []measure.Case{measure.CaseDefault, measure.CaseBlocking} {
			for round := 0; round < tRounds; round++ {
				if err := agg.AddVisit(Visit{
					Case: cs, Round: round, Site: site,
					Features: features, Invocations: 13, Pages: 13,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := agg.EndSite(site); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregateAddVisit measures the spill-only feed path: per-visit
// union folding plus the per-site retirement fold.
func BenchmarkAggregateAddVisit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agg, err := New(tConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchFeed(b, agg)
	}
	visits := float64(tNumSites * 2 * tRounds)
	b.ReportMetric(visits*float64(b.N)/b.Elapsed().Seconds(), "visits/s")
}

// BenchmarkFromSpills measures the post-run merger: streaming a spill file
// into a bounded aggregate.
func BenchmarkFromSpills(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.spill")
	w, err := logstore.Create(path, tNumFeatures, make([]string, tNumSites))
	if err != nil {
		b.Fatal(err)
	}
	features := measure.NewBitset(tNumFeatures)
	for _, id := range []int{3, 40, 77, 200} {
		features.Set(id)
	}
	for site := 0; site < tNumSites; site++ {
		for _, cs := range []measure.Case{measure.CaseDefault, measure.CaseBlocking} {
			for round := 0; round < tRounds; round++ {
				if err := w.Append(logstore.Observation{
					Case: cs, Round: round, Site: site,
					Features: features, Invocations: 13, Pages: 13,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := w.EndSite(site); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	stdOf := tStandards()
	cases := tConfig().Cases
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromSpills(stdOf, cases, path); err != nil {
			b.Fatal(err)
		}
	}
}
