package stats

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/standards"
)

const (
	tNumFeatures = 256
	tNumSites    = 40
	tRounds      = 3
)

func tStandards() []standards.Abbrev {
	catalog := standards.Catalog()
	out := make([]standards.Abbrev, tNumFeatures)
	for i := range out {
		out[i] = catalog[i%len(catalog)].Abbrev
	}
	return out
}

func tConfig() Config {
	return Config{
		NumFeatures: tNumFeatures,
		NumSites:    tNumSites,
		Standards:   tStandards(),
		Cases:       []measure.Case{measure.CaseDefault, measure.CaseBlocking},
		Rounds:      tRounds,
		Stripes:     4,
	}
}

// tSurvey synthesizes a deterministic survey: per site, per case, per
// round, a sparse random bitset; some sites fail mid-case, some cases are
// skipped entirely. Events are returned per site, in visit order.
type tSiteEvents struct {
	site   int
	visits []Visit
	fails  []int
}

func tSurvey(seed int64) []tSiteEvents {
	rng := rand.New(rand.NewSource(seed))
	cases := []measure.Case{measure.CaseDefault, measure.CaseBlocking}
	out := make([]tSiteEvents, tNumSites)
	for site := 0; site < tNumSites; site++ {
		ev := tSiteEvents{site: site}
		for _, cs := range cases {
			if rng.Intn(10) == 0 {
				continue // case never reached the site
			}
			for round := 0; round < tRounds; round++ {
				if rng.Intn(25) == 0 {
					ev.fails = append(ev.fails, site)
					break // failed visit skips the case's remaining rounds
				}
				features := measure.NewBitset(tNumFeatures)
				for n := rng.Intn(12); n >= 0; n-- {
					features.Set(rng.Intn(tNumFeatures))
				}
				ev.visits = append(ev.visits, Visit{
					Case:        cs,
					Round:       round,
					Site:        site,
					Features:    features,
					Invocations: int64(rng.Intn(100)),
					Pages:       1 + rng.Intn(13),
				})
			}
		}
		out[site] = ev
	}
	return out
}

func feed(t *testing.T, agg *Aggregate, sites []tSiteEvents) {
	t.Helper()
	for _, ev := range sites {
		for _, v := range ev.visits {
			if err := agg.AddVisit(v); err != nil {
				t.Fatal(err)
			}
		}
		for _, site := range ev.fails {
			if err := agg.AddFailure(site); err != nil {
				t.Fatal(err)
			}
		}
		if err := agg.EndSite(ev.site); err != nil {
			t.Fatal(err)
		}
	}
}

// snapshot captures every query result for equality comparison.
type snapshot struct {
	FeatureSitesDefault  []int
	FeatureSitesBlocking []int
	StdSitesDefault      map[standards.Abbrev]int
	StdSitesBlocking     map[standards.Abbrev]int
	BlockedBlocking      map[standards.Abbrev]int
	BlockedUntracked     map[standards.Abbrev]int
	Complexity           []int
	NSP                  []float64
	Measured             int
	Invocations          int64
	Pages                int64
}

func snap(a *Aggregate) snapshot {
	inv, pages := a.Totals()
	return snapshot{
		FeatureSitesDefault:  a.FeatureSites(measure.CaseDefault),
		FeatureSitesBlocking: a.FeatureSites(measure.CaseBlocking),
		StdSitesDefault:      a.StandardSites(measure.CaseDefault),
		StdSitesBlocking:     a.StandardSites(measure.CaseBlocking),
		BlockedBlocking:      a.BlockedSites(measure.CaseBlocking),
		BlockedUntracked:     a.BlockedSites(measure.CaseGhostery),
		Complexity:           a.Complexity(),
		NSP:                  a.NewStandardsPerRound(),
		Measured:             a.MeasuredCount(),
		Invocations:          inv,
		Pages:                pages,
	}
}

// TestAggregateMatchesColdScan feeds a synthetic survey into an aggregate
// and into a measure.Log, then checks the incrementally maintained numbers
// against the cold scans of the log.
func TestAggregateMatchesColdScan(t *testing.T) {
	sites := tSurvey(42)
	agg, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, agg, sites)

	log := measure.NewLog(tNumFeatures, make([]string, tNumSites))
	failed := make([]bool, tNumSites)
	for _, ev := range sites {
		for _, v := range ev.visits {
			rl := log.EnsureRound(v.Case, v.Round)
			rl.SiteFeatures[v.Site] = v.Features
			log.Cases[v.Case].Invocations += v.Invocations
			log.Cases[v.Case].PagesVisited += int64(v.Pages)
			log.Measured[v.Site] = true
		}
		for _, site := range ev.fails {
			failed[site] = true
		}
	}
	for site, f := range failed {
		if f {
			log.Measured[site] = false
		}
	}

	if got, want := agg.FeatureSites(measure.CaseDefault), log.FeatureSites(measure.CaseDefault); !reflect.DeepEqual(got, want) {
		t.Error("default feature-site counts diverge from the cold scan")
	}
	if got, want := agg.FeatureSites(measure.CaseBlocking), log.FeatureSites(measure.CaseBlocking); !reflect.DeepEqual(got, want) {
		t.Error("blocking feature-site counts diverge from the cold scan")
	}
	if got, want := agg.MeasuredCount(), log.MeasuredCount(); got != want {
		t.Errorf("MeasuredCount = %d, cold scan %d", got, want)
	}
	inv, pages := agg.Totals()
	var wantInv, wantPages int64
	for _, cl := range log.Cases {
		wantInv += cl.Invocations
		wantPages += cl.PagesVisited
	}
	if inv != wantInv || pages != wantPages {
		t.Errorf("Totals = (%d, %d), cold scan (%d, %d)", inv, pages, wantInv, wantPages)
	}

	// Standard-level numbers against a scan over per-site unions.
	stdOf := tStandards()
	siteSet := func(c measure.Case, site int) map[standards.Abbrev]bool {
		u := log.SiteUnion(c, site)
		if u == nil {
			return nil
		}
		set := make(map[standards.Abbrev]bool)
		u.ForEach(tNumFeatures, func(id int) { set[stdOf[id]] = true })
		return set
	}
	wantStd := make(map[standards.Abbrev]int)
	wantBlocked := make(map[standards.Abbrev]int)
	for site := 0; site < tNumSites; site++ {
		def := siteSet(measure.CaseDefault, site)
		blk := siteSet(measure.CaseBlocking, site)
		for std := range def {
			wantStd[std]++
			if blk == nil || !blk[std] {
				wantBlocked[std]++
			}
		}
	}
	if got := agg.StandardSites(measure.CaseDefault); !reflect.DeepEqual(got, wantStd) {
		t.Errorf("StandardSites(default) = %v, want %v", got, wantStd)
	}
	if got := agg.BlockedSites(measure.CaseBlocking); !reflect.DeepEqual(got, wantBlocked) {
		t.Errorf("BlockedSites(blocking) = %v, want %v", got, wantBlocked)
	}
	// An untracked case blocks everything, matching a log it never reached.
	if got := agg.BlockedSites(measure.CaseGhostery); !reflect.DeepEqual(got, wantStd) {
		t.Errorf("BlockedSites(untracked) = %v, want default counts %v", got, wantStd)
	}
}

// TestAggregateMergeEqualsSingle splits the survey's sites across two
// aggregates (the shard layout) and requires the merge to equal one
// aggregate that saw everything.
func TestAggregateMergeEqualsSingle(t *testing.T) {
	sites := tSurvey(7)
	whole, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, whole, sites)

	cfg := tConfig()
	cfg.Stripes = 2 // different stripe count must not matter
	shard0, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var even, odd []tSiteEvents
	for _, ev := range sites {
		if ev.site%2 == 0 {
			even = append(even, ev)
		} else {
			odd = append(odd, ev)
		}
	}
	feed(t, shard0, even)
	feed(t, shard1, odd)
	if err := shard0.Merge(shard1); err != nil {
		t.Fatal(err)
	}
	if got, want := snap(shard0), snap(whole); !reflect.DeepEqual(got, want) {
		t.Errorf("merged shards diverge from the single aggregate:\n got %+v\nwant %+v", got, want)
	}
}

// TestFromSpillsMatchesLive writes the survey through a spill Writer (with
// and without site-end markers) and requires FromSpills to reproduce the
// live aggregate exactly.
func TestFromSpillsMatchesLive(t *testing.T) {
	sites := tSurvey(99)
	live, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, live, sites)
	want := snap(live)

	for _, markers := range []bool{true, false} {
		name := "with-markers"
		if !markers {
			name = "without-markers"
		}
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "test.spill")
			w, err := logstore.Create(path, tNumFeatures, make([]string, tNumSites))
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range sites {
				for _, v := range ev.visits {
					if err := w.Append(logstore.Observation{
						Case: v.Case, Round: v.Round, Site: v.Site,
						Features: v.Features, Invocations: v.Invocations, Pages: v.Pages,
					}); err != nil {
						t.Fatal(err)
					}
				}
				for _, site := range ev.fails {
					if err := w.Fail(site); err != nil {
						t.Fatal(err)
					}
				}
				if markers {
					if err := w.EndSite(ev.site); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			agg, err := FromSpills(tStandards(), tConfig().Cases, path)
			if err != nil {
				t.Fatal(err)
			}
			if got := snap(agg); !reflect.DeepEqual(got, want) {
				t.Errorf("FromSpills diverges from the live aggregate:\n got %+v\nwant %+v", got, want)
			}
			if n := agg.OpenSites(); n != 0 {
				t.Errorf("FromSpills left %d open sites", n)
			}
		})
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a zero config")
	}
	cfg := tConfig()
	cfg.Standards = cfg.Standards[:10]
	if _, err := New(cfg); err == nil {
		t.Error("New accepted a short standards mapping")
	}
	cfg = tConfig()
	cfg.Cases = []measure.Case{measure.CaseDefault, measure.CaseDefault}
	if _, err := New(cfg); err == nil {
		t.Error("New accepted duplicate cases")
	}
	cfg = tConfig()
	cfg.KeepLog = true
	if _, err := New(cfg); err == nil {
		t.Error("New accepted keep-log without domains")
	}

	agg, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	bits := measure.NewBitset(tNumFeatures)
	if err := agg.AddVisit(Visit{Case: "nope", Site: 0, Features: bits}); err == nil {
		t.Error("AddVisit accepted an untracked case")
	}
	if err := agg.AddVisit(Visit{Case: measure.CaseDefault, Site: tNumSites, Features: bits}); err == nil {
		t.Error("AddVisit accepted an out-of-range site")
	}
	if err := agg.AddVisit(Visit{Case: measure.CaseDefault, Site: 0, Round: -1, Features: bits}); err == nil {
		t.Error("AddVisit accepted a negative round")
	}
	if err := agg.AddFailure(-1); err == nil {
		t.Error("AddFailure accepted a negative site")
	}
}

func TestMergeRejectsMismatches(t *testing.T) {
	a, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Open sites must be folded before merging.
	b, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddVisit(Visit{Case: measure.CaseDefault, Site: 3, Features: measure.NewBitset(tNumFeatures)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Error("Merge accepted an aggregate with open sites")
	}
	if err := b.EndSite(3); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Errorf("Merge rejected a closed aggregate: %v", err)
	}

	cfg := tConfig()
	cfg.NumSites++
	c, _ := New(cfg)
	if err := a.Merge(c); err == nil {
		t.Error("Merge accepted a different site count")
	}
	cfg = tConfig()
	cfg.Cases = []measure.Case{measure.CaseDefault}
	d, _ := New(cfg)
	if err := a.Merge(d); err == nil {
		t.Error("Merge accepted a different case set")
	}
	cfg = tConfig()
	cfg.KeepLog = true
	cfg.Domains = make([]string, cfg.NumSites)
	e, _ := New(cfg)
	if err := a.Merge(e); err == nil {
		t.Error("Merge accepted a keep-log aggregate into a spill-only one")
	}

	// Keep-log grids are sized by Rounds; differing round counts must be
	// rejected, not walked off the end of.
	f, _ := New(cfg)
	cfg2 := cfg
	cfg2.Rounds++
	g, _ := New(cfg2)
	if err := f.Merge(g); err == nil {
		t.Error("Merge accepted keep-log aggregates with different round counts")
	}
}

// TestUntrackedCaseQueries pins the warm behavior for cases the aggregate
// never tracked: zero feature counts, empty standard counts.
func TestUntrackedCaseQueries(t *testing.T) {
	agg, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, agg, tSurvey(5))
	fs := agg.FeatureSites(measure.CaseGhostery)
	for id, n := range fs {
		if n != 0 {
			t.Fatalf("untracked case has %d sites for feature %d", n, id)
		}
	}
	if got := agg.StandardSites(measure.CaseGhostery); len(got) != 0 {
		t.Errorf("untracked case has standard counts %v", got)
	}
	if !agg.HasCase(measure.CaseDefault) || agg.HasCase(measure.CaseGhostery) {
		t.Error("HasCase misreports the tracked case set")
	}
}

// TestMergeOverlappingSites pins what Merge does when both aggregates hold
// the same site — the duplicate-lease shape a distributed coordinator
// would feed it by merging a re-issued lease twice. The tallies are
// per-site sums with no site identity attached, so the overlap
// double-counts rather than deduplicating. That is by design (it keeps
// Merge a pure tally addition), and it is exactly why internal/dist commits
// each lease at most once and drops duplicate commits instead of leaning on
// Merge to sort it out.
func TestMergeOverlappingSites(t *testing.T) {
	build := func() *Aggregate {
		a, err := New(tConfig())
		if err != nil {
			t.Fatal(err)
		}
		sf := measure.NewBitset(tNumFeatures)
		sf.Set(0)
		sf.Set(7)
		if err := a.AddVisit(Visit{Case: measure.CaseDefault, Round: 0, Site: 5, Features: sf, Invocations: 10, Pages: 2}); err != nil {
			t.Fatal(err)
		}
		if err := a.EndSite(5); err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := build(), build()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}

	fs := a.FeatureSites(measure.CaseDefault)
	if fs[0] != 2 || fs[7] != 2 {
		t.Errorf("overlapping site counted %d/%d times per feature; duplicate leases double-count (want 2/2)", fs[0], fs[7])
	}
	if got := a.MeasuredCount(); got != 2 {
		t.Errorf("MeasuredCount = %d after overlapping merge; one physical site counts twice (want 2)", got)
	}
	inv, pages := a.Totals()
	if inv != 20 || pages != 4 {
		t.Errorf("Totals = (%d, %d) after overlapping merge; want doubled (20, 4)", inv, pages)
	}
}
