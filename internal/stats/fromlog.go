package stats

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/standards"
)

// FromLog folds a full measurement log into a fresh spill-only Aggregate by
// replaying every recorded visit through the same AddVisit/AddFailure/
// EndSite path a live shard uses, then restoring the log's exact
// invocation/page totals (a log keeps per-case sums, not per-visit ones).
// The resulting aggregate answers every aggregate query identically to a
// cold analysis of the same log — it is how the query server warms up from
// a saved log instead of spill files.
//
// stdOf is the per-feature standard mapping (see StandardsOf) and must
// match the log's corpus size. cases must cover every case the log holds; a
// superset is always safe.
func FromLog(log *measure.Log, stdOf []standards.Abbrev, cases []measure.Case) (*Aggregate, error) {
	if len(stdOf) != log.NumFeatures {
		return nil, fmt.Errorf("stats: %d standards mappings for a %d-feature log", len(stdOf), log.NumFeatures)
	}
	for c := range log.Cases {
		found := false
		for _, want := range cases {
			if c == want {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("stats: log case %q not in the aggregate's case set", c)
		}
	}
	agg, err := New(Config{
		NumFeatures: log.NumFeatures,
		NumSites:    len(log.Domains),
		Standards:   stdOf,
		Cases:       cases,
		Stripes:     1,
	})
	if err != nil {
		return nil, err
	}
	for site := range log.Domains {
		touched := false
		for _, c := range cases {
			cl := log.Cases[c]
			if cl == nil {
				continue
			}
			for round := range cl.Rounds {
				sf := cl.Rounds[round].SiteFeatures[site]
				if sf == nil {
					continue
				}
				touched = true
				err := agg.AddVisit(Visit{
					Case:     c,
					Round:    round,
					Site:     site,
					Features: sf.Clone(),
				})
				if err != nil {
					return nil, err
				}
			}
		}
		if touched && !log.Measured[site] {
			// Observations but not measured: one of the site's visits
			// failed, exactly what AddFailure records.
			if err := agg.AddFailure(site); err != nil {
				return nil, err
			}
		}
		if touched {
			if err := agg.EndSite(site); err != nil {
				return nil, err
			}
		}
	}
	// Replayed visits carried no invocation/page counts (the log only has
	// per-case totals); restore those sums directly.
	st := &agg.stripes[0]
	st.mu.Lock()
	for ci, c := range agg.cfg.Cases {
		if cl := log.Cases[c]; cl != nil {
			st.invocations[ci] = cl.Invocations
			st.pages[ci] = cl.PagesVisited
		}
	}
	st.mu.Unlock()
	return agg, nil
}
