// Package stats is the mergeable statistics layer of the survey: a
// lock-striped, concurrently fed Aggregate that maintains — incrementally,
// as visits complete — every aggregate number internal/analysis otherwise
// derives by scanning a full measure.Log: per-case feature-site counts,
// standard-site counts, blocked-vs-unblocked pair tallies, site-complexity
// tallies, and new-standards-per-round sums.
//
// The Aggregate is what makes two execution modes share one analysis path:
//
//   - Keep-log mode (Config.KeepLog) additionally retains every visit's
//     feature set, so Log() can freeze the exact measure.Log the sequential
//     crawler would have produced. Analysis built from the Aggregate starts
//     warm — no rescan — while per-site queries fall back to the Log.
//
//   - Spill-only mode drops the per-visit grid entirely: memory stays
//     bounded regardless of site count because a site's state lives only in
//     a small open-site accumulator between its first visit and EndSite,
//     and open sites are bounded by worker count, not survey size. The full
//     log, if ever needed, is reassembled from the spill files.
//
// Aggregates merge: Merge folds another aggregate's tallies into this one,
// which is how the pipeline combines per-shard aggregates after a
// spill-only run and how the internal/dist coordinator combines the
// per-lease aggregates remote workers stream home. FromSpills (and
// FromSpillStream, the coordinator's entry point) replays spill streams
// through the same AddVisit/EndSite path, so a crashed or remote shard's
// spill data is exactly as good as its live aggregate. Merge is a pure
// tally addition: merging two aggregates that both contain a site counts
// the site twice, so distributed callers must merge each site's results
// exactly once (dist commits each lease atomically, at most once).
//
// Feeding protocol: every completed visit is one AddVisit (or one Visit in
// an Apply batch); a failed visit is an AddFailure; and once a site's last
// visit is in, EndSite folds the site's unions into the derived tallies and
// discards its accumulator. Calls for the same site must be ordered (the
// pipeline guarantees this by assigning each site to one worker); calls for
// different sites may race freely — they synchronize on stripe locks.
package stats
