package stats

import (
	"sort"

	"repro/internal/measure"
	"repro/internal/standards"
)

// Source is the read-side query surface an Analysis consumes: the set of
// aggregate questions internal/analysis asks about a survey. Both the live,
// lock-striped *Aggregate and its immutable *Snapshot satisfy it, so every
// report/analysis product can be computed either against the mutable write
// side (batch runs, which quiesce before reading) or against an epoch
// snapshot (the query server, whose readers must never contend with
// ingestion).
type Source interface {
	NumFeatures() int
	NumSites() int
	Cases() []measure.Case
	HasCase(measure.Case) bool
	MeasuredCount() int
	Totals() (invocations, pages int64)
	FeatureSites(measure.Case) []int
	StandardSites(measure.Case) map[standards.Abbrev]int
	BlockedSites(measure.Case) map[standards.Abbrev]int
	Complexity() []int
	NewStandardsPerRound() []float64
}

var (
	_ Source = (*Aggregate)(nil)
	_ Source = (*Snapshot)(nil)
)

// Snapshot is an immutable, point-in-time copy of an Aggregate's derived
// tallies, published RCU-style: writers keep mutating the lock-striped
// aggregate while any number of readers query the snapshot without taking a
// single lock. Snapshots are only published at whole-write boundaries —
// after a Merge completes, after a batch of site folds, or on an explicit
// Publish — so a snapshot never exposes a torn state: it always equals the
// aggregate after some integer number of completed merges/folds.
//
// Every query method matches the Aggregate method of the same name exactly
// (same copies-out semantics, same untracked-case behavior), which is what
// lets a warm analysis — and therefore every report artifact — be computed
// from a snapshot byte-identically to the batch path.
type Snapshot struct {
	epoch       uint64
	numFeatures int
	numSites    int
	cases       []measure.Case
	caseIdx     map[measure.Case]int
	defIdx      int

	invocations []int64
	pages       []int64
	maxRound    []int
	openSites   int

	featureSites [][]int
	stdSites     []map[standards.Abbrev]int
	blockedPairs []map[standards.Abbrev]int
	complexity   map[int]int
	nspSums      []int64
	nspMeasured  int
	measured     int
}

// Epoch is the snapshot's publication sequence number: it starts at 1 and
// increases by one per publication, so readers can key caches by it and
// detect staleness with a single comparison.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumFeatures returns the corpus size.
func (s *Snapshot) NumFeatures() int { return s.numFeatures }

// NumSites returns the site-list size.
func (s *Snapshot) NumSites() int { return s.numSites }

// OpenSites reports how many sites were mid-flight when the snapshot was
// taken.
func (s *Snapshot) OpenSites() int { return s.openSites }

// Cases returns the tracked cases in canonical order.
func (s *Snapshot) Cases() []measure.Case {
	return append([]measure.Case(nil), s.cases...)
}

// HasCase reports whether the snapshot tracks the case.
func (s *Snapshot) HasCase(c measure.Case) bool {
	_, ok := s.caseIdx[c]
	return ok
}

// MeasuredCount returns how many sites produced measurements and never
// failed a visit, as of the snapshot.
func (s *Snapshot) MeasuredCount() int { return s.measured }

// Totals returns the survey-wide invocation and page-visit sums (Table 1)
// as of the snapshot.
func (s *Snapshot) Totals() (invocations, pages int64) {
	for ci := range s.cases {
		invocations += s.invocations[ci]
		pages += s.pages[ci]
	}
	return invocations, pages
}

// FeatureSites returns per-feature site counts under the case; untracked
// cases return all zeros, mirroring Aggregate.FeatureSites.
func (s *Snapshot) FeatureSites(c measure.Case) []int {
	out := make([]int, s.numFeatures)
	ci, ok := s.caseIdx[c]
	if !ok {
		return out
	}
	copy(out, s.featureSites[ci])
	return out
}

// StandardSites returns the number of sites using each standard under the
// case.
func (s *Snapshot) StandardSites(c measure.Case) map[standards.Abbrev]int {
	out := make(map[standards.Abbrev]int)
	ci, ok := s.caseIdx[c]
	if !ok {
		return out
	}
	for std, n := range s.stdSites[ci] {
		out[std] = n
	}
	return out
}

// BlockedSites returns the per-standard block-rate numerators against the
// case; an untracked case blocks everything, so the default-case counts are
// returned, mirroring Aggregate.BlockedSites.
func (s *Snapshot) BlockedSites(c measure.Case) map[standards.Abbrev]int {
	ci, ok := s.caseIdx[c]
	if !ok {
		return s.StandardSites(measure.CaseDefault)
	}
	out := make(map[standards.Abbrev]int)
	for std, n := range s.blockedPairs[ci] {
		out[std] = n
	}
	return out
}

// Complexity returns the standards-per-measured-site multiset, ascending —
// the same series Aggregate.Complexity returns.
func (s *Snapshot) Complexity() []int {
	var out []int
	for n, count := range s.complexity {
		for i := 0; i < count; i++ {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// NewStandardsPerRound returns Table 3's series as of the snapshot.
func (s *Snapshot) NewStandardsPerRound() []float64 {
	if s.defIdx < 0 {
		return nil
	}
	maxRound := s.maxRound[s.defIdx]
	if maxRound < 0 {
		return nil
	}
	out := make([]float64, maxRound+1)
	for r := range out {
		if r < len(s.nspSums) {
			out[r] = float64(s.nspSums[r])
		}
	}
	if s.nspMeasured == 0 {
		return out
	}
	for i := range out {
		out[i] /= float64(s.nspMeasured)
	}
	return out
}

// Snapshot returns the most recently published snapshot, publishing one
// first if none exists yet. It never blocks on ingestion once a snapshot
// has been published: the common path is a single atomic load.
func (a *Aggregate) Snapshot() *Snapshot {
	if s := a.snap.Load(); s != nil {
		return s
	}
	return a.Publish()
}

// Epoch returns the epoch of the most recently published snapshot, 0 when
// none has been published yet.
func (a *Aggregate) Epoch() uint64 {
	if s := a.snap.Load(); s != nil {
		return s.epoch
	}
	return 0
}

// Publish builds and publishes a fresh snapshot of the aggregate's current
// state and returns it. Publication is serialized with Merge, so a snapshot
// always reflects an integer number of completed merges; writers on the
// per-visit path (AddVisit/Apply) are captured at whole-site granularity
// for every derived tally, while the raw invocation/page totals may include
// visits of still-open sites.
//
// Merge publishes automatically after every merge (the lease-commit path),
// and Config.PublishEvery makes the per-visit path publish after every N
// folded sites; Publish is for everyone else — a batch load that wants its
// one snapshot after ingestion, or a server forcing a refresh.
func (a *Aggregate) Publish() *Snapshot {
	a.pubMu.Lock()
	defer a.pubMu.Unlock()
	return a.publishLocked()
}

// publishLocked builds the snapshot copy and swaps it in. Must hold pubMu.
func (a *Aggregate) publishLocked() *Snapshot {
	a.epochSeq++
	s := &Snapshot{
		epoch:       a.epochSeq,
		numFeatures: a.cfg.NumFeatures,
		numSites:    a.cfg.NumSites,
		cases:       a.cfg.Cases,
		caseIdx:     a.caseIdx,
		defIdx:      a.defIdx,
		invocations: make([]int64, len(a.cfg.Cases)),
		pages:       make([]int64, len(a.cfg.Cases)),
		maxRound:    make([]int, len(a.cfg.Cases)),
	}
	for ci := range s.maxRound {
		s.maxRound[ci] = -1
	}
	for si := range a.stripes {
		st := &a.stripes[si]
		st.mu.Lock()
		for ci := range a.cfg.Cases {
			s.invocations[ci] += st.invocations[ci]
			s.pages[ci] += st.pages[ci]
			if st.maxRound[ci] > s.maxRound[ci] {
				s.maxRound[ci] = st.maxRound[ci]
			}
		}
		s.openSites += len(st.open)
		st.mu.Unlock()
	}

	a.foldMu.Lock()
	s.featureSites = make([][]int, len(a.cfg.Cases))
	s.stdSites = make([]map[standards.Abbrev]int, len(a.cfg.Cases))
	s.blockedPairs = make([]map[standards.Abbrev]int, len(a.cfg.Cases))
	for ci := range a.cfg.Cases {
		s.featureSites[ci] = append([]int(nil), a.featureSites[ci]...)
		s.stdSites[ci] = make(map[standards.Abbrev]int, len(a.stdSites[ci]))
		for std, n := range a.stdSites[ci] {
			s.stdSites[ci][std] = n
		}
		s.blockedPairs[ci] = make(map[standards.Abbrev]int, len(a.blockedPairs[ci]))
		for std, n := range a.blockedPairs[ci] {
			s.blockedPairs[ci][std] = n
		}
	}
	s.complexity = make(map[int]int, len(a.complexity))
	for n, count := range a.complexity {
		s.complexity[n] = count
	}
	s.nspSums = append([]int64(nil), a.nspSums...)
	s.nspMeasured = a.nspMeasured
	s.measured = a.measured
	a.foldMu.Unlock()

	a.snap.Store(s)
	return s
}

// maybeAutoPublish publishes when the auto-publication threshold
// (Config.PublishEvery folded sites) has been crossed. folds is the number
// of sites the caller just folded; it must be called without foldMu held.
func (a *Aggregate) maybeAutoPublish(folds int) {
	if a.cfg.PublishEvery <= 0 || folds == 0 {
		return
	}
	a.foldMu.Lock()
	a.endsSincePub += folds
	doPub := a.endsSincePub >= a.cfg.PublishEvery
	if doPub {
		a.endsSincePub = 0
	}
	a.foldMu.Unlock()
	if doPub {
		a.Publish()
	}
}
