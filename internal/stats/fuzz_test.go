package stats

import (
	"bytes"
	"testing"

	"repro/internal/logstore"
	"repro/internal/measure"
	"repro/internal/standards"
)

// fuzzSpillBytes builds the seed corpus for FuzzFromSpillStream: a
// well-formed stream, the same stream truncated mid-frame, and one with its
// record frames duplicated (the shape a retried worker upload would
// produce).
func fuzzSpillBytes(f *testing.F) (full, headerOnly []byte) {
	f.Helper()
	domains := []string{"a.example", "b.example", "c.example"}

	var hdr bytes.Buffer
	w, err := logstore.NewWriter(&hdr, 64, domains)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}

	var buf bytes.Buffer
	w, err = logstore.NewWriter(&buf, 64, domains)
	if err != nil {
		f.Fatal(err)
	}
	sf := measure.NewBitset(64)
	sf.Set(3)
	sf.Set(17)
	for site := 0; site < len(domains); site++ {
		for round := 0; round < 2; round++ {
			if err := w.Append(logstore.Observation{
				Case: measure.CaseDefault, Round: round, Site: site,
				Features: sf, Invocations: 5, Pages: 2,
			}); err != nil {
				f.Fatal(err)
			}
		}
	}
	w.Fail(1)
	w.EndSite(0)
	w.EndSite(1)
	// site 2 is left open: EndOpenSites must fold it.
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes(), hdr.Bytes()
}

// FuzzFromSpillStream drives the lease-commit fold path — the bytes a
// remote worker streams home — with arbitrary input: it must reject
// corruption with an error, never panic, and never return an aggregate
// with open sites.
func FuzzFromSpillStream(f *testing.F) {
	full, headerOnly := fuzzSpillBytes(f)
	f.Add(full)
	f.Add(headerOnly)
	f.Add(full[:len(headerOnly)+3])                                        // truncated mid-frame
	f.Add(full[:len(full)-2])                                              // truncated final frame
	f.Add(append(append([]byte(nil), full...), full[len(headerOnly):]...)) // duplicated frames
	f.Add([]byte{})

	cases := []measure.Case{measure.CaseDefault, measure.CaseBlocking}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := logstore.OpenSpills(bytes.NewReader(data))
		if err != nil {
			return // rejecting a corrupt header is fine; panicking is not
		}
		defer s.Close()
		if s.NumFeatures() > 1<<12 || len(s.Domains()) > 1<<12 {
			return // cap fuzz-inflated dimensions so allocations stay sane
		}
		stdOf := make([]standards.Abbrev, s.NumFeatures())
		catalog := standards.Catalog()
		for i := range stdOf {
			stdOf[i] = catalog[i%len(catalog)].Abbrev
		}
		agg, err := FromSpillStream(stdOf, cases, s)
		if err != nil {
			return // rejecting corrupt frames is fine
		}
		if agg.OpenSites() != 0 {
			t.Fatalf("FromSpillStream returned %d open sites", agg.OpenSites())
		}
		if agg.MeasuredCount() > len(s.Domains()) {
			t.Fatalf("MeasuredCount %d exceeds the %d-site list", agg.MeasuredCount(), len(s.Domains()))
		}
	})
}
