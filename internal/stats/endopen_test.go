package stats

import (
	"reflect"
	"testing"
)

// TestEndOpenSitesOrderIndependent pins the one map-order dependence the
// repolint sweep surfaced (detrange on EndOpenSites' drain of st.open,
// outside the analyzer's deterministic-package scope): the fold of
// still-open sites happens in map iteration order, so it MUST be
// commutative — every Source query has to come out identical no matter
// which order sites were ingested and therefore drained. If a future
// change makes folds order-sensitive (say, a running "first N sites"
// tally), this test fails before any spill-replay diff test would.
func TestEndOpenSitesOrderIndependent(t *testing.T) {
	events := tSurvey(42)

	build := func(order []int) *Aggregate {
		t.Helper()
		agg, err := New(tConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range order {
			ev := events[idx]
			for _, v := range ev.visits {
				if err := agg.AddVisit(v); err != nil {
					t.Fatal(err)
				}
			}
			for _, site := range ev.fails {
				if err := agg.AddFailure(site); err != nil {
					t.Fatal(err)
				}
			}
		}
		// No EndSite calls: every touched site is still open, so the
		// drain covers the whole survey.
		agg.EndOpenSites()
		return agg
	}

	forward := make([]int, len(events))
	reverse := make([]int, len(events))
	for i := range events {
		forward[i] = i
		reverse[i] = len(events) - 1 - i
	}

	a, b := build(forward), build(reverse)
	if got, want := sourceSnap(a), sourceSnap(b); !reflect.DeepEqual(got, want) {
		t.Errorf("EndOpenSites fold is order-sensitive:\nforward %+v\nreverse %+v", want, got)
	}
	if got, want := sourceSnap(a.Snapshot()), sourceSnap(b.Snapshot()); !reflect.DeepEqual(got, want) {
		t.Errorf("published snapshots diverge by ingest order:\nforward %+v\nreverse %+v", want, got)
	}
}
