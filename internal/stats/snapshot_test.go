package stats

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/measure"
)

// sourceSnap captures every Source query result so aggregate and snapshot
// answers can be compared wholesale.
func sourceSnap(s Source) snapshot {
	inv, pages := s.Totals()
	return snapshot{
		FeatureSitesDefault:  s.FeatureSites(measure.CaseDefault),
		FeatureSitesBlocking: s.FeatureSites(measure.CaseBlocking),
		StdSitesDefault:      s.StandardSites(measure.CaseDefault),
		StdSitesBlocking:     s.StandardSites(measure.CaseBlocking),
		BlockedBlocking:      s.BlockedSites(measure.CaseBlocking),
		BlockedUntracked:     s.BlockedSites(measure.CaseGhostery),
		Complexity:           s.Complexity(),
		NSP:                  s.NewStandardsPerRound(),
		Measured:             s.MeasuredCount(),
		Invocations:          inv,
		Pages:                pages,
	}
}

// TestSnapshotMatchesAggregate requires a published snapshot to answer
// every Source query identically to the aggregate it was taken from —
// including the untracked-case edge behaviors — across several survey
// shapes.
func TestSnapshotMatchesAggregate(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		feed bool
	}{
		{name: "empty", seed: 0, feed: false},
		{name: "survey-42", seed: 42, feed: true},
		{name: "survey-7", seed: 7, feed: true},
		{name: "survey-99", seed: 99, feed: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			agg, err := New(tConfig())
			if err != nil {
				t.Fatal(err)
			}
			if tc.feed {
				feed(t, agg, tSurvey(tc.seed))
			}
			s := agg.Publish()
			if got, want := sourceSnap(s), sourceSnap(agg); !reflect.DeepEqual(got, want) {
				t.Errorf("snapshot diverges from its aggregate:\n got %+v\nwant %+v", got, want)
			}
			if got, want := s.Cases(), agg.Cases(); !reflect.DeepEqual(got, want) {
				t.Errorf("snapshot Cases = %v, aggregate %v", got, want)
			}
			if s.NumFeatures() != agg.NumFeatures() || s.NumSites() != agg.NumSites() {
				t.Error("snapshot dimensions diverge from the aggregate")
			}
			if s.HasCase(measure.CaseDefault) != agg.HasCase(measure.CaseDefault) ||
				s.HasCase(measure.CaseGhostery) != agg.HasCase(measure.CaseGhostery) {
				t.Error("snapshot HasCase diverges from the aggregate")
			}
			if s.OpenSites() != agg.OpenSites() {
				t.Errorf("snapshot OpenSites = %d, aggregate %d", s.OpenSites(), agg.OpenSites())
			}
		})
	}
}

// TestSnapshotImmutable pins the RCU contract: a snapshot taken before
// more data arrives keeps answering with the old state, while a fresh
// snapshot sees the new state under a larger epoch.
func TestSnapshotImmutable(t *testing.T) {
	agg, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	sites := tSurvey(42)
	feed(t, agg, sites[:tNumSites/2])
	old := agg.Publish()
	oldView := sourceSnap(old)

	feed(t, agg, sites[tNumSites/2:])
	fresh := agg.Publish()

	if got := sourceSnap(old); !reflect.DeepEqual(got, oldView) {
		t.Error("published snapshot changed after later writes")
	}
	if fresh.Epoch() <= old.Epoch() {
		t.Errorf("epoch did not advance: old %d, fresh %d", old.Epoch(), fresh.Epoch())
	}
	if got, want := sourceSnap(fresh), sourceSnap(agg); !reflect.DeepEqual(got, want) {
		t.Error("fresh snapshot diverges from the aggregate")
	}
}

// TestSnapshotEpochSequence pins the epoch lifecycle: 0 before any
// publication, lazily published by the first Snapshot call, cached until
// the next publication, and bumped by Publish and by Merge.
func TestSnapshotEpochSequence(t *testing.T) {
	agg, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.Epoch(); got != 0 {
		t.Fatalf("Epoch before any publication = %d, want 0", got)
	}
	s1 := agg.Snapshot()
	if s1.Epoch() != 1 {
		t.Fatalf("first lazy publication has epoch %d, want 1", s1.Epoch())
	}
	if s2 := agg.Snapshot(); s2 != s1 {
		t.Error("Snapshot republished instead of returning the cached snapshot")
	}
	if got := agg.Publish().Epoch(); got != 2 {
		t.Errorf("explicit Publish has epoch %d, want 2", got)
	}

	other, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, other, tSurvey(3))
	if err := agg.Merge(other); err != nil {
		t.Fatal(err)
	}
	if got := agg.Epoch(); got != 3 {
		t.Errorf("epoch after merge = %d, want 3 (Merge publishes)", got)
	}
	if got, want := sourceSnap(agg.Snapshot()), sourceSnap(agg); !reflect.DeepEqual(got, want) {
		t.Error("post-merge snapshot diverges from the aggregate")
	}
}

// TestAutoPublishEvery checks Config.PublishEvery: the per-visit path
// publishes a fresh epoch after every N folded sites, without anyone
// calling Publish.
func TestAutoPublishEvery(t *testing.T) {
	const every = 4
	cfg := tConfig()
	cfg.PublishEvery = every
	agg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sites := tSurvey(42)
	feed(t, agg, sites)

	folded := 0
	for _, ev := range sites {
		if len(ev.visits) > 0 || len(ev.fails) > 0 {
			folded++ // sites with no events are never opened, so never folded
		}
	}
	if want := uint64(folded / every); agg.Epoch() != want {
		t.Errorf("epoch after %d folded sites with PublishEvery=%d is %d, want %d",
			folded, every, agg.Epoch(), want)
	}
	if agg.Epoch() == 0 {
		t.Fatal("auto-publication never fired")
	}
	// The auto-published snapshot is a whole-site prefix: everything it
	// reports is consistent with some number of completed sites — here the
	// survey is done, so a final Publish must equal the full state.
	if got, want := sourceSnap(agg.Publish()), sourceSnap(agg); !reflect.DeepEqual(got, want) {
		t.Error("final snapshot diverges from the aggregate")
	}
}

// TestFromLogMatchesLive replays a measurement log through FromLog and
// requires the result to answer every aggregate query identically to the
// live aggregate that saw the same survey.
func TestFromLogMatchesLive(t *testing.T) {
	sites := tSurvey(42)
	live, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, live, sites)

	log := measure.NewLog(tNumFeatures, make([]string, tNumSites))
	failed := make([]bool, tNumSites)
	for _, ev := range sites {
		for _, v := range ev.visits {
			rl := log.EnsureRound(v.Case, v.Round)
			rl.SiteFeatures[v.Site] = v.Features
			log.Cases[v.Case].Invocations += v.Invocations
			log.Cases[v.Case].PagesVisited += int64(v.Pages)
			log.Measured[v.Site] = true
		}
		for _, site := range ev.fails {
			failed[site] = true
		}
	}
	for site, f := range failed {
		if f {
			log.Measured[site] = false
		}
	}

	replayed, err := FromLog(log, tStandards(), tConfig().Cases)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snap(replayed), snap(live); !reflect.DeepEqual(got, want) {
		t.Errorf("FromLog diverges from the live aggregate:\n got %+v\nwant %+v", got, want)
	}
	if n := replayed.OpenSites(); n != 0 {
		t.Errorf("FromLog left %d open sites", n)
	}
}

func TestFromLogValidation(t *testing.T) {
	log := measure.NewLog(tNumFeatures, make([]string, tNumSites))
	if _, err := FromLog(log, tStandards()[:10], tConfig().Cases); err == nil {
		t.Error("FromLog accepted a short standards mapping")
	}
	log.EnsureRound(measure.CaseGhostery, 0)
	if _, err := FromLog(log, tStandards(), tConfig().Cases); err == nil {
		t.Error("FromLog accepted a log with a case outside the aggregate's set")
	}
}

// leaseUnit builds one lease-shaped contribution: a single measured site
// with a fixed, recognizable tally (feature 0 under both cases, 10
// invocations, 2 pages). Merging k of them over disjoint sites yields
// exactly k of everything — which is what lets the race test below detect
// torn snapshots arithmetically.
func leaseUnit(t testing.TB, site int) *Aggregate {
	t.Helper()
	a, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tConfig().Cases {
		sf := measure.NewBitset(tNumFeatures)
		sf.Set(0)
		if err := a.AddVisit(Visit{Case: c, Round: 0, Site: site, Features: sf, Invocations: 5, Pages: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.EndSite(site); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestConcurrentMergeSnapshotPrefix is the torn-read sweep (run it with
// -race): writers concurrently merge identical single-site leases into one
// aggregate while readers hammer Snapshot. The publication invariant says
// every snapshot equals some prefix of completed merges, so every tally a
// reader sees must be exactly k× the per-lease contribution for a single
// integer k — across invocations, pages, measured count, feature counts,
// and standard counts at once. Any torn state breaks the arithmetic.
func TestConcurrentMergeSnapshotPrefix(t *testing.T) {
	const (
		writers = 4
		leases  = 32 // per writer
		readers = 4
	)
	target, err := New(tConfig())
	if err != nil {
		t.Fatal(err)
	}
	target.Publish()

	// Pre-build the leases so writer goroutines only merge.
	units := make(chan *Aggregate, writers*leases)
	for i := 0; i < writers*leases; i++ {
		units <- leaseUnit(t, i%tNumSites)
	}
	close(units)

	total := writers * leases
	var writeWg, readWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writeWg.Add(1)
		go func() {
			defer writeWg.Done()
			for u := range units {
				if err := target.Merge(u); err != nil {
					t.Errorf("merge: %v", err)
					return
				}
			}
		}()
	}

	for r := 0; r < readers; r++ {
		readWg.Add(1)
		go func() {
			defer readWg.Done()
			var lastEpoch uint64
			var lastK int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := target.Snapshot()
				if e := s.Epoch(); e < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", e, lastEpoch)
					return
				} else {
					lastEpoch = e
				}
				inv, pages := s.Totals()
				k := inv / 10
				if inv%10 != 0 || k < 0 || k > int64(total) {
					t.Errorf("torn snapshot: invocations %d is not a whole number of leases", inv)
					return
				}
				if k < lastK {
					t.Errorf("snapshot went backwards: %d leases after %d", k, lastK)
					return
				}
				lastK = k
				if pages != 2*k {
					t.Errorf("torn snapshot: %d leases worth of invocations but %d pages (want %d)", k, pages, 2*k)
					return
				}
				if m := int64(s.MeasuredCount()); m != k {
					t.Errorf("torn snapshot: %d leases merged but MeasuredCount %d", k, m)
					return
				}
				for _, c := range tConfig().Cases {
					if f0 := int64(s.FeatureSites(c)[0]); f0 != k {
						t.Errorf("torn snapshot: %d leases merged but feature 0 on %d sites under %s", k, f0, c)
						return
					}
					std := s.StandardSites(c)
					if len(std) > 1 {
						t.Errorf("torn snapshot: %d standards tallied, want at most 1", len(std))
						return
					}
					for _, n := range std {
						if int64(n) != k {
							t.Errorf("torn snapshot: %d leases merged but standard on %d sites", k, n)
							return
						}
					}
				}
			}
		}()
	}

	writeWg.Wait()
	close(stop)
	readWg.Wait()

	final := target.Snapshot()
	inv, pages := final.Totals()
	if inv != int64(total*10) || pages != int64(total*2) {
		t.Errorf("final totals (%d, %d), want (%d, %d)", inv, pages, total*10, total*2)
	}
	if got := final.MeasuredCount(); got != total {
		t.Errorf("final MeasuredCount %d, want %d", got, total)
	}
}
